#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on median-time regressions.

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CURRENT.json \
        [--threshold 1.30] [--absolute]

The committed ``benchmarks/baseline.json`` was produced on one machine and
CI runs on another, so absolute medians are not comparable.  By default the
script therefore *normalises* each benchmark's ``current / baseline`` median
ratio by the median of all ratios — a uniform machine-speed factor cancels
out exactly (and a few order-of-magnitude speedups cannot drag the centre),
so only benchmarks that slowed down *relative to the rest of the suite* by
more than ``--threshold`` fail the gate.  To reject
transient load spikes on shared runners, a benchmark must exceed the
threshold on **both** its median and its minimum round time to count as a
regression.  Pass ``--absolute`` to compare raw ratios instead (useful when
both files come from the same machine).

Per-backend benchmarks carry the array backend as a pytest param suffix
(``test_viterbi_batch_backend[numpy]``) and are gated under that exact key
when the baseline records one; a baseline written before the benchmark grew
its backend dimension still gates every backend via the bare family name.

Refreshing the baseline after an intentional performance change::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-json=benchmarks/baseline.json
    python benchmarks/compare_benchmarks.py --slim benchmarks/baseline.json \
        --append-trend benchmarks/trends/runtime.json --pr N

then commit the regenerated files together with the change that explains
them.  The ``--slim`` pass strips pytest-benchmark's raw per-round samples
(several MB) down to the per-benchmark medians/minimums the gate actually
reads; ``--append-trend`` records the refreshed medians as PR *N*'s entry
in the observatory's runtime trend (re-appending a PR replaces its entry).

``--json OUT`` writes the comparison as machine-readable JSON next to the
human table: normalisation factors, per-benchmark ratios and the
regression verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def load_stats(path: str) -> dict[str, tuple[float, float]]:
    """Map benchmark fullname → (median, min) seconds from a pytest-benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        entry["fullname"]: (float(entry["stats"]["median"]), float(entry["stats"]["min"]))
        for entry in payload.get("benchmarks", [])
    }


def _family(name: str) -> str:
    """Benchmark fullname with any parametrised ``[...]`` suffix stripped.

    Per-backend benchmarks carry the backend as a pytest param suffix
    (``test_viterbi_batch_backend[numpy]``); the family is the shared base
    name a pre-backend baseline recorded them under.
    """
    if name.endswith("]") and "[" in name:
        return name[: name.rindex("[")]
    return name


def match_baseline_keys(
    baseline: dict[str, tuple[float, float]], current: dict[str, tuple[float, float]]
) -> dict[str, str]:
    """Map each gated current benchmark to the baseline key it compares against.

    Exact names win.  A per-backend current key (``name[backend]``) with no
    exact baseline entry falls back to the bare family name, so a baseline
    recorded before a benchmark grew its backend dimension still gates every
    backend instead of dropping them as "new".
    """
    pairs: dict[str, str] = {}
    for name in current:
        if name in baseline:
            pairs[name] = name
        elif _family(name) in baseline:
            pairs[name] = _family(name)
    return pairs


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def compare(
    baseline: dict[str, tuple[float, float]],
    current: dict[str, tuple[float, float]],
    *,
    threshold: float,
    absolute: bool,
    json_out: str | None = None,
) -> int:
    """Print a comparison table; return the number of regressions.

    A benchmark counts as regressed only when *both* its median and its
    minimum round time exceed the threshold: a genuine slowdown shifts the
    whole timing distribution, while a transient load spike on the runner
    inflates the median but leaves the minimum untouched.  With
    ``json_out``, the same comparison is also written as machine-readable
    JSON.
    """
    pairs = match_baseline_keys(baseline, current)
    common = sorted(pairs)
    if not common:
        raise SystemExit(
            "error: no common benchmarks between the two files — "
            "was the baseline refreshed after a benchmark rename? "
            "(see --slim / the refresh procedure in the module docstring)"
        )
    for name in sorted(set(baseline) - set(pairs.values())):
        print(f"warning: benchmark disappeared from the current run: {name}")
    for name in sorted(set(current) - set(pairs)):
        print(f"note: new benchmark without a baseline entry: {name}")

    median_ratios = {name: current[name][0] / baseline[pairs[name]][0] for name in common}
    min_ratios = {name: current[name][1] / baseline[pairs[name]][1] for name in common}
    median_scale = min_scale = 1.0
    if not absolute:
        # Median of ratios, not geometric mean: a couple of benchmarks sped
        # up 80x by an optimisation PR must not drag the centre down and
        # flag every *unchanged* benchmark as a relative regression.
        median_scale = _median(list(median_ratios.values()))
        min_scale = _median(list(min_ratios.values()))
        print(f"machine-speed normalisation factor (median ratio): {median_scale:.3f}")

    regressions = 0
    width = max(len(name) for name in common)
    report: dict[str, dict] = {}
    print(f"{'benchmark'.ljust(width)} | baseline | current  | median | min")
    for name in common:
        norm_median = median_ratios[name] / median_scale
        norm_min = min_ratios[name] / min_scale
        regressed = norm_median > threshold and norm_min > threshold
        flag = ""
        if regressed:
            regressions += 1
            flag = f"  REGRESSION (> {threshold:.2f}x)"
        elif norm_median > threshold:
            flag = "  noisy median, min within bounds"
        print(
            f"{name.ljust(width)} | {baseline[pairs[name]][0] * 1e3:7.2f}ms | "
            f"{current[name][0] * 1e3:7.2f}ms | {norm_median:5.2f}x | {norm_min:5.2f}x{flag}"
        )
        report[name] = {
            "baseline_key": pairs[name],
            "baseline_median_s": baseline[pairs[name]][0],
            "baseline_min_s": baseline[pairs[name]][1],
            "current_median_s": current[name][0],
            "current_min_s": current[name][1],
            "median_ratio": median_ratios[name],
            "min_ratio": min_ratios[name],
            "normalized_median": norm_median,
            "normalized_min": norm_min,
            "regressed": regressed,
        }
    if json_out is not None:
        document = {
            "threshold": threshold,
            "absolute": absolute,
            "normalization": {"median": median_scale, "min": min_scale},
            "benchmarks": report,
            "regressions": regressions,
        }
        with open(json_out, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")
        print(f"wrote machine-readable comparison to {json_out}")
    return regressions


def append_trend(trend_path: str, benchmark_json: str, pr: int) -> None:
    """Record *benchmark_json*'s medians as PR *pr*'s runtime trend entry."""
    try:
        from repro.obs import trends
    except ImportError:  # running without PYTHONPATH=src
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
        from repro.obs import trends

    document = trends.append_entry(
        trend_path, kind="runtime", entry=trends.runtime_entry(benchmark_json, pr=pr)
    )
    print(f"appended PR {pr} to {trend_path} ({len(document['entries'])} entr(y/ies))")


def slim(path: str) -> None:
    """Rewrite *path* keeping only the stats the regression gate reads."""
    with open(path) as handle:
        payload = json.load(handle)
    slimmed = {
        "machine_info": payload.get("machine_info", {}),
        "datetime": payload.get("datetime"),
        "benchmarks": [
            {
                "fullname": entry["fullname"],
                "stats": {
                    "median": entry["stats"]["median"],
                    "min": entry["stats"]["min"],
                    "rounds": entry["stats"].get("rounds"),
                },
            }
            for entry in payload.get("benchmarks", [])
        ],
    }
    with open(path, "w") as handle:
        json.dump(slimmed, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"slimmed {path}: kept median/min for {len(slimmed['benchmarks'])} benchmarks")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON (or file to slim with --slim)")
    parser.add_argument("current", nargs="?", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.30,
        help="maximum tolerated (normalised) median slowdown factor (default 1.30)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw ratios without machine-speed normalisation",
    )
    parser.add_argument(
        "--slim",
        action="store_true",
        help="rewrite BASELINE in place, stripping raw samples down to the gated stats",
    )
    parser.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="OUT",
        help="also write the comparison as machine-readable JSON to this file",
    )
    parser.add_argument(
        "--append-trend",
        default=None,
        metavar="TREND.json",
        help="append the run's medians to this observatory runtime trend (needs --pr)",
    )
    parser.add_argument(
        "--pr", type=int, default=None, help="PR number the trend entry is recorded under"
    )
    args = parser.parse_args(argv)

    if args.append_trend is not None and args.pr is None:
        parser.error("--append-trend requires --pr")

    if args.slim:
        slim(args.baseline)
        if args.append_trend is not None:
            append_trend(args.append_trend, args.baseline, args.pr)
        return 0
    if args.current is None:
        parser.error("CURRENT is required unless --slim is given")

    regressions = compare(
        load_stats(args.baseline),
        load_stats(args.current),
        threshold=args.threshold,
        absolute=args.absolute,
        json_out=args.json_out,
    )
    if args.append_trend is not None:
        append_trend(args.append_trend, args.current, args.pr)
    if regressions:
        print(f"\nFAIL: {regressions} benchmark(s) regressed beyond {args.threshold:.2f}x")
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
