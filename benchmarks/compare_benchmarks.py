#!/usr/bin/env python
"""Compare two pytest-benchmark JSON files and fail on median-time regressions.

Usage::

    python benchmarks/compare_benchmarks.py BASELINE.json CURRENT.json \
        [--threshold 1.30] [--absolute]

The committed ``benchmarks/baseline.json`` was produced on one machine and
CI runs on another, so absolute medians are not comparable.  By default the
script therefore *normalises* each benchmark's ``current / baseline`` median
ratio by the geometric mean of all ratios — a uniform machine-speed factor
cancels out exactly, and only benchmarks that slowed down *relative to the
rest of the suite* by more than ``--threshold`` fail the gate.  To reject
transient load spikes on shared runners, a benchmark must exceed the
threshold on **both** its median and its minimum round time to count as a
regression.  Pass ``--absolute`` to compare raw ratios instead (useful when
both files come from the same machine).

Refreshing the baseline after an intentional performance change::

    PYTHONPATH=src python -m pytest benchmarks --benchmark-json=benchmarks/baseline.json

then commit the regenerated file together with the change that explains it.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_stats(path: str) -> dict[str, tuple[float, float]]:
    """Map benchmark fullname → (median, min) seconds from a pytest-benchmark JSON."""
    with open(path) as handle:
        payload = json.load(handle)
    return {
        entry["fullname"]: (float(entry["stats"]["median"]), float(entry["stats"]["min"]))
        for entry in payload.get("benchmarks", [])
    }


def _geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare(
    baseline: dict[str, tuple[float, float]],
    current: dict[str, tuple[float, float]],
    *,
    threshold: float,
    absolute: bool,
) -> int:
    """Print a comparison table; return the number of regressions.

    A benchmark counts as regressed only when *both* its median and its
    minimum round time exceed the threshold: a genuine slowdown shifts the
    whole timing distribution, while a transient load spike on the runner
    inflates the median but leaves the minimum untouched.
    """
    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no common benchmarks between the two files", file=sys.stderr)
        return 1
    for name in sorted(set(baseline) - set(current)):
        print(f"warning: benchmark disappeared from the current run: {name}")
    for name in sorted(set(current) - set(baseline)):
        print(f"note: new benchmark without a baseline entry: {name}")

    median_ratios = {name: current[name][0] / baseline[name][0] for name in common}
    min_ratios = {name: current[name][1] / baseline[name][1] for name in common}
    median_scale = min_scale = 1.0
    if not absolute:
        median_scale = _geomean(list(median_ratios.values()))
        min_scale = _geomean(list(min_ratios.values()))
        print(f"machine-speed normalisation factor (geometric mean ratio): {median_scale:.3f}")

    regressions = 0
    width = max(len(name) for name in common)
    print(f"{'benchmark'.ljust(width)} | baseline | current  | median | min")
    for name in common:
        norm_median = median_ratios[name] / median_scale
        norm_min = min_ratios[name] / min_scale
        flag = ""
        if norm_median > threshold and norm_min > threshold:
            regressions += 1
            flag = f"  REGRESSION (> {threshold:.2f}x)"
        elif norm_median > threshold:
            flag = "  noisy median, min within bounds"
        print(
            f"{name.ljust(width)} | {baseline[name][0] * 1e3:7.2f}ms | "
            f"{current[name][0] * 1e3:7.2f}ms | {norm_median:5.2f}x | {norm_min:5.2f}x{flag}"
        )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=1.30,
        help="maximum tolerated (normalised) median slowdown factor (default 1.30)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw ratios without machine-speed normalisation",
    )
    args = parser.parse_args(argv)

    regressions = compare(
        load_stats(args.baseline),
        load_stats(args.current),
        threshold=args.threshold,
        absolute=args.absolute,
    )
    if regressions:
        print(f"\nFAIL: {regressions} benchmark(s) regressed beyond {args.threshold:.2f}x")
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
