"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper via its driver
in :mod:`repro.experiments`, asserts the qualitative finding, and prints the
headline rows (paper vs measured) so that ``pytest benchmarks/
--benchmark-only -s`` doubles as a report generator.
"""

from __future__ import annotations

import pytest


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a small paper-vs-measured table under the benchmark output."""
    width = max(len(r[0]) for r in rows)
    print(f"\n--- {title} ---")
    print(f"{'quantity'.ljust(width)} | paper           | measured")
    for name, paper, measured in rows:
        print(f"{name.ljust(width)} | {paper:<15} | {measured}")


@pytest.fixture
def paper_report():
    """Fixture handing benchmarks the report printer."""
    return report
