"""Benchmark harness configuration.

Every benchmark regenerates one table or figure of the paper through the
experiment registry (:mod:`repro.api`), asserts the qualitative finding,
and prints the headline rows (paper vs measured) so that
``pytest benchmarks/ --benchmark-only -s`` doubles as a report generator.
"""

from __future__ import annotations

import pytest

from repro.api import Runner


def report(title: str, rows: list[tuple[str, str, str]]) -> None:
    """Print a small paper-vs-measured table under the benchmark output."""
    width = max(len(r[0]) for r in rows)
    print(f"\n--- {title} ---")
    print(f"{'quantity'.ljust(width)} | paper           | measured")
    for name, paper, measured in rows:
        print(f"{name.ljust(width)} | {paper:<15} | {measured}")


@pytest.fixture
def paper_report():
    """Fixture handing benchmarks the report printer."""
    return report


@pytest.fixture(scope="session")
def runner() -> Runner:
    """One registry-backed runner shared by every figure/table benchmark."""
    return Runner()
