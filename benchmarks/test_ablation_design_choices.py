"""Ablation benches for the design choices DESIGN.md calls out.

These do not correspond to a single figure; they quantify the impact of the
individual design decisions the paper argues for:

* square-wave vs ideal complex-exponential sub-carrier (harmonic images),
* single- vs double-sideband modulation (spectral efficiency),
* guard-interval length vs detection-timing error,
* Wi-Fi bit-rate choice for retransmission efficiency (§4.2 discussion),
* two-symbols-per-bit downlink encoding vs a naive one-symbol encoding.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backscatter.detector import PeakDetectorReceiver
from repro.backscatter.ssb import SingleSidebandModulator
from repro.backscatter.power import InterscatterPowerModel
from repro.core.device import InterscatterDevice
from repro.core.timing import InterscatterTiming
from repro.utils.spectrum import power_spectral_density
from repro.wifi.ofdm.constant_ofdm import ConstantOfdmCrafter
from repro.wifi.ofdm.rates import OfdmRate


def test_ablation_subcarrier_harmonics(benchmark, paper_report):
    """Square-wave sub-carrier pays a third-harmonic image ~9.5 dB down."""

    def run() -> tuple[float, float]:
        tone = np.ones(32768, dtype=complex)
        results = []
        for ideal in (False, True):
            modulator = SingleSidebandModulator(
                shift_hz=10e6,
                sample_rate_hz=88e6,
                ideal_subcarrier=ideal,
                quantize_to_states=not ideal,
            )
            output = modulator.modulate_tone_shift(tone.size).apply_to(tone)
            spectrum = power_spectral_density(output, 88e6)
            fundamental = spectrum.band_power(9e6, 11e6)
            harmonic = spectrum.band_power(-31e6, -29e6)
            results.append(10.0 * np.log10(fundamental / max(harmonic, 1e-30)))
        return results[0], results[1]

    square_rejection, ideal_rejection = benchmark(run)
    assert square_rejection == pytest.approx(9.5, abs=2.0)
    assert ideal_rejection > square_rejection + 20.0
    paper_report(
        "Ablation - sub-carrier fidelity",
        [
            ("square wave 3rd-harmonic image", "9.5 dB below fundamental", f"{square_rejection:.1f} dB"),
            ("ideal exponential image", "absent", f"{ideal_rejection:.1f} dB"),
        ],
    )


def test_ablation_guard_interval(benchmark, paper_report):
    """The 4 µs guard absorbs detection jitter; no guard loses packets."""

    def run() -> dict[float, float]:
        success = {}
        for guard in (0.0, 2e-6, 4e-6, 8e-6):
            timing = InterscatterTiming(guard_interval_s=guard)
            device = InterscatterDevice(
                timing, detection_jitter_s=1.5e-6, rng=np.random.default_rng(7)
            )
            outcomes = [device.service_advertisement().fits_in_window for _ in range(300)]
            success[guard] = float(np.mean(outcomes))
        return success

    success = benchmark(run)
    assert success[4e-6] > 0.95
    assert success[0.0] < success[4e-6]
    paper_report(
        "Ablation - guard interval vs detection jitter (1.5 us sigma)",
        [
            (f"guard {guard*1e6:.0f} us", "4 us chosen in §2.2", f"{100*rate:.0f} % of packets fit")
            for guard, rate in sorted(success.items())
        ],
    )


def test_ablation_rate_choice_for_retransmissions(benchmark, paper_report):
    """§4.2: with similar PER, higher rates move more bytes per advertisement."""

    def run() -> dict[float, float]:
        throughput = {}
        for rate in (2.0, 5.5, 11.0):
            timing = InterscatterTiming(wifi_rate_mbps=rate, guard_interval_s=0.0)
            # Similar PER across rates (Fig. 11), so expected goodput scales
            # with the bytes that fit in one advertisement.
            per = 0.1
            throughput[rate] = timing.max_wifi_psdu_bytes() * 8 * (1 - per) / 20e-3
        return throughput

    throughput = benchmark(run)
    assert throughput[11.0] > 4.0 * throughput[2.0]
    paper_report(
        "Ablation - Wi-Fi bit-rate choice (per-advertisement goodput, PER 10%)",
        [
            (f"{rate:.1f} Mbps", "higher rate moves more bits", f"{bps/1e3:.1f} kbps")
            for rate, bps in sorted(throughput.items())
        ],
    )


def test_ablation_power_vs_shift_and_rate(benchmark, paper_report):
    """Power scales with the sub-carrier shift and only mildly with bit rate."""

    def run() -> tuple[dict[float, float], dict[float, float]]:
        model = InterscatterPowerModel()
        by_shift = {shift: model.estimate(shift_hz=shift).total_uw for shift in (12e6, 24e6, 35.75e6, 48e6)}
        by_rate = {rate: model.estimate(wifi_rate_mbps=rate).total_uw for rate in (2.0, 5.5, 11.0)}
        return by_shift, by_rate

    by_shift, by_rate = benchmark(run)
    assert by_shift[48e6] > by_shift[12e6]
    assert by_rate[11.0] < 1.3 * by_rate[2.0]
    paper_report(
        "Ablation - IC power scaling",
        [
            *[
                (f"shift {shift/1e6:.2f} MHz", "synth+modulator scale with shift", f"{power:.1f} uW")
                for shift, power in sorted(by_shift.items())
            ],
            *[
                (f"rate {rate:.1f} Mbps", "baseband nearly rate-independent", f"{power:.1f} uW")
                for rate, power in sorted(by_rate.items())
            ],
        ],
    )


def test_ablation_downlink_encoding(benchmark, paper_report):
    """Two OFDM symbols per bit avoid the false peaks of consecutive constants."""

    def run() -> tuple[float, float]:
        rng = np.random.default_rng(3)
        crafter = ConstantOfdmCrafter(OfdmRate.RATE_36, rng=rng)
        detector = PeakDetectorReceiver()
        message = rng.integers(0, 2, 24).astype(np.uint8)

        # Paper encoding: random+constant per 1, random+random per 0.
        plan, waveform = crafter.encode_message(message, scrambler_seed=0x44)
        decoded = detector.decode_bits(
            waveform.samples,
            samples_per_symbol=80,
            num_symbols=waveform.num_data_symbols,
            start_sample=waveform.data_start_sample,
        )[: message.size]
        paper_ber = float(np.mean(decoded != message))

        # Naive encoding: one OFDM symbol per bit (constant = 1, random = 0).
        # Consecutive constant symbols produce back-to-back low-envelope
        # regions punctuated by their leading impulses, which the comparator
        # confuses; emulate by classifying each symbol against the running
        # median of the previous *random* symbol only when one exists.
        naive_papr_threshold = 15.0
        params = crafter.rate.parameters
        from repro.wifi.scrambler import Ieee80211Scrambler

        keystream = Ieee80211Scrambler(0x44).keystream(params.data_bits_per_symbol * message.size)
        data_bits = np.empty(params.data_bits_per_symbol * message.size, dtype=np.uint8)
        for index, bit in enumerate(message):
            start = index * params.data_bits_per_symbol
            stop = start + params.data_bits_per_symbol
            if bit == 1:
                data_bits[start:stop] = np.bitwise_xor(keystream[start:stop], 1)
            else:
                data_bits[start:stop] = rng.integers(0, 2, params.data_bits_per_symbol)
            if index + 1 < message.size and message[index + 1] == 1:
                data_bits[stop - 6 : stop] = np.bitwise_xor(keystream[stop - 6 : stop], 1)
        from repro.wifi.ofdm.transmitter import OfdmTransmitter

        naive_waveform = OfdmTransmitter(crafter.rate).encode_data_bits(data_bits, scrambler_seed=0x44)
        naive_decoded = np.zeros(message.size, dtype=np.uint8)
        envelope_metrics = detector.symbol_envelope_metric(
            naive_waveform.samples, 80, naive_waveform.num_data_symbols, naive_waveform.data_start_sample
        )
        reference = np.median(envelope_metrics)
        naive_decoded = (envelope_metrics[: message.size] < 0.5 * reference).astype(np.uint8)
        naive_ber = float(np.mean(naive_decoded != message))
        return paper_ber, naive_ber

    paper_ber, naive_ber = benchmark(run)
    assert paper_ber == 0.0
    assert naive_ber >= paper_ber
    paper_report(
        "Ablation - downlink symbol encoding",
        [
            ("two symbols per bit (Fig. 8)", "robust, 125 kbps", f"BER {paper_ber:.3f}"),
            ("one symbol per bit (naive)", "false peaks / ambiguity", f"BER {naive_ber:.3f}"),
        ],
    )
