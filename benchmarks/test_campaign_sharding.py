"""Benchmarks for the process-sharded campaign runner.

The campaign acceptance criterion: a 100+-spec heterogeneous fleet grid
executed with ``jobs=4`` must beat the serial run wall-clock while
producing bit-identical per-spec results.  The speedup assertion is
gated on the machine actually having more than one core (a single-core
container cannot parallelise anything); the bit-identity assertion is
unconditional.
"""

from __future__ import annotations

import os
import time

from repro.api import Runner, SweepSpec, canonical_json

#: Worker processes for the sharded leg (the satellite task's jobs=4).
JOBS = 4


def _fleet_grid_specs():
    """A 108-spec heterogeneous fleet grid (profile x MAC x size x period)."""
    sweep = SweepSpec(
        experiment="mac_scaling",
        grid={
            "profile": ["contact_lens", "neural_implant", "card_to_card"],
            "macs": [["aloha"], ["slotted_aloha"], ["csma"], ["tdma"]],
            "fleet_sizes": [[5], [12], [25]],
            "period_s": [0.02, 0.04, 0.08],
        },
        params={"duration_s": 0.5},
        seed=2016,
    )
    specs = sweep.expand()
    assert len(specs) >= 100
    return specs


def test_sharded_campaign_beats_serial(benchmark, paper_report):
    """jobs=4 beats jobs=1 on a >=100-spec grid, with bit-identical results."""
    specs = _fleet_grid_specs()

    start = time.perf_counter()
    serial = Runner(jobs=1).run_batch(specs)
    serial_seconds = time.perf_counter() - start

    timing = {}

    def run_sharded():
        start = time.perf_counter()
        results = Runner(jobs=JOBS).run_batch(specs)
        timing["seconds"] = time.perf_counter() - start
        return results

    sharded = benchmark.pedantic(run_sharded, rounds=1, iterations=1)
    sharded_seconds = timing["seconds"]

    # Bit-identical regardless of shard count: same payload bytes, same order.
    assert [canonical_json(r.payload) for r in serial] == [canonical_json(r.payload) for r in sharded]
    assert [r.seed for r in serial] == [r.seed for r in sharded]

    cores = os.cpu_count() or 1
    speedup = serial_seconds / sharded_seconds
    # Wall-clock gating needs actual parallel hardware; a 1-core container
    # can only ever pay the IPC overhead.  CI runners have >= 2 cores.
    if not benchmark.disabled and cores >= 2:
        assert sharded_seconds < serial_seconds

    paper_report(
        "repro.api - 108-spec fleet campaign, jobs=4 vs serial",
        [
            ("specs", ">= 100 heterogeneous", f"{len(specs)}"),
            ("serial (jobs=1)", "baseline", f"{serial_seconds:.2f} s"),
            ("sharded (jobs=4)", "faster on >= 2 cores", f"{sharded_seconds:.2f} s ({speedup:.2f}x, {cores} cores)"),
            ("payload identity", "bit-identical", "yes"),
        ],
    )
