"""Bench for the §7 future-work extension: BLE data packets as the RF source."""

from __future__ import annotations

import numpy as np

from repro.ble.data_packet import craft_data_channel_single_tone
from repro.core.timing import data_packet_wifi_budget, max_wifi_payload_bytes


def test_extension_ble_data_packets(benchmark, paper_report):
    def run():
        crafted = craft_data_channel_single_tone(11)
        budgets = {rate: data_packet_wifi_budget(rate) for rate in (1.0, 2.0, 11.0)}
        return crafted, budgets

    crafted, budgets = benchmark(run)

    assert np.all(crafted.on_air_payload_bits() == 1)
    assert budgets[1.0]["max_wifi_psdu_bytes"] > 200       # 1 Mbps now fits
    assert budgets[2.0]["gain_over_advertising"] > 6.0
    assert budgets[11.0]["max_wifi_psdu_bytes"] > 2000

    paper_report(
        "Extension (paper §7) - BLE data packets as the carrier",
        [
            ("tone window", "up to ~2 ms", f"{crafted.tone_duration_s*1e6:.0f} us"),
            ("1 Mbps Wi-Fi packet", "becomes possible", f"{budgets[1.0]['max_wifi_psdu_bytes']:.0f}-byte PSDU fits"),
            (
                "2 Mbps budget",
                f"vs {max_wifi_payload_bytes(2.0)} bytes per advertisement",
                f"{budgets[2.0]['max_wifi_psdu_bytes']:.0f} bytes ({budgets[2.0]['gain_over_advertising']:.1f}x)",
            ),
            (
                "11 Mbps budget",
                f"vs {max_wifi_payload_bytes(11.0)} bytes per advertisement",
                f"{budgets[11.0]['max_wifi_psdu_bytes']:.0f} bytes",
            ),
        ],
    )
