"""Benchmark for Fig. 6 — single- vs double-sideband backscatter spectrum."""

from __future__ import annotations

def test_fig06_sideband_spectrum(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig06").payload)

    assert result.ssb_image_rejection_db > 10.0
    assert abs(result.dsb_image_rejection_db) < 3.0

    paper_report(
        "Fig. 6 - sideband spectra (22 MHz shift, 2 Mbps packet)",
        [
            ("SSB upper-lower sideband ratio", "mirror eliminated", f"{result.ssb_image_rejection_db:+.1f} dB"),
            ("DSB upper-lower sideband ratio", "strong mirror copy", f"{result.dsb_image_rejection_db:+.1f} dB"),
        ],
    )
