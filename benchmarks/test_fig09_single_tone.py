"""Benchmark for Fig. 9 — single-tone generation on commodity Bluetooth devices."""

from __future__ import annotations

def test_fig09_single_tone(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig09").payload)

    rows = []
    for name, device in result.devices.items():
        assert device.tone_bandwidth_hz < device.random_bandwidth_hz / 3.0
        assert abs(device.tone_peak_offset_hz - 250e3) < 60e3
        rows.append(
            (
                name,
                "~2 MHz -> single tone",
                f"{device.random_bandwidth_hz/1e3:.0f} kHz -> {device.tone_bandwidth_hz/1e3:.0f} kHz "
                f"at {device.tone_peak_offset_hz/1e3:+.0f} kHz",
            )
        )
    paper_report("Fig. 9 - BLE single-tone spectra (random vs crafted payload)", rows)
