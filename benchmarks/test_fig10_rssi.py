"""Benchmark for Fig. 10 — Wi-Fi RSSI vs distance and Bluetooth TX power."""

from __future__ import annotations

import numpy as np

def test_fig10_rssi_vs_distance(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig10", params={"step_feet": 3.0}).payload)

    strongest = result.curve(20.0, 1.0)
    weakest = result.curve(0.0, 1.0)
    assert strongest.range_feet >= 80.0
    assert np.all(strongest.rssi_dbm > weakest.rssi_dbm)
    assert result.curve(10.0, 1.0).range_feet >= result.curve(10.0, 3.0).range_feet

    rows = [
        (
            f"{power:.0f} dBm, BT-tag {sep:.0f} ft",
            "range grows with TX power",
            f"range {result.curve(power, sep).range_feet:.0f} ft, "
            f"RSSI {result.curve(power, sep).rssi_dbm[0]:.0f}..{result.curve(power, sep).rssi_dbm[-1]:.0f} dBm",
        )
        for sep in (1.0, 3.0)
        for power in (0.0, 4.0, 10.0, 20.0)
    ]
    rows.append(("20 dBm / 1 ft headline", "~90 ft range", f"{strongest.range_feet:.0f} ft"))
    paper_report("Fig. 10 - backscattered Wi-Fi RSSI vs distance", rows)
