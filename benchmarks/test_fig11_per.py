"""Benchmark for Fig. 11 — packet error rate CDF at 2 and 11 Mbps."""

from __future__ import annotations

import numpy as np

def test_fig11_packet_error_rate_cdf(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig11", params={"num_locations": 40, "num_packets": 200}).payload)

    assert abs(result.median_per[2.0] - result.median_per[11.0]) < 0.1
    assert result.mean_rate_gap < 0.3

    paper_report(
        "Fig. 11 - Wi-Fi packet error rate CDF",
        [
            ("median PER, 2 Mbps", "similar to 11 Mbps", f"{result.median_per[2.0]:.3f}"),
            ("median PER, 11 Mbps", "similar to 2 Mbps", f"{result.median_per[11.0]:.3f}"),
            ("mean |PER(2)-PER(11)|", "small", f"{result.mean_rate_gap:.3f}"),
            (
                "worst-location PER",
                "> 0.3 at low RSSI",
                f"{max(np.max(result.per_by_rate[2.0]), np.max(result.per_by_rate[11.0])):.2f}",
            ),
        ],
    )
