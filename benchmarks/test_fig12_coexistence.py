"""Benchmark for Fig. 12 — iperf throughput under backscatter interference."""

from __future__ import annotations

def test_fig12_coexistence(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig12").payload)

    baseline = result.baseline_mbps
    assert result.throughput("double_sideband", 50.0) > 0.8 * baseline
    assert result.throughput("double_sideband", 1000.0) < 0.3 * baseline
    assert result.throughput("single_sideband", 1000.0) > 0.9 * baseline

    rows = []
    for rate in result.rates_pps:
        rows.append(
            (
                f"{rate:.0f} pkt/s",
                "DSB collapses, SSB unaffected" if rate > 100 else "negligible impact",
                f"baseline {result.throughput('baseline', rate):.1f} / "
                f"SSB {result.throughput('single_sideband', rate):.1f} / "
                f"DSB {result.throughput('double_sideband', rate):.1f} Mbps",
            )
        )
    paper_report("Fig. 12 - concurrent iperf flow throughput", rows)
