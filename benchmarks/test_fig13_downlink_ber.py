"""Benchmark for Fig. 13 — downlink BER from an 802.11g device to the peak detector."""

from __future__ import annotations

def test_fig13_downlink_ber(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig13").payload)

    assert 14.0 <= result.range_below_1pct_feet <= 24.0
    assert result.ber[0] < 0.01
    assert result.ber[-1] > 0.2

    paper_report(
        "Fig. 13 - downlink BER vs distance (36 Mbps OFDM -> peak detector)",
        [
            ("BER < 1% out to", "~18 ft", f"{result.range_below_1pct_feet:.0f} ft"),
            ("BER at closest point", "~0", f"{result.ber[0]:.4f}"),
            ("BER beyond the cliff", "rises sharply", f"{result.ber[-1]:.2f}"),
        ],
    )
