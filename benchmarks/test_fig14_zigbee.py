"""Benchmark for Fig. 14 — ZigBee RSSI CDF for backscatter-generated packets."""

from __future__ import annotations


def test_fig14_zigbee_rssi_cdf(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig14").payload)

    assert result.detectable_fraction > 0.9
    assert -95.0 < result.median_rssi_dbm < -55.0

    values, _ = result.cdf
    paper_report(
        "Fig. 14 - ZigBee RSSI CDF (BLE ch.38 -> ZigBee ch.14)",
        [
            ("RSSI span", "-95 .. -55 dBm", f"{values[0]:.0f} .. {values[-1]:.0f} dBm"),
            ("median RSSI", "(not stated)", f"{result.median_rssi_dbm:.0f} dBm"),
            ("packets above CC2531 sensitivity", "feasible at all 5 spots", f"{100*result.detectable_fraction:.0f} %"),
        ],
    )
