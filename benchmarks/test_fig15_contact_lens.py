"""Benchmark for Fig. 15 — smart contact lens RSSI vs distance."""

from __future__ import annotations


def test_fig15_contact_lens_rssi(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig15").payload)

    assert result.range_by_power[20.0] >= 24.0
    assert result.range_by_power[20.0] >= result.range_by_power[10.0]

    rows = []
    for power, rssi in result.rssi_by_power.items():
        rows.append(
            (
                f"{power:.0f} dBm Bluetooth",
                "RSSI -72..-86 dBm, >24 in range",
                f"RSSI {rssi[0]:.0f}..{rssi[-1]:.0f} dBm, range {result.range_by_power[power]:.0f} in",
            )
        )
    paper_report("Fig. 15 - contact lens antenna in saline", rows)
