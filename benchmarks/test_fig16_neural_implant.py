"""Benchmark for Fig. 16 — implanted neural recorder RSSI vs distance."""

from __future__ import annotations

def test_fig16_neural_implant_rssi(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig16").payload)

    assert result.range_by_power[10.0] >= 10.0
    assert result.range_by_power[20.0] >= result.range_by_power[10.0]

    rows = []
    for power, rssi in result.rssi_by_power.items():
        rows.append(
            (
                f"{power:.0f} dBm Bluetooth",
                "RSSI -74..-90 dBm through tissue",
                f"RSSI {rssi[0]:.0f}..{rssi[-1]:.0f} dBm, range {result.range_by_power[power]:.0f} in",
            )
        )
    rows.append(("prior dedicated readers", "1-2 cm range", "tens of inches here"))
    paper_report("Fig. 16 - neural implant antenna under 0.75 in muscle", rows)
