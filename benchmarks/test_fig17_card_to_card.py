"""Benchmark for Fig. 17 — card-to-card BER vs separation."""

from __future__ import annotations

def test_fig17_card_to_card_ber(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("fig17", params={"messages_per_point": 100}).payload)

    assert 20.0 <= result.usable_range_inches <= 36.0
    assert result.measured_ber[0] < 0.05

    paper_report(
        "Fig. 17 - card-to-card BER (10 dBm phone as RF source)",
        [
            ("usable range (BER < 20%)", "~30 inches", f"{result.usable_range_inches:.0f} inches"),
            ("BER at closest separation", "~0", f"{result.measured_ber[0]:.3f}"),
            ("BER at farthest separation", "0.3-0.45", f"{result.measured_ber[-1]:.2f}"),
        ],
    )
