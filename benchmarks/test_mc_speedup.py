"""Benchmarks for the repro.mc batched Monte-Carlo engine.

Two comparisons back the engine's acceptance criteria:

* the fig11-style PER sweep through the batch engine must beat the original
  per-trial scalar loop by ≥ 10× at equal trial counts while producing the
  same curves (up to Monte-Carlo noise), and
* a 1000-device fleet run through the ``LinkAbstraction`` fast path must
  resolve every packet by table lookup — zero per-packet PHY invocations.

The timed numbers also feed the CI benchmark-regression gate via
``--benchmark-json`` (see ``benchmarks/compare_benchmarks.py``).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

import repro.netsim.medium as medium_module
from repro.experiments import fig11_per
from repro.mc import BatchViterbiDecoder, encode_batch
from repro.mc.backend import get_namespace, to_numpy
from repro.netsim.fleet import FleetScenario, FleetSimulator
from repro.wifi.ofdm.convolutional import ViterbiDecoder

#: Equal trial counts for the scalar-vs-batch fig11 comparison.
LOCATIONS = 300
PACKETS = 200

#: Minimum accepted batch-over-scalar speedup (acceptance asks for 10×).
MIN_SPEEDUP = 10.0


def _best_of(callable_, repeats: int = 3) -> float:
    """Best wall-clock time of *repeats* runs (robust to one-off load spikes)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_fig11_sweep_batch_vs_scalar(benchmark, paper_report):
    """Batch engine ≥ 10× faster than the per-trial loop, same curves."""
    scalar = fig11_per.run(num_locations=LOCATIONS, num_packets=PACKETS, engine="scalar")
    scalar_seconds = _best_of(
        lambda: fig11_per.run(num_locations=LOCATIONS, num_packets=PACKETS, engine="scalar")
    )

    batch = benchmark(
        lambda: fig11_per.run(num_locations=LOCATIONS, num_packets=PACKETS, engine="batch")
    )
    batch_seconds = _best_of(
        lambda: fig11_per.run(num_locations=LOCATIONS, num_packets=PACKETS, engine="batch")
    )

    speedup = scalar_seconds / batch_seconds
    # Wall-clock gating belongs to the dedicated benchmark job; the measured
    # margin is ~8x the threshold, but don't let a loaded runner flake the
    # functional test matrix (--benchmark-disable smoke pass).
    if not benchmark.disabled:
        assert speedup >= MIN_SPEEDUP

    # Same seed, same location set; the engines consume the RNG in different
    # orders, so the curves agree up to Monte-Carlo noise.
    for rate in (2.0, 11.0):
        assert abs(
            float(np.mean(scalar.per_by_rate[rate])) - float(np.mean(batch.per_by_rate[rate]))
        ) < 0.08
        assert abs(scalar.median_per[rate] - batch.median_per[rate]) < 0.1

    paper_report(
        "repro.mc - fig11-style PER sweep, batch vs per-trial loop",
        [
            ("trials", f"{LOCATIONS} locations x {PACKETS}", "equal for both engines"),
            ("scalar loop", "baseline", f"{scalar_seconds * 1e3:.1f} ms"),
            ("batch engine", ">= 10x faster", f"{batch_seconds * 1e3:.2f} ms ({speedup:.0f}x)"),
            (
                "mean PER gap (2 Mbps)",
                "within MC noise",
                f"{abs(float(np.mean(scalar.per_by_rate[2.0])) - float(np.mean(batch.per_by_rate[2.0]))):.3f}",
            ),
        ],
    )


def test_batch_viterbi_throughput(benchmark, paper_report):
    """Trellis-batched Viterbi ≥ 10× faster than decoding one codeword at a time."""
    rng = np.random.default_rng(2016)
    codewords, data_bits = 64, 192
    bits = rng.integers(0, 2, (codewords, data_bits), dtype=np.uint8)
    noisy = encode_batch(bits) ^ (rng.random((codewords, 2 * data_bits)) < 0.04).astype(np.uint8)

    decoder = BatchViterbiDecoder()
    decoded = benchmark(lambda: decoder.decode_batch(noisy))

    scalar = ViterbiDecoder()
    sample = min(8, codewords)

    def scalar_sample():
        for index in range(sample):
            scalar.decode(noisy[index])

    scalar_seconds = _best_of(scalar_sample, repeats=2) / sample * codewords
    batch_seconds = _best_of(lambda: decoder.decode_batch(noisy), repeats=2)
    speedup = scalar_seconds / batch_seconds
    if not benchmark.disabled:
        assert speedup >= MIN_SPEEDUP

    # Bit-exactness is covered exhaustively in tests/mc; spot-check here.
    assert np.array_equal(decoded[0], scalar.decode(noisy[0]))

    paper_report(
        "repro.mc - batched Viterbi (K=7) throughput",
        [
            ("codewords", f"{codewords} x {data_bits} bits", "one decode_batch call"),
            ("scalar decode (est.)", "baseline", f"{scalar_seconds * 1e3:.0f} ms"),
            ("batched decode", ">= 10x faster", f"{batch_seconds * 1e3:.1f} ms ({speedup:.0f}x)"),
        ],
    )


#: Array backends the per-backend regression entries are recorded under.
BENCH_BACKENDS = ("numpy", "array-api-strict")


@pytest.mark.parametrize("backend", BENCH_BACKENDS)
def test_viterbi_batch_backend(benchmark, backend):
    """Batched Viterbi through the array-API layer, one baseline entry per backend.

    The gate reads these as per-backend keys (``test_viterbi_batch_backend[numpy]``),
    so a namespace-indirection regression on one backend cannot hide behind the
    other's timing.  Output parity with the plain-numpy path is asserted inline.
    """
    rng = np.random.default_rng(2016)
    codewords, data_bits = 64, 192
    bits = rng.integers(0, 2, (codewords, data_bits), dtype=np.uint8)
    noisy = encode_batch(bits) ^ (rng.random((codewords, 2 * data_bits)) < 0.04).astype(np.uint8)
    decoder = BatchViterbiDecoder()
    reference = decoder.decode_batch(noisy)

    xp = get_namespace(backend)
    device_bits = xp.asarray(noisy)
    decoded = benchmark(lambda: decoder.decode_batch(device_bits, xp=xp))
    np.testing.assert_array_equal(to_numpy(decoded), reference)


def test_soft_viterbi_batch(benchmark):
    """Soft-metric (LLR) batched Viterbi; antipodal LLRs must match the hard path."""
    rng = np.random.default_rng(2016)
    codewords, data_bits = 64, 192
    bits = rng.integers(0, 2, (codewords, data_bits), dtype=np.uint8)
    noisy = encode_batch(bits) ^ (rng.random((codewords, 2 * data_bits)) < 0.04).astype(np.uint8)
    llrs = 2.0 * noisy.astype(np.float64) - 1.0
    decoder = BatchViterbiDecoder()

    decoded = benchmark(lambda: decoder.decode_batch(llrs, soft=True))
    np.testing.assert_array_equal(decoded, decoder.decode_batch(noisy))


def test_fleet_1000_devices_fast_path(benchmark, paper_report, monkeypatch):
    """1000-device fleet resolves packets by PER-table lookup, not per-packet PHY."""
    phy_calls = {"n": 0}
    original = medium_module.wifi_packet_error_rate

    def counting(*args, **kwargs):
        phy_calls["n"] += 1
        return original(*args, **kwargs)

    monkeypatch.setattr(medium_module, "wifi_packet_error_rate", counting)

    def run():
        simulator = FleetSimulator(
            FleetScenario(
                num_devices=1000, duration_s=1.0, mac="slotted_aloha", phy_fast_path=True
            )
        )
        return simulator, simulator.run()

    simulator, metrics = benchmark.pedantic(run, rounds=1, iterations=1)
    aggregate = metrics.aggregate()
    abstraction = simulator.link_abstraction

    assert aggregate.generated > 1000
    assert phy_calls["n"] == 0  # zero per-packet PHY invocations
    assert abstraction.tables_built == 1  # one memoised table for the fleet's link class
    assert abstraction.lookups > 0

    paper_report(
        "repro.mc - 1000-device fleet via LinkAbstraction fast path",
        [
            ("devices", "1000", "1000"),
            ("packets generated", "> 1000", f"{aggregate.generated}"),
            ("per-packet PHY calls", "0 (table lookups)", f"{phy_calls['n']}"),
            ("PER tables built", "1 (memoised)", f"{abstraction.tables_built}"),
            ("table lookups", "> 0", f"{abstraction.lookups}"),
        ],
    )
