"""Scaling benchmark for the epoch-batched netsim engine.

The acceptance bar of the batched engine: a 100 000-device contact-lens
ALOHA fleet over 60 virtual seconds must finish in well under 30 wall
seconds, and at least 20× faster than the continuous-time heap engine
would take extrapolated from a small probe fleet (the heap engine's event
count grows linearly in devices × duration, so a 500-device / 2-second
probe extrapolates by the device and duration ratios).  The run also
re-checks packet conservation at full scale — a vectorised bucket-queue
bug that loses or double-counts devices would surface here first.
"""

from __future__ import annotations

import time

from repro.netsim.batched import BatchedFleetSimulator
from repro.netsim.fleet import FleetScenario, FleetSimulator

FLEET = 100_000
DURATION_S = 60.0

#: One telemetry packet per device every 10 s — roughly 3.4 erlang offered,
#: far past ALOHA saturation, so the run grinds through millions of retry
#: transmissions (the honest worst case for the engine).
PERIOD_S = 10.0

#: Explicit epoch width: 2 ms epochs keep the 60 s horizon at 30 000 epochs.
EPOCH_S = 2e-3

#: Small probe the heap engine can afford, extrapolated to the full scale.
PROBE_DEVICES = 500
PROBE_DURATION_S = 2.0

WALL_CLOCK_BOUND_S = 30.0
MIN_SPEEDUP = 20.0


def test_batched_100k_device_fleet(benchmark, paper_report):
    scenario = FleetScenario(
        profile="contact_lens",
        num_devices=FLEET,
        mac="aloha",
        duration_s=DURATION_S,
        period_s=PERIOD_S,
        seed=2016,
        engine="batched",
        mac_params={"queue_limit": 8},
    )
    state: dict = {}

    def run():
        sim = BatchedFleetSimulator(scenario, epoch_s=EPOCH_S)
        state["sim"] = sim
        state["metrics"] = sim.run()

    start = time.perf_counter()
    benchmark.pedantic(run, rounds=1, iterations=1)
    batched_seconds = time.perf_counter() - start

    sim = state["sim"]
    aggregate = state["metrics"].aggregate()
    assert aggregate.num_devices == FLEET
    assert aggregate.generated == (
        aggregate.delivered + aggregate.dropped + aggregate.queue_dropped + sim.pending_packets()
    )
    assert sim.epochs_processed <= sim.setup.num_epochs
    assert sim.transmissions_resolved > FLEET  # every device got on air repeatedly

    # The heap engine's cost is ~linear in devices x duration: extrapolate a
    # probe it can afford up to the benchmarked scale.
    probe = FleetScenario(
        profile="contact_lens",
        num_devices=PROBE_DEVICES,
        mac="aloha",
        duration_s=PROBE_DURATION_S,
        period_s=PERIOD_S * (PROBE_DEVICES / FLEET),  # same offered load per airtime
        seed=2016,
        phy_fast_path=True,
        mac_params={"queue_limit": 8},
    )
    start = time.perf_counter()
    FleetSimulator(probe).run()
    probe_seconds = time.perf_counter() - start
    scalar_extrapolated = probe_seconds * (FLEET / PROBE_DEVICES) * (DURATION_S / PROBE_DURATION_S)
    speedup = scalar_extrapolated / batched_seconds

    assert batched_seconds < WALL_CLOCK_BOUND_S
    assert speedup >= MIN_SPEEDUP

    paper_report(
        "Batched netsim - 100k-device fleet (beyond the paper)",
        [
            (
                f"aloha @ {FLEET} devices, {DURATION_S:.0f} s",
                f"< {WALL_CLOCK_BOUND_S:.0f} s wall clock",
                f"{batched_seconds:.1f} s, {sim.transmissions_resolved} transmissions",
            ),
            (
                "vs heap-engine extrapolation",
                f">= {MIN_SPEEDUP:.0f}x faster",
                f"{scalar_extrapolated:.0f} s extrapolated ({speedup:.0f}x)",
            ),
            (
                "delivery at scale",
                "saturated channel",
                f"delivery {aggregate.delivery_ratio:.3f}, "
                f"utilization {aggregate.utilization:.2f}",
            ),
        ],
    )
