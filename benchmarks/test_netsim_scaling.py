"""Benchmark for the MAC-scaling sweep — fleet size × MAC policy.

Goes beyond the paper's single-tag evaluation: sweeps contact-lens fleets
from 1 to 200 devices under the four MAC policies and asserts the classic
medium-access findings — ALOHA degrades as the fleet grows, slotting beats
pure ALOHA while random access still works at all, and carrier sensing /
TDMA polling keep delivering after both ALOHA variants have collapsed.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import mac_scaling

FLEET_SIZES = (1, 10, 50, 100, 200)

#: Index of the 50-device point: the channel is heavily loaded but not yet
#: past saturation, which is where slotting shows its textbook advantage.
HIGH_LOAD = 2


def test_mac_scaling(benchmark, paper_report):
    result = benchmark.pedantic(
        mac_scaling.run,
        kwargs={"fleet_sizes": FLEET_SIZES, "duration_s": 2.0, "period_s": 0.02},
        rounds=1,
        iterations=1,
    )

    aloha = result.delivery_ratio["aloha"]
    slotted = result.delivery_ratio["slotted_aloha"]
    csma = result.delivery_ratio["csma"]
    tdma = result.delivery_ratio["tdma"]

    # A lone tag delivers essentially everything under any policy.
    for mac in result.macs:
        assert result.delivery_ratio[mac][0] > 0.95

    # Contention degrades pure ALOHA as the fleet grows…
    assert aloha[-1] < 0.1 < aloha[0]
    # …slotting roughly doubles what survives at high load…
    assert slotted[HIGH_LOAD] > aloha[HIGH_LOAD]
    assert np.mean(result.throughput_bps["slotted_aloha"]) > np.mean(
        result.throughput_bps["aloha"]
    )
    # …and listen-before-talk / downlink polling still deliver after both
    # ALOHA variants have collapsed, with almost no attempt-level loss.
    assert csma[-1] > 5 * max(aloha[-1], slotted[-1])
    assert tdma[-1] > 5 * max(aloha[-1], slotted[-1])
    assert float(np.max(result.attempt_per["csma"])) < 0.05
    assert float(np.max(result.attempt_per["tdma"])) < 0.05

    # More devices keep the medium busier.
    for mac in result.macs:
        assert result.utilization[mac][-1] > result.utilization[mac][0]

    rows = []
    for mac in result.macs:
        rows.append(
            (
                f"{mac} @ {int(result.fleet_sizes[-1])} devices",
                "ALOHA collapses; CSMA/TDMA keep delivering",
                f"delivery {result.delivery_ratio[mac][-1]:.2f}, "
                f"goodput {result.throughput_bps[mac][-1] / 1e3:.0f} kbps, "
                f"attempt PER {result.attempt_per[mac][-1]:.2f}",
            )
        )
    paper_report("MAC scaling - fleet size x policy (beyond the paper)", rows)
