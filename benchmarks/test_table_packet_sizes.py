"""Benchmark for the §2.3.3 packet-size table (Wi-Fi bytes per BLE advertisement)."""

from __future__ import annotations

def test_table_packet_sizes(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("table_packet_sizes").payload)

    assert result.max_psdu_bytes == {2.0: 38, 5.5: 104, 11.0: 209}
    assert not result.one_mbps_fits

    paper_report(
        "Section 2.3.3 - Wi-Fi payload per 31-byte BLE advertisement",
        [
            ("2 Mbps", "38 bytes", f"{result.max_psdu_bytes[2.0]} bytes"),
            ("5.5 Mbps", "104 bytes", f"{result.max_psdu_bytes[5.5]} bytes"),
            ("11 Mbps", "209 bytes", f"{result.max_psdu_bytes[11.0]} bytes"),
            ("1 Mbps packet fits", "no", "yes" if result.one_mbps_fits else "no"),
            (
                "goodput at 11 Mbps",
                "(derived)",
                f"{result.goodput_bps[11.0]/1e3:.1f} kbps per 20 ms advertisement",
            ),
        ],
    )
