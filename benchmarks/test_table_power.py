"""Benchmark for the §3 IC power table (28 µW budget)."""

from __future__ import annotations

import pytest


def test_table_power_budget(benchmark, paper_report, runner):
    result = benchmark(lambda: runner.run("table_power").payload)

    reference = result.reference
    assert reference.frequency_synthesizer_uw == pytest.approx(9.69, abs=0.01)
    assert reference.baseband_processor_uw == pytest.approx(8.51, abs=0.01)
    assert reference.backscatter_modulator_uw == pytest.approx(9.79, abs=0.01)
    assert reference.total_uw == pytest.approx(28.0, abs=0.1)

    paper_report(
        "Section 3 - interscatter IC power (2 Mbps Wi-Fi, 35.75 MHz shift)",
        [
            ("frequency synthesizer", "9.69 uW", f"{reference.frequency_synthesizer_uw:.2f} uW"),
            ("baseband processor", "8.51 uW", f"{reference.baseband_processor_uw:.2f} uW"),
            ("backscatter modulator", "9.79 uW", f"{reference.backscatter_modulator_uw:.2f} uW"),
            ("total", "~28 uW", f"{reference.total_uw:.2f} uW"),
            ("vs active ZigBee TX", "tens of mW", f"{result.savings_vs_active['zigbee_active_tx']:.0f}x less"),
            ("energy per Wi-Fi bit", "(derived) 14 pJ", f"{result.energy_per_bit_nj*1e3:.1f} pJ"),
        ],
    )
