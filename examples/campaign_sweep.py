#!/usr/bin/env python3
"""Drive a declarative campaign through the Python API.

Builds the same kind of heterogeneous fleet grid as
``examples/grids/fleet_grid.json`` — three device profiles x four MAC
policies x fleet sizes x packet periods, two seed-replicates per grid
point — expands it to concrete :class:`~repro.api.ExperimentSpec`
invocations with derived per-spec seeds, shards the batch across worker
processes, and then answers questions against the resulting
:class:`~repro.api.ResultStore`, including replicate-averaged
mean ± CI tables from :func:`repro.api.aggregate`.

Run with::

    python examples/campaign_sweep.py [--jobs 4] [--store out/fleet_store]

Equivalently, from the shell::

    python -m repro run --specs examples/grids/fleet_grid.json --jobs 4 --store out/
    python -m repro report --store out/
"""

from __future__ import annotations

import argparse
import tempfile
import time

from repro.api import ResultStore, Runner, SweepSpec, aggregate


def build_sweep() -> SweepSpec:
    """A 72-point (×2 replicates) fleet grid (profile x MAC x size x period)."""
    return SweepSpec(
        experiment="mac_scaling",
        grid={
            "profile": ["contact_lens", "neural_implant", "card_to_card"],
            "macs": [["aloha"], ["slotted_aloha"], ["csma"], ["tdma"]],
            "fleet_sizes": [[5], [15], [30]],
            "period_s": [0.02, 0.08],
        },
        params={"duration_s": 0.4},
        seed=2016,
        replicates=2,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=4, help="worker processes (default 4)")
    parser.add_argument("--store", default=None, help="store directory (default: a temp dir)")
    args = parser.parse_args()

    sweep = build_sweep()
    specs = sweep.expand()
    print(f"sweep expands to {len(specs)} specs; derived seeds, e.g. {specs[0].seed}, {specs[1].seed}")

    store_dir = args.store or tempfile.mkdtemp(prefix="fleet_store_")
    store = ResultStore(store_dir)
    start = time.perf_counter()
    Runner(jobs=args.jobs).run_batch(specs, store=store)
    print(f"ran {len(specs)} specs on {args.jobs} worker(s) in {time.perf_counter() - start:.1f} s -> {store_dir}")

    # The store answers questions the paper's single-device evaluation cannot:
    # which MAC keeps a 30-lens fleet above 90 % delivery at a 20 ms period?
    # aggregate() collapses the seed-replicates at each grid point into
    # mean ± 95 % CI instead of quoting a single draw.
    for mac in ("aloha", "slotted_aloha", "csma", "tdma"):
        frame = aggregate(
            store.query(
                "mac_scaling", profile="contact_lens", macs=[mac], fleet_sizes=[30], period_s=0.02
            ),
            "mac_scaling",
        )
        for row in frame.rows():
            mean, half = row[f"delivery_{mac}_mean"], row[f"delivery_{mac}_ci95"]
            print(
                f"  {mac:13s} 30-device contact-lens fleet @ 20 ms: "
                f"delivery {mean:.2f} ± {half:.2f} ({row['replicates']} seeds)"
            )


if __name__ == "__main__":
    main()
