#!/usr/bin/env python3
"""Card-to-card communication scenario (paper §5.3, Fig. 2c).

Two passive credit-card devices exchange a short payment authorisation by
backscattering the single-tone Bluetooth transmissions of the smartphone
lying next to them.  The script sweeps the card separation, shows the BER
profile and simulates a simple two-message exchange with retransmissions.

Run with::

    python examples/card_to_card_payment.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.card_to_card import BackscatterCard, CardToCardLink
from repro.utils.bits import bits_to_bytes, bytes_to_bits


def main() -> None:
    print("=== Card-to-card money transfer ===\n")
    link = CardToCardLink(
        phone_power_dbm=10.0,            # Note 5 / iPhone 6 class
        phone_to_transmitter_inches=3.0,
        transmitter=BackscatterCard("payer-card"),
        receiver=BackscatterCard("payee-card"),
    )

    print("Bit error rate vs card separation (10 dBm phone as the RF source):")
    for separation in (5.0, 10.0, 15.0, 20.0, 25.0, 30.0):
        ber = link.bit_error_rate(separation)
        print(f"  {separation:5.1f} in -> BER {ber:.3f}")
    print(f"Usable range (BER < 10 %): {link.max_range_inches():.0f} inches\n")

    # A toy transfer: 2 bytes of amount + 1 byte of checksum, sent with
    # simple repeat-until-acknowledged retransmissions at 10 in separation.
    amount_cents = 1250
    message = amount_cents.to_bytes(2, "little")
    message += bytes([sum(message) & 0xFF])
    message_bits = bytes_to_bits(message)
    print(f"Transferring {amount_cents} cents ({len(message_bits)} bits) at 10 in:")

    rng = np.random.default_rng(2016)
    attempts = 0
    while True:
        attempts += 1
        result = link.send_message(message_bits, card_separation_inches=10.0, rng=rng)
        received = bits_to_bytes(result.received_bits)
        checksum_ok = received[2] == (sum(received[:2]) & 0xFF)
        print(f"  attempt {attempts}: {result.bit_errors} bit errors, "
              f"checksum {'ok' if checksum_ok else 'FAILED'}")
        if checksum_ok:
            value = int.from_bytes(received[:2], "little")
            print(f"  payee card accepted the transfer of {value} cents "
                  f"after {attempts} attempt(s)")
            break
        if attempts >= 10:
            print("  transfer failed after 10 attempts")
            break


if __name__ == "__main__":
    main()
