#!/usr/bin/env python3
"""Smart contact lens scenario (paper §5.1, Fig. 2a).

A contact lens with a glucose sensor backscatters a smart watch's Bluetooth
advertisements to deliver readings to the wearer's phone.  The script runs a
day's worth of periodic measurements at several phone distances and prints
delivery statistics, the RSSI profile and the lens's energy budget.

Run with::

    python examples/contact_lens_monitor.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.contact_lens import ContactLensReading, SmartContactLens


def main() -> None:
    print("=== Smart contact lens glucose monitor ===\n")
    lens = SmartContactLens(
        watch_power_dbm=10.0,          # Note 5 / iPhone 6 class transmit power
        watch_distance_inches=12.0,    # watch on the wrist, lens on the eye
        wifi_rate_mbps=2.0,
        in_saline=True,
    )

    print("RSSI of the lens's Wi-Fi packets vs phone distance:")
    for distance in (6.0, 12.0, 18.0, 24.0, 30.0):
        print(f"  {distance:5.1f} in -> {lens.rssi_at(distance):6.1f} dBm")
    print(f"Maximum range above -86 dBm: {lens.max_range_inches():.0f} inches\n")

    print("Delivering one reading every 5 minutes for 2 hours, phone at 18 in:")
    delivered = 0
    attempts = 0
    energy = 0.0
    readings: list[ContactLensReading] = []
    for _ in range(24):
        telemetry = lens.deliver_reading(phone_distance_inches=18.0)
        attempts += 1
        energy += telemetry.energy_uj
        if telemetry.delivered:
            delivered += 1
            readings.append(telemetry.reading)
    print(f"  delivered {delivered}/{attempts} readings "
          f"({100.0 * delivered / attempts:.0f} %)")
    print(f"  total communication energy: {energy:.2f} µJ "
          f"({energy / attempts:.3f} µJ per reading)")
    if readings:
        glucose = np.array([r.glucose_mmol_per_l for r in readings])
        print(f"  glucose readings: mean {glucose.mean():.1f} mmol/L, "
              f"range {glucose.min():.1f}-{glucose.max():.1f} mmol/L")

    print("\nRound-trip serialisation check:")
    reading = lens.sample_glucose()
    decoded = ContactLensReading.decode(reading.encode())
    print(f"  sent sequence={reading.sequence}, glucose={reading.glucose_mmol_per_l:.2f}; "
          f"decoded sequence={decoded.sequence}, glucose={decoded.glucose_mmol_per_l:.2f}")


if __name__ == "__main__":
    main()
