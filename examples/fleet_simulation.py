#!/usr/bin/env python3
"""Fleet simulation: 60 contact lenses share one single-tone carrier.

The paper's experiments use one tag and one Bluetooth carrier source; this
walkthrough uses :mod:`repro.netsim` to ask the multi-device question its
applications imply — what happens when a whole fleet of smart contact
lenses backscatters the same carrier?  It runs the same 60-device scenario
under four MAC policies, prints aggregate and per-device metrics for each,
and then re-runs every scenario at the same seed to demonstrate that the
discrete-event simulator is fully deterministic.

Run with::

    python examples/fleet_simulation.py
"""

from __future__ import annotations

from repro.netsim import FleetScenario, FleetSimulator

#: Fleet size (≥ 50 lenses around one smart watch).
NUM_DEVICES = 60

#: Packet interval pushing the shared channel to ~50% offered load, where
#: the MAC policies visibly separate.
PERIOD_S = 0.02

#: Simulated horizon per scenario.
DURATION_S = 3.0

SEED = 2016

MACS = ("aloha", "slotted_aloha", "csma", "tdma")


def simulate(mac: str):
    """Run the 60-lens scenario under one MAC policy."""
    scenario = FleetScenario(
        profile="contact_lens",
        num_devices=NUM_DEVICES,
        mac=mac,
        duration_s=DURATION_S,
        period_s=PERIOD_S,
        seed=SEED,
    )
    return FleetSimulator(scenario).run()


def main() -> None:
    print("=== Interscatter fleet simulation ===")
    print(
        f"{NUM_DEVICES} smart contact lenses, one shared carrier, "
        f"{DURATION_S:.0f} s horizon, one packet per lens every "
        f"{PERIOD_S * 1e3:.0f} ms\n"
    )

    first_pass = {}
    for mac in MACS:
        metrics = simulate(mac)
        first_pass[mac] = metrics.fingerprint()
        print(f"--- MAC policy: {mac} ---")
        print(metrics.format_report(per_device_rows=5))
        print()

    print("--- determinism check (same seed, fresh simulators) ---")
    for mac in MACS:
        identical = simulate(mac).fingerprint() == first_pass[mac]
        print(f"{mac:14s} second run identical: {identical}")
        if not identical:
            raise SystemExit(f"non-deterministic run for MAC {mac!r}")
    print("\nAll scenarios replayed bit-identically at the same seed.")


if __name__ == "__main__":
    main()
