#!/usr/bin/env python3
"""Implanted neural recorder scenario (paper §5.2, Fig. 2b).

An implanted ECoG recorder under muscle tissue streams frames of neural
samples to a nearby Wi-Fi device by backscattering a Bluetooth headset's
advertisements.  The script sizes the link (how many recording channels the
uplink sustains), streams a few seconds of frames and reports delivery and
power, comparing the communication budget against the 2 µW/channel
recording front end.

Run with::

    python examples/neural_implant_stream.py
"""

from __future__ import annotations

import numpy as np

from repro.apps.neural_implant import NeuralFrame, NeuralImplant


def main() -> None:
    print("=== Implanted neural recording interface ===\n")
    implant = NeuralImplant(
        num_channels=8,
        sample_rate_hz=500.0,
        bluetooth_power_dbm=10.0,       # phone-class transmitter near the head
        bluetooth_distance_inches=3.0,
        wifi_rate_mbps=11.0,            # highest rate -> most bytes per advertisement
    )

    print("Link sizing:")
    print(f"  raw recording rate: {implant.recording_data_rate_bps()/1e3:.1f} kbps "
          f"({implant.num_channels} channels x {implant.sample_rate_hz:.0f} S/s x 16 bit)")
    print(f"  uplink goodput:     {implant.uplink_goodput_bps()/1e3:.1f} kbps "
          f"(one advertisement per 20 ms)")
    print(f"  sustainable channels in real time: {implant.sustainable_channels()}")
    print(f"  total implant power: {implant.total_power_uw():.1f} µW "
          f"(recording {implant.num_channels * 2.0:.1f} µW + communication)\n")

    print("RSSI vs Wi-Fi receiver distance (through 0.75 in of muscle tissue):")
    for distance in (6.0, 12.0, 24.0, 48.0, 72.0):
        print(f"  {distance:5.1f} in -> {implant.rssi_at(distance):6.1f} dBm")

    print("\nStreaming 2 seconds of frames to a receiver 24 in away:")
    delivered = 0
    attempts = 0
    bytes_delivered = 0
    for _ in range(100):  # one advertisement every 20 ms for 2 s
        frame = implant.record_frame(samples_per_channel=4)
        telemetry = implant.deliver_frame(24.0, frame=frame)
        attempts += 1
        if telemetry.delivered:
            delivered += 1
            bytes_delivered += telemetry.frame_bytes
    print(f"  frames delivered: {delivered}/{attempts}")
    print(f"  goodput achieved: {bytes_delivered * 8 / 2.0 / 1e3:.1f} kbps")

    print("\nFrame round-trip check:")
    frame = implant.record_frame(samples_per_channel=4)
    decoded = NeuralFrame.decode(frame.encode())
    match = np.array_equal(frame.channel_samples, decoded.channel_samples)
    print(f"  {frame.num_channels}-channel frame decodes identically: {match}")


if __name__ == "__main__":
    main()
