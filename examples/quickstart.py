#!/usr/bin/env python3
"""Quickstart: generate a Wi-Fi packet by backscattering a Bluetooth advertisement.

This walks the full interscatter pipeline at the waveform level:

1. craft a BLE advertising payload that whitens into a single tone,
2. backscatter it through the single-sideband modulator with an 802.11b
   baseband, and
3. decode the resulting packet with a commodity-style Wi-Fi receiver,

then pulls the paper's packet-size and power tables through the unified
experiment registry (``repro.api``) instead of recomputing them by hand.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import Runner
from repro.core import InterscatterLink, InterscatterUplink
from repro.core.tone_source import BluetoothToneSource


def main() -> None:
    print("=== Interscatter quickstart ===\n")

    # --- Step 1: a commodity Bluetooth device as a single-tone RF source.
    source = BluetoothToneSource("ti_cc2650", channel_index=38, tx_power_dbm=10.0)
    tone = source.tone_parameters()
    print(f"Bluetooth tone: channel {tone.channel_index} "
          f"({tone.center_frequency_hz/1e6:.1f} MHz), tone at "
          f"{tone.tone_frequency_hz/1e6:.3f} MHz for {tone.duration_s*1e6:.0f} µs")
    payload_bits = source.crafted_payload.on_air_payload_bits()
    print(f"Crafted payload whitens to a constant bit stream: "
          f"{np.unique(payload_bits).tolist()} (single tone)\n")

    # --- Step 2+3: waveform-level uplink — backscatter the tone into Wi-Fi.
    uplink = InterscatterUplink(wifi_rate_mbps=2.0)
    message = b"hello from an implanted device"
    result = uplink.simulate_waveform(message, snr_db=25.0)
    print(f"Synthesized 802.11b packet on Wi-Fi channel 11 "
          f"({result.output_frequency_mhz:.0f} MHz, shift {result.shift_hz/1e6:.2f} MHz)")
    print(f"Commodity receiver decoded it: crc_ok={result.crc_ok}, "
          f"payload={result.payload!r}\n")

    # --- Packet sizes and power, through the experiment registry.
    runner = Runner()
    sizes = runner.run("table_packet_sizes").payload
    print(f"Wi-Fi bytes per BLE advertisement: {sizes.max_psdu_bytes}")
    power = runner.run("table_power").payload.reference
    print(f"Tag power while generating 2 Mbps Wi-Fi: {power.total_uw:.1f} µW "
          f"(synth {power.frequency_synthesizer_uw:.2f}, "
          f"baseband {power.baseband_processor_uw:.2f}, "
          f"modulator {power.backscatter_modulator_uw:.2f})\n")

    # --- End-to-end link object with geometry (statistical pipeline).
    link = InterscatterLink(
        wifi_rate_mbps=2.0,
        bluetooth_power_dbm=10.0,
        bluetooth_to_tag_feet=1.0,
        tag_to_receiver_feet=20.0,
    )
    exchange = link.transmit(b"glucose=5.4", query_bits=np.array([1, 0, 1, 1], dtype=np.uint8))
    print(f"End-to-end exchange at 20 ft: delivered={exchange.crc_ok}, "
          f"RSSI={exchange.uplink.rssi_dbm:.1f} dBm, "
          f"tag energy={exchange.tag_energy_uj:.3f} µJ")


if __name__ == "__main__":
    main()
