#!/usr/bin/env python3
"""Run every experiment in the registry and print a paper-vs-measured summary.

This is the script behind EXPERIMENTS.md: it walks the experiment registry
(every table and figure of the paper's evaluation, plus the beyond-paper
MAC scaling sweep), executes each driver through the unified
:class:`repro.api.Runner` and prints the headline numbers next to what the
paper reports.

Run with::

    python examples/reproduce_paper.py

or, equivalently, from the shell::

    python -m repro run --all
"""

from __future__ import annotations

from repro.api import Runner, iter_experiments


def heading(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    runner = Runner()
    for experiment in iter_experiments():
        heading(experiment.title)
        # The beyond-paper sweeps use their reduced smoke parameters so the
        # report stays quick; the paper artefacts run at full fidelity.
        params = dict(experiment.fast_params) if experiment.artifact is None else {}
        result = runner.run(experiment.name, params=params)
        for line in experiment.summarize(result.payload):
            print(line)


if __name__ == "__main__":
    main()
