#!/usr/bin/env python3
"""Run every experiment driver and print a paper-vs-measured summary.

This is the script behind EXPERIMENTS.md: it executes the driver for every
table and figure in the paper's evaluation and prints the headline numbers
next to what the paper reports.

Run with::

    python examples/reproduce_paper.py
"""

from __future__ import annotations

from repro.experiments import (
    fig06_sideband,
    fig09_single_tone,
    fig10_rssi,
    fig11_per,
    fig12_coexistence,
    fig13_downlink_ber,
    fig14_zigbee_rssi,
    fig15_contact_lens,
    fig16_neural_implant,
    fig17_card_to_card,
    table_packet_sizes,
    table_power,
)


def heading(text: str) -> None:
    print(f"\n{'=' * 72}\n{text}\n{'=' * 72}")


def main() -> None:
    heading("Fig. 6 - single-sideband vs double-sideband backscatter spectrum")
    r6 = fig06_sideband.run()
    print(f"paper:    DSB shows a mirror copy, SSB eliminates it")
    print(f"measured: SSB sideband asymmetry {r6.ssb_image_rejection_db:+.1f} dB, "
          f"DSB {r6.dsb_image_rejection_db:+.1f} dB")

    heading("Fig. 9 - single-tone transmissions from commodity Bluetooth devices")
    r9 = fig09_single_tone.run()
    for device, result in r9.devices.items():
        print(f"{device:12s}: random payload {result.random_bandwidth_hz/1e3:7.0f} kHz occupied, "
              f"crafted payload {result.tone_bandwidth_hz/1e3:6.0f} kHz, "
              f"tone at {result.tone_peak_offset_hz/1e3:+.0f} kHz")

    heading("Fig. 10 - Wi-Fi RSSI vs distance and Bluetooth TX power")
    r10 = fig10_rssi.run()
    for separation in (1.0, 3.0):
        for power in (0.0, 4.0, 10.0, 20.0):
            curve = r10.curve(power, separation)
            print(f"BT-tag {separation:.0f} ft, {power:4.0f} dBm: "
                  f"RSSI {curve.rssi_dbm[0]:6.1f} dBm at {curve.distances_feet[0]:.0f} ft, "
                  f"{curve.rssi_dbm[-1]:6.1f} dBm at {curve.distances_feet[-1]:.0f} ft, "
                  f"range {curve.range_feet:.0f} ft")
    print("paper: ~90 ft of range at 20 dBm with the devices 1 ft apart")

    heading("Fig. 11 - packet error rate CDF (2 vs 11 Mbps)")
    r11 = fig11_per.run()
    print(f"median PER: 2 Mbps {r11.median_per[2.0]:.3f}, 11 Mbps {r11.median_per[11.0]:.3f}")
    print(f"mean |PER(2) - PER(11)| across locations: {r11.mean_rate_gap:.3f}")
    print("paper: the two rates show similar loss; PER exceeds 0.3 at the lowest RSSIs")

    heading("Fig. 12 - iperf throughput under backscatter interference")
    r12 = fig12_coexistence.run()
    for rate in r12.rates_pps:
        print(f"{rate:6.0f} pkt/s: baseline {r12.throughput('baseline', rate):5.1f} Mbps, "
              f"SSB {r12.throughput('single_sideband', rate):5.1f} Mbps, "
              f"DSB {r12.throughput('double_sideband', rate):5.1f} Mbps")
    print("paper: negligible impact at 50 pkt/s; DSB collapses the flow at 650-1000 pkt/s")

    heading("Fig. 13 - downlink BER (802.11g AM -> peak detector)")
    r13 = fig13_downlink_ber.run()
    print(f"BER < 1% out to {r13.range_below_1pct_feet:.0f} ft (paper: ~18 ft)")

    heading("Fig. 14 - ZigBee RSSI CDF")
    r14 = fig14_zigbee_rssi.run()
    print(f"RSSI spans {r14.cdf[0][0]:.1f} to {r14.cdf[0][-1]:.1f} dBm, "
          f"median {r14.median_rssi_dbm:.1f} dBm, "
          f"{100*r14.detectable_fraction:.0f}% of packets above CC2531 sensitivity")
    print("paper: RSSI between roughly -95 and -55 dBm over five locations up to 15 ft")

    heading("Fig. 15 - smart contact lens RSSI")
    r15 = fig15_contact_lens.run()
    for power, reach in r15.range_by_power.items():
        print(f"{power:4.0f} dBm Bluetooth: usable range {reach:.0f} inches")
    print("paper: more than 24 inches of range; RSSI -72 to -86 dBm over the sweep")

    heading("Fig. 16 - implanted neural recorder RSSI")
    r16 = fig16_neural_implant.run()
    for power, reach in r16.range_by_power.items():
        print(f"{power:4.0f} dBm Bluetooth: usable range {reach:.0f} inches")
    print("paper: tens of inches of range through 0.75 in of tissue, far beyond the 1-2 cm of prior readers")

    heading("Fig. 17 - card-to-card BER")
    r17 = fig17_card_to_card.run()
    print(f"usable range (BER < 20%): {r17.usable_range_inches:.0f} inches (paper: ~30 inches)")

    heading("Section 3 - interscatter IC power")
    tp = table_power.run()
    ref = tp.reference
    print(f"frequency synthesizer: {ref.frequency_synthesizer_uw:.2f} µW (paper 9.69)")
    print(f"baseband processor:    {ref.baseband_processor_uw:.2f} µW (paper 8.51)")
    print(f"backscatter modulator: {ref.backscatter_modulator_uw:.2f} µW (paper 9.79)")
    print(f"total:                 {ref.total_uw:.2f} µW (paper ~28)")
    print(f"energy per generated Wi-Fi bit: {tp.energy_per_bit_nj*1e3:.1f} pJ/bit")

    heading("Section 2.3.3 - Wi-Fi payload per Bluetooth advertisement")
    ts = table_packet_sizes.run()
    print(f"max PSDU bytes: {ts.max_psdu_bytes} (paper: 38/104/209)")
    print(f"useful 1 Mbps packet fits: {ts.one_mbps_fits} (paper: no)")
    goodput_kbps = {rate: round(bps / 1e3, 1) for rate, bps in ts.goodput_bps.items()}
    print(f"goodput at one advertisement per 20 ms (kbps): {goodput_kbps}")


if __name__ == "__main__":
    main()
