#!/usr/bin/env python3
"""Run every experiment in the registry and print the paper-vs-measured report.

This is the script behind EXPERIMENTS.md: it executes the whole registry
(every table and figure of the paper's evaluation, plus the beyond-paper
MAC scaling sweep) as one campaign through the unified
:class:`repro.api.Runner`, streams the result envelopes into a
:class:`repro.api.ResultStore`, and prints the registry-driven report
:mod:`repro.api.report` renders from it.

Run with::

    python examples/reproduce_paper.py [--jobs 4] [--store DIR] [--fast] [--figures DIR]

or, equivalently, from the shell::

    python -m repro run --all --jobs 4 --store DIR
    python -m repro report --store DIR --output -
    python -m repro plot --store DIR
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.api import ExperimentSpec, ResultStore, Runner, generate_report, iter_experiments
from repro.plots import write_gallery


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=1, help="worker processes for the campaign")
    parser.add_argument("--store", default=None, help="result store directory (default: a temp dir)")
    parser.add_argument("--fast", action="store_true", help="reduced smoke parameters for every experiment")
    parser.add_argument(
        "--figures", default=None, metavar="DIR", help="also render every figure (plus FIGURES.md) here"
    )
    args = parser.parse_args()

    # The beyond-paper sweeps always use their reduced smoke parameters so
    # the report stays quick; the paper artefacts run at full fidelity
    # unless --fast asks otherwise.
    specs = [
        ExperimentSpec(
            experiment=experiment.name,
            params=dict(experiment.fast_params) if (args.fast or experiment.artifact is None) else {},
        )
        for experiment in iter_experiments()
    ]
    store = ResultStore(args.store or tempfile.mkdtemp(prefix="paper_store_"))
    Runner(jobs=args.jobs).run_batch(specs, store=store)
    print(generate_report(store))
    if args.figures:
        directory = Path(args.figures)
        _, images = write_gallery(store, output=directory / "FIGURES.md", figures_dir=directory)
        print(f"rendered {len(images)} figure(s) into {directory}/")


if __name__ == "__main__":
    main()
