#!/usr/bin/env python3
"""A tour of the signals interscatter creates, as text-mode spectra.

Reproduces the spectral stories of the paper without a spectrum analyser:

* Fig. 9 — a commodity Bluetooth radio collapsing into a single tone,
* Fig. 6 — single-sideband vs double-sideband backscatter, and
* Fig. 7 — the envelope contrast between random and constant OFDM symbols.

Run with::

    python examples/spectrum_tour.py
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig06_sideband, fig09_single_tone
from repro.wifi.ofdm import ConstantOfdmCrafter, OfdmRate, symbol_peak_to_average


def ascii_spectrum(frequencies: np.ndarray, psd_db: np.ndarray, *, bins: int = 60, width: int = 50) -> str:
    """Render a PSD as a coarse ASCII bar chart."""
    edges = np.linspace(frequencies.min(), frequencies.max(), bins + 1)
    lines = []
    floor = np.percentile(psd_db, 10)
    ceiling = psd_db.max()
    span = max(ceiling - floor, 1.0)
    for low, high in zip(edges[:-1], edges[1:], strict=True):
        mask = (frequencies >= low) & (frequencies < high)
        if not np.any(mask):
            continue
        level = float(np.max(psd_db[mask]))
        bar = "#" * int(np.clip((level - floor) / span, 0.0, 1.0) * width)
        lines.append(f"{(low + high) / 2e6:+7.2f} MHz |{bar}")
    return "\n".join(lines)


def main() -> None:
    print("=== 1. Bluetooth as a single-tone source (Fig. 9) ===\n")
    tones = fig09_single_tone.run(devices=("ti_cc2650",))
    result = tones.devices["ti_cc2650"]
    print(f"random payload occupied bandwidth: {result.random_bandwidth_hz/1e3:.0f} kHz")
    print(f"crafted payload occupied bandwidth: {result.tone_bandwidth_hz/1e3:.0f} kHz")
    print(f"tone sits at {result.tone_peak_offset_hz/1e3:+.0f} kHz from the channel centre\n")
    print("Crafted-payload spectrum:")
    print(ascii_spectrum(result.tone_spectrum.frequencies_hz, np.asarray(result.tone_spectrum.psd_db)))

    print("\n=== 2. Single-sideband vs double-sideband backscatter (Fig. 6) ===\n")
    sidebands = fig06_sideband.run()
    print(f"SSB upper/lower sideband ratio: {sidebands.ssb_image_rejection_db:+.1f} dB")
    print(f"DSB upper/lower sideband ratio: {sidebands.dsb_image_rejection_db:+.1f} dB\n")
    print("Single-sideband output spectrum (the mirror at -22 MHz is gone):")
    print(ascii_spectrum(sidebands.ssb_spectrum.frequencies_hz, np.asarray(sidebands.ssb_spectrum.psd_db), bins=40))
    print("\nDouble-sideband output spectrum (mirror copy present):")
    print(ascii_spectrum(sidebands.dsb_spectrum.frequencies_hz, np.asarray(sidebands.dsb_spectrum.psd_db), bins=40))

    print("\n=== 3. Random vs constant OFDM symbols (Fig. 7) ===\n")
    crafter = ConstantOfdmCrafter(OfdmRate.RATE_36)
    plan, waveform = crafter.encode_message(np.array([1, 0, 1, 0], dtype=np.uint8), scrambler_seed=0x2A)
    print("symbol kind      peak-to-average power")
    for index, kind in enumerate(plan.symbol_kinds):
        papr = symbol_peak_to_average(waveform.data_symbol(index))
        marker = "<-- AM gap the peak detector sees" if kind == "constant" else ""
        print(f"  {kind:<9} {papr:20.1f}   {marker}")


if __name__ == "__main__":
    main()
