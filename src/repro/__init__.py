"""Interscatter reproduction library.

A waveform-level, pure-Python reproduction of "Inter-Technology Backscatter:
Towards Internet Connectivity for Implanted Devices" (SIGCOMM 2016).

The package is organised as a set of physical-layer substrates (``ble``,
``wifi``, ``zigbee``, ``backscatter``, ``channel``) with the paper's primary
contribution — generating Wi-Fi and ZigBee packets by backscattering
Bluetooth transmissions — living in :mod:`repro.core`.  The proof-of-concept
applications from Section 5 of the paper are in :mod:`repro.apps` and every
table/figure of the evaluation has a corresponding driver in
:mod:`repro.experiments`.  :mod:`repro.mc` is the batched Monte-Carlo
engine (vectorised bit-exact PHY kernels, whole-batch sweeps, PER-table
link abstraction) and :mod:`repro.netsim` the discrete-event fleet
simulator built on top of it.  :mod:`repro.api` is the unified front door:
an experiment registry, an engine-dispatching :class:`~repro.api.Runner`,
a JSON-serializable result envelope and the ``python -m repro`` CLI.

Quickstart
----------

>>> from repro.core import InterscatterLink
>>> link = InterscatterLink(wifi_rate_mbps=2.0)
>>> result = link.transmit(payload=b"hello from a contact lens!")
>>> result.crc_ok
True

Or reproduce a whole paper artefact through the registry:

>>> from repro.api import Runner
>>> Runner().run("table_packet_sizes").payload.max_psdu_bytes[2.0]
38
"""

from repro.version import __version__

__all__ = ["__version__"]
