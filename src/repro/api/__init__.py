"""``repro.api`` — the unified experiment front door.

One declarative pipeline replaces the 13 bespoke driver signatures the
examples, benchmarks and tests used to wire up by hand:

* **Registry** (:mod:`repro.api.registry`): every experiment self-registers
  with a stable name, parameter schema, supported engines and fast smoke
  parameters; :func:`get_experiment` / :func:`experiment_names` discover
  them.
* **Specs** (:mod:`repro.api.spec`): :class:`ExperimentSpec` describes one
  run as data (name + params + engine + seed), so scenario grids live in
  configuration.
* **Runner** (:mod:`repro.api.runner`): :class:`Runner` owns the seeding
  policy and engine dispatch and executes specs singly or as batches.
* **Results** (:mod:`repro.api.result`): every run returns a uniform
  :class:`Result` envelope that round-trips through strict JSON with the
  driver's native payload dataclass reconstructed intact.
* **Campaigns** (:mod:`repro.api.campaign`): :class:`SweepSpec` declares a
  whole grid of invocations as data (with derived per-spec seeds);
  ``Runner(jobs=N)`` shards the expanded batch across worker processes
  with bit-identical results.
* **Stores** (:mod:`repro.api.store`): :class:`ResultStore` is the
  append-only JSONL directory campaigns stream into — queryable
  (:meth:`ResultStore.query`), mergeable, and resumable after a kill.
* **Analytics** (:mod:`repro.api.analytics`): :func:`aggregate` collapses
  a store's seed-replicates per grid point into mean/std/95 % CI
  :class:`Frame` tables (plain dict-of-columns, JSON-round-trippable).
* **Reports** (:mod:`repro.api.report`): :func:`generate_report` renders
  the registry-driven paper-vs-measured ``EXPERIMENTS.md`` from a store
  (mean ± CI columns wherever a campaign ran replicates).
* **CLI** (:mod:`repro.api.cli`): ``python -m repro list | info | run |
  report`` reproduces the whole paper from the shell
  (``run --specs grid.json --jobs 4 --store out/``).

Quickstart
----------

>>> from repro.api import Runner
>>> result = Runner(seed=11).run("fig11", engine="batch")
>>> round(result.payload.median_per[2.0], 3) >= 0.0
True
"""

from repro.api.analytics import Frame, ReplicateGroup, aggregate, mean_std_ci, replicate_groups
from repro.api.campaign import SweepSpec, derive_seed, load_specs, read_specs
from repro.api.placement import distance_grid, empirical_cdf, furthest_reach, shadowed_backscatter_budget
from repro.api.registry import (
    Experiment,
    Parameter,
    experiment_names,
    get_experiment,
    iter_experiments,
    load_registry,
    register,
)
from repro.api.report import check_report, generate_report, write_report
from repro.api.result import SCHEMA_VERSION, Result, validate_result_dict
from repro.api.runner import Runner
from repro.api.serialization import canonical_json, decode, encode, payload_equal, validate_encoded
from repro.api.spec import ExperimentSpec
from repro.api.store import MergeStats, ResultStore, invocation_key, representative, result_key

__all__ = [
    "Frame",
    "ReplicateGroup",
    "aggregate",
    "mean_std_ci",
    "replicate_groups",
    "SweepSpec",
    "derive_seed",
    "load_specs",
    "read_specs",
    "MergeStats",
    "ResultStore",
    "invocation_key",
    "representative",
    "result_key",
    "check_report",
    "generate_report",
    "write_report",
    "canonical_json",
    "distance_grid",
    "empirical_cdf",
    "furthest_reach",
    "shadowed_backscatter_budget",
    "Experiment",
    "Parameter",
    "experiment_names",
    "get_experiment",
    "iter_experiments",
    "load_registry",
    "register",
    "SCHEMA_VERSION",
    "Result",
    "validate_result_dict",
    "Runner",
    "decode",
    "encode",
    "payload_equal",
    "validate_encoded",
    "ExperimentSpec",
]
