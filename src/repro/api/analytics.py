"""Cross-campaign analytics: grouped aggregation over a :class:`ResultStore`.

Contract: the input is the decoded :class:`~repro.api.result.Result`
envelopes a store holds (JSON on disk); the output is a :class:`Frame` — a
plain dict-of-columns table (numpy-backed for numeric columns) that
round-trips through the same serialization layer as every envelope
(:meth:`Frame.to_dict` / :meth:`Frame.from_dict` are strict JSON).
Everything here is deterministic: groups are ordered by their canonical
JSON key, never by shard or insertion order, so aggregating the same store
twice yields equal frames byte for byte.

:func:`aggregate` is the headline entry point — it collapses the
seed-replicates a campaign ran at each grid point into mean / sample std /
95 % confidence half-width columns, one row per distinct combination of
the ``group_by`` parameters.  Metric samples come from each experiment's
registered ``metrics`` hook (payload → named scalars) or from an explicit
``reduce`` callable.  :func:`replicate_groups` is the lower-level helper
the report and the figure gallery share: it buckets results that differ
only in their seed.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

import numpy as np
from scipy import stats as scipy_stats

from repro.api.registry import get_experiment
from repro.api.result import Result
from repro.api.serialization import canonical_json, decode, encode, payload_equal
from repro.api.store import ResultStore
from repro.exceptions import ConfigurationError

__all__ = ["Frame", "ReplicateGroup", "aggregate", "mean_std_ci", "replicate_groups"]


class Frame:
    """A small column-oriented table: name → equal-length column.

    Numeric columns are held as numpy arrays (``float64`` for measures,
    ``int64`` for counts); non-numeric columns (group labels, engine
    names) stay plain lists.  The frame serializes through the envelope
    encoding (:func:`repro.api.serialization.encode`), so it survives the
    same strict-JSON round trip as every stored result.
    """

    def __init__(self, columns: Mapping[str, Any]):
        normalized: dict[str, Any] = {}
        length: int | None = None
        for name, values in columns.items():
            if not isinstance(name, str):
                raise ConfigurationError(f"frame column names must be strings, got {name!r}")
            column = self._normalize(name, values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise ConfigurationError(
                    f"frame column {name!r} has {len(column)} rows, expected {length}"
                )
            normalized[name] = column
        self._columns = normalized
        self._length = length or 0

    @staticmethod
    def _normalize(name: str, values: Any) -> Any:
        if isinstance(values, np.ndarray):
            if values.ndim != 1:
                raise ConfigurationError(f"frame column {name!r} must be 1-D, got shape {values.shape}")
            return values
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            raise ConfigurationError(f"frame column {name!r} must be a sequence, got {type(values).__name__}")
        values = list(values)
        if values and all(isinstance(v, bool) for v in values):
            return np.asarray(values, dtype=bool)
        if values and all(isinstance(v, int) and not isinstance(v, bool) for v in values):
            return np.asarray(values, dtype=np.int64)
        if values and all(isinstance(v, (int, float)) and not isinstance(v, bool) for v in values):
            return np.asarray(values, dtype=np.float64)
        return values

    @property
    def column_names(self) -> list[str]:
        """Column names, in construction order."""
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        """Number of rows (every column has this length)."""
        return self._length

    def __len__(self) -> int:
        return self._length

    def column(self, name: str) -> Any:
        """One column by name (numpy array or list)."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"frame has no column {name!r}; available: {self.column_names}"
            ) from exc

    def rows(self) -> list[dict[str, Any]]:
        """The table as one dict per row (numpy scalars unwrapped)."""
        out = []
        for index in range(self._length):
            row = {}
            for name, values in self._columns.items():
                value = values[index]
                row[name] = value.item() if isinstance(value, np.generic) else value
            out.append(row)
        return out

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-compatible dict form (columns pass through ``encode``)."""
        return {"columns": {name: encode(values) for name, values in self._columns.items()}}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Frame":
        """Rebuild a frame from :meth:`to_dict` output."""
        if not isinstance(data, dict) or not isinstance(data.get("columns"), dict):
            raise ConfigurationError("frame document must be an object with a 'columns' mapping")
        return cls({name: decode(values) for name, values in data["columns"].items()})

    def equals(self, other: "Frame") -> bool:
        """Column-wise deep equality (numpy-aware, NaN-tolerant)."""
        if not isinstance(other, Frame) or self.column_names != other.column_names:
            return False
        return all(payload_equal(self._columns[name], other._columns[name]) for name in self._columns)

    def __repr__(self) -> str:
        return f"Frame({self._length} rows × {len(self._columns)} columns: {self.column_names})"


def mean_std_ci(samples: Iterable[float], *, confidence: float = 0.95) -> tuple[float, float, float, int]:
    """Collapse replicate samples into ``(mean, std, ci_half_width, n)``.

    Non-finite samples (NaN payload fields) are excluded; ``n`` counts the
    finite samples that remain.  The half-width uses the Student-t
    quantile at the given confidence, so ``mean ± ci_half_width`` is the
    usual small-sample confidence interval.  With a single sample the
    interval degenerates to the point: std and half-width are ``0.0``.
    With no finite samples everything is NaN and ``n`` is 0.
    """
    values = np.asarray(list(samples), dtype=float)
    finite = values[np.isfinite(values)]
    n = int(finite.size)
    if n == 0:
        return math.nan, math.nan, math.nan, 0
    mean = float(np.mean(finite))
    if n == 1:
        return mean, 0.0, 0.0, 1
    std = float(np.std(finite, ddof=1))
    t = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return mean, std, t * std / math.sqrt(n), n


@dataclass(frozen=True)
class ReplicateGroup:
    """Results that differ only in their seed: one grid point's replicates.

    Attributes
    ----------
    experiment / engine / backend:
        Shared by every member (``backend`` is ``None`` for experiments
        that take no array backend).
    params:
        The shared parameters, with ``seed`` removed.
    seeds:
        The distinct seeds, sorted (``None`` for deterministic runs).
    results:
        The member envelopes, ordered by seed.
    """

    experiment: str
    engine: str
    params: dict[str, Any]
    seeds: tuple[int | None, ...]
    results: tuple[Result, ...]
    backend: str | None = None

    @property
    def replicates(self) -> int:
        """Number of seed-replicates at this grid point."""
        return len(self.results)


def _point_params(result: Result) -> dict[str, Any]:
    return {name: value for name, value in result.params.items() if name != "seed"}


def _seed_order(result: Result) -> tuple[int, int]:
    return (0, 0) if result.seed is None else (1, result.seed)


def replicate_groups(results: Iterable[Result]) -> list[ReplicateGroup]:
    """Bucket results by (experiment, engine, backend, params-minus-seed).

    Each bucket is one grid point; its members are the campaign's
    seed-replicates there.  The same grid point run on two array backends
    forms two groups — backends are provenance, not noise.  Groups come
    back ordered by their canonical JSON identity, members ordered by
    seed — both independent of store shard layout, so downstream
    documents are deterministic.
    """
    buckets: dict[str, list[Result]] = {}
    for result in results:
        key = canonical_json(
            {
                "experiment": result.experiment,
                "engine": result.engine,
                "backend": result.backend,
                "params": _point_params(result),
            }
        )
        buckets.setdefault(key, []).append(result)
    groups = []
    for key in sorted(buckets):
        members = sorted(buckets[key], key=_seed_order)
        first = members[0]
        groups.append(
            ReplicateGroup(
                experiment=first.experiment,
                engine=first.engine,
                backend=first.backend,
                params=_point_params(first),
                seeds=tuple(member.seed for member in members),
                results=tuple(members),
            )
        )
    return groups


def _reduce_to_metrics(reduce: Any, result: Result) -> dict[str, float]:
    reduced = reduce(result.payload)
    if isinstance(reduced, Mapping):
        metrics = dict(reduced)
    else:
        metrics = {"value": reduced}
    out = {}
    for name, value in metrics.items():
        if not isinstance(name, str):
            raise ConfigurationError(f"metric names must be strings, got {name!r}")
        try:
            out[name] = float(value)
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"metric {name!r} of experiment {result.experiment!r} is not a scalar: {value!r}"
            ) from exc
    return out


def _check_homogeneous(members: list[Result], group_by: Sequence[str]) -> None:
    """Reject groups whose members are not true seed-replicates.

    Pooling results that differ in a non-grouped parameter would report a
    confidence interval across distinct experimental conditions; failing
    loudly here mirrors the campaign layer's unknown-key rejection.
    """
    ignored = set(group_by) | {"seed"}
    values: dict[str, set[str]] = {}
    recorded_in: dict[str, int] = {}
    for member in members:
        for name, value in member.params.items():
            if name in ignored:
                continue
            values.setdefault(name, set()).add(canonical_json(value))
            recorded_in[name] = recorded_in.get(name, 0) + 1
    varying = sorted(
        name
        for name, distinct in values.items()
        # A parameter also varies when only some members record it (the
        # others ran the driver default).
        if len(distinct) > 1 or recorded_in[name] != len(members)
    )
    if varying:
        raise ConfigurationError(
            f"cannot aggregate: parameter(s) {varying} vary within one group, so its members are "
            "not seed-replicates; add them to group_by or pre-filter with store.query"
        )


def aggregate(
    store: "ResultStore | Iterable[Result]",
    experiment: str,
    *,
    group_by: Sequence[str] = (),
    reduce: Any = None,
    engine: str | None = None,
    confidence: float = 0.95,
) -> Frame:
    """Collapse an experiment's seed-replicates into a mean/std/CI frame.

    Results for *experiment* are grouped by the values of the ``group_by``
    parameters (one row per distinct combination, canonically ordered);
    every result in a group is one replicate sample.  Members of a group
    must be true seed-replicates: a recorded parameter other than ``seed``
    and the ``group_by`` keys that *varies* within a group would silently
    blend distinct experimental conditions into one confidence interval,
    so it raises instead — add the parameter to ``group_by`` or pre-filter
    with :meth:`~repro.api.store.ResultStore.query`.  Engines may mix (two
    engines measuring the same grid point are samples of the same
    quantity).  ``reduce`` maps a payload to a scalar or a ``{name:
    scalar}`` mapping and defaults to the experiment's registered
    ``metrics`` hook.  The output frame
    carries the ``group_by`` columns, ``replicates`` (group size),
    ``engines`` (sorted, comma-joined — a group may legitimately mix
    engines when a campaign ran the same grid point on several), and
    ``<metric>_mean`` / ``<metric>_std`` / ``<metric>_ci95`` columns per
    metric (the CI suffix follows *confidence*; NaN samples are excluded
    per metric, a single replicate degenerates to a zero-width interval).

    An empty store (or no matching results) yields a frame with the same
    columns minus the metric columns and zero rows.
    """
    registered = get_experiment(experiment)
    if reduce is None:
        reduce = registered.metrics
        if reduce is None:
            raise ConfigurationError(
                f"experiment {experiment!r} has no registered metrics hook; pass reduce= explicitly"
            )
    if engine is not None:
        registered.check_engine(engine)
    known = {p.name for p in registered.parameters}
    unknown = sorted(set(group_by) - known)
    if unknown:
        raise ConfigurationError(
            f"cannot group by {unknown}: experiment {experiment!r} has no such parameter(s); "
            f"available: {sorted(known)}"
        )

    results = store.query(experiment, engine=engine) if isinstance(store, ResultStore) else list(store)
    results = [r for r in results if r.experiment == experiment and (engine is None or r.engine == engine)]

    buckets: dict[str, list[Result]] = {}
    key_values: dict[str, tuple[Any, ...]] = {}
    for result in results:
        values = tuple(result.params.get(name) for name in group_by)
        key = canonical_json(list(values))
        buckets.setdefault(key, []).append(result)
        key_values[key] = values

    ci_label = f"ci{confidence * 100:g}"
    group_columns: dict[str, list[Any]] = {name: [] for name in group_by}
    replicate_column: list[int] = []
    engines_column: list[str] = []
    metric_samples: list[dict[str, float]] = []
    metric_names: list[str] = []
    for key in sorted(buckets):
        members = sorted(buckets[key], key=_seed_order)
        _check_homogeneous(members, group_by)
        for name, value in zip(group_by, key_values[key], strict=True):
            group_columns[name].append(value)
        replicate_column.append(len(members))
        engines_column.append(",".join(sorted({member.engine for member in members})))
        samples: dict[str, list[float]] = {}
        for member in members:
            for name, value in _reduce_to_metrics(reduce, member).items():
                if name not in samples:
                    samples[name] = []
                    if name not in metric_names:
                        metric_names.append(name)
                samples[name].append(value)
        metric_samples.append({name: values for name, values in samples.items()})

    columns: dict[str, Any] = {name: values for name, values in group_columns.items()}
    columns["replicates"] = replicate_column
    columns["engines"] = engines_column
    for name in metric_names:
        means, stds, halves = [], [], []
        for samples in metric_samples:
            mean, std, half, _ = mean_std_ci(samples.get(name, ()), confidence=confidence)
            means.append(mean)
            stds.append(std)
            halves.append(half)
        columns[f"{name}_mean"] = np.asarray(means, dtype=float)
        columns[f"{name}_std"] = np.asarray(stds, dtype=float)
        columns[f"{name}_{ci_label}"] = np.asarray(halves, dtype=float)
    return Frame(columns)
