"""Declarative sweep campaigns: grids of experiment invocations as data.

The paper's headline results are sweeps, not single runs — PER vs.
distance, fleet-size MAC scaling, cross-technology coexistence.  A
:class:`SweepSpec` describes such a sweep declaratively: one experiment,
a ``grid`` mapping parameter names to the values to enumerate, shared
base parameters, an engine, a base seed and an optional replicate count.
:meth:`SweepSpec.expand` turns it into the cartesian product of
:class:`~repro.api.spec.ExperimentSpec` — the batch a
:class:`~repro.api.runner.Runner` executes, serially or sharded across
processes.

Seeds are **derived, not assigned**: every expanded spec gets a seed
computed from the campaign's base seed and the spec's own (experiment,
parameters, replicate) identity via :func:`derive_seed`.  Because the
derivation happens at expansion time, before any sharding, the same
sweep document always produces the same specs — and therefore bit-
identical results — regardless of how many worker processes execute it.

Sweeps round-trip through JSON (:meth:`SweepSpec.to_dict` /
:meth:`SweepSpec.from_dict`), and :func:`load_specs` /
:func:`read_specs` accept whole grid documents (single sweeps, lists,
or ``{"sweeps": [...], "specs": [...]}``) so campaigns live in
configuration files such as ``examples/grids/fleet_grid.json``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.registry import Experiment, get_experiment
from repro.api.serialization import canonical_json, decode, encode
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

__all__ = ["SweepSpec", "derive_seed", "load_specs", "read_specs"]

#: Seeds derived for expanded specs stay in numpy's comfortable range.
_SEED_SPACE = 2**32

_SWEEP_KEYS = {"experiment", "grid", "params", "engine", "seed", "replicates", "backend"}
_DOCUMENT_KEYS = {"sweeps", "specs"}


def derive_seed(base_seed: int, experiment: str, params: Mapping[str, Any], replicate: int = 0) -> int:
    """Deterministic per-spec seed from the campaign seed and the spec identity.

    The derivation hashes the canonical JSON encoding of ``(base_seed,
    experiment, params, replicate)``, so it depends only on *what* is being
    run — never on expansion order, shard assignment or process count — and
    distinct grid points (or replicates) get statistically independent
    streams.
    """
    material = canonical_json(
        {"base_seed": base_seed, "experiment": experiment, "params": dict(params), "replicate": replicate}
    )
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


@dataclass(frozen=True)
class SweepSpec:
    """One declarative sweep: an experiment plus the grid to enumerate.

    Attributes
    ----------
    experiment:
        Registry name of the experiment every grid point runs.
    grid:
        Parameter name → sequence of values to enumerate.  The expansion
        is the cartesian product, outermost key varying slowest.
    params:
        Base parameters shared by every grid point (grid keys override).
    engine:
        Engine for every expanded spec, or ``None`` for the default.
    backend:
        Array backend for every expanded spec, or ``None`` for the
        runner/environment default.
    seed:
        Campaign base seed.  Seedable experiments get a per-spec seed
        derived from it (see :func:`derive_seed`); ``None`` keeps each
        driver's own default seed.
    replicates:
        Seed-replicates per grid point.  More than one requires a base
        seed and a seedable experiment (otherwise the copies would be
        identical).
    """

    experiment: str
    grid: dict[str, Sequence[Any]] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)
    engine: str | None = None
    seed: int | None = None
    replicates: int = 1
    backend: str | None = None

    def resolve(self) -> Experiment:
        """Look up the experiment and validate the sweep against it."""
        experiment = get_experiment(self.experiment)
        for name, source in (("grid", self.grid), ("params", self.params)):
            for reserved in ("seed", "engine", "backend"):
                if reserved in source:
                    raise ConfigurationError(
                        f"sweep for {self.experiment!r} puts {reserved!r} in {name}; "
                        f"use the SweepSpec.{reserved} field (seeds are derived per spec)"
                    )
        overlap = sorted(set(self.grid) & set(self.params))
        if overlap:
            raise ConfigurationError(
                f"sweep for {self.experiment!r} lists parameter(s) {overlap} in both grid and params"
            )
        for name, values in self.grid.items():
            if isinstance(values, (str, bytes)) or not isinstance(values, Sequence) or len(values) == 0:
                raise ConfigurationError(
                    f"sweep grid axis {name!r} must be a non-empty sequence of values, got {values!r}"
                )
        probe = {**self.params, **{name: values[0] for name, values in self.grid.items()}}
        experiment.check_params(probe)
        if self.engine is not None:
            experiment.check_engine(self.engine)
        if self.backend is not None and not experiment.takes_backend:
            raise ConfigurationError(
                f"sweep for {self.experiment!r} requests an array backend but the experiment takes none"
            )
        if self.replicates < 1:
            raise ConfigurationError(f"sweep replicates must be >= 1, got {self.replicates}")
        if self.replicates > 1:
            if self.seed is None:
                raise ConfigurationError(
                    f"sweep for {self.experiment!r} asks for {self.replicates} replicates without a "
                    "base seed; identical copies would be pointless"
                )
            if not experiment.takes_seed:
                raise ConfigurationError(
                    f"sweep for {self.experiment!r} asks for replicates but the experiment is "
                    "deterministic (no seed parameter)"
                )
        return experiment

    @property
    def size(self) -> int:
        """Number of specs :meth:`expand` produces."""
        points = 1
        for values in self.grid.values():
            points *= len(values)
        return points * self.replicates

    def expand(self) -> list[ExperimentSpec]:
        """Enumerate the grid into concrete :class:`ExperimentSpec` objects."""
        experiment = self.resolve()
        axes = list(self.grid.items())
        specs: list[ExperimentSpec] = []
        for combo in itertools.product(*(values for _, values in axes)):
            point = {**self.params, **{name: value for (name, _), value in zip(axes, combo, strict=True)}}
            for replicate in range(self.replicates):
                seed: int | None = None
                if self.seed is not None and experiment.takes_seed:
                    seed = derive_seed(self.seed, self.experiment, point, replicate)
                specs.append(
                    ExperimentSpec(
                        experiment=self.experiment,
                        params=dict(point),
                        engine=self.engine,
                        seed=seed,
                        backend=self.backend,
                    )
                )
        return specs

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict form of the sweep."""
        return {
            "experiment": self.experiment,
            "grid": encode(dict(self.grid)),
            "params": encode(self.params),
            "engine": self.engine,
            "seed": self.seed,
            "replicates": self.replicates,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SweepSpec":
        """Rebuild a sweep from :meth:`to_dict` output, rejecting unknown keys."""
        if not isinstance(data, dict):
            raise ConfigurationError(f"sweep document must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - _SWEEP_KEYS)
        if unknown:
            raise ConfigurationError(f"unknown key(s) {unknown} in sweep document; allowed: {sorted(_SWEEP_KEYS)}")
        if "experiment" not in data:
            raise ConfigurationError("sweep document is missing required key 'experiment'")
        return cls(
            experiment=data["experiment"],
            grid=decode(data.get("grid") or {}),
            params=decode(data.get("params") or {}),
            engine=data.get("engine"),
            seed=data.get("seed"),
            replicates=data.get("replicates", 1),
            backend=data.get("backend"),
        )


def _element_to_specs(element: Any, where: str) -> list[ExperimentSpec]:
    if not isinstance(element, dict):
        raise ConfigurationError(f"{where} must be an object, got {type(element).__name__}")
    if "grid" in element or "replicates" in element:
        return SweepSpec.from_dict(element).expand()
    return [ExperimentSpec.from_dict(element)]


def load_specs(document: Any) -> list[ExperimentSpec]:
    """Expand a grid document into the flat list of specs it describes.

    Accepted forms:

    * a single sweep object (has a ``grid`` key) or single spec object,
    * a list mixing sweep and spec objects,
    * ``{"sweeps": [...], "specs": [...]}`` with either key optional.
    """
    if isinstance(document, list):
        specs: list[ExperimentSpec] = []
        for index, element in enumerate(document):
            specs.extend(_element_to_specs(element, f"document[{index}]"))
        return specs
    if not isinstance(document, dict):
        raise ConfigurationError(f"grid document must be an object or list, got {type(document).__name__}")
    if _DOCUMENT_KEYS & set(document):
        unknown = sorted(set(document) - _DOCUMENT_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in grid document; allowed: {sorted(_DOCUMENT_KEYS)}"
            )
        specs = []
        for index, element in enumerate(document.get("sweeps") or []):
            specs.extend(_element_to_specs(element, f"sweeps[{index}]"))
        for element in document.get("specs") or []:
            specs.append(ExperimentSpec.from_dict(element))
        return specs
    return _element_to_specs(document, "document")


def read_specs(path: str | Path) -> list[ExperimentSpec]:
    """Load and expand a JSON grid document from *path*."""
    try:
        document = json.loads(Path(path).read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read grid document {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"grid document {str(path)!r} is not valid JSON: {exc}") from exc
    specs = load_specs(document)
    if not specs:
        raise ConfigurationError(f"grid document {str(path)!r} expands to zero specs")
    return specs
