"""``python -m repro`` — reproduce the paper from the shell.

Subcommands
-----------

``list``
    One line per registered experiment: name, engines, paper artefact,
    title.  ``--json`` emits the same as machine-readable JSON.
``info NAME``
    Title, module, engines and the full parameter schema with defaults.
``run NAME [NAME ...]``
    Execute experiments through the :class:`repro.api.Runner` and print
    each one's headline summary.  ``--engine``/``--seed`` set the dispatch
    policy, ``--set key=value`` overrides individual parameters
    (values are parsed as Python literals), ``--fast`` applies each
    experiment's reduced smoke parameters, ``--json PATH`` writes a single
    result envelope and ``--json-dir DIR`` one ``<name>.json`` per result.
``run --all``
    The same for every registered experiment — the whole paper in one
    command.  ``--validate`` round-trips every envelope through the JSON
    schema and fails on any mismatch (the CI smoke job runs this).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from pathlib import Path
from typing import Any

from repro.api.registry import Experiment, get_experiment, iter_experiments
from repro.api.result import Result, validate_result_dict
from repro.api.runner import Runner
from repro.exceptions import ReproError

__all__ = ["main"]


def _parse_override(text: str) -> tuple[str, Any]:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key, value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified front door to the paper's experiments (registry, runner, JSON results).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list every registered experiment")
    list_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    info_parser = sub.add_parser("info", help="show one experiment's schema")
    info_parser.add_argument("name", help="experiment name (see `list`)")

    run_parser = sub.add_parser("run", help="run one, several or all experiments")
    run_parser.add_argument("names", nargs="*", help="experiment names (see `list`)")
    run_parser.add_argument("--all", action="store_true", help="run every registered experiment")
    run_parser.add_argument("--engine", default=None, help="engine to dispatch to (scalar/batch/fast_path)")
    run_parser.add_argument("--seed", type=int, default=None, help="seed override for seedable experiments")
    run_parser.add_argument(
        "--set",
        dest="overrides",
        metavar="KEY=VALUE",
        type=_parse_override,
        action="append",
        default=[],
        help="parameter override (repeatable; value parsed as a Python literal)",
    )
    run_parser.add_argument("--fast", action="store_true", help="use each experiment's reduced smoke parameters")
    run_parser.add_argument("--json", dest="json_path", default=None, help="write the result envelope to this file")
    run_parser.add_argument("--json-dir", default=None, help="write one <name>.json envelope per result here")
    run_parser.add_argument(
        "--validate",
        action="store_true",
        help="validate every envelope against the result schema and check the JSON round trip",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-experiment summaries")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    experiments = iter_experiments()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": e.name,
                        "title": e.title,
                        "artifact": e.artifact,
                        "engines": list(e.engines),
                        "module": e.module,
                    }
                    for e in experiments
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(e.name) for e in experiments)
    engines_width = max(len(",".join(e.engines)) for e in experiments)
    for experiment in experiments:
        engines = ",".join(experiment.engines)
        print(f"{experiment.name.ljust(width)}  {engines.ljust(engines_width)}  {experiment.title}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.name)
    print(f"{experiment.name} — {experiment.title}")
    if experiment.description:
        print(experiment.description)
    print(f"module:  {experiment.module}")
    print(f"engines: {', '.join(experiment.engines)}")
    print(f"artifact: {experiment.artifact or '(beyond the paper)'}")
    print("parameters:")
    for parameter in experiment.parameters:
        print(f"  {parameter.name} = {parameter.default!r}")
    if experiment.fast_params:
        print(f"fast parameters (--fast): {experiment.fast_params}")
    return 0


def _check_envelope(result: Result) -> None:
    document = json.loads(result.to_json())
    validate_result_dict(document)
    restored = Result.from_dict(document)
    if not restored.same_payload(result):
        raise ReproError(f"result for {result.experiment!r} did not survive the JSON round trip")


def _emit(result: Result, experiment: Experiment, args: argparse.Namespace) -> None:
    if args.validate:
        _check_envelope(result)
    if args.json_dir:
        directory = Path(args.json_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{result.experiment}.json").write_text(result.to_json(indent=2))
    if args.json_path:
        Path(args.json_path).write_text(result.to_json(indent=2))
    if not args.quiet:
        print(f"== {experiment.title} [{result.engine}, {result.runtime_s:.2f} s] ==")
        if experiment.summarize is not None:
            for line in experiment.summarize(result.payload):
                print(f"  {line}")
        if args.validate:
            print("  result envelope validated against the schema")


def _cmd_run(args: argparse.Namespace) -> int:
    if args.all == bool(args.names):
        print("error: give experiment names or --all (not both)", file=sys.stderr)
        return 2
    names = [e.name for e in iter_experiments()] if args.all else args.names
    if args.json_path and len(names) > 1:
        print("error: --json takes a single experiment; use --json-dir for several", file=sys.stderr)
        return 2
    overrides = dict(args.overrides)
    if overrides and len(names) > 1:
        print("error: --set applies to a single experiment", file=sys.stderr)
        return 2
    runner = Runner(seed=args.seed, engine=args.engine)
    for name in names:
        experiment = get_experiment(name)
        params = dict(experiment.fast_params) if args.fast else {}
        params.update(overrides)
        result = runner.run(name, params=params)
        _emit(result, experiment, args)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "info":
            return _cmd_info(args)
        return _cmd_run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
