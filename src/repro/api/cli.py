"""``python -m repro`` — reproduce the paper from the shell.

Subcommands
-----------

``list``
    One line per registered experiment: name, engines, paper artefact,
    title.  ``--json`` emits the same as machine-readable JSON.
``info NAME``
    Title, module, engines, accepted array backends and the full
    parameter schema with defaults — all read from the registry entry's
    capability table.
``backends``
    One line per registered array backend (:mod:`repro.mc.backend`):
    name, default marker, simulated flag, description.  ``--json`` emits
    the same as machine-readable JSON.
``run NAME [NAME ...]``
    Execute experiments through the :class:`repro.api.Runner` and print
    each one's headline summary.  ``--engine``/``--seed``/``--backend``
    set the dispatch policy, ``--set key=value`` overrides individual
    parameters (values parsed as JSON, then as Python literals, then as
    bare strings), ``--fast`` applies each experiment's reduced smoke
    parameters, ``--json PATH`` writes a single result envelope and
    ``--json-dir DIR`` one ``<name>.json`` per result.
``run --all``
    The same for every registered experiment — the whole paper in one
    command.  ``--validate`` round-trips every envelope through the JSON
    schema and fails on any mismatch (the CI smoke job runs this).
``run --specs GRID.json``
    Execute a declarative campaign: each JSON document's sweeps/specs
    expand to a batch (see :mod:`repro.api.campaign`; ``--specs`` is
    repeatable — batches concatenate in order, duplicates are rejected).
    ``--jobs N`` shards any batch (``--specs`` or ``--all``) across N
    worker processes — bit-identical results regardless of N — and
    ``--store DIR`` streams the envelopes into a
    :class:`~repro.api.store.ResultStore` (reruns skip work the store
    already holds).  Resume matching follows ``--cache``: ``content``
    (the default) keys on the driver module's normalized source as well
    as the invocation, so caches survive comment/formatting refactors
    and invalidate on behavioural edits; ``--refresh`` forces
    re-execution regardless.  ``--shard-index I --shard-count N``
    executes one deterministic slice of the expanded batch
    (:mod:`repro.fabric.slicing`) and ``--manifest PATH`` records the
    shard's campaign manifest for fan-in validation.
``report --store DIR``
    Regenerate the registry-driven paper-vs-measured ``EXPERIMENTS.md``
    from a result store.  ``--check`` verifies the committed document is
    up to date instead of writing it.
``plot --store DIR``
    Render every registered experiment's figure from the stored result
    envelopes — zero driver re-execution — into ``--output-dir``
    (default ``figures/``) and write the ``FIGURES.md`` gallery next to
    ``EXPERIMENTS.md``.  ``--experiment NAME`` (repeatable) restricts
    rendering, ``--format png`` switches to the optional matplotlib
    backend (the default ``svg`` backend is built in and
    byte-deterministic), and ``--check-manifest`` verifies the committed
    gallery and images match a fresh render instead of writing.
``stats --store DIR``
    Per-experiment telemetry tables from the envelopes' attached
    :mod:`repro.obs` documents: wall time mean/p50/p95, span counts,
    events/sec and the netsim fast-path hit rate, plus every counter's
    store-wide total and the campaign-level counters (cache hits and
    misses, merge fan-in) from the store's telemetry sidecar.
    ``--experiment NAME`` restricts the view and ``--json`` emits the
    same as machine-readable JSON.
``trace NAME``
    Execute one run (same ``--engine``/``--seed``/``--set``/``--fast``
    policy as ``run``) and print its telemetry span tree and counters —
    the quickest way to see where a driver spends its time.
``merge --into DIR SOURCE [SOURCE ...]``
    Fold source stores into a destination store, logging each source's
    :class:`~repro.api.store.MergeStats` (ingested / deduplicated /
    torn lines skipped).  Sources may be local directories or
    ``file://``/``http(s)://`` shard URIs; ``--manifest PATH``
    (repeatable) validates and combines campaign manifests first and
    merges every shard URI they list, and ``--json`` emits the
    per-source stats machine-readably.
``lint [PATHS ...]``
    Run the :mod:`repro.lint` contract checker (backend purity, RNG
    discipline, determinism, telemetry isolation, registry completeness,
    exception hygiene) over the given paths (default ``src/repro``).
    ``--rule ID`` restricts to specific rules, ``--json`` emits the
    strict schema-versioned document, ``--markdown PATH`` writes the CI
    summary table, ``--baseline FILE`` grandfathers known findings,
    ``--write-baseline`` records the current findings as that baseline,
    and ``--check`` is the CI gate: new findings *or* stale baseline
    entries fail, so the baseline only ever ratchets towards zero.
"""

from __future__ import annotations

import argparse
import ast
import json
import re
import sys
from pathlib import Path
from typing import Any

from repro.api.registry import Experiment, get_experiment, iter_experiments
from repro.api.report import check_report, generate_report, write_report
from repro.api.result import Result, validate_result_dict
from repro.api.runner import Runner
from repro.api.spec import ExperimentSpec
from repro.api.store import ResultStore, representative
from repro.exceptions import ReproError
from repro.fabric.cas import CACHE_POLICIES
from repro.fabric.manifest import (
    CampaignManifest,
    ShardEntry,
    combine_manifests,
    grid_hash,
    read_manifest,
    write_manifest,
)
from repro.fabric.slicing import read_spec_files, shard_slice
from repro.lint import (
    apply_baseline,
    build_document,
    lint_paths,
    load_baseline,
    render_markdown,
    render_text,
    select_rules,
    write_baseline,
)
from repro.mc.backend import backend_names, default_backend, get_backend
from repro.obs.metrics import Collector, format_span_tree
from repro.obs.stats import campaign_counter_totals, counter_totals, stats_frame
from repro.plots.gallery import check_gallery, write_gallery
from repro.plots.render import FORMATS, figure_filename, render_experiment

__all__ = ["main"]

#: Unquoted words that are neither JSON nor Python literals pass through as
#: strings (`--set profile=contact_lens`); anything else must parse.
_BARE_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_.+-]*")

#: Baseline the `lint` verb picks up automatically when it exists.
_DEFAULT_BASELINE = "lint-baseline.json"


def _parse_value(key: str, raw: str) -> Any:
    """Parse an override value: JSON first, Python literal second, bare word last."""
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        pass
    try:
        return ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        pass
    if _BARE_WORD.fullmatch(raw):
        return raw
    raise argparse.ArgumentTypeError(
        f"cannot parse value {raw!r} for {key!r}: not JSON (try {key}=[1,2] or {key}=true), "
        f"not a Python literal, and not a bare word"
    )


def _parse_override(text: str) -> tuple[str, Any]:
    key, sep, raw = text.partition("=")
    if not sep or not key:
        raise argparse.ArgumentTypeError(f"expected key=value, got {text!r}")
    return key, _parse_value(key, raw)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Unified front door to the paper's experiments (registry, campaigns, JSON result stores).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list every registered experiment")
    list_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    info_parser = sub.add_parser("info", help="show one experiment's schema")
    info_parser.add_argument("name", help="experiment name (see `list`)")

    backends_parser = sub.add_parser("backends", help="list every registered array backend")
    backends_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    run_parser = sub.add_parser("run", help="run one, several, all, or a grid of experiments")
    run_parser.add_argument("names", nargs="*", help="experiment names (see `list`)")
    run_parser.add_argument("--all", action="store_true", help="run every registered experiment")
    run_parser.add_argument(
        "--specs",
        action="append",
        default=None,
        metavar="GRID.json",
        help="declarative sweep/spec document to expand and run "
        "(repeatable; batches concatenate in order, duplicate specs are rejected)",
    )
    run_parser.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="I",
        help="with --specs: execute only shard I of --shard-count disjoint slices of the expanded batch",
    )
    run_parser.add_argument(
        "--shard-count",
        type=int,
        default=None,
        metavar="N",
        help="with --specs: total number of shards the batch is sliced into",
    )
    run_parser.add_argument(
        "--engine", default=None, help="engine to dispatch to (scalar/batch/fast_path/batched/reference)"
    )
    run_parser.add_argument("--seed", type=int, default=None, help="seed override for seedable experiments")
    run_parser.add_argument(
        "--backend", default=None, help="array backend for experiments that take one (see `backends`)"
    )
    run_parser.add_argument(
        "--set",
        dest="overrides",
        metavar="KEY=VALUE",
        type=_parse_override,
        action="append",
        default=[],
        help="parameter override (repeatable; value parsed as JSON, then as a Python literal)",
    )
    run_parser.add_argument("--fast", action="store_true", help="use each experiment's reduced smoke parameters")
    run_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N", help="worker processes for batch runs (--all / --specs)"
    )
    run_parser.add_argument(
        "--store", default=None, metavar="DIR", help="append result envelopes to this store (resumes partial runs)"
    )
    run_parser.add_argument(
        "--no-resume",
        action="store_true",
        help="with --store: re-execute specs even when the store already holds their results",
    )
    run_parser.add_argument(
        "--cache",
        choices=CACHE_POLICIES,
        default="content",
        help="store-resume matching policy: content (invocation + normalized driver source, the default), "
        "invocation (exact key only), or off (never reuse)",
    )
    run_parser.add_argument(
        "--refresh",
        action="store_true",
        help="force re-execution of every spec regardless of the cache policy (results still append to --store)",
    )
    run_parser.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help="with --specs: write a campaign manifest for this (shard of the) run after it completes",
    )
    run_parser.add_argument("--json", dest="json_path", default=None, help="write the result envelope to this file")
    run_parser.add_argument("--json-dir", default=None, help="write one <name>.json envelope per result here")
    run_parser.add_argument(
        "--validate",
        action="store_true",
        help="validate every envelope against the result schema and check the JSON round trip",
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress per-experiment summaries")

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md from a result store")
    report_parser.add_argument("--store", required=True, metavar="DIR", help="result store to report on")
    report_parser.add_argument(
        "--output",
        default="EXPERIMENTS.md",
        metavar="PATH",
        help="document to write (default: EXPERIMENTS.md; '-' prints to stdout)",
    )
    report_parser.add_argument(
        "--check",
        action="store_true",
        help="verify the output document matches the store instead of writing it",
    )

    plot_parser = sub.add_parser("plot", help="render the paper's figures from a result store")
    plot_parser.add_argument("--store", required=True, metavar="DIR", help="result store to render from")
    plot_parser.add_argument(
        "--experiment",
        dest="experiments",
        metavar="NAME",
        action="append",
        default=[],
        help="render only this experiment's figure (repeatable; skips the gallery document)",
    )
    plot_parser.add_argument(
        "--output-dir", default="figures", metavar="DIR", help="directory the images are written to"
    )
    plot_parser.add_argument(
        "--format",
        default="svg",
        choices=FORMATS,
        help="image format: svg (built-in, deterministic) or png (requires matplotlib)",
    )
    plot_parser.add_argument(
        "--gallery",
        default=None,
        metavar="PATH",
        help="gallery document to write (default: FIGURES.md for the default output dir, "
        "<output-dir>/FIGURES.md otherwise — a custom output dir never touches the committed gallery)",
    )
    plot_parser.add_argument(
        "--check-manifest",
        action="store_true",
        help="verify the committed gallery and images match a fresh render instead of writing",
    )

    stats_parser = sub.add_parser("stats", help="summarize a store's telemetry per experiment")
    stats_parser.add_argument("--store", required=True, metavar="DIR", help="result store to summarize")
    stats_parser.add_argument(
        "--experiment", default=None, metavar="NAME", help="restrict the summary to one experiment"
    )
    stats_parser.add_argument("--json", action="store_true", help="emit machine-readable JSON")

    trace_parser = sub.add_parser("trace", help="run one experiment and print its span tree")
    trace_parser.add_argument("name", help="experiment name (see `list`)")
    trace_parser.add_argument(
        "--engine", default=None, help="engine to dispatch to (scalar/batch/fast_path/batched/reference)"
    )
    trace_parser.add_argument("--seed", type=int, default=None, help="seed override for seedable experiments")
    trace_parser.add_argument(
        "--backend", default=None, help="array backend for experiments that take one (see `backends`)"
    )
    trace_parser.add_argument(
        "--set",
        dest="overrides",
        metavar="KEY=VALUE",
        type=_parse_override,
        action="append",
        default=[],
        help="parameter override (repeatable; value parsed as JSON, then as a Python literal)",
    )
    trace_parser.add_argument("--fast", action="store_true", help="use the experiment's reduced smoke parameters")

    merge_parser = sub.add_parser("merge", help="fold source stores (or shard URIs) into a destination store")
    merge_parser.add_argument(
        "sources",
        nargs="*",
        metavar="SOURCE",
        help="store directories or file://|http(s):// shard URIs to merge from",
    )
    merge_parser.add_argument("--into", required=True, metavar="DIR", help="destination store directory")
    merge_parser.add_argument(
        "--manifest",
        dest="manifests",
        metavar="PATH",
        action="append",
        default=[],
        help="campaign manifest(s) to fan in from (repeatable; validated and combined first, "
        "then every shard URI they list is merged)",
    )
    merge_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable per-source MergeStats JSON"
    )

    lint_parser = sub.add_parser("lint", help="check the repo's static contracts (repro.lint)")
    lint_parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH", help="files or directories to lint (default: src/repro)"
    )
    lint_parser.add_argument(
        "--rule",
        dest="rules",
        metavar="ID",
        action="append",
        default=[],
        help="run only this rule (repeatable; see --list-rules)",
    )
    lint_parser.add_argument("--list-rules", action="store_true", help="list the rule catalogue and exit")
    lint_parser.add_argument("--json", action="store_true", help="emit the strict schema-versioned JSON document")
    lint_parser.add_argument(
        "--markdown", default=None, metavar="PATH", help="also write a findings table for CI job summaries"
    )
    lint_parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"grandfathered-findings file (default: {_DEFAULT_BASELINE} when it exists)",
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the baseline instead of failing on them",
    )
    lint_parser.add_argument(
        "--check",
        action="store_true",
        help="CI gate: fail on new findings and on stale baseline entries",
    )
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    experiments = iter_experiments()
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": e.name,
                        "title": e.title,
                        "artifact": e.artifact,
                        "engines": list(e.engine_names),
                        "module": e.module,
                    }
                    for e in experiments
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(e.name) for e in experiments)
    engines_width = max(len(",".join(e.engine_names)) for e in experiments)
    for experiment in experiments:
        engines = ",".join(experiment.engine_names)
        print(f"{experiment.name.ljust(width)}  {engines.ljust(engines_width)}  {experiment.title}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.name)
    print(f"{experiment.name} — {experiment.title}")
    if experiment.description:
        print(experiment.description)
    print(f"module:  {experiment.module}")
    print(f"engines: {', '.join(experiment.engine_names)}")
    if experiment.takes_backend:
        print(f"backends: {', '.join(backend_names())}")
    print(f"artifact: {experiment.artifact or '(beyond the paper)'}")
    print("parameters:")
    for parameter in experiment.parameters:
        print(f"  {parameter.name} = {parameter.default!r}")
    if experiment.fast_params:
        print(f"fast parameters (--fast): {experiment.fast_params}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    default = default_backend().name
    backends = [get_backend(name) for name in backend_names()]
    if args.json:
        print(
            json.dumps(
                [
                    {
                        "name": backend.name,
                        "default": backend.name == default,
                        "simulated": backend.simulated,
                        "description": backend.description,
                    }
                    for backend in backends
                ],
                indent=2,
            )
        )
        return 0
    width = max(len(backend.name) for backend in backends)
    for backend in backends:
        marker = "*" if backend.name == default else " "
        flag = " (simulated)" if backend.simulated else ""
        print(f"{marker} {backend.name.ljust(width)}  {backend.description}{flag}")
    print(f"* default backend (REPRO_BACKEND overrides; currently {default!r})")
    return 0


def _check_envelope(result: Result) -> None:
    document = json.loads(result.to_json())
    validate_result_dict(document)
    restored = Result.from_dict(document)
    if not restored.same_payload(result):
        raise ReproError(f"result for {result.experiment!r} did not survive the JSON round trip")


def _emit(result: Result, experiment: Experiment, args: argparse.Namespace) -> None:
    if args.validate:
        _check_envelope(result)
    if args.json_dir:
        directory = Path(args.json_dir)
        directory.mkdir(parents=True, exist_ok=True)
        (directory / f"{result.experiment}.json").write_text(result.to_json(indent=2))
    if args.json_path:
        Path(args.json_path).write_text(result.to_json(indent=2))
    if not args.quiet:
        print(f"== {experiment.title} [{result.engine}, {result.runtime_s:.2f} s] ==")
        if experiment.summarize is not None:
            for line in experiment.summarize(result.payload):
                print(f"  {line}")
        if args.validate:
            print("  result envelope validated against the schema")


def _run_campaign(
    specs: list[ExperimentSpec],
    args: argparse.Namespace,
    *,
    full_batch: list[ExperimentSpec] | None = None,
) -> int:
    """Batch path: sharded execution, optional store, one progress line per spec.

    ``full_batch`` is the whole expanded grid when *specs* is a shard
    slice of it — the campaign manifest hashes the full batch so shards
    of different grids can never be fanned back in together.
    """
    store = ResultStore(args.store) if args.store else None
    runner = Runner(
        seed=args.seed, engine=args.engine, backend=args.backend, jobs=args.jobs, cache=args.cache
    )
    total = len(specs)
    counts = {"ran": 0, "cached": 0}

    def on_result(index: int, result: Result, was_cached: bool) -> None:
        counts["cached" if was_cached else "ran"] += 1
        if args.validate and not was_cached:
            _check_envelope(result)
        if not args.quiet:
            state = "cached" if was_cached else f"{result.runtime_s:.2f} s"
            seed = f" seed={result.seed}" if result.seed is not None else ""
            print(f"[{index + 1}/{total}] {result.experiment} [{result.engine}]{seed} {state}")

    # The campaign collector sees what no per-run document can: cache
    # hits and misses happen in this process, between driver calls.  It
    # lands in the store's telemetry sidecar, never inside an envelope.
    collector = Collector()
    with collector.activate():
        runner.run_batch(specs, store=store, resume=not (args.no_resume or args.refresh), on_result=on_result)
    if store is not None and collector.counters:
        store.append_campaign_telemetry(collector.to_dict())
    summary = f"{counts['ran']} executed, {counts['cached']} reused"
    if store is not None:
        summary += f"; store {store.root} now holds {len(store)} result(s)"
    print(f"campaign: {total} spec(s), {summary}")
    if args.manifest:
        batch = full_batch if full_batch is not None else specs
        shard_count = args.shard_count if args.shard_count is not None else 1
        shard_index = args.shard_index if args.shard_index is not None else 0
        manifest = CampaignManifest(
            grid_hash=grid_hash(batch),
            spec_count=len(batch),
            shard_count=shard_count,
            shards=(
                ShardEntry(
                    index=shard_index,
                    status="complete",
                    uri=Path(store.root).resolve().as_uri() if store is not None else None,
                    result_count=total,
                ),
            ),
        )
        write_manifest(args.manifest, manifest)
        print(
            f"wrote manifest {args.manifest} "
            f"(shard {shard_index + 1}/{shard_count}, grid {manifest.grid_hash[:12]})"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    modes = sum([bool(args.names), args.all, args.specs is not None])
    if modes != 1:
        print("error: give experiment names, --all, or --specs (exactly one)", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return 2
    if (args.shard_index is None) != (args.shard_count is None):
        print("error: --shard-index and --shard-count come as a pair", file=sys.stderr)
        return 2
    if args.shard_count is not None and args.specs is None:
        print("error: --shard-index/--shard-count require --specs", file=sys.stderr)
        return 2
    if args.manifest is not None and args.specs is None:
        print("error: --manifest requires --specs (the manifest records the grid identity)", file=sys.stderr)
        return 2
    overrides = dict(args.overrides)

    if args.specs is not None:
        if overrides or args.fast:
            print("error: --set/--fast do not apply to --specs (edit the grid document)", file=sys.stderr)
            return 2
        if args.json_path or args.json_dir:
            print("error: use --store (not --json/--json-dir) with --specs", file=sys.stderr)
            return 2
        batch = read_spec_files(args.specs)
        selected = batch
        if args.shard_count is not None:
            selected = shard_slice(batch, args.shard_index, args.shard_count)
        return _run_campaign(selected, args, full_batch=batch)

    names = [e.name for e in iter_experiments()] if args.all else args.names
    if args.json_path and len(names) > 1:
        print("error: --json takes a single experiment; use --json-dir for several", file=sys.stderr)
        return 2
    if overrides and len(names) > 1:
        print("error: --set applies to a single experiment", file=sys.stderr)
        return 2

    if args.jobs > 1 or args.store:
        if args.json_path or args.json_dir:
            print("error: use --store (not --json/--json-dir) with --jobs/--store runs", file=sys.stderr)
            return 2
        specs = []
        for name in names:
            experiment = get_experiment(name)
            params = dict(experiment.fast_params) if args.fast else {}
            params.update(overrides)
            specs.append(ExperimentSpec(experiment=name, params=params))
        return _run_campaign(specs, args)

    runner = Runner(seed=args.seed, engine=args.engine, backend=args.backend)
    for name in names:
        experiment = get_experiment(name)
        params = dict(experiment.fast_params) if args.fast else {}
        params.update(overrides)
        result = runner.run(name, params=params)
        _emit(result, experiment, args)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    if args.check:
        up_to_date, _ = check_report(store, args.output)
        if not up_to_date:
            print(
                f"error: {args.output} is out of date with store {args.store}; "
                f"regenerate with: python -m repro report --store {args.store} --output {args.output}",
                file=sys.stderr,
            )
            return 1
        print(f"{args.output} is up to date with store {args.store}")
        return 0
    if args.output == "-":
        print(generate_report(store))
        return 0
    write_report(store, args.output)
    print(f"wrote {args.output} from store {args.store}")
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    # A custom --output-dir carries its own gallery document by default, so
    # "render elsewhere" never clobbers the committed FIGURES.md.
    gallery = args.gallery
    if gallery is None:
        gallery = "FIGURES.md" if args.output_dir == "figures" else str(Path(args.output_dir) / "FIGURES.md")

    if args.check_manifest:
        if args.experiments:
            print("error: --check-manifest verifies the whole gallery; drop --experiment", file=sys.stderr)
            return 2
        up_to_date, problems = check_gallery(
            store, output=gallery, figures_dir=args.output_dir, format=args.format
        )
        if not up_to_date:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            print(
                f"regenerate with: python -m repro plot --store {args.store} "
                f"--output-dir {args.output_dir} --format {args.format}",
                file=sys.stderr,
            )
            return 1
        print(f"{gallery} and {args.output_dir}/ are up to date with store {args.store}")
        return 0

    if args.experiments:
        for name in args.experiments:
            get_experiment(name)  # unknown names fail before any file is written
        wanted = set(args.experiments)
        by_experiment: dict[str, list[Result]] = {}
        for result in store.iter_results():  # one decode pass for any number of names
            if result.experiment in wanted:
                by_experiment.setdefault(result.experiment, []).append(result)
        missing = [name for name in args.experiments if name not in by_experiment]
        if missing:
            print(f"error: store {args.store} holds no results for {missing}", file=sys.stderr)
            return 1
        directory = Path(args.output_dir)
        directory.mkdir(parents=True, exist_ok=True)
        for name in args.experiments:
            picked = representative(by_experiment[name])
            data = render_experiment(name, picked.payload, format=args.format)
            target = directory / figure_filename(name, format=args.format)
            target.write_bytes(data)
            print(f"wrote {target}")
        return 0

    _, images = write_gallery(store, output=gallery, figures_dir=args.output_dir, format=args.format)
    for file_name in images:
        print(f"wrote {Path(args.output_dir) / file_name}")
    print(f"wrote {gallery} ({len(images)} figure(s) from store {args.store})")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    results = list(store.iter_results())
    if args.experiment is not None:
        get_experiment(args.experiment)  # unknown names fail loudly
        results = [result for result in results if result.experiment == args.experiment]
    if not results:
        print(f"error: store {args.store} holds no matching results", file=sys.stderr)
        return 1
    frame = stats_frame(results)
    totals = counter_totals(results)
    campaign = campaign_counter_totals(store)
    if args.json:
        print(
            json.dumps(
                {"experiments": frame.rows(), "counters": totals, "campaign_counters": campaign},
                indent=2,
            )
        )
        return 0
    width = max(len(name) for name in frame.column("experiment"))
    header = f"{'experiment'.ljust(width)}  runs  obs  mean s   p50 s    p95 s    spans  events/s  fast-path"
    print(header)
    print("-" * len(header))
    for row in frame.rows():
        print(
            f"{row['experiment'].ljust(width)}  {row['runs']:4d}  {row['observed']:3d}  "
            f"{row['runtime_mean_s']:7.3f}  {row['runtime_p50_s']:7.3f}  {row['runtime_p95_s']:7.3f}  "
            f"{row['spans']:5d}  {row['events_per_s']:8.0f}  {row['fast_path_hit_rate']:9.3f}"
        )
    if totals:
        print("\ncounters (store-wide totals):")
        name_width = max(len(name) for name in totals)
        for name, value in totals.items():
            print(f"  {name.ljust(name_width)}  {value}")
    if campaign:
        print("\ncampaign counters (cache + fan-in totals):")
        name_width = max(len(name) for name in campaign)
        for name, value in campaign.items():
            print(f"  {name.ljust(name_width)}  {value}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    experiment = get_experiment(args.name)
    params = dict(experiment.fast_params) if args.fast else {}
    params.update(dict(args.overrides))
    result = Runner(seed=args.seed, engine=args.engine, backend=args.backend).run(args.name, params=params)
    print(f"== {experiment.title} [{result.engine}, {result.runtime_s:.2f} s] ==")
    for line in format_span_tree(result.telemetry):
        print(line)
    counters = result.telemetry["counters"]
    if counters:
        print("counters:")
        name_width = max(len(name) for name in counters)
        for name in sorted(counters):
            print(f"  {name.ljust(name_width)}  {counters[name]}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    sources = list(args.sources)
    combined: CampaignManifest | None = None
    if args.manifests:
        # Fan-in gate: the manifests must reassemble one complete campaign
        # before a single envelope moves — a missing or conflicting shard
        # aborts here rather than publishing a partial grid.
        combined = combine_manifests([read_manifest(path) for path in args.manifests])
        sources.extend(entry.uri for entry in combined.shards if entry.uri is not None)
    if not sources:
        print("error: give SOURCE stores/URIs and/or --manifest files listing shard URIs", file=sys.stderr)
        return 2
    destination = ResultStore(args.into)
    merged: list[tuple[str, Any]] = []
    ingested = 0
    for source in sources:
        stats = destination.merge(source)
        merged.append((source, stats))
        ingested += stats.ingested
        if not args.json:
            print(
                f"{source}: {stats.ingested} ingested, {stats.deduped} deduplicated, "
                f"{stats.torn_lines_skipped} torn line(s) skipped"
            )
    if args.json:
        document: dict[str, Any] = {
            "sources": [{"source": source, **stats.to_dict()} for source, stats in merged],
            "ingested": ingested,
            "deduped": sum(stats.deduped for _, stats in merged),
            "torn_lines_skipped": sum(stats.torn_lines_skipped for _, stats in merged),
            "results": len(destination),
        }
        if combined is not None:
            document["manifest"] = combined.to_dict()
        print(json.dumps(document, indent=2))
        return 0
    print(f"store {args.into} now holds {len(destination)} result(s) (+{ingested})")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    rules = select_rules(args.rules or None)
    if args.list_rules:
        width = max(len(rule.id) for rule in rules)
        category_width = max(len(rule.category) for rule in rules)
        for rule in rules:
            print(f"{rule.id.ljust(width)}  {rule.category.ljust(category_width)}  {rule.description}")
        return 0

    paths = args.paths or ["src/repro"]
    findings, files_checked = lint_paths(paths, args.rules or None)

    baseline_path = args.baseline
    if baseline_path is None and Path(_DEFAULT_BASELINE).is_file():
        baseline_path = _DEFAULT_BASELINE
    if args.write_baseline:
        target = baseline_path or _DEFAULT_BASELINE
        write_baseline(target, findings)
        print(f"wrote {target}: {len(findings)} grandfathered finding(s) from {files_checked} file(s)")
        return 0

    suppressed: list = []
    stale: list = []
    if baseline_path is not None and Path(baseline_path).is_file():
        outcome = apply_baseline(findings, load_baseline(baseline_path))
        findings, suppressed, stale = list(outcome.new), list(outcome.suppressed), list(outcome.stale)

    if args.markdown:
        Path(args.markdown).write_text(render_markdown(findings))
    if args.json:
        document = build_document(
            findings,
            rules=rules,
            files_checked=files_checked,
            suppressed=suppressed,
            stale=stale,
        )
        print(json.dumps(document, indent=2))
    else:
        for line in render_text(findings, suppressed=suppressed, stale=stale):
            print(line)

    failed = bool(findings) or (args.check and bool(stale))
    if not args.json:
        state = "failed" if failed else "clean"
        print(
            f"lint: {files_checked} file(s), {len(findings)} finding(s), "
            f"{len(suppressed)} grandfathered, {len(stale)} stale baseline entr(ies) — {state}"
        )
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "info":
            return _cmd_info(args)
        if args.command == "backends":
            return _cmd_backends(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "plot":
            return _cmd_plot(args)
        if args.command == "stats":
            return _cmd_stats(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "merge":
            return _cmd_merge(args)
        if args.command == "lint":
            return _cmd_lint(args)
        return _cmd_run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
