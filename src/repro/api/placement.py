"""Shared placement and sweep-geometry helpers for the figure drivers.

Every RSSI/BER-vs-distance driver (fig10, fig13, fig14, fig15, fig16,
fig17) used to roll its own inclusive ``np.arange`` grid, its own
"furthest point still above/below the threshold" scan, and — for the
shadowed Monte-Carlo figures — its own
:class:`~repro.channel.link_budget.BackscatterLinkBudget` construction
around a log-normal :class:`~repro.channel.propagation.PathLossModel`.
These helpers hoist that boilerplate into one place so the drivers state
only their physics.
"""

from __future__ import annotations

import numpy as np

from repro.channel.link_budget import BackscatterLinkBudget
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel

__all__ = ["distance_grid", "empirical_cdf", "furthest_reach", "shadowed_backscatter_budget"]


def distance_grid(start: float, stop: float, step: float) -> np.ndarray:
    """Inclusive sweep grid: ``start, start+step, ..., stop`` (the figures' x-axes)."""
    return np.arange(start, stop + step, step)


def furthest_reach(
    grid: np.ndarray, values: np.ndarray, threshold: float, *, below: bool = False, strict: bool = False
) -> float:
    """Furthest grid point whose value clears *threshold*.

    With ``below=False`` (the RSSI figures) a point clears when
    ``value >= threshold``; with ``below=True`` (the BER figures) when
    ``value <= threshold``.  ``strict=True`` excludes exact threshold hits
    (``<`` / ``>``).  Returns ``0.0`` when no point clears.
    """
    if below:
        mask = values < threshold if strict else values <= threshold
    else:
        mask = values > threshold if strict else values >= threshold
    indices = np.where(mask)[0]
    return float(grid[indices[-1]]) if indices.size else 0.0


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(sorted values, cumulative fraction) — the CDF the figure panels plot."""
    values = np.sort(np.asarray(samples))
    fractions = np.arange(1, values.size + 1) / values.size
    return values, fractions


def shadowed_backscatter_budget(
    tx_power_dbm: float,
    *,
    shadowing_sigma_db: float,
    noise_bandwidth_hz: float | None = None,
    receiver_sensitivity_dbm: float | None = None,
) -> BackscatterLinkBudget:
    """Two-hop budget with log-normal shadowing, as the Monte-Carlo figures use it."""
    kwargs: dict = {
        "source_power_dbm": tx_power_dbm,
        "path_loss": PathLossModel(shadowing_sigma_db=shadowing_sigma_db),
    }
    if noise_bandwidth_hz is not None:
        kwargs["noise"] = NoiseModel(bandwidth_hz=noise_bandwidth_hz)
    if receiver_sensitivity_dbm is not None:
        kwargs["receiver_sensitivity_dbm"] = receiver_sensitivity_dbm
    return BackscatterLinkBudget(**kwargs)
