"""The central experiment registry.

Each driver module in :mod:`repro.experiments` self-registers at import time
with a stable name, the paper artefact it reproduces, the engines it
supports and reduced "fast" parameters for smoke runs.  Everything else —
the parameter schema, defaults, whether the driver takes a ``seed`` or an
``engine`` — is introspected from the ``run`` signature, so a driver's
signature stays its single source of truth.

Importing :mod:`repro.api` does **not** import the drivers (that would be a
cycle); :func:`load_registry` imports :mod:`repro.experiments` on first use
and every lookup helper calls it, so user code never has to.
"""

from __future__ import annotations

import inspect
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import ConfigurationError

__all__ = [
    "Experiment",
    "Parameter",
    "register",
    "resolve_engine",
    "get_experiment",
    "experiment_names",
    "iter_experiments",
    "load_registry",
]

#: Engine names any experiment may declare.  ``batched`` is the epoch-batched
#: netsim engine; ``reference`` its scalar epoch oracle (the differential
#: tests' trusted twin, exposed so campaigns can cross-check engines).
KNOWN_ENGINES = ("scalar", "batch", "fast_path", "batched", "reference")

_REGISTRY: dict[str, "Experiment"] = {}
_LOADED = False


def resolve_engine(
    experiment: str, engine: str, engines: Mapping[str, Callable[..., Any] | None]
) -> Callable[..., Any] | None:
    """Resolve *engine* against an experiment's capability table.

    This is the **single** place an unsupported-engine error originates —
    drivers and the Runner both funnel through it instead of carrying
    their own ``if engine not in (...)`` checks.  Returns the registered
    implementation callable (``None`` when the entry was declared by name
    only).
    """
    try:
        return engines[engine]
    except KeyError:
        raise ConfigurationError(
            f"engine not supported: experiment {experiment!r} supports "
            f"{list(engines)}, got {engine!r}"
        ) from None


@dataclass(frozen=True)
class Parameter:
    """One keyword parameter of a driver's ``run`` signature."""

    name: str
    default: Any
    annotation: str


@dataclass(frozen=True)
class Experiment:
    """Registry entry describing one runnable experiment.

    Attributes
    ----------
    name:
        Stable registry key (``fig11``, ``table_power``, ``mac_scaling``).
    title:
        Human-readable headline, shown by ``python -m repro list``.
    run:
        The driver's ``run`` callable; returns the native payload dataclass.
    engines:
        Declarative engine capability table: engine name → implementation
        callable (or ``None`` for entries declared by name only).  The
        first key is the default engine.  ``python -m repro info`` lists
        engines (and, for backend-aware drivers, array backends) from this
        same structure, and every unsupported-engine error funnels through
        :func:`resolve_engine`.
    artifact:
        Paper artefact label (``"Fig. 11"``), or ``None`` for
        beyond-the-paper workloads such as the MAC scaling sweep.
    fast_params:
        Reduced parameters for smoke runs (``python -m repro run --fast``).
    summarize:
        Callable mapping a payload to headline report lines.
    metrics:
        Callable mapping a payload to named scalar headline metrics
        (``{"median_per_2mbps": 0.031, ...}``).  This is what
        :func:`repro.api.analytics.aggregate` collapses across
        seed-replicates into mean/std/CI columns, so values must be plain
        floats.  ``None`` means the experiment has no scalar metrics.
    plot:
        Callable mapping a payload to a declarative
        :class:`repro.plots.figure.Figure`; ``python -m repro plot``
        renders it.  ``None`` means the experiment has no figure.
    parameters:
        Introspected keyword parameters of ``run``.
    """

    name: str
    title: str
    run: Callable[..., Any]
    engines: Mapping[str, Callable[..., Any] | None] = field(
        default_factory=lambda: {"scalar": None}
    )
    artifact: str | None = None
    fast_params: dict[str, Any] = field(default_factory=dict)
    summarize: Callable[[Any], list[str]] | None = None
    metrics: Callable[[Any], dict[str, float]] | None = None
    plot: Callable[[Any], Any] | None = None
    parameters: tuple[Parameter, ...] = ()

    @property
    def module(self) -> str:
        """Module the driver lives in."""
        return self.run.__module__

    @property
    def description(self) -> str:
        """First line of the driver module's docstring."""
        doc = inspect.getmodule(self.run).__doc__ or self.run.__doc__ or ""
        return doc.strip().splitlines()[0] if doc.strip() else ""

    @property
    def takes_seed(self) -> bool:
        """Whether ``run`` accepts a ``seed`` keyword."""
        return any(p.name == "seed" for p in self.parameters)

    @property
    def takes_engine(self) -> bool:
        """Whether ``run`` accepts an ``engine`` keyword."""
        return any(p.name == "engine" for p in self.parameters)

    @property
    def takes_backend(self) -> bool:
        """Whether ``run`` accepts a ``backend`` (array namespace) keyword."""
        return any(p.name == "backend" for p in self.parameters)

    @property
    def default_seed(self) -> int | None:
        """The ``seed`` default from the signature, or ``None``."""
        for parameter in self.parameters:
            if parameter.name == "seed":
                return parameter.default
        return None

    @property
    def engine_names(self) -> tuple[str, ...]:
        """Declared engine names, default first."""
        return tuple(self.engines)

    @property
    def default_engine(self) -> str:
        """The first declared engine."""
        return next(iter(self.engines))

    def supports(self, engine: str) -> bool:
        """Whether *engine* is one of the declared engines."""
        return engine in self.engines

    def check_engine(self, engine: str) -> None:
        """Raise unless *engine* is in the capability table."""
        resolve_engine(self.name, engine, self.engines)

    def check_params(self, params: dict[str, Any]) -> None:
        """Reject parameters that are not in the ``run`` signature."""
        known = {p.name for p in self.parameters}
        unknown = sorted(set(params) - known)
        if unknown:
            raise ConfigurationError(
                f"experiment {self.name!r} has no parameter(s) {unknown}; available: {sorted(known)}"
            )

    def __call__(self, **params: Any) -> Any:
        """Run the driver directly, returning its native payload."""
        return self.run(**params)


def _introspect_parameters(run: Callable[..., Any]) -> tuple[Parameter, ...]:
    parameters = []
    for parameter in inspect.signature(run).parameters.values():
        if parameter.kind not in (parameter.KEYWORD_ONLY, parameter.POSITIONAL_OR_KEYWORD):
            continue
        default = None if parameter.default is inspect.Parameter.empty else parameter.default
        annotation = "" if parameter.annotation is inspect.Parameter.empty else str(parameter.annotation)
        parameters.append(Parameter(name=parameter.name, default=default, annotation=annotation))
    return tuple(parameters)


def register(
    *,
    name: str,
    title: str,
    run: Callable[..., Any],
    engines: Mapping[str, Callable[..., Any] | None] | Sequence[str] = ("scalar",),
    artifact: str | None = None,
    fast_params: dict[str, Any] | None = None,
    summarize: Callable[[Any], list[str]] | None = None,
    metrics: Callable[[Any], dict[str, float]] | None = None,
    plot: Callable[[Any], Any] | None = None,
) -> Experiment:
    """Register a driver; called once at the bottom of each driver module.

    ``engines`` is preferably a capability table mapping each engine name
    to its implementation callable (a plain name sequence is still
    accepted and stored with ``None`` implementations).
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"experiment {name!r} is already registered")
    if isinstance(engines, Mapping):
        table: dict[str, Callable[..., Any] | None] = dict(engines)
    else:
        table = {engine: None for engine in engines}
    if not table:
        raise ConfigurationError(f"experiment {name!r} must declare at least one engine")
    unknown = sorted(set(table) - set(KNOWN_ENGINES))
    if unknown:
        raise ConfigurationError(f"experiment {name!r} declares unknown engines {unknown}; known: {KNOWN_ENGINES}")
    experiment = Experiment(
        name=name,
        title=title,
        run=run,
        engines=table,
        artifact=artifact,
        fast_params=dict(fast_params or {}),
        summarize=summarize,
        metrics=metrics,
        plot=plot,
        parameters=_introspect_parameters(run),
    )
    experiment.check_params(experiment.fast_params)
    _REGISTRY[name] = experiment
    return experiment


def load_registry() -> None:
    """Import the driver package so every experiment is registered."""
    global _LOADED
    if _LOADED:
        return
    import repro.experiments  # noqa: F401  (import triggers registration)

    _LOADED = True


def get_experiment(name: str) -> Experiment:
    """Look up one experiment by registry name."""
    load_registry()
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise ConfigurationError(f"unknown experiment {name!r}; available: {experiment_names()}") from exc


def experiment_names() -> list[str]:
    """All registered experiment names, in registration order."""
    load_registry()
    return list(_REGISTRY)


def iter_experiments() -> list[Experiment]:
    """All registered experiments, in registration order."""
    load_registry()
    return list(_REGISTRY.values())
