"""The uniform result envelope returned by the :class:`repro.api.Runner`.

Every experiment run — regardless of which of the 13 drivers produced it or
which engine executed it — is wrapped in one :class:`Result` carrying the
resolved parameters, the effective seed, the engine, the wall-clock runtime
and the driver's native payload dataclass.  The envelope serializes to
strict JSON and back (:meth:`Result.to_json` / :meth:`Result.from_json`)
with the payload reconstructed as the original dataclass type, so figures
can be regenerated, archived and diffed from the shell.

The optional ``telemetry`` field carries the run's
:mod:`repro.obs.metrics` document (its own ``telemetry_version`` stamp,
counters/gauges/span tree).  Like ``runtime_s`` it is observability-only:
excluded from :func:`repro.api.store.result_key` and from every
byte-deterministic generated document, so telemetry-on and telemetry-off
campaigns produce identical reports and figures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.api.serialization import decode, encode, payload_equal, validate_encoded
from repro.exceptions import ConfigurationError
from repro.obs.metrics import validate_telemetry

__all__ = ["Result", "SCHEMA_VERSION", "validate_result_dict"]

#: Version stamp of the serialized envelope layout.
SCHEMA_VERSION = 1

_REQUIRED_FIELDS = {
    "schema_version": int,
    "experiment": str,
    "engine": str,
    "params": dict,
    "runtime_s": (int, float),
}


@dataclass(frozen=True)
class Result:
    """One executed experiment: provenance plus the driver's native payload.

    Attributes
    ----------
    experiment:
        Registry name (``fig11``, ``table_power``, ...).
    engine:
        Engine that executed the run (``scalar``, ``batch``, ``fast_path``).
    seed:
        Effective RNG seed, or ``None`` for deterministic experiments.
    backend:
        Array backend (:mod:`repro.mc.backend` registry name) the run was
        resolved onto, or ``None`` for experiments that take no backend.
        Part of result identity: the same invocation on another backend is
        a distinct result, though ``numpy`` remains the reference the
        committed documents are generated from.
    params:
        The keyword arguments the driver was called with (excluding
        ``engine``, which is recorded separately).
    runtime_s:
        Wall-clock runtime of the driver call.
    payload:
        The driver's native frozen-dataclass result, untouched.
    telemetry:
        Optional :mod:`repro.obs` telemetry document (already strict
        JSON), or ``None`` when the run was not observed.  Never part of
        result identity or of generated-document bytes.
    source_hash:
        Normalized source digest of the driver module that produced this
        run (:func:`repro.fabric.cas.driver_source_hash`), or ``None``
        when unavailable.  Cache metadata only: the content-addressed
        resume policy matches against it, but like ``runtime_s`` it
        never participates in :func:`~repro.api.store.result_key`
        identity or generated-document bytes.
    """

    experiment: str
    engine: str
    seed: int | None
    backend: str | None = None
    params: dict[str, Any] = field(default_factory=dict)
    runtime_s: float = 0.0
    payload: Any = None
    telemetry: dict[str, Any] | None = None
    source_hash: str | None = None

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON-compatible dict form of the envelope."""
        document = {
            "schema_version": SCHEMA_VERSION,
            "experiment": self.experiment,
            "engine": self.engine,
            "seed": self.seed,
            "backend": self.backend,
            "params": encode(self.params),
            "runtime_s": float(self.runtime_s),
            "payload": encode(self.payload),
        }
        if self.telemetry is not None:
            document["telemetry"] = self.telemetry
        if self.source_hash is not None:
            document["source_hash"] = self.source_hash
        return document

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize the envelope to a strict JSON string."""
        return json.dumps(self.to_dict(), indent=indent, allow_nan=False)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Result":
        """Rebuild an envelope (payload dataclass included) from its dict form."""
        validate_result_dict(data)
        return cls(
            experiment=data["experiment"],
            engine=data["engine"],
            seed=data["seed"],
            backend=data.get("backend"),
            params=decode(data["params"]),
            runtime_s=float(data["runtime_s"]),
            payload=decode(data["payload"]),
            telemetry=data.get("telemetry"),
            source_hash=data.get("source_hash"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Result":
        """Rebuild an envelope from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def same_payload(self, other: "Result") -> bool:
        """Numpy-aware deep equality of the two envelopes' payloads."""
        return payload_equal(self.payload, other.payload)


def validate_result_dict(data: Any) -> None:
    """Validate the serialized envelope against the result schema.

    Checks the top-level fields' presence and types, then the encoded
    ``params``/``payload`` trees structurally.  Raises
    :class:`~repro.exceptions.ConfigurationError` on the first violation.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(f"result document must be an object, got {type(data).__name__}")
    for name, expected in _REQUIRED_FIELDS.items():
        if name not in data:
            raise ConfigurationError(f"result document is missing required field {name!r}")
        if not isinstance(data[name], expected) or isinstance(data[name], bool):
            raise ConfigurationError(f"result field {name!r} has type {type(data[name]).__name__}")
    if data["schema_version"] != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported result schema_version {data['schema_version']!r} (expected {SCHEMA_VERSION})"
        )
    if "seed" not in data or not (data["seed"] is None or isinstance(data["seed"], int)):
        raise ConfigurationError("result field 'seed' must be an integer or null")
    # Envelopes written before the array-API backend existed omit the field.
    if not (data.get("backend") is None or isinstance(data["backend"], str)):
        raise ConfigurationError("result field 'backend' must be a string or null")
    if "payload" not in data:
        raise ConfigurationError("result document is missing required field 'payload'")
    # Envelopes written before the campaign fabric existed omit the field.
    if not (data.get("source_hash") is None or isinstance(data["source_hash"], str)):
        raise ConfigurationError("result field 'source_hash' must be a string or null")
    if data.get("telemetry") is not None:
        validate_telemetry(data["telemetry"])
    validate_encoded(data["params"], path="params")
    validate_encoded(data["payload"], path="payload")
