"""The engine-dispatching, process-sharding experiment runner.

The :class:`Runner` is the one execution path for every registered
experiment.  It owns the three policies the bespoke drivers used to each
carry on their own:

* **Seeding** — an explicit ``params["seed"]`` wins, then the spec's seed,
  then the runner's, then the driver's signature default.  Experiments
  without a ``seed`` parameter are deterministic and record ``seed=None``.
* **Engine dispatch** — the requested engine must be one the experiment
  registered; anything else raises
  :class:`~repro.exceptions.ConfigurationError` (never a silent scalar
  fallback).  Drivers with a native ``engine`` keyword receive it; for
  scalar-only drivers ``scalar`` is implied.
* **Backend resolution** — experiments with a ``backend`` parameter run on
  the array backend from the spec, then the runner, then
  :func:`repro.mc.backend.default_backend` (the ``REPRO_BACKEND``
  environment variable, else numpy).  The resolved name is recorded on the
  envelope and is part of result identity; requesting a backend for an
  experiment that takes none raises.
* **Sharding** — ``Runner(jobs=N)`` executes spec batches across ``N``
  worker processes (:class:`concurrent.futures.ProcessPoolExecutor`).
  Every spec's effective seed is resolved *before* dispatch, each spec
  owns its whole RNG stream, and results come back in spec order — so a
  batch is bit-identical regardless of shard count.

Runs come back as :class:`repro.api.result.Result` envelopes.
:meth:`Runner.run_batch` optionally streams them into a
:class:`~repro.api.store.ResultStore` (workers append to their own JSONL
shard) and, with ``resume=True``, skips specs whose results a partial
store already holds — a killed campaign continues where it stopped.

Every driver call executes inside a root :mod:`repro.obs` span
(``run.<experiment>``), so the instrumentation points threaded through
netsim and mc land in one telemetry document per run, attached to the
envelope's ``telemetry`` field.  Worker processes each collect their own
runs' telemetry; because it rides inside the envelope JSON, sharded
campaigns aggregate it across the process boundary for free.  Pass
``Runner(telemetry=False)`` to disable collection entirely — results,
reports and figures are byte-identical either way.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable, Iterator, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any

from repro.api.registry import Experiment, iter_experiments, load_registry
from repro.api.result import Result
from repro.api.spec import ExperimentSpec
from repro.api.store import ResultStore, document_content_key, invocation_key
from repro.exceptions import ConfigurationError, ReproError

# Module (not name) import: repro.fabric.cas itself imports repro.api
# submodules, so binding its names here would break whichever package is
# imported second.  Attribute lookup at call time sidesteps the cycle.
from repro.fabric import cas as _cas
from repro.mc.backend import default_backend, get_backend
from repro.obs import metrics as obs
from repro.obs.metrics import Collector

__all__ = ["Runner"]


def _recorded_params(call_params: dict[str, Any]) -> dict[str, Any]:
    """Driver call params minus the dispatch keywords recorded separately."""
    return {name: value for name, value in call_params.items() if name not in ("engine", "backend")}


def _keyed_store_documents(store: ResultStore, policy: str):
    """``(cache key, raw envelope)`` pairs from *store* under *policy*.

    Under the content policy, envelopes that recorded no driver source
    hash (pre-fabric stores) are skipped entirely — they can never be
    content hits.
    """
    if policy == "invocation":
        yield from store.iter_keyed_documents()
        return
    for document in store.iter_documents():
        key = document_content_key(document)
        if key is not None:
            yield key, document


def _run_spec_task(
    task: tuple[dict[str, Any], int | None, str | None, str | None, str | None, bool],
) -> dict[str, Any]:
    """Worker entry point: execute one serialized spec, return its envelope.

    Module-level (hence picklable under any multiprocessing start method);
    crosses the process boundary as plain JSON-compatible dicts so payload
    dataclasses never need to pickle.  When a store directory is given the
    worker appends the envelope to its own PID-named shard.
    """
    spec_dict, seed, engine, backend, store_dir, telemetry = task
    runner = Runner(seed=seed, engine=engine, backend=backend, telemetry=telemetry)
    result = runner._execute(ExperimentSpec.from_dict(spec_dict))
    document = result.to_dict()
    if store_dir is not None:
        ResultStore(store_dir).append_document(document)
    return document


class Runner:
    """Executes registered experiments uniformly.

    Parameters
    ----------
    seed:
        Default seed applied to every seedable experiment this runner
        executes (unless a spec or params override it).  ``None`` keeps
        each driver's own default, which reproduces the historical runs.
    engine:
        Default engine for every run; ``None`` uses each experiment's
        first registered engine (``scalar`` everywhere today).
    backend:
        Default array backend for experiments that take one; ``None``
        falls back to :func:`repro.mc.backend.default_backend`.
    jobs:
        Worker processes for :meth:`run_batch` / :meth:`run_all`.  ``1``
        (the default) executes in-process; results are identical either
        way because seeds are resolved per spec before dispatch.
    telemetry:
        Whether to collect a :mod:`repro.obs` telemetry document per run
        and attach it to the envelope (default ``True``).  Payloads,
        result keys, reports and figures are byte-identical either way.
    cache:
        Store-resume policy for :meth:`run_batch`:

        * ``"content"`` (the default) matches specs against stored
          envelopes by :func:`repro.fabric.cas.content_key` — the
          invocation material *plus* the driver module's normalized
          source digest — so caches survive parameter-preserving
          refactors and invalidate on behavioural edits;
        * ``"invocation"`` is the historical exact invocation-key match
          (blind to driver source);
        * ``"off"`` never matches (every spec re-executes; fresh
          envelopes are still appended to the store).
    """

    def __init__(
        self,
        *,
        seed: int | None = None,
        engine: str | None = None,
        backend: str | None = None,
        jobs: int = 1,
        telemetry: bool = True,
        cache: str = "content",
    ):
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.seed = seed
        self.engine = engine
        self.backend = backend
        self.jobs = jobs
        self.telemetry = telemetry
        self.cache = _cas.check_policy(cache)

    def run(
        self,
        experiment: str | ExperimentSpec,
        *,
        params: dict[str, Any] | None = None,
        engine: str | None = None,
        seed: int | None = None,
        backend: str | None = None,
    ) -> Result:
        """Run one experiment and wrap its payload in a :class:`Result`.

        ``experiment`` may be a registry name (with optional keyword
        overrides) or a ready-made :class:`ExperimentSpec`.
        """
        if isinstance(experiment, ExperimentSpec):
            spec = experiment
            if params or engine or seed is not None or backend is not None:
                spec = ExperimentSpec(
                    experiment=spec.experiment,
                    params={**spec.params, **(params or {})},
                    engine=engine or spec.engine,
                    seed=seed if seed is not None else spec.seed,
                    backend=backend or spec.backend,
                )
        else:
            spec = ExperimentSpec(
                experiment=experiment, params=dict(params or {}), engine=engine, seed=seed, backend=backend
            )
        return self._execute(spec)

    def run_batch(
        self,
        specs: Iterable[ExperimentSpec],
        *,
        store: ResultStore | None = None,
        resume: bool = True,
        on_result: Callable[[int, Result, bool], None] | None = None,
    ) -> list[Result]:
        """Execute a batch of specs, one :class:`Result` per spec, in order.

        With ``jobs > 1`` the batch is sharded across worker processes;
        per-spec seeds were fixed when the specs were built, so the results
        are bit-identical to a serial run.  With a ``store``, every fresh
        envelope is appended to it (workers write their own shards) and —
        unless ``resume=False`` — specs whose invocation the store already
        holds are *not* re-executed; their stored envelopes are returned in
        place, so a killed campaign merges cleanly on rerun.

        ``on_result(index, result, was_cached)`` is invoked as each spec
        completes (in spec order), for progress reporting.
        """
        specs = list(specs)
        # Resolve every spec up front: invalid names/params/engines abort the
        # batch before any work (or worker process) starts, and the resolved
        # identities are what cache matching compares against the store.
        identities = [self._resolve_identity(spec) for spec in specs]

        cached: dict[int, Result] = {}
        pending: list[int] = list(range(len(specs)))
        policy = self.cache if (store is not None and resume) else "off"
        if policy != "off":
            # One pass over the raw shard lines: keys come from the cheap
            # params-only hash, and only envelopes this batch actually wants
            # pay for a full payload decode.
            by_key = self._cache_index(identities, policy)
            for key, document in _keyed_store_documents(store, policy):
                index = by_key.get(key)
                if index is not None and index not in cached:
                    cached[index] = Result.from_dict(document)
            pending = [index for index in range(len(specs)) if index not in cached]
            # Zero-valued counters would clutter every observed batch's
            # document; record only what actually happened.
            if cached:
                obs.count("store.resume_hits", len(cached))
                obs.count("fabric.cache.hits", len(cached))
            if pending:
                obs.count("store.resume_misses", len(pending))
                obs.count("fabric.cache.misses", len(pending))

        # Cached and pending indices are complementary and both ascending, so
        # walking spec order and pulling fresh results lazily reports each
        # spec as soon as it (or its stored envelope) is available.
        fresh = self._iter_pending(specs, pending, store)
        results: list[Result] = []
        for index in range(len(specs)):
            was_cached = index in cached
            if was_cached:
                result = cached[index]
            else:
                fresh_index, result = next(fresh)
                if fresh_index != index:
                    raise ReproError(
                        f"batch execution order desynchronised: expected spec {index}, "
                        f"got {fresh_index}"
                    )
            if on_result is not None:
                on_result(index, result, was_cached)
            results.append(result)
        return results

    def _iter_pending(
        self, specs: list[ExperimentSpec], pending: list[int], store: ResultStore | None
    ) -> "Iterator[tuple[int, Result]]":
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            for index in pending:
                result = self._execute(specs[index])
                if store is not None:
                    store.append(result)
                yield index, result
            return
        store_dir = str(store.root) if store is not None else None
        tasks = [
            (specs[index].to_dict(), self.seed, self.engine, self.backend, store_dir, self.telemetry)
            for index in pending
        ]
        chunksize = max(1, len(tasks) // (self.jobs * 4))
        with ProcessPoolExecutor(max_workers=self.jobs, initializer=load_registry) as executor:
            for index, document in zip(pending, executor.map(_run_spec_task, tasks, chunksize=chunksize), strict=True):
                yield index, Result.from_dict(document)

    def run_all(
        self,
        *,
        fast: bool = False,
        names: Sequence[str] | None = None,
        store: ResultStore | None = None,
        resume: bool = True,
    ) -> list[Result]:
        """Run every registered experiment (optionally with fast parameters).

        ``names`` restricts the sweep; an unknown name raises rather than
        being silently skipped.  Honours the runner's ``jobs`` and, like
        :meth:`run_batch`, can stream into (and resume from) a store.
        """
        registered = [experiment.name for experiment in iter_experiments()]
        if names is not None:
            unknown = sorted(set(names) - set(registered))
            if unknown:
                raise ConfigurationError(f"unknown experiment(s) {unknown}; available: {registered}")
        specs = [
            ExperimentSpec(experiment=experiment.name, params=dict(experiment.fast_params) if fast else {})
            for experiment in iter_experiments()
            if names is None or experiment.name in names
        ]
        return self.run_batch(specs, store=store, resume=resume)

    def _resolve_identity(
        self, spec: ExperimentSpec
    ) -> tuple[Experiment, str, int | None, str | None, dict[str, Any]]:
        """Validate *spec* and return its resolved invocation material.

        ``(experiment, engine, seed, backend, recorded params)`` — enough
        to derive either cache key without running anything.
        """
        experiment = spec.resolve()
        call_params, engine, seed, backend = self._resolve_call(spec, experiment)
        return experiment, engine, seed, backend, _recorded_params(call_params)

    def _cache_index(
        self,
        identities: list[tuple[Experiment, str, int | None, str | None, dict[str, Any]]],
        policy: str,
    ) -> dict[str, int]:
        """Map each spec's cache key (under *policy*) to its batch position.

        Under the content policy the driver source is hashed once per
        distinct experiment; drivers whose source is unavailable get no
        entry at all, so they can never false-hit — they just re-run.
        """
        index: dict[str, int] = {}
        source_hashes: dict[str, str | None] = {}
        for position, (experiment, engine, seed, backend, recorded) in enumerate(identities):
            if policy == "invocation":
                key = invocation_key(experiment.name, engine, seed, recorded, backend=backend)
            else:
                if experiment.name not in source_hashes:
                    source_hashes[experiment.name] = _cas.driver_source_hash(experiment)
                source_hash = source_hashes[experiment.name]
                if source_hash is None:
                    continue
                key = _cas.content_key(
                    experiment.name, engine, seed, recorded, backend=backend, source_hash=source_hash
                )
            index[key] = position
        return index

    def _execute(self, spec: ExperimentSpec) -> Result:
        experiment = spec.resolve()
        call_params, effective_engine, effective_seed, effective_backend = self._resolve_call(spec, experiment)
        telemetry: dict[str, Any] | None = None
        start = time.perf_counter()
        if self.telemetry:
            collector = Collector()
            with collector.activate(), collector.span(
                f"run.{experiment.name}", engine=effective_engine, seed=effective_seed
            ):
                payload = experiment.run(**call_params)
            telemetry = collector.to_dict()
        else:
            payload = experiment.run(**call_params)
        runtime = time.perf_counter() - start
        return Result(
            experiment=experiment.name,
            engine=effective_engine,
            seed=effective_seed,
            backend=effective_backend,
            params=_recorded_params(call_params),
            runtime_s=runtime,
            payload=payload,
            telemetry=telemetry,
            source_hash=_cas.driver_source_hash(experiment),
        )

    def _resolve_call(
        self, spec: ExperimentSpec, experiment: Experiment
    ) -> tuple[dict[str, Any], str, int | None, str | None]:
        params = dict(spec.params)

        engine = spec.engine or self.engine or experiment.default_engine
        # A runner-level default engine may not fit every experiment in a
        # batch; a spec-level request was already validated by resolve().
        experiment.check_engine(engine)
        if experiment.takes_engine:
            params["engine"] = engine

        backend: str | None = None
        if experiment.takes_backend:
            backend = spec.backend or self.backend or default_backend().name
            get_backend(backend)  # unknown names abort before any work runs
            params["backend"] = backend
        elif spec.backend or self.backend:
            requested = spec.backend or self.backend
            raise ConfigurationError(
                f"experiment {experiment.name!r} does not accept an array backend (got {requested!r})"
            )

        seed: int | None = None
        if experiment.takes_seed:
            if "seed" in params:
                seed = params["seed"]
            elif spec.seed is not None:
                seed = spec.seed
            elif self.seed is not None:
                seed = self.seed
            else:
                seed = experiment.default_seed
            params["seed"] = seed
        return params, engine, seed, backend
