"""The engine-dispatching experiment runner.

The :class:`Runner` is the one execution path for every registered
experiment.  It owns the two policies the bespoke drivers used to each
carry on their own:

* **Seeding** — an explicit ``params["seed"]`` wins, then the spec's seed,
  then the runner's, then the driver's signature default.  Experiments
  without a ``seed`` parameter are deterministic and record ``seed=None``.
* **Engine dispatch** — the requested engine must be one the experiment
  registered; anything else raises
  :class:`~repro.exceptions.ConfigurationError` (never a silent scalar
  fallback).  Drivers with a native ``engine`` keyword receive it; for
  scalar-only drivers ``scalar`` is implied.

Runs come back as :class:`repro.api.result.Result` envelopes, and
:meth:`Runner.run_batch` executes a list of
:class:`~repro.api.spec.ExperimentSpec` in order, so a scenario grid is
just data.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Sequence

from repro.api.registry import Experiment, iter_experiments
from repro.api.result import Result
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

__all__ = ["Runner"]


class Runner:
    """Executes registered experiments uniformly.

    Parameters
    ----------
    seed:
        Default seed applied to every seedable experiment this runner
        executes (unless a spec or params override it).  ``None`` keeps
        each driver's own default, which reproduces the historical runs.
    engine:
        Default engine for every run; ``None`` uses each experiment's
        first registered engine (``scalar`` everywhere today).
    """

    def __init__(self, *, seed: int | None = None, engine: str | None = None):
        self.seed = seed
        self.engine = engine

    def run(
        self,
        experiment: str | ExperimentSpec,
        *,
        params: dict[str, Any] | None = None,
        engine: str | None = None,
        seed: int | None = None,
    ) -> Result:
        """Run one experiment and wrap its payload in a :class:`Result`.

        ``experiment`` may be a registry name (with optional keyword
        overrides) or a ready-made :class:`ExperimentSpec`.
        """
        if isinstance(experiment, ExperimentSpec):
            spec = experiment
            if params or engine or seed is not None:
                spec = ExperimentSpec(
                    experiment=spec.experiment,
                    params={**spec.params, **(params or {})},
                    engine=engine or spec.engine,
                    seed=seed if seed is not None else spec.seed,
                )
        else:
            spec = ExperimentSpec(experiment=experiment, params=dict(params or {}), engine=engine, seed=seed)
        return self._execute(spec)

    def run_batch(self, specs: Iterable[ExperimentSpec]) -> list[Result]:
        """Execute a list of specs in order."""
        return [self._execute(spec) for spec in specs]

    def run_all(self, *, fast: bool = False, names: Sequence[str] | None = None) -> list[Result]:
        """Run every registered experiment (optionally with fast parameters).

        ``names`` restricts the sweep; an unknown name raises rather than
        being silently skipped.
        """
        registered = [experiment.name for experiment in iter_experiments()]
        if names is not None:
            unknown = sorted(set(names) - set(registered))
            if unknown:
                raise ConfigurationError(f"unknown experiment(s) {unknown}; available: {registered}")
        results = []
        for experiment in iter_experiments():
            if names is not None and experiment.name not in names:
                continue
            params = dict(experiment.fast_params) if fast else {}
            results.append(self.run(experiment.name, params=params))
        return results

    def _execute(self, spec: ExperimentSpec) -> Result:
        experiment = spec.resolve()
        call_params, effective_engine, effective_seed = self._resolve_call(spec, experiment)
        start = time.perf_counter()
        payload = experiment.run(**call_params)
        runtime = time.perf_counter() - start
        recorded = {name: value for name, value in call_params.items() if name != "engine"}
        return Result(
            experiment=experiment.name,
            engine=effective_engine,
            seed=effective_seed,
            params=recorded,
            runtime_s=runtime,
            payload=payload,
        )

    def _resolve_call(
        self, spec: ExperimentSpec, experiment: Experiment
    ) -> tuple[dict[str, Any], str, int | None]:
        params = dict(spec.params)

        engine = spec.engine or self.engine or experiment.engines[0]
        # A runner-level default engine may not fit every experiment in a
        # batch; a spec-level request was already validated by resolve().
        experiment.check_engine(engine)
        if experiment.takes_engine:
            params["engine"] = engine

        seed: int | None = None
        if experiment.takes_seed:
            if "seed" in params:
                seed = params["seed"]
            elif spec.seed is not None:
                seed = spec.seed
            elif self.seed is not None:
                seed = self.seed
            else:
                seed = experiment.default_seed
            params["seed"] = seed
        return params, engine, seed
