"""JSON-safe encoding of experiment payloads.

Every experiment driver returns a frozen dataclass whose fields mix numpy
arrays, nested dataclasses, tuples and dicts keyed by floats or tuples —
none of which survive ``json.dumps`` directly.  This module defines one
reversible encoding used by the :class:`repro.api.result.Result` envelope:

* scalars stay plain JSON values (non-finite floats become tagged nodes),
* ``np.ndarray`` → ``{"__kind__": "ndarray", "dtype": ..., "shape": ...,
  "data": ...}`` with complex arrays split into real/imaginary parts,
* tuples and non-string-keyed dicts become tagged nodes so the decoded
  object compares equal to the original,
* dataclasses → ``{"__kind__": "dataclass", "type": "module.QualName",
  "fields": {...}}``, re-imported on decode (``repro.*`` modules only).

:func:`payload_equal` is the matching deep-equality predicate (numpy-aware,
NaN-tolerant) and :func:`validate_encoded` the structural validator used by
the ``python -m repro run --validate`` smoke path.
"""

from __future__ import annotations

import dataclasses
import importlib
import json
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["canonical_json", "encode", "decode", "payload_equal", "validate_encoded"]

_KIND = "__kind__"

#: Non-finite floats are not valid strict JSON; encode them as strings.
_NONFINITE = {"nan": np.nan, "inf": np.inf, "-inf": -np.inf}


def _encode_float(value: float) -> Any:
    if np.isfinite(value):
        return float(value)
    if np.isnan(value):
        return {_KIND: "float", "value": "nan"}
    return {_KIND: "float", "value": "inf" if value > 0 else "-inf"}


def _sanitize_numbers(values: list) -> list:
    """Replace non-finite floats in a flat list with their string names."""
    return [
        v if not isinstance(v, float) or np.isfinite(v) else ("nan" if np.isnan(v) else ("inf" if v > 0 else "-inf"))
        for v in values
    ]


def _restore_numbers(values: list) -> list:
    return [_NONFINITE[v] if isinstance(v, str) else v for v in values]


def _encode_ndarray(array: np.ndarray) -> dict:
    node: dict[str, Any] = {
        _KIND: "ndarray",
        "dtype": str(array.dtype),
        "shape": list(array.shape),
    }
    flat = array.ravel()
    if np.issubdtype(array.dtype, np.complexfloating):
        node["real"] = _sanitize_numbers(flat.real.tolist())
        node["imag"] = _sanitize_numbers(flat.imag.tolist())
    else:
        node["data"] = _sanitize_numbers(flat.tolist())
    return node


def _decode_ndarray(node: dict) -> np.ndarray:
    dtype = np.dtype(node["dtype"])
    shape = tuple(node["shape"])
    if "real" in node:
        flat = np.asarray(_restore_numbers(node["real"]), dtype=float) + 1j * np.asarray(
            _restore_numbers(node["imag"]), dtype=float
        )
    else:
        flat = np.asarray(_restore_numbers(node["data"]))
    return flat.astype(dtype).reshape(shape)


def _dataclass_path(obj: Any) -> str:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}"


def _resolve_dataclass(path: str) -> type:
    module_name, _, qualname = path.rpartition(".")
    if not module_name.startswith("repro"):
        raise ConfigurationError(f"refusing to decode dataclass outside the repro package: {path!r}")
    try:
        target: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise ConfigurationError(f"cannot resolve serialized dataclass {path!r}") from exc
    if not dataclasses.is_dataclass(target):
        raise ConfigurationError(f"serialized type {path!r} is not a dataclass")
    return target


def encode(obj: Any) -> Any:
    """Encode *obj* into a strict-JSON-compatible tree."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return _encode_float(obj)
    if isinstance(obj, (np.bool_, np.integer, np.floating)):
        return encode(obj.item())
    if isinstance(obj, bytes):
        return {_KIND: "bytes", "hex": obj.hex()}
    if isinstance(obj, np.ndarray):
        return _encode_ndarray(obj)
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            _KIND: "dataclass",
            "type": _dataclass_path(obj),
            "fields": {f.name: encode(getattr(obj, f.name)) for f in dataclasses.fields(obj)},
        }
    if isinstance(obj, tuple):
        return {_KIND: "tuple", "items": [encode(item) for item in obj]}
    if isinstance(obj, list):
        return [encode(item) for item in obj]
    if isinstance(obj, dict):
        # A literal "__kind__" key would collide with the tag sentinel on
        # decode, so such dicts take the tagged-map form too.
        if _KIND not in obj and all(isinstance(key, str) for key in obj):
            return {key: encode(value) for key, value in obj.items()}
        return {_KIND: "map", "items": [[encode(key), encode(value)] for key, value in obj.items()]}
    raise ConfigurationError(f"cannot serialize object of type {type(obj).__name__}")


def canonical_json(obj: Any) -> str:
    """One canonical JSON string per value: encoded, sorted keys, no whitespace.

    The campaign layer hashes this form to derive per-spec seeds and result
    identities, so it must not depend on dict insertion order or formatting.
    """
    return json.dumps(encode(obj), sort_keys=True, separators=(",", ":"), allow_nan=False)


def decode(node: Any) -> Any:
    """Invert :func:`encode`."""
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, list):
        return [decode(item) for item in node]
    if isinstance(node, dict):
        kind = node.get(_KIND)
        if kind is None:
            return {key: decode(value) for key, value in node.items()}
        if kind == "float":
            return _NONFINITE[node["value"]]
        if kind == "bytes":
            return bytes.fromhex(node["hex"])
        if kind == "ndarray":
            return _decode_ndarray(node)
        if kind == "tuple":
            return tuple(decode(item) for item in node["items"])
        if kind == "map":
            return {_freeze(decode(key)): decode(value) for key, value in node["items"]}
        if kind == "dataclass":
            cls = _resolve_dataclass(node["type"])
            return cls(**{name: decode(value) for name, value in node["fields"].items()})
        raise ConfigurationError(f"unknown serialized node kind {kind!r}")
    raise ConfigurationError(f"cannot decode node of type {type(node).__name__}")


def _freeze(key: Any) -> Any:
    """Make a decoded map key hashable (lists inside keys become tuples)."""
    if isinstance(key, list):
        return tuple(_freeze(item) for item in key)
    return key


def payload_equal(left: Any, right: Any) -> bool:
    """Deep equality across dataclasses, dicts, sequences and numpy arrays.

    Floats compare exactly (the JSON round trip is value-preserving) except
    that NaNs compare equal to NaNs, so serialized results with undefined
    samples still round-trip to "the same payload".
    """
    if left is None or right is None:
        return left is None and right is None
    if isinstance(left, np.ndarray) or isinstance(right, np.ndarray):
        if not isinstance(left, np.ndarray) or not isinstance(right, np.ndarray):
            return False
        if left.dtype != right.dtype or left.shape != right.shape:
            return False
        if np.issubdtype(left.dtype, np.inexact):
            return bool(np.array_equal(left, right, equal_nan=True))
        return bool(np.array_equal(left, right))
    if dataclasses.is_dataclass(left) and not isinstance(left, type):
        if type(left) is not type(right):
            return False
        return all(
            payload_equal(getattr(left, f.name), getattr(right, f.name)) for f in dataclasses.fields(left)
        )
    if isinstance(left, dict):
        if not isinstance(right, dict) or set(left) != set(right):
            return False
        return all(payload_equal(value, right[key]) for key, value in left.items())
    if isinstance(left, (list, tuple)):
        if type(left) is not type(right) or len(left) != len(right):
            return False
        return all(payload_equal(a, b) for a, b in zip(left, right, strict=True))
    if isinstance(left, float) and isinstance(right, float):
        return left == right or (np.isnan(left) and np.isnan(right))
    return bool(left == right)


def _fail(path: str, message: str) -> None:
    raise ConfigurationError(f"invalid serialized payload at {path}: {message}")


def validate_encoded(node: Any, *, path: str = "payload") -> None:
    """Check that *node* is a well-formed :func:`encode` tree.

    Raises :class:`~repro.exceptions.ConfigurationError` naming the offending
    path on the first structural violation; returns ``None`` when valid.
    """
    if node is None or isinstance(node, (bool, int, float, str)):
        return
    if isinstance(node, list):
        for index, item in enumerate(node):
            validate_encoded(item, path=f"{path}[{index}]")
        return
    if not isinstance(node, dict):
        _fail(path, f"unexpected type {type(node).__name__}")
    kind = node.get(_KIND)
    if kind is None:
        for key, value in node.items():
            if not isinstance(key, str):
                _fail(path, f"non-string key {key!r} outside a tagged map node")
            validate_encoded(value, path=f"{path}.{key}")
        return
    if kind == "float":
        if node.get("value") not in _NONFINITE:
            _fail(path, f"bad non-finite float marker {node.get('value')!r}")
    elif kind == "bytes":
        if not isinstance(node.get("hex"), str):
            _fail(path, "bytes node missing hex string")
    elif kind == "ndarray":
        if not isinstance(node.get("dtype"), str) or not isinstance(node.get("shape"), list):
            _fail(path, "ndarray node missing dtype/shape")
        if ("data" in node) == ("real" in node):
            _fail(path, "ndarray node must carry exactly one of data or real/imag")
    elif kind == "tuple":
        if not isinstance(node.get("items"), list):
            _fail(path, "tuple node missing items list")
        for index, item in enumerate(node["items"]):
            validate_encoded(item, path=f"{path}[{index}]")
    elif kind == "map":
        if not isinstance(node.get("items"), list):
            _fail(path, "map node missing items list")
        for index, pair in enumerate(node["items"]):
            if not isinstance(pair, list) or len(pair) != 2:
                _fail(path, f"map entry {index} is not a [key, value] pair")
            validate_encoded(pair[0], path=f"{path}<key {index}>")
            validate_encoded(pair[1], path=f"{path}[{index}]")
    elif kind == "dataclass":
        if not isinstance(node.get("type"), str) or not node["type"].startswith("repro"):
            _fail(path, f"dataclass node with unexpected type {node.get('type')!r}")
        if not isinstance(node.get("fields"), dict):
            _fail(path, "dataclass node missing fields mapping")
        for name, value in node["fields"].items():
            validate_encoded(value, path=f"{path}.{name}")
    else:
        _fail(path, f"unknown node kind {kind!r}")
