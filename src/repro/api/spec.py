"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a registered experiment plus the parameter
overrides, engine and seed to run it with — the unit of work a
:class:`repro.api.Runner` executes, and the shape scenario grids are
enumerated in (a list of specs *is* a batch).  Specs are plain data:
they serialize with ``to_dict``/``from_dict`` so grids can live in JSON
configuration rather than code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.api.registry import Experiment, get_experiment
from repro.api.serialization import decode, encode
from repro.exceptions import ConfigurationError

__all__ = ["ExperimentSpec"]

#: The exact key set a serialized spec may carry.
_SPEC_KEYS = {"experiment", "params", "engine", "seed", "backend"}


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment invocation, described as data.

    Attributes
    ----------
    experiment:
        Registry name of the experiment to run.
    params:
        Keyword overrides for the driver's defaults.
    engine:
        Requested engine, or ``None`` for the runner/driver default.
    seed:
        Seed override, or ``None`` to fall back to the runner's seed and
        then the driver's own default.
    backend:
        Array backend (:mod:`repro.mc.backend` registry name) for drivers
        that accept one, or ``None`` for the runner/environment default.
    """

    experiment: str
    params: dict[str, Any] = field(default_factory=dict)
    engine: str | None = None
    seed: int | None = None
    backend: str | None = None

    def resolve(self) -> Experiment:
        """Look up the experiment and validate this spec against it."""
        experiment = get_experiment(self.experiment)
        experiment.check_params(self.params)
        if "engine" in self.params:
            raise ConfigurationError("pass the engine via ExperimentSpec.engine, not params['engine']")
        if "backend" in self.params:
            raise ConfigurationError("pass the backend via ExperimentSpec.backend, not params['backend']")
        if "seed" in self.params and self.seed is not None:
            raise ConfigurationError("seed given both in params and in ExperimentSpec.seed")
        if self.engine is not None:
            experiment.check_engine(self.engine)
        if self.backend is not None and not experiment.takes_backend:
            raise ConfigurationError(
                f"experiment {self.experiment!r} does not accept an array backend"
            )
        return experiment

    def to_dict(self) -> dict[str, Any]:
        """JSON-compatible dict form of the spec."""
        return {
            "experiment": self.experiment,
            "params": encode(self.params),
            "engine": self.engine,
            "seed": self.seed,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_dict` output, rejecting unknown keys.

        Grids live in hand-edited JSON, so a typoed key must fail loudly
        here — not silently drop an override or fail late mid-campaign.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(f"experiment spec must be an object, got {type(data).__name__}")
        unknown = sorted(set(data) - _SPEC_KEYS)
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in experiment spec; allowed: {sorted(_SPEC_KEYS)}"
            )
        if "experiment" not in data:
            raise ConfigurationError("experiment spec is missing required key 'experiment'")
        return cls(
            experiment=data["experiment"],
            params=decode(data.get("params") or {}),
            engine=data.get("engine"),
            seed=data.get("seed"),
            backend=data.get("backend"),
        )
