"""The queryable on-disk store campaign results accumulate into.

A :class:`ResultStore` is a directory of JSON-lines shards, one
:class:`~repro.api.result.Result` envelope per line.  Every writing
process appends to its **own** shard file (named after its PID by
default), so parallel workers never contend for a lock, a killed run
leaves at most one truncated trailing line, and merging two stores is
file concatenation.

Results are identified by :func:`result_key` — a content hash of the
resolved invocation (experiment, engine, seed, parameters) — which makes
reads idempotent: duplicate envelopes from a rerun collapse to one, and
:meth:`ResultStore.existing_keys` lets the runner skip specs a partial
store already holds.  :meth:`ResultStore.query` filters the decoded
results by experiment, engine, seed or any recorded parameter value.

:meth:`ResultStore.merge` is the distributed fan-in point: alongside
local store directories it ingests ``file://`` and ``http(s)://`` shard
URIs (:mod:`repro.fabric.remote`), so N machines can execute disjoint
slices of one grid and merge at report time.  Campaign-level telemetry
(cache hit/miss counters, merge spans) rides in a ``campaign-telemetry/``
sidecar directory inside the store — outside the ``*.jsonl`` shard
namespace, so it never masquerades as a result envelope.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.api.registry import get_experiment
from repro.api.result import Result
from repro.api.serialization import canonical_json, decode, payload_equal
from repro.exceptions import ConfigurationError
from repro.obs import metrics as obs

__all__ = [
    "MergeStats",
    "ResultStore",
    "document_content_key",
    "result_key",
    "invocation_key",
    "representative",
]

_UNSET = object()

#: Subdirectory (inside the store root) holding campaign telemetry
#: documents — deliberately not ``*.jsonl`` at the root, which is the
#: result-shard namespace.
_CAMPAIGN_TELEMETRY_DIR = "campaign-telemetry"


def invocation_key(
    experiment: str, engine: str, seed: int | None, params: Mapping[str, Any], *, backend: str | None = None
) -> str:
    """Content hash of one resolved invocation.

    ``params`` must be the *decoded* parameter dict (native tuples, arrays,
    floats) — an already-encoded tree would canonicalize differently because
    re-encoding wraps its tagged nodes.  Used both for stored envelopes
    (:func:`result_key`) and for not-yet-run specs, so a rerun can skip work
    a partial store already holds.

    ``backend`` is part of the identity when set: the same invocation run on
    another array backend is a distinct result.  ``None`` (experiments that
    take no backend, and envelopes written before backends existed) hashes
    exactly as it did historically.
    """
    material = {"experiment": experiment, "engine": engine, "seed": seed, "params": dict(params)}
    if backend is not None:
        material["backend"] = backend
    digest = hashlib.sha256(canonical_json(material).encode("utf-8"))
    return digest.hexdigest()[:16]


def result_key(result: Result) -> str:
    """Content hash identifying *result*'s invocation (not its payload)."""
    return invocation_key(
        result.experiment, result.engine, result.seed, result.params, backend=result.backend
    )


def representative(results: "list[Result]") -> Result:
    """The deterministic representative of a result set: smallest invocation key.

    Both generated documents (``EXPERIMENTS.md`` and ``FIGURES.md``) and
    the ``plot`` CLI use this same pick, so they always describe/render
    the same stored run for a given store content.
    """
    return min(results, key=result_key)


@dataclass(frozen=True)
class MergeStats:
    """Outcome of one :meth:`ResultStore.merge` call.

    Attributes
    ----------
    ingested:
        Envelopes copied into the destination store.
    deduped:
        Source envelopes skipped because the destination already held
        their invocation (or an earlier source line did).
    torn_lines_skipped:
        Source lines that did not parse as JSON — the truncated tail a
        killed writer leaves behind.
    """

    ingested: int
    deduped: int
    torn_lines_skipped: int

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form (the ``merge --json`` machine-readable output)."""
        return {
            "ingested": self.ingested,
            "deduped": self.deduped,
            "torn_lines_skipped": self.torn_lines_skipped,
        }


def _document_key(document: dict[str, Any]) -> str:
    # Decode only the params (not the payload): `invocation_key` canonicalizes
    # decoded values, and skipping the payload keeps key scans cheap on
    # 10^4-envelope stores.
    return invocation_key(
        document["experiment"],
        document["engine"],
        document["seed"],
        decode(document["params"]),
        backend=document.get("backend"),
    )


def document_content_key(document: dict[str, Any]) -> str | None:
    """The envelope's content-addressed cache key, or ``None``.

    ``None`` when the envelope predates the fabric and recorded no
    driver source hash — such envelopes are invisible to the
    ``cache="content"`` resume policy (a safe miss, never a false hit).
    """
    source_hash = document.get("source_hash")
    if source_hash is None:
        return None
    from repro.fabric.cas import content_key

    return content_key(
        document["experiment"],
        document["engine"],
        document["seed"],
        decode(document["params"]),
        backend=document.get("backend"),
        source_hash=source_hash,
    )


class ResultStore:
    """A directory of JSONL shards holding result envelopes.

    Parameters
    ----------
    root:
        Store directory; created on first use.
    shard:
        File name this process appends to.  Defaults to
        ``shard-<pid>.jsonl`` so concurrent writers never share a file.
    """

    def __init__(self, root: str | Path, *, shard: str | None = None):
        self.root = Path(root)
        if self.root.exists() and not self.root.is_dir():
            raise ConfigurationError(f"result store root {str(self.root)!r} is a file, not a directory")
        self.root.mkdir(parents=True, exist_ok=True)
        self._shard = shard or f"shard-{os.getpid()}.jsonl"
        if Path(self._shard).name != self._shard:
            raise ConfigurationError(f"shard name {self._shard!r} must not contain path separators")
        #: Torn (unparseable) lines skipped across this instance's reads.
        self.torn_lines_skipped = 0

    @property
    def shard_path(self) -> Path:
        """The shard file this store instance appends to."""
        return self.root / self._shard

    # -- writing -----------------------------------------------------------

    def append(self, result: Result) -> str:
        """Append one result envelope to this process's shard; returns its key."""
        self.append_document(result.to_dict())
        return result_key(result)

    def append_document(self, document: dict[str, Any]) -> None:
        """Append an already-encoded envelope (one compact JSON line)."""
        line = json.dumps(document, allow_nan=False, separators=(",", ":"))
        with open(self.shard_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def merge(self, other: "ResultStore | str | Path") -> MergeStats:
        """Copy envelopes from *other* that this store does not hold yet.

        *other* may be another :class:`ResultStore`, a local store
        directory, or a shard **URI** — ``file://`` (shard file or store
        directory) or ``http(s)://`` (a JSONL resource), fetched via
        :mod:`repro.fabric.remote` with torn-line tolerance.

        Duplicates (by :func:`result_key`) are skipped, so merging is
        idempotent.  Returns a :class:`MergeStats` accounting for every
        source line: ingested, deduplicated, or torn and skipped.
        """
        with obs.span("store.merge", source=str(other)):
            pairs, torn = self._source_documents(other)
            seen = self.existing_keys()
            ingested = 0
            deduped = 0
            for key, document in pairs:
                if key in seen:
                    deduped += 1
                    continue
                seen.add(key)
                self.append_document(document)
                ingested += 1
            stats = MergeStats(
                ingested=ingested,
                deduped=deduped,
                torn_lines_skipped=torn(),
            )
        obs.count("store.merge.ingested", stats.ingested)
        obs.count("store.merge.deduped", stats.deduped)
        obs.count("store.merge.torn_lines_skipped", stats.torn_lines_skipped)
        return stats

    @staticmethod
    def _source_documents(
        other: "ResultStore | str | Path",
    ) -> tuple[Iterator[tuple[str, dict[str, Any]]], Any]:
        """A merge source as ``(keyed-document iterator, torn-count callable)``.

        The torn count is a callable because a local store only knows how
        many lines tore *after* iteration finishes, while a remote fetch
        knows up front.
        """
        if isinstance(other, str) and "://" in other:
            from repro.fabric.remote import fetch_shard

            fetched = fetch_shard(other)
            obs.count("store.merge.remote_documents", len(fetched.documents))
            pairs = ((_document_key(document), document) for document in fetched.documents)
            return pairs, lambda: fetched.torn_lines_skipped
        source = other if isinstance(other, ResultStore) else ResultStore(other)
        torn_before = source.torn_lines_skipped
        return source.iter_keyed_documents(), lambda: source.torn_lines_skipped - torn_before

    # -- campaign telemetry ------------------------------------------------

    def append_campaign_telemetry(self, document: dict[str, Any]) -> None:
        """Record one campaign-level telemetry document in the sidecar.

        Campaign telemetry (content-cache hits/misses, merge spans) is
        collected *around* a batch, not inside any single run, so it
        cannot ride a result envelope.  It lives in
        ``<root>/campaign-telemetry/<shard>.jsonl`` — outside the root
        ``*.jsonl`` shard namespace — and is validated before any bytes
        are written, like every other generated document.
        """
        obs.validate_telemetry(document)
        directory = self.root / _CAMPAIGN_TELEMETRY_DIR
        directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(document, allow_nan=False, separators=(",", ":"))
        with open(directory / self._shard, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()

    def iter_campaign_telemetry(self) -> Iterator[dict[str, Any]]:
        """Yield campaign telemetry documents, torn-line tolerant."""
        directory = self.root / _CAMPAIGN_TELEMETRY_DIR
        if not directory.is_dir():
            return
        for path in sorted(directory.glob("*.jsonl")):
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        document = json.loads(line)
                    except json.JSONDecodeError:
                        self.torn_lines_skipped += 1
                        continue
                    if isinstance(document, dict):
                        yield document

    # -- reading -----------------------------------------------------------

    def shard_paths(self) -> list[Path]:
        """Every shard file in the store, in deterministic (sorted) order."""
        return sorted(self.root.glob("*.jsonl"))

    def iter_documents(self) -> Iterator[dict[str, Any]]:
        """Yield raw envelope dicts from every shard, duplicates included.

        A line that does not parse as JSON (the tail of a killed writer) is
        skipped — counted in :attr:`torn_lines_skipped` — rather than
        poisoning the whole store.
        """
        for path in self.shard_paths():
            with open(path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        document = json.loads(line)
                    except json.JSONDecodeError:
                        self.torn_lines_skipped += 1
                        obs.count("store.torn_lines_skipped")
                        continue
                    if isinstance(document, dict):
                        yield document

    def iter_keyed_documents(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(invocation key, raw envelope dict)`` pairs, duplicates included.

        The key is computed from the envelope's params alone — no payload
        decode — so callers can filter cheaply and decode only what they want.
        """
        for document in self.iter_documents():
            yield _document_key(document), document

    def iter_results(self) -> Iterator[Result]:
        """Yield decoded results, one per distinct invocation (first wins)."""
        seen: set[str] = set()
        for key, document in self.iter_keyed_documents():
            if key in seen:
                continue
            seen.add(key)
            yield Result.from_dict(document)

    def existing_keys(self) -> set[str]:
        """Keys of every distinct invocation the store holds."""
        return {key for key, _ in self.iter_keyed_documents()}

    def __len__(self) -> int:
        return len(self.existing_keys())

    def __iter__(self) -> Iterator[Result]:
        return self.iter_results()

    def query(
        self,
        experiment: str | None = None,
        *,
        engine: str | None = None,
        seed: Any = _UNSET,
        backend: Any = _UNSET,
        strict: bool = False,
        **param_filters: Any,
    ) -> list[Result]:
        """Decoded results matching every given filter.

        ``experiment``/``engine`` match the envelope fields, ``seed=None``
        matches deterministic runs, ``backend=None`` matches runs without an
        array backend, and any further keyword matches a recorded parameter
        by (numpy-aware) value equality.

        A parameter filter whose key an envelope does not record is, by
        default, simply a **non-match**: the envelope is excluded, exactly
        as if the value differed.  That is the right behaviour when one
        store mixes experiments with different signatures (and envelopes
        only record *explicit* overrides, not driver defaults) — but it
        also silently returns ``[]`` for a typoed filter name.  Pass
        ``strict=True`` to instead raise
        :class:`~repro.exceptions.ConfigurationError` when a filter key is
        not a parameter of a candidate envelope's experiment (per the
        registry schema) — mirroring the unknown-key rejection of spec
        documents.  An envelope that merely ran with the parameter's
        default stays a quiet non-match even under ``strict``.  A store
        with no candidates at all raises nothing (there is no experiment
        to check the keys against), and an envelope whose experiment has
        left the registry is checked against its recorded keys instead.
        """
        matches = []
        for result in self.iter_results():
            if experiment is not None and result.experiment != experiment:
                continue
            if engine is not None and result.engine != engine:
                continue
            if seed is not _UNSET and result.seed != seed:
                continue
            if backend is not _UNSET and result.backend != backend:
                continue
            unknown = sorted(set(param_filters) - set(result.params))
            if unknown and strict:
                self._check_filter_keys(result, unknown)
            if unknown or any(
                not payload_equal(result.params[name], value) for name, value in param_filters.items()
            ):
                continue
            matches.append(result)
        return matches

    @staticmethod
    def _check_filter_keys(result: Result, unknown: list[str]) -> None:
        """Raise if *unknown* filter keys are not in the experiment's schema."""
        try:
            known = {parameter.name for parameter in get_experiment(result.experiment).parameters}
        except ConfigurationError:
            # The experiment is gone from the registry (an old store);
            # the envelope's recorded keys are all we can validate against.
            known = set(result.params)
        bad = sorted(set(unknown) - known)
        if bad:
            raise ConfigurationError(
                f"unknown filter key(s) {bad} for experiment {result.experiment!r}; "
                f"known parameters: {sorted(known)}"
            )
