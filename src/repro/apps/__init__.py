"""Proof-of-concept applications from Section 5 of the paper.

* :mod:`repro.apps.contact_lens` — a smart contact lens whose glucose
  readings reach a phone by backscattering a smart watch's Bluetooth
  advertisements (Fig. 15).
* :mod:`repro.apps.neural_implant` — an implanted neural recorder under
  muscle tissue streaming ECoG frames to a commodity Wi-Fi device (Fig. 16).
* :mod:`repro.apps.card_to_card` — two passive credit-card devices
  exchanging data using a smartphone's Bluetooth transmissions as the only
  RF source (Fig. 17).
"""

from repro.apps.contact_lens import SmartContactLens, ContactLensReading
from repro.apps.neural_implant import NeuralImplant, NeuralFrame
from repro.apps.card_to_card import BackscatterCard, CardToCardLink, CardMessageResult

__all__ = [
    "SmartContactLens",
    "ContactLensReading",
    "NeuralImplant",
    "NeuralFrame",
    "BackscatterCard",
    "CardToCardLink",
    "CardMessageResult",
]
