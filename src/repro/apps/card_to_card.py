"""Card-to-card communication (paper §5.3, Fig. 17).

Two passive credit-card form-factor devices communicate with each other by
backscattering the single-tone Bluetooth transmissions of a nearby
smartphone — the ambient-backscatter idea, but with a Bluetooth device
instead of a TV tower as the carrier source.  One card modulates the tone
(simple on/off backscatter at 100 kbps), the other receives the modulated
reflection with its envelope-detector receiver and decodes the bits.

The model covers the pieces the paper's prototype has: synchronisation to
the Bluetooth advertisements via energy detection, an 18-bit payload at
100 kbps, and a bit-error-rate-versus-distance behaviour dominated by the
tiny card-to-card reflected power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.antennas import ANTENNAS
from repro.channel.geometry import inches_to_meters
from repro.channel.link_budget import DEFAULT_CONVERSION_LOSS_DB
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.channel.error_models import ber_ook_envelope
from repro.obs import metrics as obs
from repro.utils.bits import as_bit_array

__all__ = ["BackscatterCard", "CardToCardLink", "CardMessageResult"]

#: Bit rate of the card-to-card link in the paper's prototype.
CARD_BIT_RATE_BPS = 100_000.0

#: Payload length used in the Fig. 17 evaluation.
CARD_PAYLOAD_BITS = 18


@dataclass(frozen=True)
class CardMessageResult:
    """Outcome of one card-to-card message.

    Attributes
    ----------
    sent_bits / received_bits:
        The transmitted and decoded bit arrays.
    bit_errors:
        Number of mismatches.
    bit_error_rate:
        ``bit_errors / len(sent_bits)``.
    receiver_power_dbm:
        Power of the modulated reflection at the receiving card.
    synchronized:
        Whether the receiving card's energy detector synchronised to the
        Bluetooth transmission at all.
    """

    sent_bits: np.ndarray
    received_bits: np.ndarray
    bit_errors: int
    bit_error_rate: float
    receiver_power_dbm: float
    synchronized: bool


@dataclass
class BackscatterCard:
    """One credit-card form-factor backscatter device.

    Attributes
    ----------
    name:
        Identifier used in logs.
    antenna_gain_dbi:
        Gain of the card's PCB trace antenna.
    detector_sensitivity_dbm:
        Sensitivity of the card's envelope-detector receiver (replicated
        from the ambient-backscatter receiver the paper reuses, retuned for
        2.4 GHz).
    """

    name: str = "card"
    antenna_gain_dbi: float = ANTENNAS["credit_card_trace"].gain_dbi
    detector_sensitivity_dbm: float = -54.0


class CardToCardLink:
    """A smartphone-powered link between two backscatter cards.

    Parameters
    ----------
    phone_power_dbm:
        Bluetooth transmit power of the phone (10 dBm — the Note 5 / iPhone
        6 class the paper calls out).
    phone_to_transmitter_inches:
        Distance from the phone to the transmitting card (3 inches in the
        paper's setup).
    transmitter / receiver:
        The two cards.
    bit_rate_bps:
        Card-to-card data rate.
    """

    def __init__(
        self,
        *,
        phone_power_dbm: float = 10.0,
        phone_to_transmitter_inches: float = 3.0,
        transmitter: BackscatterCard | None = None,
        receiver: BackscatterCard | None = None,
        bit_rate_bps: float = CARD_BIT_RATE_BPS,
        rng: np.random.Generator | None = None,
    ) -> None:
        if phone_to_transmitter_inches <= 0:
            raise ConfigurationError("phone_to_transmitter_inches must be positive")
        if bit_rate_bps <= 0:
            raise ConfigurationError("bit_rate_bps must be positive")
        self.phone_power_dbm = phone_power_dbm
        self.phone_to_transmitter_inches = phone_to_transmitter_inches
        self.transmitter = transmitter if transmitter is not None else BackscatterCard("tx-card")
        self.receiver = receiver if receiver is not None else BackscatterCard("rx-card")
        self.bit_rate_bps = bit_rate_bps
        self._rng = rng if rng is not None else np.random.default_rng(53)
        self._path_loss = PathLossModel(path_loss_exponent=2.0)
        self._noise = NoiseModel(bandwidth_hz=2e6, noise_figure_db=12.0)

    # -------------------------------------------------------------- physics
    def receiver_power_dbm(self, card_separation_inches: float) -> float:
        """Power of the modulated reflection arriving at the receiving card."""
        if card_separation_inches <= 0:
            raise ConfigurationError("card_separation_inches must be positive")
        obs.count("channel.link_realisations")
        incident = (
            self.phone_power_dbm
            + 2.0  # phone antenna
            - self._path_loss.loss_db(inches_to_meters(self.phone_to_transmitter_inches))
            + self.transmitter.antenna_gain_dbi
        )
        reflected = incident - DEFAULT_CONVERSION_LOSS_DB
        return float(
            reflected
            + self.transmitter.antenna_gain_dbi
            - self._path_loss.loss_db(inches_to_meters(card_separation_inches))
            + self.receiver.antenna_gain_dbi
        )

    def bit_error_rate(self, card_separation_inches: float) -> float:
        """Analytic BER of the card-to-card link at a given separation.

        The receiving card also hears the phone's tone directly, which acts
        as (strong) self-interference the envelope detector must distinguish
        the modulated reflection on top of; the margin above the detector's
        sensitivity sets the error rate.
        """
        power = self.receiver_power_dbm(card_separation_inches)
        margin_db = power - self.receiver.detector_sensitivity_dbm
        if margin_db <= 0:
            return 0.5
        return ber_ook_envelope(margin_db)

    # ------------------------------------------------------------------ API
    def send_message(
        self,
        bits: np.ndarray | None = None,
        *,
        card_separation_inches: float = 10.0,
        rng: np.random.Generator | None = None,
    ) -> CardMessageResult:
        """Send one message between the cards and report the result."""
        generator = rng if rng is not None else self._rng
        if bits is None:
            bits = generator.integers(0, 2, CARD_PAYLOAD_BITS).astype(np.uint8)
        sent = as_bit_array(bits)

        power = self.receiver_power_dbm(card_separation_inches)
        synchronized = power >= self.receiver.detector_sensitivity_dbm - 10.0
        ber = self.bit_error_rate(card_separation_inches)
        flips = generator.random(sent.size) < ber
        received = np.bitwise_xor(sent, flips.astype(np.uint8))
        errors = int(np.count_nonzero(flips))
        return CardMessageResult(
            sent_bits=sent,
            received_bits=received,
            bit_errors=errors,
            bit_error_rate=errors / sent.size,
            receiver_power_dbm=power,
            synchronized=synchronized,
        )

    def ber_sweep(self, separations_inches: np.ndarray) -> np.ndarray:
        """Analytic BER across card separations (the Fig. 17 x-axis)."""
        return np.array([self.bit_error_rate(float(d)) for d in separations_inches])

    def max_range_inches(self, *, ber_threshold: float = 0.1, limit_inches: float = 60.0) -> float:
        """Furthest separation at which the BER stays below *ber_threshold*."""
        distances = np.arange(1.0, limit_inches, 1.0)
        bers = self.ber_sweep(distances)
        below = np.where(bers <= ber_threshold)[0]
        if below.size == 0:
            return 0.0
        return float(distances[below[-1]])
