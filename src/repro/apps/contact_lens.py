"""Smart contact lens application (paper §5.1, Fig. 15).

A contact lens with a glucose sensor and a 1 cm loop antenna backscatters
the Bluetooth advertisements of a nearby smart watch to deliver readings to
a smartphone's Wi-Fi radio.  The model captures what made the paper's
prototype hard: the electrically small loop antenna (large negative gain,
non-50 Ω impedance that the switch network must be re-tuned for) and the
attenuation of the saline the lens sits in, both of which shrink the range
from tens of feet to tens of inches.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.antennas import ANTENNAS
from repro.channel.geometry import inches_to_meters
from repro.channel.link_budget import BackscatterLinkBudget
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.channel.error_models import wifi_packet_error_rate
from repro.core.device import InterscatterDevice
from repro.core.timing import InterscatterTiming

__all__ = ["ContactLensReading", "ContactLensTelemetry", "SmartContactLens"]


@dataclass(frozen=True)
class ContactLensReading:
    """One glucose measurement produced by the lens sensor.

    Attributes
    ----------
    glucose_mmol_per_l:
        Tear glucose concentration.
    sequence:
        Monotonic reading counter.
    battery_free:
        Always True — the lens harvests/duty-cycles and has no battery.
    """

    glucose_mmol_per_l: float
    sequence: int
    battery_free: bool = True

    def encode(self) -> bytes:
        """Serialise the reading into the Wi-Fi payload format (8 bytes)."""
        return struct.pack("<If", self.sequence, self.glucose_mmol_per_l)

    @classmethod
    def decode(cls, payload: bytes) -> "ContactLensReading":
        """Parse a payload produced by :meth:`encode`."""
        if len(payload) < 8:
            raise ConfigurationError("contact lens payload must be at least 8 bytes")
        sequence, glucose = struct.unpack("<If", payload[:8])
        return cls(glucose_mmol_per_l=glucose, sequence=sequence)


@dataclass(frozen=True)
class ContactLensTelemetry:
    """Link statistics for one delivery attempt.

    Attributes
    ----------
    reading:
        The reading that was sent.
    rssi_dbm:
        RSSI of the backscattered Wi-Fi packet at the phone.
    delivered:
        Whether the packet decoded (CRC-correct) at the phone.
    packet_error_rate:
        Analytic PER at this geometry.
    energy_uj:
        Energy the lens spent on the attempt.
    """

    reading: ContactLensReading
    rssi_dbm: float
    delivered: bool
    packet_error_rate: float
    energy_uj: float


class SmartContactLens:
    """A backscattering smart contact lens.

    Parameters
    ----------
    watch_power_dbm:
        Bluetooth transmit power of the watch providing the carrier
        (10 or 20 dBm in Fig. 15).
    watch_distance_inches:
        Watch-to-lens distance (12 inches in the paper's setup).
    wifi_rate_mbps:
        Rate of the synthesized packets (2 Mbps in the paper).
    in_saline:
        Whether the lens is immersed in contact-lens solution (the paper's
        in-vitro evaluation); disabling it models a lens in air.
    """

    def __init__(
        self,
        *,
        watch_power_dbm: float = 10.0,
        watch_distance_inches: float = 12.0,
        wifi_rate_mbps: float = 2.0,
        in_saline: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if watch_distance_inches <= 0:
            raise ConfigurationError("watch_distance_inches must be positive")
        self.watch_power_dbm = watch_power_dbm
        self.watch_distance_inches = watch_distance_inches
        self.wifi_rate_mbps = wifi_rate_mbps
        self.in_saline = in_saline
        self._rng = rng if rng is not None else np.random.default_rng(31)
        self._sequence = 0
        self.timing = InterscatterTiming(wifi_rate_mbps=wifi_rate_mbps)
        self.device = InterscatterDevice(self.timing, rng=self._rng)
        self.link_budget = BackscatterLinkBudget(
            source_power_dbm=watch_power_dbm,
            tag_antenna=ANTENNAS["contact_lens_loop"],
            tissue="contact_lens_saline" if in_saline else None,
            path_loss=PathLossModel(path_loss_exponent=2.0),
            noise=NoiseModel(bandwidth_hz=22e6),
        )

    # ------------------------------------------------------------------ API
    def sample_glucose(self) -> ContactLensReading:
        """Produce a new (synthetic) glucose reading."""
        self._sequence += 1
        glucose = float(np.clip(self._rng.normal(5.5, 0.8), 3.0, 12.0))
        return ContactLensReading(glucose_mmol_per_l=glucose, sequence=self._sequence)

    def rssi_at(self, phone_distance_inches: float) -> float:
        """RSSI of the lens's Wi-Fi packets at a phone *phone_distance_inches* away."""
        result = self.link_budget.evaluate(
            inches_to_meters(self.watch_distance_inches),
            inches_to_meters(phone_distance_inches),
        )
        return result.rssi_dbm

    def deliver_reading(
        self, phone_distance_inches: float, *, reading: ContactLensReading | None = None
    ) -> ContactLensTelemetry:
        """Attempt to deliver one reading to a phone at the given distance."""
        if reading is None:
            reading = self.sample_glucose()
        link = self.link_budget.evaluate(
            inches_to_meters(self.watch_distance_inches),
            inches_to_meters(phone_distance_inches),
        )
        per = wifi_packet_error_rate(
            link.snr_db, rate_mbps=self.wifi_rate_mbps, payload_bytes=len(reading.encode())
        )
        opportunity = self.device.service_advertisement(
            wifi_psdu_bytes=len(reading.encode()) + 6
        )
        delivered = bool(
            link.detectable
            and opportunity.detected
            and opportunity.fits_in_window
            and self._rng.random() > per
        )
        return ContactLensTelemetry(
            reading=reading,
            rssi_dbm=link.rssi_dbm,
            delivered=delivered,
            packet_error_rate=float(per),
            energy_uj=opportunity.energy_uj,
        )

    def rssi_sweep(self, phone_distances_inches: np.ndarray) -> np.ndarray:
        """RSSI across a sweep of phone distances (the Fig. 15 x-axis)."""
        return np.array([self.rssi_at(float(d)) for d in phone_distances_inches])

    def max_range_inches(self, *, sensitivity_dbm: float = -86.0, limit_inches: float = 120.0) -> float:
        """Furthest phone distance at which packets stay above sensitivity."""
        distances = np.arange(1.0, limit_inches, 1.0)
        rssi = self.rssi_sweep(distances)
        above = np.where(rssi >= sensitivity_dbm)[0]
        if above.size == 0:
            return 0.0
        return float(distances[above[-1]])
