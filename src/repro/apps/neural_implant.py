"""Implanted neural recording interface (paper §5.2, Fig. 16).

A brain-computer-interface implant with 8–64 recording channels (each
≈2 µW) sits under the skull / in muscle tissue and streams local field
potential / ECoG frames by backscattering Bluetooth transmissions, removing
the need for a dedicated RFID-style reader.  The model combines:

* the 4 cm loop antenna encapsulated in PDMS,
* the 0.75-inch muscle-tissue overburden the paper evaluates in-vitro
  (pork chop, dielectric properties similar to grey matter at 2.4 GHz), and
* the interscatter link budget and the tag power model, giving an
  end-to-end estimate of achievable recording bandwidth per microwatt.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.antennas import ANTENNAS
from repro.channel.geometry import inches_to_meters
from repro.channel.link_budget import BackscatterLinkBudget
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.channel.error_models import wifi_packet_error_rate
from repro.core.device import InterscatterDevice
from repro.core.timing import InterscatterTiming

__all__ = ["NeuralFrame", "NeuralImplant", "ImplantTelemetry"]

#: Per-channel power of the recording front end quoted by the paper (µW).
RECORDING_POWER_PER_CHANNEL_UW = 2.0


@dataclass(frozen=True)
class NeuralFrame:
    """One frame of neural samples ready for transmission.

    Attributes
    ----------
    channel_samples:
        2-D array ``(num_channels, samples_per_channel)`` of 16-bit ADC codes.
    sequence:
        Frame counter.
    """

    channel_samples: np.ndarray
    sequence: int

    @property
    def num_channels(self) -> int:
        """Number of recording channels in the frame."""
        return int(self.channel_samples.shape[0])

    def encode(self) -> bytes:
        """Serialise the frame: header (sequence, shape) + little-endian samples."""
        samples = np.asarray(self.channel_samples, dtype=np.int16)
        header = struct.pack("<IHH", self.sequence, samples.shape[0], samples.shape[1])
        return header + samples.tobytes()

    @classmethod
    def decode(cls, payload: bytes) -> "NeuralFrame":
        """Parse a payload produced by :meth:`encode`."""
        if len(payload) < 8:
            raise ConfigurationError("neural frame payload too short")
        sequence, channels, per_channel = struct.unpack("<IHH", payload[:8])
        expected = channels * per_channel * 2
        body = payload[8 : 8 + expected]
        samples = np.frombuffer(body, dtype=np.int16).reshape(channels, per_channel)
        return cls(channel_samples=samples, sequence=sequence)


@dataclass(frozen=True)
class ImplantTelemetry:
    """Result of delivering one neural frame."""

    frame_bytes: int
    rssi_dbm: float
    delivered: bool
    packet_error_rate: float
    energy_uj: float


class NeuralImplant:
    """An implanted neural recorder using interscatter for its uplink.

    Parameters
    ----------
    num_channels:
        Recording channels (8–64 in the systems the paper cites).
    sample_rate_hz:
        Per-channel sampling rate of the ECoG front end.
    bluetooth_power_dbm:
        Power of the Bluetooth source (a headset/phone near the head).
    bluetooth_distance_inches:
        Distance from the Bluetooth source to the implant (3 inches in the
        paper's in-vitro setup).
    wifi_rate_mbps:
        Rate of the synthesized packets.
    """

    def __init__(
        self,
        *,
        num_channels: int = 8,
        sample_rate_hz: float = 1000.0,
        bluetooth_power_dbm: float = 10.0,
        bluetooth_distance_inches: float = 3.0,
        wifi_rate_mbps: float = 2.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_channels <= 0:
            raise ConfigurationError("num_channels must be positive")
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        self.num_channels = num_channels
        self.sample_rate_hz = sample_rate_hz
        self.bluetooth_power_dbm = bluetooth_power_dbm
        self.bluetooth_distance_inches = bluetooth_distance_inches
        self.wifi_rate_mbps = wifi_rate_mbps
        self._rng = rng if rng is not None else np.random.default_rng(41)
        self._sequence = 0
        self.timing = InterscatterTiming(wifi_rate_mbps=wifi_rate_mbps)
        self.device = InterscatterDevice(self.timing, rng=self._rng)
        self.link_budget = BackscatterLinkBudget(
            source_power_dbm=bluetooth_power_dbm,
            tag_antenna=ANTENNAS["neural_implant_loop"],
            tissue="muscle_0_75_inch",
            path_loss=PathLossModel(path_loss_exponent=2.0),
            noise=NoiseModel(bandwidth_hz=22e6),
        )

    # ------------------------------------------------------------------ API
    def record_frame(self, samples_per_channel: int = 8) -> NeuralFrame:
        """Produce one frame of synthetic local-field-potential samples."""
        self._sequence += 1
        t = np.arange(samples_per_channel) / self.sample_rate_hz
        frames = []
        for channel in range(self.num_channels):
            oscillation = 400.0 * np.sin(2 * np.pi * (8 + channel) * t + channel)
            noise = self._rng.normal(0.0, 60.0, samples_per_channel)
            frames.append(oscillation + noise)
        samples = np.clip(np.array(frames), -32768, 32767).astype(np.int16)
        return NeuralFrame(channel_samples=samples, sequence=self._sequence)

    def rssi_at(self, receiver_distance_inches: float) -> float:
        """RSSI of the implant's Wi-Fi packets at a given receiver distance."""
        result = self.link_budget.evaluate(
            inches_to_meters(self.bluetooth_distance_inches),
            inches_to_meters(receiver_distance_inches),
        )
        return result.rssi_dbm

    def rssi_sweep(self, receiver_distances_inches: np.ndarray) -> np.ndarray:
        """RSSI across a sweep of receiver distances (the Fig. 16 x-axis)."""
        return np.array([self.rssi_at(float(d)) for d in receiver_distances_inches])

    def deliver_frame(
        self, receiver_distance_inches: float, *, frame: NeuralFrame | None = None
    ) -> ImplantTelemetry:
        """Attempt to deliver one frame to a receiver at the given distance."""
        if frame is None:
            frame = self.record_frame()
        payload = frame.encode()
        link = self.link_budget.evaluate(
            inches_to_meters(self.bluetooth_distance_inches),
            inches_to_meters(receiver_distance_inches),
        )
        per = wifi_packet_error_rate(
            link.snr_db, rate_mbps=self.wifi_rate_mbps, payload_bytes=len(payload)
        )
        opportunity = self.device.service_advertisement(
            wifi_psdu_bytes=min(len(payload) + 6, self.timing.max_wifi_psdu_bytes())
        )
        delivered = bool(
            link.detectable
            and opportunity.detected
            and opportunity.fits_in_window
            and self._rng.random() > per
        )
        return ImplantTelemetry(
            frame_bytes=len(payload),
            rssi_dbm=link.rssi_dbm,
            delivered=delivered,
            packet_error_rate=float(per),
            energy_uj=opportunity.energy_uj,
        )

    # ----------------------------------------------------------- budgeting
    def recording_data_rate_bps(self, bits_per_sample: int = 16) -> float:
        """Raw data rate produced by the recording front end."""
        return self.num_channels * self.sample_rate_hz * bits_per_sample

    def uplink_goodput_bps(self, advertising_interval_s: float = 0.02) -> float:
        """Deliverable data rate given one advertisement per interval."""
        payload_bits = self.timing.max_wifi_psdu_bytes() * 8
        return payload_bits / advertising_interval_s

    def sustainable_channels(self, advertising_interval_s: float = 0.02, bits_per_sample: int = 16) -> int:
        """How many recording channels the uplink can sustain in real time."""
        per_channel = self.sample_rate_hz * bits_per_sample
        return int(self.uplink_goodput_bps(advertising_interval_s) // per_channel)

    def total_power_uw(self, advertising_interval_s: float = 0.02) -> float:
        """Recording front end + communication average power."""
        recording = self.num_channels * RECORDING_POWER_PER_CHANNEL_UW
        communication = self.device.average_power_uw(advertising_interval_s)
        return recording + communication
