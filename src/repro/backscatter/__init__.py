"""Backscatter front-end models: the heart of the interscatter tag.

* :mod:`repro.backscatter.impedance` — the antenna/circuit reflection-
  coefficient model and the four complex impedance states of §2.3.1.
* :mod:`repro.backscatter.subcarrier` — square-wave sub-carrier synthesis
  with explicit odd harmonics (the 9.5 dB / 14 dB images of §2.3.1, step 1).
* :mod:`repro.backscatter.ssb` — the single-sideband backscatter modulator
  (the paper's key hardware contribution).
* :mod:`repro.backscatter.dsb` — the prior-work double-sideband baseline
  used for comparison in Fig. 6 and Fig. 12.
* :mod:`repro.backscatter.detector` — the ultra-low-power envelope/peak
  detector receivers used for packet wake-up (§2.2) and the OFDM AM
  downlink (§2.4).
* :mod:`repro.backscatter.power` — the 65 nm IC power model reproducing the
  28 µW budget of §3.
"""

from repro.backscatter.impedance import (
    ImpedanceState,
    QUADRATURE_IMPEDANCE_STATES,
    reflection_coefficient,
)
from repro.backscatter.subcarrier import SquareWaveSubcarrier, square_wave_harmonics
from repro.backscatter.ssb import SingleSidebandModulator
from repro.backscatter.dsb import DoubleSidebandModulator
from repro.backscatter.detector import EnvelopeDetector, PeakDetectorReceiver
from repro.backscatter.power import InterscatterPowerModel, PowerBreakdown

__all__ = [
    "ImpedanceState",
    "QUADRATURE_IMPEDANCE_STATES",
    "reflection_coefficient",
    "SquareWaveSubcarrier",
    "square_wave_harmonics",
    "SingleSidebandModulator",
    "DoubleSidebandModulator",
    "EnvelopeDetector",
    "PeakDetectorReceiver",
    "InterscatterPowerModel",
    "PowerBreakdown",
]
