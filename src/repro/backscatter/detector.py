"""Ultra-low-power receivers on the tag: envelope detector and peak detector.

Two roles in the paper:

* **Packet wake-up** (§2.2): an envelope/energy detector notices the start
  of a Bluetooth transmission (preamble + access address + header ≈ 56 µs)
  so the tag knows when the controllable payload window begins.  Energy
  detection cannot find the exact bit boundary, so the tag adds a ~4 µs
  guard interval.
* **Downlink reception** (§2.4): a peak detector tracks the envelope of the
  802.11g OFDM waveform; constant OFDM symbols create low-envelope gaps the
  detector turns into bits at 125 kbps.

Both are modelled as: magnitude → RC low-pass → threshold, with a
configurable sensitivity floor (the paper's off-the-shelf prototype has a
−32 dBm sensitivity at 160 kbps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.dsp import dbm_to_watts

__all__ = ["EnvelopeDetector", "EnvelopeDetection", "PeakDetectorReceiver"]


@dataclass(frozen=True)
class EnvelopeDetection:
    """Result of running the envelope detector over a waveform.

    Attributes
    ----------
    envelope:
        Low-pass filtered magnitude of the input.
    triggered:
        Whether the envelope ever exceeded the detection threshold.
    trigger_sample:
        Index of the first sample above threshold (None when not triggered).
    trigger_time_s:
        Same as a time offset.
    """

    envelope: np.ndarray
    triggered: bool
    trigger_sample: int | None
    trigger_time_s: float | None


class EnvelopeDetector:
    """Energy detector used for Bluetooth packet wake-up.

    Parameters
    ----------
    sample_rate_hz:
        Sample rate of the waveforms it will observe.
    time_constant_s:
        RC time constant of the smoothing filter.
    threshold_dbm:
        Power threshold; the paper tunes it so only Bluetooth transmitters
        within 8-10 feet trigger the tag (preventing false positives).
    sensitivity_dbm:
        Absolute sensitivity floor of the detector.
    """

    def __init__(
        self,
        sample_rate_hz: float,
        *,
        time_constant_s: float = 2e-6,
        threshold_dbm: float = -40.0,
        sensitivity_dbm: float = -50.0,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        if time_constant_s <= 0:
            raise ConfigurationError("time_constant_s must be positive")
        self.sample_rate_hz = sample_rate_hz
        self.time_constant_s = time_constant_s
        self.threshold_dbm = threshold_dbm
        self.sensitivity_dbm = sensitivity_dbm

    def envelope(self, waveform: np.ndarray) -> np.ndarray:
        """RC-filtered magnitude envelope of a complex waveform."""
        waveform = np.asarray(waveform, dtype=complex).ravel()
        magnitude = np.abs(waveform)
        alpha = 1.0 - np.exp(-1.0 / (self.sample_rate_hz * self.time_constant_s))
        out = np.empty_like(magnitude)
        state = 0.0
        for index, value in enumerate(magnitude):
            state += alpha * (value - state)
            out[index] = state
        return out

    def detect(self, waveform: np.ndarray) -> EnvelopeDetection:
        """Run energy detection over a waveform."""
        envelope = self.envelope(waveform)
        threshold_amplitude = np.sqrt(
            dbm_to_watts(max(self.threshold_dbm, self.sensitivity_dbm))
        )
        above = envelope >= threshold_amplitude
        if not np.any(above):
            return EnvelopeDetection(
                envelope=envelope, triggered=False, trigger_sample=None, trigger_time_s=None
            )
        first = int(np.argmax(above))
        return EnvelopeDetection(
            envelope=envelope,
            triggered=True,
            trigger_sample=first,
            trigger_time_s=first / self.sample_rate_hz,
        )


class PeakDetectorReceiver:
    """Passive peak-tracking receiver for the OFDM AM downlink (§2.4).

    The receiver tracks the envelope with a fast-attack / slow-decay peak
    detector and compares the *per-OFDM-symbol* energy against a running
    threshold: a constant OFDM symbol (impulse-like, low average envelope)
    reads as a gap.  Each downlink bit spans two OFDM symbols — random +
    constant = 1, random + random = 0 (Fig. 8).

    Parameters
    ----------
    sample_rate_hz:
        Sample rate of the OFDM waveform (20 MHz at baseband).
    sensitivity_dbm:
        Sensitivity floor; inputs below it are treated as pure noise
        (paper: −32 dBm for the off-the-shelf prototype).
    attack_time_s / decay_time_s:
        Peak-detector time constants.
    """

    def __init__(
        self,
        sample_rate_hz: float = 20_000_000.0,
        *,
        sensitivity_dbm: float = -32.0,
        attack_time_s: float = 0.1e-6,
        decay_time_s: float = 0.5e-6,
    ) -> None:
        if sample_rate_hz <= 0:
            raise ConfigurationError("sample_rate_hz must be positive")
        self.sample_rate_hz = sample_rate_hz
        self.sensitivity_dbm = sensitivity_dbm
        self.attack_time_s = attack_time_s
        self.decay_time_s = decay_time_s

    def envelope(self, waveform: np.ndarray) -> np.ndarray:
        """Fast-attack / slow-decay envelope of the waveform magnitude."""
        magnitude = np.abs(np.asarray(waveform, dtype=complex).ravel())
        attack = 1.0 - np.exp(-1.0 / (self.sample_rate_hz * self.attack_time_s))
        decay = 1.0 - np.exp(-1.0 / (self.sample_rate_hz * self.decay_time_s))
        out = np.empty_like(magnitude)
        state = 0.0
        for index, value in enumerate(magnitude):
            coefficient = attack if value > state else decay
            state += coefficient * (value - state)
            out[index] = state
        return out

    def symbol_envelope_metric(
        self, waveform: np.ndarray, samples_per_symbol: int, num_symbols: int, start_sample: int = 0
    ) -> np.ndarray:
        """Median envelope of each OFDM symbol (robust to the CP impulse)."""
        envelope = self.envelope(waveform)
        metrics = np.zeros(num_symbols)
        for index in range(num_symbols):
            begin = start_sample + index * samples_per_symbol
            end = begin + samples_per_symbol
            if end > envelope.size:
                break
            segment = envelope[begin:end]
            # Skip the first quarter of the symbol: a constant symbol's energy
            # (and the preceding symbol's decaying envelope) is concentrated
            # there; the tail is where constant and random symbols differ most.
            metrics[index] = float(np.median(segment[samples_per_symbol // 4 :]))
        return metrics

    def decode_bits(
        self,
        waveform: np.ndarray,
        *,
        samples_per_symbol: int,
        num_symbols: int,
        start_sample: int = 0,
        rssi_dbm: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Decode downlink bits from an OFDM waveform.

        Symbols are consumed in pairs (Fig. 8): the second symbol of each
        pair is classified as constant (bit 1) or random (bit 0) by
        comparing its envelope metric against the first symbol's.
        """
        if rssi_dbm is not None and rssi_dbm < self.sensitivity_dbm:
            # Below sensitivity the comparator output is noise: random bits.
            generator = rng if rng is not None else np.random.default_rng()
            return generator.integers(0, 2, num_symbols // 2).astype(np.uint8)
        metrics = self.symbol_envelope_metric(
            waveform, samples_per_symbol, num_symbols, start_sample
        )
        bits = np.zeros(num_symbols // 2, dtype=np.uint8)
        for pair in range(num_symbols // 2):
            reference = metrics[2 * pair]
            candidate = metrics[2 * pair + 1]
            # A constant symbol's envelope collapses well below the preceding
            # random symbol's; 0.5 is the comparator's relative threshold.
            bits[pair] = 1 if candidate < 0.5 * reference else 0
        return bits
