"""Double-sideband (prior work) backscatter modulator — the Fig. 6 baseline.

Passive Wi-Fi and FS-Backscatter shift the carrier by toggling the antenna
between two *real* impedance states at Δf.  Multiplying the incident tone by
a real ±1 square wave produces both ``f_c + Δf`` and ``f_c − Δf`` images:
the mirror copy wastes spectrum and, in the interscatter frequency plan,
lands either outside the ISM band or on top of Wi-Fi channel 6 (§2.3.1).
This implementation exists so the reproduction can quantify exactly that
(Fig. 6 spectra and the Fig. 12 coexistence experiment).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.backscatter.subcarrier import quadrature_square_wave, square_wave

__all__ = ["DsbBackscatterWaveform", "DoubleSidebandModulator"]


@dataclass(frozen=True)
class DsbBackscatterWaveform:
    """Output of the double-sideband modulator.

    Attributes
    ----------
    reflection:
        Per-sample (real-valued) reflection coefficient.
    sample_rate_hz:
        Sample rate.
    shift_hz:
        Sub-carrier shift Δf (both +Δf and −Δf images are produced).
    """

    reflection: np.ndarray
    sample_rate_hz: float
    shift_hz: float

    def apply_to(self, incident: np.ndarray) -> np.ndarray:
        """Multiply an incident waveform by the reflection coefficient."""
        incident = np.asarray(incident, dtype=complex).ravel()
        if incident.size < self.reflection.size:
            raise ConfigurationError(
                "incident waveform shorter than the backscatter waveform"
            )
        out = np.zeros_like(incident)
        out[: self.reflection.size] = incident[: self.reflection.size] * self.reflection
        return out


class DoubleSidebandModulator:
    """Two-state (on/off keyed sub-carrier) backscatter modulator.

    Parameters
    ----------
    shift_hz:
        Sub-carrier frequency Δf.
    sample_rate_hz:
        Simulation sample rate.
    """

    def __init__(self, shift_hz: float = 35_750_000.0, sample_rate_hz: float = 88_000_000.0) -> None:
        if sample_rate_hz <= 2.0 * abs(shift_hz):
            raise ConfigurationError("sample_rate_hz must exceed twice the sub-carrier shift")
        self.shift_hz = shift_hz
        self.sample_rate_hz = sample_rate_hz

    def modulate_baseband(self, baseband: np.ndarray) -> DsbBackscatterWaveform:
        """Build the real reflection waveform for a complex baseband signal.

        Prior sub-carrier designs convey the baseband by phase-modulating a
        real square-wave sub-carrier; mathematically the reflection is
        ``Re(baseband · e^{j2πΔft})`` (with square-wave sin/cos), which puts
        the wanted copy of the baseband at ``+Δf`` *and* its conjugate mirror
        at ``−Δf``.  The wanted copy is perfectly decodable — the cost of the
        design is the wasted mirror spectrum, which is exactly what Fig. 6
        and Fig. 12 measure.
        """
        baseband = np.asarray(baseband, dtype=complex).ravel()
        if baseband.size == 0:
            raise ConfigurationError("baseband waveform is empty")
        subcarrier = quadrature_square_wave(self.shift_hz, self.sample_rate_hz, baseband.size)
        return DsbBackscatterWaveform(
            reflection=np.real(baseband * subcarrier),
            sample_rate_hz=self.sample_rate_hz,
            shift_hz=self.shift_hz,
        )

    def modulate_tone_shift(self, num_samples: int) -> DsbBackscatterWaveform:
        """Reflection waveform for a pure (double-sideband) frequency shift."""
        return self.modulate_baseband(np.ones(num_samples, dtype=complex))
