"""Antenna / backscatter-circuit impedance model (paper §2.3.1, step 2).

A backscatter tag modulates the reflection coefficient

    Γ = (Za - Zc) / (Za + Zc)

between its antenna impedance ``Za`` and the circuit impedance ``Zc``
presented by its switch network.  Traditional backscatter toggles between
``Zc = Za`` (no reflection) and ``Zc = 0`` (full reflection); interscatter
instead switches between four *complex* impedances chosen so the reflection
coefficient takes the values ``(±1 ± j)/√2·√2`` — i.e. the four quadrature
states ``1+j, 1-j, -1+j, -1-j`` (up to a scale factor) that let the tag
synthesize ``e^{j2πΔft}`` and hence shift the carrier to one side only.

The module also models the real hardware choices the paper reports: for a
50 Ω antenna the FPGA prototype used a 3 pF capacitor, an open circuit, a
1 pF capacitor and a 2 nH inductor, and for the non-50 Ω loop antennas of
the contact lens / implant prototypes the states must be re-optimised
(:func:`optimize_states_for_antenna`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ImpedanceState",
    "reflection_coefficient",
    "QUADRATURE_IMPEDANCE_STATES",
    "quadrature_reflection_targets",
    "component_impedance",
    "FPGA_PROTOTYPE_COMPONENTS",
    "optimize_states_for_antenna",
]


@dataclass(frozen=True)
class ImpedanceState:
    """One switch-network state of the backscatter modulator.

    Attributes
    ----------
    label:
        Human-readable name (e.g. ``"1+j"``).
    circuit_impedance_ohm:
        Complex impedance presented to the antenna in this state.
    target_reflection:
        The normalised quadrature value this state is meant to realise.
    """

    label: str
    circuit_impedance_ohm: complex
    target_reflection: complex

    def reflection(self, antenna_impedance_ohm: complex = 50.0) -> complex:
        """Reflection coefficient of this state against a given antenna."""
        return reflection_coefficient(antenna_impedance_ohm, self.circuit_impedance_ohm)


def reflection_coefficient(antenna_impedance_ohm: complex, circuit_impedance_ohm: complex) -> complex:
    """Γ = (Za − Zc) / (Za + Zc).

    Raises
    ------
    ConfigurationError
        If the denominator is (numerically) zero.
    """
    za = complex(antenna_impedance_ohm)
    zc = complex(circuit_impedance_ohm)
    denominator = za + zc
    if abs(denominator) < 1e-12:
        raise ConfigurationError("antenna and circuit impedances sum to zero")
    return (za - zc) / denominator


def quadrature_reflection_targets() -> dict[str, complex]:
    """The four normalised reflection values of §2.3.1: (±1 ± j)/√2."""
    scale = 1.0 / np.sqrt(2.0)
    return {
        "1+j": scale * (1 + 1j),
        "1-j": scale * (1 - 1j),
        "-1+j": scale * (-1 + 1j),
        "-1-j": scale * (-1 - 1j),
    }


def _impedance_for_reflection(target: complex, antenna_impedance_ohm: complex) -> complex:
    """Invert Γ = (Za − Zc)/(Za + Zc) for Zc."""
    za = complex(antenna_impedance_ohm)
    return za * (1 - target) / (1 + target)


def _build_quadrature_states(antenna_impedance_ohm: complex = 50.0) -> dict[str, ImpedanceState]:
    """Impedance states realising the four quadrature reflection values."""
    states: dict[str, ImpedanceState] = {}
    for label, target in quadrature_reflection_targets().items():
        zc = _impedance_for_reflection(target, antenna_impedance_ohm)
        states[label] = ImpedanceState(
            label=label, circuit_impedance_ohm=zc, target_reflection=target
        )
    return states


#: The four quadrature impedance states for a 50 Ω antenna, keyed by the
#: complex value they realise (paper §2.3.1 lists the equivalent impedance
#: fractions −j/(2+j)·Za, j/(2−j)·Za, (2−j)/j·Za and (2+j)/(−j)·Za).
QUADRATURE_IMPEDANCE_STATES: dict[str, ImpedanceState] = _build_quadrature_states()


def component_impedance(
    *,
    capacitance_f: float | None = None,
    inductance_h: float | None = None,
    frequency_hz: float = 2.45e9,
    open_circuit: bool = False,
) -> complex:
    """Impedance of a single reactive component at *frequency_hz*.

    The FPGA prototype terminates its switch network in discrete reactive
    components; this helper computes their impedance so tests can check the
    reported component values approximate the quadrature states.
    """
    if open_circuit:
        return complex(1e9, 0.0)
    if capacitance_f is not None:
        return 1.0 / (1j * 2.0 * np.pi * frequency_hz * capacitance_f)
    if inductance_h is not None:
        return 1j * 2.0 * np.pi * frequency_hz * inductance_h
    raise ConfigurationError("specify capacitance_f, inductance_h or open_circuit")


#: Discrete components used by the paper's 2.4 GHz FPGA front end (§2.3.1):
#: a 3 pF capacitor, an open circuit, a 1 pF capacitor and a 2 nH inductor.
FPGA_PROTOTYPE_COMPONENTS: dict[str, dict[str, float | bool]] = {
    "3pF": {"capacitance_f": 3e-12},
    "open": {"open_circuit": True},
    "1pF": {"capacitance_f": 1e-12},
    "2nH": {"inductance_h": 2e-9},
}


def optimize_states_for_antenna(antenna_impedance_ohm: complex) -> dict[str, ImpedanceState]:
    """Re-derive the four quadrature states for a non-50 Ω antenna.

    Small loop antennas (the contact lens and implant prototypes of §5) have
    non-standard impedances; the paper notes the switch network must be
    re-optimised for them.  This returns the exact-impedance solution for
    the given antenna.
    """
    if abs(antenna_impedance_ohm) < 1e-9:
        raise ConfigurationError("antenna impedance must be non-zero")
    return _build_quadrature_states(antenna_impedance_ohm)
