"""IC power model reproducing the 28 µW budget of paper §3.

The paper implements interscatter in a TSMC 65 nm LP CMOS flow and reports,
for 2 Mbps 802.11b generation with a 35.75 MHz shift:

==========================  ==========
Block                        Power
==========================  ==========
Frequency synthesizer        9.69 µW
Baseband processor           8.51 µW
Backscatter modulator        9.79 µW
**Total**                    **27.99 µW ≈ 28 µW**
==========================  ==========

The model here decomposes each block into clocked switching power
(``P = C_eff · V² · f``) with effective capacitances calibrated so the
paper's operating point is reproduced exactly, and then *scales* with the
knobs a designer would turn: Wi-Fi bit rate (baseband clock), sub-carrier
shift (synthesizer and modulator clocks) and supply voltage.  This supports
the ablation benches (power vs bit rate / shift frequency) and the
comparison against active radios the paper motivates the work with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["PowerBreakdown", "InterscatterPowerModel", "ACTIVE_RADIO_POWER_UW"]

#: Representative active-radio transmit power draws (µW) for context: the
#: paper cites ZigBee transmitters consuming tens of milliwatts and Wi-Fi
#: radios consuming far more.
ACTIVE_RADIO_POWER_UW = {
    "wifi_active_tx": 300_000.0,
    "ble_active_tx": 10_000.0,
    "zigbee_active_tx": 30_000.0,
}

#: The paper's reference operating point.
_REFERENCE_SHIFT_HZ = 35_750_000.0
_REFERENCE_BASEBAND_HZ = 11_000_000.0
_REFERENCE_RATE_MBPS = 2.0
_REFERENCE_SUPPLY_V = 1.0

#: Block powers at the reference operating point (µW).
_REFERENCE_POWER_UW = {
    "frequency_synthesizer": 9.69,
    "baseband_processor": 8.51,
    "backscatter_modulator": 9.79,
}


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-block power estimate in microwatts.

    Attributes
    ----------
    frequency_synthesizer_uw:
        PLL + Johnson counter producing the 11 MHz baseband clock and the
        four phases of the Δf clock.
    baseband_processor_uw:
        802.11b scrambling, DSSS/CCK, CRC and DQPSK logic.
    backscatter_modulator_uw:
        Multiplexers and CMOS switches mapping I/Q onto impedance states.
    """

    frequency_synthesizer_uw: float
    baseband_processor_uw: float
    backscatter_modulator_uw: float

    @property
    def total_uw(self) -> float:
        """Total power in microwatts."""
        return (
            self.frequency_synthesizer_uw
            + self.baseband_processor_uw
            + self.backscatter_modulator_uw
        )

    def as_dict(self) -> dict[str, float]:
        """Breakdown as a plain dictionary (including the total)."""
        return {
            "frequency_synthesizer_uw": self.frequency_synthesizer_uw,
            "baseband_processor_uw": self.baseband_processor_uw,
            "backscatter_modulator_uw": self.backscatter_modulator_uw,
            "total_uw": self.total_uw,
        }


class InterscatterPowerModel:
    """Analytical power model of the interscatter IC.

    Parameters
    ----------
    supply_voltage_v:
        Core supply; switching power scales with V².
    technology_scale:
        Relative effective-capacitance factor (1.0 = the 65 nm reference;
        smaller values model more advanced nodes, the CMOS-scaling argument
        of §3).
    """

    def __init__(self, *, supply_voltage_v: float = 1.0, technology_scale: float = 1.0) -> None:
        if supply_voltage_v <= 0:
            raise ConfigurationError("supply_voltage_v must be positive")
        if technology_scale <= 0:
            raise ConfigurationError("technology_scale must be positive")
        self.supply_voltage_v = supply_voltage_v
        self.technology_scale = technology_scale

    def estimate(
        self,
        *,
        wifi_rate_mbps: float = _REFERENCE_RATE_MBPS,
        shift_hz: float = _REFERENCE_SHIFT_HZ,
        duty_cycle: float = 1.0,
    ) -> PowerBreakdown:
        """Power estimate while actively backscattering.

        Parameters
        ----------
        wifi_rate_mbps:
            Generated 802.11b rate; the baseband clock (11 MHz chip clock)
            is rate-independent but the switching activity of the CCK
            encoder grows mildly with rate.
        shift_hz:
            Sub-carrier shift Δf; the synthesizer's VCO runs at 4·Δf and the
            modulator toggles at the same rate.
        duty_cycle:
            Fraction of time the tag is actively backscattering (idle power
            is assumed negligible, as in the paper's duty-cycling argument).
        """
        if wifi_rate_mbps <= 0:
            raise ConfigurationError("wifi_rate_mbps must be positive")
        if shift_hz <= 0:
            raise ConfigurationError("shift_hz must be positive")
        if not 0.0 <= duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in [0, 1]")

        voltage_scale = (self.supply_voltage_v / _REFERENCE_SUPPLY_V) ** 2
        scale = voltage_scale * self.technology_scale

        # Synthesizer: dominated by the 4·Δf ring oscillator / divider chain.
        synthesizer = _REFERENCE_POWER_UW["frequency_synthesizer"] * (
            shift_hz / _REFERENCE_SHIFT_HZ
        )
        # Baseband: 11 MHz chip-clock logic; CCK adds activity at higher rates.
        rate_activity = 1.0 + 0.05 * (wifi_rate_mbps - _REFERENCE_RATE_MBPS) / _REFERENCE_RATE_MBPS
        baseband = _REFERENCE_POWER_UW["baseband_processor"] * rate_activity
        # Modulator: switch drivers toggling at 4·Δf.
        modulator = _REFERENCE_POWER_UW["backscatter_modulator"] * (
            shift_hz / _REFERENCE_SHIFT_HZ
        )

        return PowerBreakdown(
            frequency_synthesizer_uw=synthesizer * scale * duty_cycle,
            baseband_processor_uw=baseband * scale * duty_cycle,
            backscatter_modulator_uw=modulator * scale * duty_cycle,
        )

    def reference_breakdown(self) -> PowerBreakdown:
        """The paper's reported operating point (2 Mbps, 35.75 MHz shift)."""
        return self.estimate()

    def energy_per_bit_nj(self, wifi_rate_mbps: float = _REFERENCE_RATE_MBPS) -> float:
        """Energy per generated Wi-Fi bit in nanojoules."""
        breakdown = self.estimate(wifi_rate_mbps=wifi_rate_mbps)
        return breakdown.total_uw * 1e-6 / (wifi_rate_mbps * 1e6) * 1e9

    def savings_versus_active(self, radio: str = "zigbee_active_tx") -> float:
        """Power-saving factor compared with an active radio transmitter."""
        if radio not in ACTIVE_RADIO_POWER_UW:
            raise ConfigurationError(
                f"unknown radio {radio!r}; choose from {sorted(ACTIVE_RADIO_POWER_UW)}"
            )
        return ACTIVE_RADIO_POWER_UW[radio] / self.reference_breakdown().total_uw
