"""Single-sideband backscatter modulator (paper §2.3.1 and §2.3.2).

The modulator combines three pieces:

1. the quadrature square-wave sub-carrier ``e^{j2πΔft}`` (approximated with
   ±1 square waves),
2. the complex baseband symbol stream of the target protocol (802.11b DSSS
   chips or 802.15.4 O-QPSK samples), and
3. the four-state complex impedance switch, which quantises the product of
   (1) and (2) onto the nearest realisable reflection coefficient.

Multiplying the incident single tone ``cos(2πf_c t)`` by the resulting
complex reflection waveform produces the baseband signal shifted to
``f_c + Δf`` with *no* mirror image at ``f_c − Δf`` — the single-sideband
property that lets interscatter operate inside the ISM band (Fig. 6).

The module exposes both the reflection waveform (what the switch does) and
a convenience that applies it to an incident waveform (what the air sees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.backscatter.impedance import ImpedanceState, QUADRATURE_IMPEDANCE_STATES
from repro.backscatter.subcarrier import SquareWaveSubcarrier

__all__ = ["SsbBackscatterWaveform", "SingleSidebandModulator"]


@dataclass(frozen=True)
class SsbBackscatterWaveform:
    """Output of the single-sideband modulator.

    Attributes
    ----------
    reflection:
        Per-sample complex reflection coefficient applied by the switch.
    state_indices:
        Index of the impedance state chosen at each sample (0-3), i.e. the
        control word the digital baseband drives the switch network with.
    sample_rate_hz:
        Sample rate of the reflection waveform.
    shift_hz:
        Sub-carrier shift Δf.
    """

    reflection: np.ndarray
    state_indices: np.ndarray
    sample_rate_hz: float
    shift_hz: float

    def apply_to(self, incident: np.ndarray) -> np.ndarray:
        """Multiply an incident waveform by the reflection coefficient.

        The incident waveform must be sampled at the same rate and have at
        least as many samples as the reflection waveform; extra incident
        samples are passed through unreflected (the tag is idle).
        """
        incident = np.asarray(incident, dtype=complex).ravel()
        if incident.size < self.reflection.size:
            raise ConfigurationError(
                "incident waveform shorter than the backscatter waveform"
            )
        out = np.zeros_like(incident)
        out[: self.reflection.size] = incident[: self.reflection.size] * self.reflection
        return out


class SingleSidebandModulator:
    """Single-sideband backscatter modulator with a four-state complex switch.

    Parameters
    ----------
    shift_hz:
        Sub-carrier frequency Δf; the paper's implementation uses 35.75 MHz,
        chosen to push the Wi-Fi packet far enough from the Bluetooth
        carrier to reject its interference (§3).
    sample_rate_hz:
        Simulation sample rate (must satisfy Nyquist for Δf plus the
        baseband bandwidth).
    antenna_impedance_ohm:
        Antenna impedance; non-50 Ω values model the loop antennas of the
        application prototypes.
    ideal_subcarrier:
        Use an ideal complex exponential instead of square waves (ablation).
    quantize_to_states:
        When True (hardware-faithful), the product of sub-carrier and
        baseband is quantised to the four realisable impedance states; when
        False the unquantised product is used (ablation).
    """

    #: The four reflection values the switch can realise, in a fixed order so
    #: the state index is meaningful to the power model.
    STATE_ORDER = ("1+j", "1-j", "-1+j", "-1-j")

    def __init__(
        self,
        shift_hz: float = 35_750_000.0,
        sample_rate_hz: float = 88_000_000.0,
        *,
        antenna_impedance_ohm: complex = 50.0,
        ideal_subcarrier: bool = False,
        quantize_to_states: bool = True,
    ) -> None:
        if sample_rate_hz <= 2.0 * abs(shift_hz):
            raise ConfigurationError(
                "sample_rate_hz must exceed twice the sub-carrier shift"
            )
        self.shift_hz = shift_hz
        self.sample_rate_hz = sample_rate_hz
        self.antenna_impedance_ohm = antenna_impedance_ohm
        self.quantize_to_states = quantize_to_states
        self._subcarrier = SquareWaveSubcarrier(
            shift_hz=shift_hz, sample_rate_hz=sample_rate_hz, ideal=ideal_subcarrier
        )
        if antenna_impedance_ohm == 50.0:
            states = QUADRATURE_IMPEDANCE_STATES
        else:
            from repro.backscatter.impedance import optimize_states_for_antenna

            states = optimize_states_for_antenna(antenna_impedance_ohm)
        self._states: list[ImpedanceState] = [states[label] for label in self.STATE_ORDER]
        self._state_reflections = np.array(
            [state.reflection(antenna_impedance_ohm) for state in self._states]
        )

    @property
    def impedance_states(self) -> tuple[ImpedanceState, ...]:
        """The four switch states in :attr:`STATE_ORDER`."""
        return tuple(self._states)

    # ------------------------------------------------------------------ API
    def modulate_baseband(self, baseband: np.ndarray) -> SsbBackscatterWaveform:
        """Build the reflection waveform for a complex baseband signal.

        *baseband* must already be sampled at :attr:`sample_rate_hz`; use
        :meth:`upsample_symbols` to convert a chip/symbol stream.
        """
        baseband = np.asarray(baseband, dtype=complex).ravel()
        if baseband.size == 0:
            raise ConfigurationError("baseband waveform is empty")
        subcarrier = self._subcarrier.generate(baseband.size)
        product = baseband * subcarrier
        if not self.quantize_to_states:
            norm = np.max(np.abs(product)) or 1.0
            reflection = product / norm
            state_indices = self._nearest_state_indices(reflection)
            return SsbBackscatterWaveform(
                reflection=reflection,
                state_indices=state_indices,
                sample_rate_hz=self.sample_rate_hz,
                shift_hz=self.shift_hz,
            )
        state_indices = self._nearest_state_indices(product)
        reflection = self._state_reflections[state_indices]
        return SsbBackscatterWaveform(
            reflection=reflection,
            state_indices=state_indices,
            sample_rate_hz=self.sample_rate_hz,
            shift_hz=self.shift_hz,
        )

    def modulate_tone_shift(self, num_samples: int) -> SsbBackscatterWaveform:
        """Reflection waveform for a pure frequency shift (no data).

        Useful for spectrum characterisation (Fig. 6 uses a 2 Mbps packet,
        but the pure shift isolates the sideband behaviour).
        """
        return self.modulate_baseband(np.ones(num_samples, dtype=complex))

    def upsample_symbols(self, symbols: np.ndarray, symbol_rate_hz: float) -> np.ndarray:
        """Zero-order-hold a symbol/chip stream up to the modulator sample rate."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        if symbol_rate_hz <= 0:
            raise ConfigurationError("symbol_rate_hz must be positive")
        samples_per_symbol = self.sample_rate_hz / symbol_rate_hz
        if samples_per_symbol < 1.0:
            raise ConfigurationError(
                "modulator sample rate lower than the symbol rate"
            )
        indices = np.floor(np.arange(int(np.ceil(symbols.size * samples_per_symbol))) / samples_per_symbol).astype(int)
        indices = np.clip(indices, 0, symbols.size - 1)
        return symbols[indices]

    # ------------------------------------------------------------- internals
    def _nearest_state_indices(self, values: np.ndarray) -> np.ndarray:
        """Quantise complex values to the nearest of the four target states.

        Quantisation is by phase (the states all share the same magnitude),
        which matches what the digital I/Q → impedance mapping in the IC
        does (§3, backscatter modulator block).
        """
        targets = np.array([state.target_reflection for state in self._states])
        # Compare against each target's phase; amplitude carries no state info.
        phases = np.angle(values)[:, None] - np.angle(targets)[None, :]
        distance = np.abs(np.angle(np.exp(1j * phases)))
        return np.argmin(distance, axis=1)
