"""Square-wave sub-carrier synthesis (paper §2.3.1, step 1).

The tag cannot run a 2.4 GHz oscillator, so it approximates the quadrature
sub-carrier ``e^{j2πΔft}`` with two square waves at Δf, 90° apart, each
alternating between +1 and −1.  By Fourier analysis the square wave is the
sum of odd harmonics with amplitudes 1/n; the third and fifth harmonics are
9.5 dB and 14 dB below the fundamental, which the paper argues is acceptable
because every 802.11b rate works below 14 dB SNR.

This module provides both the ideal complex exponential (for ablation) and
the quantised square-wave approximation the hardware actually produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["square_wave", "quadrature_square_wave", "square_wave_harmonics", "SquareWaveSubcarrier"]


def square_wave(
    frequency_hz: float, sample_rate_hz: float, num_samples: int, *, phase_fraction: float = 0.0
) -> np.ndarray:
    """±1 square wave at *frequency_hz*.

    Parameters
    ----------
    phase_fraction:
        Phase offset as a fraction of the period (0.25 = quarter period,
        which turns the sine-phase square wave into the cosine-phase one).
    """
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    if num_samples < 0:
        raise ConfigurationError("num_samples must be non-negative")
    # Sample at mid-sample instants (t + Ts/2) so that commensurate
    # frequencies (e.g. fs = 4·Δf) never hit the zero crossings exactly,
    # which would bias the wave and degrade image rejection.
    t = (np.arange(num_samples) + 0.5) / sample_rate_hz
    phase = 2.0 * np.pi * frequency_hz * t + 2.0 * np.pi * phase_fraction
    return np.where(np.sin(phase) >= 0.0, 1.0, -1.0)


def quadrature_square_wave(
    frequency_hz: float, sample_rate_hz: float, num_samples: int
) -> np.ndarray:
    """Complex square-wave approximation of ``e^{j2πft}``.

    The real part is the cosine-phase square wave, the imaginary part the
    sine-phase square wave; values are drawn from {±1 ± j}.
    """
    sin_wave = square_wave(frequency_hz, sample_rate_hz, num_samples)
    cos_wave = square_wave(frequency_hz, sample_rate_hz, num_samples, phase_fraction=0.25)
    return cos_wave + 1j * sin_wave


def square_wave_harmonics(max_harmonic: int = 9) -> dict[int, float]:
    """Relative power (dB) of the odd harmonics of a ±1 square wave.

    The fundamental is 0 dB; harmonic *n* is ``20·log10(1/n)`` below it —
    9.5 dB for n=3 and ~14 dB for n=5 (the numbers quoted in §2.3.1).
    """
    if max_harmonic < 1:
        raise ConfigurationError("max_harmonic must be >= 1")
    return {n: -20.0 * np.log10(n) for n in range(1, max_harmonic + 1, 2)}


@dataclass(frozen=True)
class SquareWaveSubcarrier:
    """A Δf sub-carrier generator with selectable fidelity.

    Attributes
    ----------
    shift_hz:
        Sub-carrier frequency Δf (35.75 MHz in the paper's implementation).
    sample_rate_hz:
        Sample rate of the generated sequence.
    ideal:
        When True, generate the ideal complex exponential instead of the
        square-wave approximation (used for ablation studies).
    """

    shift_hz: float
    sample_rate_hz: float
    ideal: bool = False

    def generate(self, num_samples: int) -> np.ndarray:
        """Generate *num_samples* of the sub-carrier."""
        if self.ideal:
            t = np.arange(num_samples) / self.sample_rate_hz
            return np.exp(2j * np.pi * self.shift_hz * t)
        return quadrature_square_wave(self.shift_hz, self.sample_rate_hz, num_samples)
