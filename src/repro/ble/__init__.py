"""Bluetooth Low Energy (LE 1M) physical layer and advertising link layer.

This substrate provides everything the Interscatter core needs from a
Bluetooth device:

* the advertising channel map and centre frequencies (:mod:`repro.ble.channels`),
* the data-whitening LFSR seeded by channel number (:mod:`repro.ble.whitening`),
* advertising packet assembly with CRC-24 (:mod:`repro.ble.packet`),
* GFSK modulation/demodulation at 1 Msym/s (:mod:`repro.ble.gfsk`),
* the *single-tone payload* construction of paper §2.2
  (:mod:`repro.ble.single_tone`), and
* transmit-power / impairment profiles for the commodity devices used in the
  paper's evaluation (:mod:`repro.ble.devices`).
"""

from repro.ble.channels import (
    ADVERTISING_CHANNELS,
    BleChannel,
    advertising_channel,
    channel_for_frequency,
    channel_frequency_mhz,
)
from repro.ble.whitening import WhiteningSequence, whitening_sequence, whiten
from repro.ble.packet import (
    ADVERTISING_ACCESS_ADDRESS,
    AdvertisingPacket,
    AdvertisingPduType,
)
from repro.ble.gfsk import GfskModulator, GfskDemodulator, GfskWaveform
from repro.ble.single_tone import SingleTonePayload, craft_single_tone_payload
from repro.ble.data_packet import (
    DataChannelPacket,
    DataChannelSingleTone,
    craft_data_channel_single_tone,
)
from repro.ble.devices import BleDeviceProfile, DEVICE_PROFILES
from repro.ble.radio import BleTransmitter

__all__ = [
    "ADVERTISING_CHANNELS",
    "BleChannel",
    "advertising_channel",
    "channel_for_frequency",
    "channel_frequency_mhz",
    "WhiteningSequence",
    "whitening_sequence",
    "whiten",
    "ADVERTISING_ACCESS_ADDRESS",
    "AdvertisingPacket",
    "AdvertisingPduType",
    "GfskModulator",
    "GfskDemodulator",
    "GfskWaveform",
    "SingleTonePayload",
    "craft_single_tone_payload",
    "DataChannelPacket",
    "DataChannelSingleTone",
    "craft_data_channel_single_tone",
    "BleDeviceProfile",
    "DEVICE_PROFILES",
    "BleTransmitter",
]
