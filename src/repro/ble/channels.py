"""BLE channel map for the 2.4 GHz ISM band.

Bluetooth LE divides the band into 40 RF channels spaced 2 MHz apart from
2402 MHz to 2480 MHz.  Three of them are advertising channels:

========  ==============  =================================
Channel    Frequency       Position in the band
========  ==============  =================================
37         2402 MHz        bottom edge of the ISM band
38         2426 MHz        between Wi-Fi channels 1 and 6
39         2480 MHz        top edge of the ISM band
========  ==============  =================================

The paper's frequency plan (Fig. 3) backscatters advertising channel 38
with a +36 MHz-ish shift to land on Wi-Fi channel 11 (2462 MHz); the
implementation uses a 35.75 MHz shift (§3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = [
    "BleChannel",
    "ADVERTISING_CHANNELS",
    "DATA_CHANNELS",
    "advertising_channel",
    "channel_frequency_mhz",
    "channel_for_frequency",
    "ISM_BAND_LOW_MHZ",
    "ISM_BAND_HIGH_MHZ",
]

#: 2.4 GHz ISM band edges relevant to the mirror-copy discussion in §2.3.1.
ISM_BAND_LOW_MHZ = 2400.0
ISM_BAND_HIGH_MHZ = 2483.5


@dataclass(frozen=True)
class BleChannel:
    """One BLE RF channel.

    Attributes
    ----------
    index:
        Link-layer channel index (0–39).  37, 38 and 39 are advertising
        channels.
    frequency_mhz:
        Centre frequency in MHz.
    is_advertising:
        True for channels 37–39.
    """

    index: int
    frequency_mhz: float
    is_advertising: bool

    @property
    def frequency_hz(self) -> float:
        """Centre frequency in Hz."""
        return self.frequency_mhz * 1e6


def _build_channel_map() -> dict[int, BleChannel]:
    """Construct the LE channel map (indices 0-39) per the Bluetooth spec."""
    channels: dict[int, BleChannel] = {}
    # Advertising channels occupy 2402, 2426 and 2480 MHz.
    advertising = {37: 2402.0, 38: 2426.0, 39: 2480.0}
    # Data channels 0..36 fill the remaining 2 MHz slots in frequency order.
    data_frequencies = [f for f in (2404.0 + 2.0 * i for i in range(37))]
    # Frequencies 2404..2424 -> channels 0..10, 2428..2478 -> channels 11..36.
    data_frequencies = [2404.0 + 2 * i for i in range(11)] + [2428.0 + 2 * i for i in range(26)]
    for index, freq in enumerate(data_frequencies):
        channels[index] = BleChannel(index=index, frequency_mhz=freq, is_advertising=False)
    for index, freq in advertising.items():
        channels[index] = BleChannel(index=index, frequency_mhz=freq, is_advertising=True)
    return channels


_CHANNEL_MAP = _build_channel_map()

#: The three advertising channels, keyed by index.
ADVERTISING_CHANNELS: dict[int, BleChannel] = {
    idx: ch for idx, ch in _CHANNEL_MAP.items() if ch.is_advertising
}

#: The 37 data channels, keyed by index.
DATA_CHANNELS: dict[int, BleChannel] = {
    idx: ch for idx, ch in _CHANNEL_MAP.items() if not ch.is_advertising
}


def advertising_channel(index: int) -> BleChannel:
    """Return the advertising channel with the given index (37, 38 or 39)."""
    if index not in ADVERTISING_CHANNELS:
        raise ConfigurationError(
            f"channel {index} is not a BLE advertising channel (expected 37, 38 or 39)"
        )
    return ADVERTISING_CHANNELS[index]


def channel_frequency_mhz(index: int) -> float:
    """Centre frequency (MHz) of any LE channel index 0–39."""
    if index not in _CHANNEL_MAP:
        raise ConfigurationError(f"BLE channel index must be 0-39, got {index}")
    return _CHANNEL_MAP[index].frequency_mhz


def channel_for_frequency(frequency_mhz: float) -> BleChannel:
    """Return the LE channel whose centre frequency matches *frequency_mhz*."""
    for channel in _CHANNEL_MAP.values():
        if abs(channel.frequency_mhz - frequency_mhz) < 0.5:
            return channel
    raise ConfigurationError(f"no BLE channel at {frequency_mhz} MHz")
