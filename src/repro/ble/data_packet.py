"""BLE data-channel packets as an interscatter RF source (paper §7).

The paper's evaluation uses *advertising* packets because they are easy to
control on commodity devices, but its discussion section points out that
Bluetooth **data** packets — sent on the 37 data channels once a connection
exists — last up to ~2 ms and would therefore enable 1 Mbps Wi-Fi packets
and much higher overall throughput.  The Bluetooth 4.2 length extension
raises the data PDU payload to 251 bytes (2120 µs of payload at 1 Mbps).

This module implements that extension: the data-channel PDU format, its
CRC (whose initial value is negotiated per connection), whitening seeded by
the data channel index, and the single-tone payload construction for data
packets.  :mod:`repro.core.timing` consumes it through
:class:`DataPacketTiming`-style helpers to quantify the throughput gain.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, CrcError, PacketFormatError
from repro.utils.bits import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits
from repro.utils.crc import CrcEngine
from repro.ble.channels import DATA_CHANNELS
from repro.ble.packet import BLE_BIT_RATE_BPS, PREAMBLE_BYTE
from repro.ble.whitening import whitening_sequence, whiten

__all__ = [
    "MAX_DATA_PAYLOAD_BYTES_LEGACY",
    "MAX_DATA_PAYLOAD_BYTES_EXTENDED",
    "DataChannelPacket",
    "craft_data_channel_single_tone",
    "DataChannelSingleTone",
]

#: Maximum data PDU payload before the Bluetooth 4.2 length extension.
MAX_DATA_PAYLOAD_BYTES_LEGACY = 27

#: Maximum data PDU payload with the 4.2 length extension (§7: "the latest
#: Bluetooth standard increases the maximum length for these data packets").
MAX_DATA_PAYLOAD_BYTES_EXTENDED = 251


def _data_crc(crc_init: int) -> CrcEngine:
    """CRC-24 engine with the connection-negotiated initial value."""
    return CrcEngine(width=24, polynomial=0x00065B, init=crc_init, reflect=True)


@dataclass
class DataChannelPacket:
    """A BLE data-channel packet.

    Parameters
    ----------
    payload:
        LL data payload (up to 251 bytes with the length extension).
    access_address:
        Connection access address (negotiated in CONNECT_REQ; any value
        other than the advertising access address).
    channel_index:
        Data channel (0-36) the packet is sent on; seeds the whitening.
    crc_init:
        Connection-specific CRC initial value.
    llid:
        Link-layer identifier bits (2 = start of an L2CAP message).
    extended_length:
        Whether the 4.2 length extension is in force.
    """

    payload: bytes = b""
    access_address: int = 0x50_65_AA_17
    channel_index: int = 11
    crc_init: int = 0x123456
    llid: int = 2
    extended_length: bool = True

    def __post_init__(self) -> None:
        limit = (
            MAX_DATA_PAYLOAD_BYTES_EXTENDED
            if self.extended_length
            else MAX_DATA_PAYLOAD_BYTES_LEGACY
        )
        if len(self.payload) > limit:
            raise PacketFormatError(
                f"data payload limited to {limit} bytes, got {len(self.payload)}"
            )
        if self.channel_index not in DATA_CHANNELS:
            raise ConfigurationError(
                f"channel {self.channel_index} is not a BLE data channel (0-36)"
            )
        if not 0 <= self.crc_init < 2**24:
            raise ConfigurationError("crc_init must be a 24-bit value")
        if not 0 <= self.llid <= 3:
            raise ConfigurationError("llid must fit in two bits")

    # ------------------------------------------------------------------ PDU
    def header_bytes(self) -> bytes:
        """Two-byte data PDU header (LLID, NESN/SN/MD zeroed, length)."""
        return bytes([self.llid & 0x03, len(self.payload) & 0xFF])

    def pdu_bytes(self) -> bytes:
        """Header + payload (the whitened, CRC-protected portion)."""
        return self.header_bytes() + self.payload

    def crc(self) -> int:
        """CRC-24 over the PDU with the connection's initial value."""
        return _data_crc(self.crc_init).compute(bytes_to_bits(self.pdu_bytes()))

    # ------------------------------------------------------------ air frames
    def air_bits(self) -> np.ndarray:
        """Over-the-air bits: preamble + access address + whitened PDU/CRC."""
        prefix = bytes([PREAMBLE_BYTE]) + self.access_address.to_bytes(4, "little")
        prefix_bits = bytes_to_bits(prefix)
        pdu_bits = bytes_to_bits(self.pdu_bytes())
        crc_bits = int_to_bits(self.crc(), 24)
        whitened = whiten(np.concatenate([pdu_bits, crc_bits]), self.channel_index)
        return np.concatenate([prefix_bits, whitened])

    def payload_air_bits(self) -> np.ndarray:
        """The whitened payload bits only (the backscatter tone window)."""
        pdu_bits = bytes_to_bits(self.pdu_bytes())
        crc_bits = int_to_bits(self.crc(), 24)
        whitened = whiten(np.concatenate([pdu_bits, crc_bits]), self.channel_index)
        return whitened[16 : 16 + len(self.payload) * 8]

    # ------------------------------------------------------------ durations
    @property
    def payload_duration_s(self) -> float:
        """Duration of the payload window at 1 Mbps."""
        return len(self.payload) * 8 / BLE_BIT_RATE_BPS

    @property
    def duration_s(self) -> float:
        """Total on-air duration of the packet."""
        return self.air_bits().size / BLE_BIT_RATE_BPS

    # -------------------------------------------------------------- parsing
    @classmethod
    def from_air_bits(
        cls,
        bits: np.ndarray,
        *,
        channel_index: int,
        access_address: int,
        crc_init: int,
    ) -> "DataChannelPacket":
        """Parse a data-channel packet from over-the-air bits, checking the CRC."""
        bits = np.asarray(bits, dtype=np.uint8).ravel()
        prefix_bits = (1 + 4) * 8
        if bits.size < prefix_bits + 16 + 24:
            raise PacketFormatError("bit stream too short for a data packet")
        received_aa = bits_to_int(bits[8:40])
        if received_aa != access_address:
            raise PacketFormatError(
                f"unexpected access address 0x{received_aa:08X}"
            )
        dewhitened = whiten(bits[prefix_bits:], channel_index)
        header = bits_to_bytes(dewhitened[:16])
        length = header[1]
        pdu_bits_len = (2 + length) * 8
        if dewhitened.size < pdu_bits_len + 24:
            raise PacketFormatError("bit stream truncated before CRC")
        pdu_bits = dewhitened[:pdu_bits_len]
        crc_received = bits_to_int(dewhitened[pdu_bits_len : pdu_bits_len + 24])
        crc_computed = _data_crc(crc_init).compute(pdu_bits)
        if crc_received != crc_computed:
            raise CrcError("BLE data packet CRC mismatch")
        pdu = bits_to_bytes(pdu_bits)
        return cls(
            payload=pdu[2:],
            access_address=access_address,
            channel_index=channel_index,
            crc_init=crc_init,
            llid=pdu[0] & 0x03,
        )


@dataclass(frozen=True)
class DataChannelSingleTone:
    """Result of crafting a single-tone payload for a data-channel packet.

    Attributes
    ----------
    packet:
        The assembled data packet.
    tone_bit:
        Constant on-air bit value during the payload window.
    tone_duration_s:
        Duration of the usable tone (the payload window).
    """

    packet: DataChannelPacket
    tone_bit: int
    tone_duration_s: float

    def on_air_payload_bits(self) -> np.ndarray:
        """The whitened payload bits — all equal to :attr:`tone_bit`."""
        return self.packet.payload_air_bits()


def craft_data_channel_single_tone(
    channel_index: int = 11,
    *,
    tone_bit: int = 1,
    payload_length: int = MAX_DATA_PAYLOAD_BYTES_EXTENDED,
    access_address: int = 0x50_65_AA_17,
    crc_init: int = 0x123456,
    extended_length: bool = True,
) -> DataChannelSingleTone:
    """Craft a data-channel payload that whitens into a constant bit stream.

    Identical in spirit to the advertising-channel construction of §2.2,
    but with the whitening seed of a *data* channel and a payload window of
    up to 251 bytes (2008 µs) — enough for 1 Mbps Wi-Fi packets and a large
    multiple of the per-advertisement throughput (paper §7).
    """
    if tone_bit not in (0, 1):
        raise ConfigurationError("tone_bit must be 0 or 1")
    limit = MAX_DATA_PAYLOAD_BYTES_EXTENDED if extended_length else MAX_DATA_PAYLOAD_BYTES_LEGACY
    if not 0 < payload_length <= limit:
        raise ConfigurationError(f"payload_length must be 1-{limit}")
    if channel_index not in DATA_CHANNELS:
        raise ConfigurationError(f"channel {channel_index} is not a BLE data channel")

    header_bits = 16
    payload_bits = payload_length * 8
    keystream = whitening_sequence(channel_index, header_bits + payload_bits)
    payload_keystream = keystream.bits[header_bits:]
    desired = np.full(payload_bits, tone_bit, dtype=np.uint8)
    data_bits = np.bitwise_xor(payload_keystream, desired)
    payload = bits_to_bytes(data_bits)
    packet = DataChannelPacket(
        payload=payload,
        access_address=access_address,
        channel_index=channel_index,
        crc_init=crc_init,
        extended_length=extended_length,
    )
    return DataChannelSingleTone(
        packet=packet,
        tone_bit=tone_bit,
        tone_duration_s=packet.payload_duration_s,
    )
