"""Profiles of the commodity Bluetooth devices used in the paper's evaluation.

The paper evaluates single-tone generation on a TI CC2650 development kit, a
Samsung Galaxy S5 smartphone and a Moto 360 (2nd gen) smart watch (Fig. 9),
and sweeps Bluetooth transmit powers of 0, 4, 10 and 20 dBm for the range
experiments (Fig. 10), citing phones that support each level.  These
profiles capture transmit power and small hardware impairments (carrier
frequency offset, modulation-index error, phase noise) so the simulated
spectra differ slightly per device, as the measured ones do.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BleDeviceProfile", "DEVICE_PROFILES", "TX_POWER_LEVELS_DBM"]

#: Transmit power levels swept in Fig. 10 and the devices the paper associates
#: with them (0 dBm typical, 4 dBm Galaxy S6/OnePlus 2, 10 dBm Note 5/iPhone 6,
#: 20 dBm class-1 devices).
TX_POWER_LEVELS_DBM = (0.0, 4.0, 10.0, 20.0)


@dataclass(frozen=True)
class BleDeviceProfile:
    """Transmit-side characteristics of a commodity BLE device.

    Attributes
    ----------
    name:
        Human-readable device name.
    tx_power_dbm:
        Default advertising transmit power.
    carrier_offset_hz:
        Static carrier frequency offset from the nominal channel centre
        (crystal tolerance).
    modulation_index_error:
        Relative error on the nominal 0.5 modulation index.
    phase_noise_std_rad:
        Standard deviation of per-sample phase noise.
    advertising_interval_s:
        Interval between advertising events.
    inter_channel_gap_s:
        Gap ΔT between the copies of an advertisement on channels 37/38/39
        (≈400 µs for TI chipsets, §2.3.3).
    """

    name: str
    tx_power_dbm: float
    carrier_offset_hz: float = 0.0
    modulation_index_error: float = 0.0
    phase_noise_std_rad: float = 0.0
    advertising_interval_s: float = 0.02
    inter_channel_gap_s: float = 400e-6

    @property
    def frequency_deviation_hz(self) -> float:
        """Actual frequency deviation after the modulation-index error."""
        return 250_000.0 * (1.0 + self.modulation_index_error)


#: The three devices evaluated in Fig. 9, plus a class-1 reference transmitter.
DEVICE_PROFILES: dict[str, BleDeviceProfile] = {
    "ti_cc2650": BleDeviceProfile(
        name="TI CC2650",
        tx_power_dbm=0.0,
        carrier_offset_hz=2_000.0,
        modulation_index_error=0.01,
        phase_noise_std_rad=0.002,
        advertising_interval_s=0.04,
    ),
    "galaxy_s5": BleDeviceProfile(
        name="Samsung Galaxy S5",
        tx_power_dbm=0.0,
        carrier_offset_hz=-8_000.0,
        modulation_index_error=0.04,
        phase_noise_std_rad=0.006,
        advertising_interval_s=0.02,
    ),
    "moto360": BleDeviceProfile(
        name="Moto 360 (2nd gen)",
        tx_power_dbm=0.0,
        carrier_offset_hz=12_000.0,
        modulation_index_error=0.06,
        phase_noise_std_rad=0.008,
        advertising_interval_s=0.02,
    ),
    "class1_reference": BleDeviceProfile(
        name="Class 1 reference transmitter",
        tx_power_dbm=20.0,
        carrier_offset_hz=0.0,
        modulation_index_error=0.0,
        phase_noise_std_rad=0.001,
        advertising_interval_s=0.02,
    ),
}
