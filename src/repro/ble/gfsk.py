"""GFSK modulation and demodulation for the BLE LE 1M PHY.

Bluetooth LE transmits 1 Msym/s GFSK: a '1' bit is a positive ~250 kHz
frequency offset from the channel centre, a '0' bit a negative offset, and
the frequency trajectory is smoothed by a Gaussian filter with BT = 0.5
(paper §2.1).  The crucial property exploited by Interscatter is that a
constant bit stream therefore produces a constant-frequency, constant-
amplitude waveform — a single tone offset ±250 kHz from the channel centre
(paper §2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array
from repro.utils.pulse_shaping import gaussian_filter_taps

__all__ = ["GfskWaveform", "GfskModulator", "GfskDemodulator"]

#: BLE LE 1M symbol rate (1 bit per symbol).
BLE_SYMBOL_RATE_HZ = 1_000_000.0

#: Nominal BLE frequency deviation (the paper quotes ~250 kHz).
BLE_FREQUENCY_DEVIATION_HZ = 250_000.0

#: Gaussian filter bandwidth-time product for BLE.
BLE_GAUSSIAN_BT = 0.5


@dataclass(frozen=True)
class GfskWaveform:
    """A complex-baseband GFSK waveform plus its metadata.

    Attributes
    ----------
    samples:
        Complex baseband samples (unit nominal amplitude).
    sample_rate_hz:
        Sample rate.
    center_frequency_hz:
        RF centre frequency this baseband waveform is notionally mixed to.
    """

    samples: np.ndarray
    sample_rate_hz: float
    center_frequency_hz: float

    @property
    def duration_s(self) -> float:
        """Waveform duration in seconds."""
        return self.samples.size / self.sample_rate_hz

    def __len__(self) -> int:
        return int(self.samples.size)


class GfskModulator:
    """Gaussian FSK modulator.

    Parameters
    ----------
    samples_per_symbol:
        Oversampling factor relative to the 1 Msym/s BLE symbol rate.
    frequency_deviation_hz:
        Peak deviation for a constant bit stream (modulation index
        ``2 * deviation / symbol_rate``; BLE nominal 0.5).
    bt:
        Gaussian filter bandwidth-time product.
    symbol_rate_hz:
        Symbol rate; defaults to BLE's 1 Msym/s.
    """

    def __init__(
        self,
        samples_per_symbol: int = 8,
        *,
        frequency_deviation_hz: float = BLE_FREQUENCY_DEVIATION_HZ,
        bt: float = BLE_GAUSSIAN_BT,
        symbol_rate_hz: float = BLE_SYMBOL_RATE_HZ,
    ) -> None:
        if samples_per_symbol < 2:
            raise ConfigurationError("samples_per_symbol must be >= 2")
        if frequency_deviation_hz <= 0:
            raise ConfigurationError("frequency_deviation_hz must be positive")
        self.samples_per_symbol = samples_per_symbol
        self.frequency_deviation_hz = frequency_deviation_hz
        self.bt = bt
        self.symbol_rate_hz = symbol_rate_hz
        self._gaussian_taps = gaussian_filter_taps(bt, samples_per_symbol, span_symbols=3)

    @property
    def sample_rate_hz(self) -> float:
        """Output sample rate."""
        return self.symbol_rate_hz * self.samples_per_symbol

    def instantaneous_frequency(self, bits: Iterable[int] | np.ndarray) -> np.ndarray:
        """Per-sample instantaneous frequency (Hz) for a bit sequence."""
        arr = as_bit_array(bits)
        if arr.size == 0:
            return np.zeros(0)
        # NRZ mapping: 1 -> +1, 0 -> -1, held for one symbol period.
        nrz = 2.0 * arr.astype(float) - 1.0
        upsampled = np.repeat(nrz, self.samples_per_symbol)
        # Pad at the edges so the Gaussian filter does not dip toward zero at
        # the boundaries of a constant stream.
        pad = self._gaussian_taps.size
        padded = np.concatenate([
            np.full(pad, upsampled[0]),
            upsampled,
            np.full(pad, upsampled[-1]),
        ])
        smoothed = np.convolve(padded, self._gaussian_taps, mode="same")[pad:-pad]
        return smoothed * self.frequency_deviation_hz

    def modulate(
        self,
        bits: Iterable[int] | np.ndarray,
        *,
        center_frequency_hz: float = 2.426e9,
        amplitude: float = 1.0,
        phase_offset_rad: float = 0.0,
    ) -> GfskWaveform:
        """Modulate *bits* into a complex baseband GFSK waveform."""
        freq = self.instantaneous_frequency(bits)
        if freq.size == 0:
            return GfskWaveform(
                samples=np.zeros(0, dtype=complex),
                sample_rate_hz=self.sample_rate_hz,
                center_frequency_hz=center_frequency_hz,
            )
        phase = phase_offset_rad + 2.0 * np.pi * np.cumsum(freq) / self.sample_rate_hz
        samples = amplitude * np.exp(1j * phase)
        return GfskWaveform(
            samples=samples,
            sample_rate_hz=self.sample_rate_hz,
            center_frequency_hz=center_frequency_hz,
        )


class GfskDemodulator:
    """Non-coherent GFSK demodulator (frequency discriminator + slicer).

    Used in tests to confirm that the modulator round-trips bits and that
    the single-tone payload crafting really produces constant bits on air.
    """

    def __init__(self, samples_per_symbol: int = 8) -> None:
        if samples_per_symbol < 2:
            raise ConfigurationError("samples_per_symbol must be >= 2")
        self.samples_per_symbol = samples_per_symbol

    def instantaneous_frequency(self, waveform: GfskWaveform) -> np.ndarray:
        """Estimate per-sample instantaneous frequency from the phase slope."""
        samples = waveform.samples
        if samples.size < 2:
            return np.zeros(samples.size)
        phase_delta = np.angle(samples[1:] * np.conj(samples[:-1]))
        freq = phase_delta * waveform.sample_rate_hz / (2.0 * np.pi)
        return np.concatenate([[freq[0]], freq])

    def demodulate(self, waveform: GfskWaveform, num_bits: int | None = None) -> np.ndarray:
        """Recover the bit sequence from a GFSK waveform.

        Parameters
        ----------
        waveform:
            The waveform produced by :class:`GfskModulator` (possibly with
            noise added).
        num_bits:
            Number of bits to decode; defaults to the maximum that fits.
        """
        freq = self.instantaneous_frequency(waveform)
        sps = self.samples_per_symbol
        available = freq.size // sps
        count = available if num_bits is None else min(num_bits, available)
        bits = np.empty(count, dtype=np.uint8)
        for i in range(count):
            # Average the middle half of each symbol period to avoid ISI at
            # the Gaussian-smoothed transitions.
            start = i * sps + sps // 4
            stop = i * sps + (3 * sps) // 4
            stop = max(stop, start + 1)
            bits[i] = 1 if np.mean(freq[start:stop]) > 0 else 0
        return bits
