"""BLE advertising packet structure (paper Fig. 5).

An advertising-channel packet consists of::

    preamble (1 byte, 0xAA) | access address (4 bytes, 0x8E89BED6)
    | PDU header (2 bytes)  | AdvA (6 bytes) | AdvData (0-31 bytes)
    | CRC (3 bytes)

Only the PDU (header onward) is whitened and CRC-protected.  The paper
exploits the fact that only the AdvData payload is application-controlled
(and, through the Android API, only 24 of its 31 bytes) — the preamble,
access address and header instead serve as the wake-up/timing reference for
the backscatter tag's envelope detector.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import CrcError, PacketFormatError
from repro.utils.bits import bits_to_bytes, bits_to_int, bytes_to_bits, int_to_bits
from repro.utils.crc import crc24_ble
from repro.ble.whitening import whiten

__all__ = [
    "ADVERTISING_ACCESS_ADDRESS",
    "PREAMBLE_BYTE",
    "MAX_ADV_DATA_BYTES",
    "ANDROID_CONTROLLABLE_PAYLOAD_BYTES",
    "AdvertisingPduType",
    "AdvertisingPacket",
]

#: Fixed access address used on all three advertising channels.
ADVERTISING_ACCESS_ADDRESS = 0x8E89BED6

#: Advertising packets use a 0xAA preamble (alternating 0/1, LSB first since
#: the access address LSB is 0).
PREAMBLE_BYTE = 0xAA

#: Maximum AdvData length in bytes (legacy advertising).
MAX_ADV_DATA_BYTES = 31

#: The Android advertising API only exposes 24 of the 31 payload bytes
#: (paper §2.2 footnote 3).
ANDROID_CONTROLLABLE_PAYLOAD_BYTES = 24

#: Bit rate of the LE 1M PHY.
BLE_BIT_RATE_BPS = 1_000_000


class AdvertisingPduType(enum.IntEnum):
    """Advertising PDU types (header bits 0-3)."""

    ADV_IND = 0x0
    ADV_DIRECT_IND = 0x1
    ADV_NONCONN_IND = 0x2
    SCAN_REQ = 0x3
    SCAN_RSP = 0x4
    CONNECT_REQ = 0x5
    ADV_SCAN_IND = 0x6


@dataclass
class AdvertisingPacket:
    """A BLE advertising packet.

    Parameters
    ----------
    advertiser_address:
        Six-byte advertiser (MAC) address.
    payload:
        AdvData payload, up to 31 bytes.
    pdu_type:
        Advertising PDU type; the paper uses non-connectable advertisements.
    channel_index:
        Advertising channel (37, 38 or 39) the packet is destined for; used
        for whitening when building the air bits.
    """

    advertiser_address: bytes = b"\xc0\xff\xee\xc0\xff\xee"
    payload: bytes = b""
    pdu_type: AdvertisingPduType = AdvertisingPduType.ADV_NONCONN_IND
    channel_index: int = 38

    def __post_init__(self) -> None:
        if len(self.advertiser_address) != 6:
            raise PacketFormatError("advertiser address must be exactly 6 bytes")
        if len(self.payload) > MAX_ADV_DATA_BYTES:
            raise PacketFormatError(
                f"AdvData payload limited to {MAX_ADV_DATA_BYTES} bytes, got {len(self.payload)}"
            )

    # ------------------------------------------------------------------ PDU
    def header_bytes(self) -> bytes:
        """Two-byte PDU header: type, TxAdd/RxAdd flags and payload length."""
        pdu_payload_length = 6 + len(self.payload)
        header0 = int(self.pdu_type) & 0x0F
        header1 = pdu_payload_length & 0x3F
        return bytes([header0, header1])

    def pdu_bytes(self) -> bytes:
        """Header + AdvA + AdvData (the CRC-protected, whitened portion)."""
        return self.header_bytes() + self.advertiser_address + self.payload

    def crc(self) -> int:
        """CRC-24 over the PDU, as transmitted on advertising channels."""
        return crc24_ble.compute(bytes_to_bits(self.pdu_bytes()))

    # ------------------------------------------------------------ air frames
    def unwhitened_bits(self) -> np.ndarray:
        """All packet bits before whitening (preamble → CRC), LSB first."""
        preamble_and_aa = bytes([PREAMBLE_BYTE]) + ADVERTISING_ACCESS_ADDRESS.to_bytes(4, "little")
        prefix_bits = bytes_to_bits(preamble_and_aa)
        pdu_bits = bytes_to_bits(self.pdu_bytes())
        crc_bits = int_to_bits(self.crc(), 24)
        return np.concatenate([prefix_bits, pdu_bits, crc_bits])

    def air_bits(self) -> np.ndarray:
        """Over-the-air bits: PDU and CRC whitened, preamble/AA untouched."""
        preamble_and_aa = bytes([PREAMBLE_BYTE]) + ADVERTISING_ACCESS_ADDRESS.to_bytes(4, "little")
        prefix_bits = bytes_to_bits(preamble_and_aa)
        pdu_bits = bytes_to_bits(self.pdu_bytes())
        crc_bits = int_to_bits(self.crc(), 24)
        whitened = whiten(np.concatenate([pdu_bits, crc_bits]), self.channel_index)
        return np.concatenate([prefix_bits, whitened])

    def payload_air_bits(self) -> np.ndarray:
        """Only the whitened AdvData payload bits as they appear on the air.

        This is the portion of the packet the interscatter tag backscatters
        over (paper §2.2): the preamble/AA/header serve as the wake-up
        trigger and the CRC trails the synthesized Wi-Fi packet.
        """
        pdu_bits = bytes_to_bits(self.pdu_bytes())
        crc_bits = int_to_bits(self.crc(), 24)
        whitened = whiten(np.concatenate([pdu_bits, crc_bits]), self.channel_index)
        header_and_adva_bits = (2 + 6) * 8
        payload_bits = len(self.payload) * 8
        return whitened[header_and_adva_bits : header_and_adva_bits + payload_bits]

    # ------------------------------------------------------------ durations
    @property
    def duration_s(self) -> float:
        """On-air duration of the whole packet at 1 Mbps."""
        return self.unwhitened_bits().size / BLE_BIT_RATE_BPS

    @property
    def preamble_header_duration_s(self) -> float:
        """Duration of preamble + access address + header + AdvA (the 56 µs + AdvA window)."""
        bits = (1 + 4 + 2 + 6) * 8
        return bits / BLE_BIT_RATE_BPS

    @property
    def payload_duration_s(self) -> float:
        """Duration of the AdvData payload — the backscatter window."""
        return len(self.payload) * 8 / BLE_BIT_RATE_BPS

    # -------------------------------------------------------------- parsing
    @classmethod
    def from_air_bits(cls, bits: np.ndarray, channel_index: int) -> "AdvertisingPacket":
        """Parse a packet from over-the-air bits, verifying the CRC.

        Raises
        ------
        PacketFormatError
            If the bit stream is too short or the access address is wrong.
        CrcError
            If the CRC-24 check fails after de-whitening.
        """
        prefix_bits = (1 + 4) * 8
        min_bits = prefix_bits + (2 + 6) * 8 + 24
        if bits.size < min_bits:
            raise PacketFormatError(f"need at least {min_bits} bits, got {bits.size}")
        access_address = bits_to_int(bits[8:40])
        if access_address != ADVERTISING_ACCESS_ADDRESS:
            raise PacketFormatError(
                f"unexpected access address 0x{access_address:08X}"
            )
        dewhitened = whiten(bits[prefix_bits:], channel_index)
        header = bits_to_bytes(dewhitened[:16])
        try:
            pdu_type = AdvertisingPduType(header[0] & 0x0F)
        except ValueError as exc:
            raise PacketFormatError(f"invalid PDU type 0x{header[0] & 0x0F:X}") from exc
        pdu_length = header[1] & 0x3F
        if pdu_length < 6:
            raise PacketFormatError(f"PDU length {pdu_length} shorter than AdvA")
        pdu_bits_len = (2 + pdu_length) * 8
        if dewhitened.size < pdu_bits_len + 24:
            raise PacketFormatError("bit stream truncated before CRC")
        pdu_bits = dewhitened[:pdu_bits_len]
        crc_received = bits_to_int(dewhitened[pdu_bits_len : pdu_bits_len + 24])
        crc_computed = crc24_ble.compute(pdu_bits)
        if crc_received != crc_computed:
            raise CrcError(
                f"BLE CRC mismatch: received 0x{crc_received:06X}, computed 0x{crc_computed:06X}"
            )
        pdu = bits_to_bytes(pdu_bits)
        return cls(
            advertiser_address=pdu[2:8],
            payload=pdu[8 : 2 + pdu_length],
            pdu_type=pdu_type,
            channel_index=channel_index,
        )
