"""BLE transmitter model producing complete advertising waveforms.

Combines packet assembly, whitening, GFSK modulation and device impairments
into one object so the core interscatter pipeline and the experiments can
say "give me the waveform a Galaxy S5 would emit for this payload on
channel 38 at 10 dBm".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.dsp import dbm_to_watts
from repro.ble.channels import advertising_channel
from repro.ble.devices import BleDeviceProfile, DEVICE_PROFILES
from repro.ble.gfsk import GfskModulator, GfskWaveform
from repro.ble.packet import AdvertisingPacket
from repro.ble.single_tone import SingleTonePayload, craft_single_tone_payload

__all__ = ["BleTransmission", "BleTransmitter"]


@dataclass(frozen=True)
class BleTransmission:
    """A transmitted advertising packet and its waveform.

    Attributes
    ----------
    packet:
        The advertising packet that was sent.
    waveform:
        Complex baseband waveform (amplitude scaled so that
        ``|s|^2`` equals the transmit power in watts).
    payload_start_sample / payload_end_sample:
        Sample indices delimiting the AdvData payload region — the window in
        which a crafted payload is a pure tone and backscattering happens.
    tx_power_dbm:
        Transmit power used.
    """

    packet: AdvertisingPacket
    waveform: GfskWaveform
    payload_start_sample: int
    payload_end_sample: int
    tx_power_dbm: float

    @property
    def payload_waveform(self) -> np.ndarray:
        """Samples covering only the payload (single-tone) window."""
        return self.waveform.samples[self.payload_start_sample : self.payload_end_sample]


class BleTransmitter:
    """A commodity BLE device transmitting advertising packets.

    Parameters
    ----------
    profile:
        Device profile (name from :data:`repro.ble.devices.DEVICE_PROFILES`
        or a :class:`BleDeviceProfile` instance).
    samples_per_symbol:
        Oversampling factor for the generated waveform.
    tx_power_dbm:
        Override of the profile's transmit power.
    rng:
        Random generator for phase noise; pass a seeded generator for
        reproducible waveforms.
    """

    def __init__(
        self,
        profile: str | BleDeviceProfile = "ti_cc2650",
        *,
        samples_per_symbol: int = 8,
        tx_power_dbm: float | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if isinstance(profile, str):
            try:
                profile = DEVICE_PROFILES[profile]
            except KeyError as exc:
                raise KeyError(
                    f"unknown device profile {profile!r}; available: {sorted(DEVICE_PROFILES)}"
                ) from exc
        self.profile = profile
        self.samples_per_symbol = samples_per_symbol
        self.tx_power_dbm = profile.tx_power_dbm if tx_power_dbm is None else tx_power_dbm
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._modulator = GfskModulator(
            samples_per_symbol,
            frequency_deviation_hz=profile.frequency_deviation_hz,
        )

    @property
    def sample_rate_hz(self) -> float:
        """Sample rate of emitted waveforms."""
        return self._modulator.sample_rate_hz

    def transmit(self, packet: AdvertisingPacket) -> BleTransmission:
        """Emit the waveform for an advertising packet with device impairments."""
        channel = advertising_channel(packet.channel_index)
        air_bits = packet.air_bits()
        waveform = self._modulator.modulate(
            air_bits, center_frequency_hz=channel.frequency_hz
        )
        samples = waveform.samples

        # Device impairments: carrier offset and phase noise.
        if self.profile.carrier_offset_hz:
            n = np.arange(samples.size)
            samples = samples * np.exp(
                2j * np.pi * self.profile.carrier_offset_hz * n / waveform.sample_rate_hz
            )
        if self.profile.phase_noise_std_rad > 0:
            phase_noise = np.cumsum(
                self._rng.normal(0.0, self.profile.phase_noise_std_rad, samples.size)
            )
            # Keep the random walk bounded so long payloads do not drift away.
            phase_noise -= np.linspace(0, phase_noise[-1], samples.size)
            samples = samples * np.exp(1j * phase_noise)

        amplitude = np.sqrt(dbm_to_watts(self.tx_power_dbm))
        samples = samples * amplitude

        sps = self.samples_per_symbol
        prefix_bits = (1 + 4 + 2 + 6) * 8
        payload_bits = len(packet.payload) * 8
        return BleTransmission(
            packet=packet,
            waveform=GfskWaveform(
                samples=samples,
                sample_rate_hz=waveform.sample_rate_hz,
                center_frequency_hz=channel.frequency_hz,
            ),
            payload_start_sample=prefix_bits * sps,
            payload_end_sample=(prefix_bits + payload_bits) * sps,
            tx_power_dbm=self.tx_power_dbm,
        )

    def transmit_single_tone(
        self,
        channel_index: int = 38,
        *,
        tone_bit: int = 1,
        payload_length: int = 31,
        android_constraint: bool = False,
    ) -> tuple[SingleTonePayload, BleTransmission]:
        """Craft a single-tone payload and transmit it.

        Returns the crafted payload description and the transmission.
        """
        crafted = craft_single_tone_payload(
            channel_index,
            tone_bit=tone_bit,
            payload_length=payload_length,
            android_constraint=android_constraint,
        )
        return crafted, self.transmit(crafted.packet)

    def transmit_random_payload(
        self,
        channel_index: int = 38,
        *,
        payload_length: int = 31,
        rng: np.random.Generator | None = None,
    ) -> BleTransmission:
        """Transmit an advertisement with random application data.

        Used as the comparison case in Fig. 9 (random BLE transmission vs
        interscatter single-tone transmission).
        """
        generator = rng if rng is not None else self._rng
        payload = bytes(int(b) for b in generator.integers(0, 256, payload_length))
        packet = AdvertisingPacket(payload=payload, channel_index=channel_index)
        return self.transmit(packet)
