"""Crafting BLE payloads that put a single tone on the air (paper §2.2).

The trick: BLE whitens the PDU with a keystream that is a deterministic
function of the advertising channel.  If the application payload bits are
set *equal to* the keystream bits covering the payload region, the whitened
(on-air) payload bits are all zeros — and GFSK then emits a constant
-250 kHz tone for the duration of the payload.  Setting the payload to the
keystream's complement yields all ones and a +250 kHz tone.

Only the AdvData payload is controllable (and on Android only 24 of its 31
bytes), so the tone exists only during the payload window; the preamble,
access address, header, AdvA and CRC still carry ordinary modulation.  The
backscatter tag therefore uses the packet prefix for wake-up/timing and
finishes its Wi-Fi transmission before the CRC starts (§2.2, §2.3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import bits_to_bytes
from repro.ble.packet import (
    ANDROID_CONTROLLABLE_PAYLOAD_BYTES,
    MAX_ADV_DATA_BYTES,
    AdvertisingPacket,
)
from repro.ble.whitening import whitening_sequence

__all__ = ["SingleTonePayload", "craft_single_tone_payload", "tone_offset_hz"]


@dataclass(frozen=True)
class SingleTonePayload:
    """Result of the single-tone payload construction.

    Attributes
    ----------
    channel_index:
        Advertising channel the payload was crafted for.
    payload:
        AdvData bytes to hand to the advertising API.
    tone_bit:
        The constant on-air bit value the payload produces (0 or 1).
    packet:
        A fully assembled advertising packet carrying the payload.
    controllable_bytes:
        How many payload bytes were assumed controllable.
    """

    channel_index: int
    payload: bytes
    tone_bit: int
    packet: AdvertisingPacket
    controllable_bytes: int

    @property
    def tone_offset_hz(self) -> float:
        """Frequency offset of the emitted tone from the channel centre."""
        return tone_offset_hz(self.tone_bit)

    def on_air_payload_bits(self) -> np.ndarray:
        """The whitened payload bits — all equal to :attr:`tone_bit`."""
        return self.packet.payload_air_bits()


def tone_offset_hz(tone_bit: int, deviation_hz: float = 250_000.0) -> float:
    """Frequency offset produced by a constant stream of *tone_bit*."""
    if tone_bit not in (0, 1):
        raise ConfigurationError("tone_bit must be 0 or 1")
    return deviation_hz if tone_bit == 1 else -deviation_hz


def craft_single_tone_payload(
    channel_index: int = 38,
    *,
    tone_bit: int = 1,
    payload_length: int = MAX_ADV_DATA_BYTES,
    android_constraint: bool = False,
    advertiser_address: bytes = b"\xc0\xff\xee\xc0\xff\xee",
) -> SingleTonePayload:
    """Compute the AdvData payload that whitens to a constant bit stream.

    Parameters
    ----------
    channel_index:
        Advertising channel (37, 38 or 39); determines the whitening seed.
    tone_bit:
        Desired constant on-air bit: 1 → +250 kHz tone, 0 → −250 kHz tone.
    payload_length:
        Number of AdvData bytes to fill (max 31).
    android_constraint:
        When True only the first 24 bytes are treated as controllable
        (matching the Android API restriction noted in the paper); the
        remaining bytes are zero-filled and whiten to pseudo-random bits.
    advertiser_address:
        Six-byte AdvA, part of the un-controllable prefix.

    Returns
    -------
    SingleTonePayload
        The crafted payload plus the assembled packet for inspection.
    """
    if tone_bit not in (0, 1):
        raise ConfigurationError("tone_bit must be 0 or 1")
    if not 0 < payload_length <= MAX_ADV_DATA_BYTES:
        raise ConfigurationError(
            f"payload_length must be 1-{MAX_ADV_DATA_BYTES}, got {payload_length}"
        )

    controllable = payload_length
    if android_constraint:
        controllable = min(payload_length, ANDROID_CONTROLLABLE_PAYLOAD_BYTES)

    # The whitening keystream starts at the first PDU bit.  The payload
    # begins after the 2-byte header and 6-byte AdvA.
    header_and_adva_bits = (2 + 6) * 8
    payload_bits = payload_length * 8
    keystream = whitening_sequence(channel_index, header_and_adva_bits + payload_bits)
    payload_keystream = keystream.bits[header_and_adva_bits:]

    # Data XOR keystream = on-air bits.  To force the on-air bits to
    # `tone_bit` we set data = keystream XOR tone_bit.
    desired = np.full(payload_bits, tone_bit, dtype=np.uint8)
    data_bits = np.bitwise_xor(payload_keystream, desired)

    if android_constraint and controllable < payload_length:
        # Bytes beyond the controllable region cannot be set; zero them.
        data_bits = data_bits.copy()
        data_bits[controllable * 8 :] = 0

    payload = bits_to_bytes(data_bits)
    packet = AdvertisingPacket(
        advertiser_address=advertiser_address,
        payload=payload,
        channel_index=channel_index,
    )
    return SingleTonePayload(
        channel_index=channel_index,
        payload=payload,
        tone_bit=tone_bit,
        packet=packet,
        controllable_bytes=controllable,
    )
