"""BLE data whitening (paper §2.2, Fig. 4).

Bluetooth whitens the PDU (header + payload + CRC) with a 7-bit LFSR using
the polynomial ``x^7 + x^4 + 1``.  The register is initialised with position
0 set to one and positions 1–6 set to the channel index (MSB first per the
Bluetooth Core specification).  Because the whitening sequence is a pure
function of the channel number, an application can pre-compute it and choose
payload bits equal to the keystream (or its complement), so the *whitened*
bits on the air become all zeros (or all ones) — the key trick that turns a
Bluetooth radio into a single-tone transmitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["WhiteningSequence", "whitening_sequence", "whiten", "initial_state_for_channel"]

_REGISTER_BITS = 7


def initial_state_for_channel(channel_index: int) -> list[int]:
    """Whitening register initial state for a BLE channel.

    Position 0 is set to 1 and positions 1..6 carry the channel index with
    its most significant bit in position 1, per the Bluetooth Core spec
    (Vol 6, Part B, §3.2).
    """
    if not 0 <= channel_index <= 39:
        raise ConfigurationError(f"BLE channel index must be 0-39, got {channel_index}")
    state = [1]
    for bit_position in range(5, -1, -1):
        state.append((channel_index >> bit_position) & 1)
    return state


def _advance(state: list[int]) -> tuple[int, list[int]]:
    """One step of the whitening LFSR; returns (output bit, next state).

    The output is taken from position 6 (x^7 stage); the feedback is the
    output bit, which is shifted into position 0 and XORed into position 4
    (the x^4 tap).
    """
    out = state[6]
    next_state = [out] + state[0:6]
    next_state[4] ^= out
    return out, next_state


@dataclass(frozen=True)
class WhiteningSequence:
    """A pre-computed whitening keystream for one BLE channel.

    Attributes
    ----------
    channel_index:
        The channel whose seed generated the keystream.
    bits:
        The keystream bits, in transmission order, starting at the first PDU
        bit (whitening does not cover preamble or access address).
    """

    channel_index: int
    bits: np.ndarray

    def __len__(self) -> int:
        return int(self.bits.size)

    def apply(self, data_bits: Iterable[int] | np.ndarray) -> np.ndarray:
        """Whiten (or de-whiten — the operation is its own inverse) bits."""
        arr = as_bit_array(data_bits)
        if arr.size > self.bits.size:
            raise ValueError(
                f"whitening sequence has {self.bits.size} bits, need {arr.size}"
            )
        return np.bitwise_xor(arr, self.bits[: arr.size])


def whitening_sequence(channel_index: int, length: int) -> WhiteningSequence:
    """Generate *length* whitening bits for the given BLE channel."""
    if length < 0:
        raise ValueError("length must be non-negative")
    state = initial_state_for_channel(channel_index)
    bits = np.empty(length, dtype=np.uint8)
    for i in range(length):
        out, state = _advance(state)
        bits[i] = out
    return WhiteningSequence(channel_index=channel_index, bits=bits)


def whiten(data_bits: Iterable[int] | np.ndarray, channel_index: int) -> np.ndarray:
    """Whiten *data_bits* for transmission on *channel_index*.

    The same function de-whitens received bits (XOR with the keystream is an
    involution).
    """
    arr = as_bit_array(data_bits)
    sequence = whitening_sequence(channel_index, arr.size)
    return sequence.apply(arr)
