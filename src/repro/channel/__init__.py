"""RF propagation, noise, antenna and tissue models.

These models turn transmit powers and geometries into received signal
strengths so the range/RSSI figures of the paper (Figs. 10, 14, 15, 16, 17)
can be reproduced in shape.  A backscatter link is a *two-hop* product
channel: Bluetooth transmitter → tag, then tag → receiver, with the tag
contributing a conversion loss; :mod:`repro.channel.link_budget` composes
the pieces.
"""

from repro.channel.propagation import (
    free_space_path_loss_db,
    log_distance_path_loss_db,
    PathLossModel,
)
from repro.channel.antennas import AntennaModel, ANTENNAS
from repro.channel.tissue import TissueLayer, TISSUE_PRESETS, tissue_attenuation_db
from repro.channel.noise import NoiseModel, thermal_noise_dbm
from repro.channel.link_budget import (
    BackscatterLinkBudget,
    BackscatterLinkResult,
    DirectLinkBudget,
)
from repro.channel.geometry import Position, distance_feet, feet_to_meters, meters_to_feet
from repro.channel.error_models import (
    ber_dbpsk,
    ber_dqpsk,
    ber_oqpsk_dsss,
    packet_error_rate,
    wifi_packet_error_rate,
)

__all__ = [
    "free_space_path_loss_db",
    "log_distance_path_loss_db",
    "PathLossModel",
    "AntennaModel",
    "ANTENNAS",
    "TissueLayer",
    "TISSUE_PRESETS",
    "tissue_attenuation_db",
    "NoiseModel",
    "thermal_noise_dbm",
    "BackscatterLinkBudget",
    "BackscatterLinkResult",
    "DirectLinkBudget",
    "Position",
    "distance_feet",
    "feet_to_meters",
    "meters_to_feet",
    "ber_dbpsk",
    "ber_dqpsk",
    "ber_oqpsk_dsss",
    "packet_error_rate",
    "wifi_packet_error_rate",
]
