"""Antenna models for the devices in the paper's evaluation.

Three antennas matter:

* the 2 dBi monopole used on the interscatter FPGA prototype and the
  Bluetooth/Wi-Fi test devices,
* the 1 cm-diameter loop of the contact-lens prototype (30 AWG wire in
  PDMS), which is electrically small, poorly matched and lossy, and
* the 4 cm full-wavelength loop of the neural-implant prototype (16 AWG
  magnet wire in 2 mm PDMS).

The small antennas are modelled by a gain (negative dBi) plus a complex
feed-point impedance, which the backscatter switch network must be
re-optimised for (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AntennaModel", "ANTENNAS"]


@dataclass(frozen=True)
class AntennaModel:
    """Simple antenna description used by the link budget.

    Attributes
    ----------
    name:
        Human-readable antenna name.
    gain_dbi:
        Realised gain including matching/efficiency losses.
    impedance_ohm:
        Feed-point impedance at 2.45 GHz.
    description:
        Where the antenna appears in the paper.
    """

    name: str
    gain_dbi: float
    impedance_ohm: complex = 50.0 + 0.0j
    description: str = ""


#: Antennas referenced in the paper.
ANTENNAS: dict[str, AntennaModel] = {
    "monopole_2dbi": AntennaModel(
        name="2 dBi monopole",
        gain_dbi=2.0,
        impedance_ohm=50.0 + 0.0j,
        description="FPGA prototype / commodity device antenna (§3, §4)",
    ),
    "contact_lens_loop": AntennaModel(
        name="1 cm contact-lens loop",
        gain_dbi=-9.0,
        impedance_ohm=15.0 + 45.0j,
        description="30 AWG loop in 200 µm PDMS, in saline (§5.1)",
    ),
    "neural_implant_loop": AntennaModel(
        name="4 cm implant loop",
        gain_dbi=-15.0,
        impedance_ohm=35.0 + 20.0j,
        description="16 AWG full-wavelength loop in 2 mm PDMS, detuned by tissue (§5.2)",
    ),
    "credit_card_trace": AntennaModel(
        name="credit-card PCB trace antenna",
        gain_dbi=0.0,
        impedance_ohm=50.0 + 0.0j,
        description="card-to-card prototype antenna (§5.3)",
    ),
}
