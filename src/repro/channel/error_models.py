"""SNR → bit/packet error-rate models for the PHYs in the reproduction.

Waveform-level simulation of every packet at every distance would be slow;
the range/PER experiments (Figs. 10, 11, 13, 14, 17) instead use standard
AWGN error-rate expressions applied to the link-budget SNR, while the
waveform pipeline is exercised end-to-end at a few operating points by the
integration tests.  The expressions are the textbook ones for the relevant
modulations (DBPSK/DQPSK with Barker processing gain for 802.11b, O-QPSK
with DSSS gain for 802.15.4, on-off keying for the peak-detector downlink).
"""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.exceptions import ConfigurationError
from repro.utils.dsp import scalar_or_array as _scalar_or_array

__all__ = [
    "qfunc",
    "ber_dbpsk",
    "ber_dqpsk",
    "ber_oqpsk_dsss",
    "ber_ook_envelope",
    "packet_error_rate",
    "wifi_packet_error_rate",
    "WIFI_PROCESSING_GAIN_DB",
    "required_snr_db",
]

#: Barker-11 processing gain enjoyed by 1 and 2 Mbps 802.11b.
WIFI_PROCESSING_GAIN_DB = 10.0 * np.log10(11.0)


def qfunc(x: np.ndarray | float) -> np.ndarray | float:
    """Gaussian Q-function."""
    return 0.5 * special.erfc(np.asarray(x, dtype=float) / np.sqrt(2.0))


def _ebn0_from_snr(
    snr_db: float | np.ndarray, bit_rate_bps: float, bandwidth_hz: float
) -> float | np.ndarray:
    """Convert an in-band SNR to Eb/N0 given the bit rate and noise bandwidth."""
    if bit_rate_bps <= 0 or bandwidth_hz <= 0:
        raise ConfigurationError("bit rate and bandwidth must be positive")
    return np.asarray(snr_db, dtype=float) + 10.0 * np.log10(bandwidth_hz / bit_rate_bps)


def ber_dbpsk(
    snr_db: float | np.ndarray, *, bit_rate_bps: float = 1e6, bandwidth_hz: float = 22e6
) -> float | np.ndarray:
    """DBPSK bit error rate (802.11b 1 Mbps / 5.5 Mbps CCK approximation)."""
    ebn0_db = _ebn0_from_snr(snr_db, bit_rate_bps, bandwidth_hz)
    ebn0 = 10.0 ** (ebn0_db / 10.0)
    return _scalar_or_array(np.clip(0.5 * np.exp(-ebn0), 0.0, 0.5), snr_db)


def ber_dqpsk(
    snr_db: float | np.ndarray, *, bit_rate_bps: float = 2e6, bandwidth_hz: float = 22e6
) -> float | np.ndarray:
    """DQPSK bit error rate (802.11b 2 Mbps / 11 Mbps CCK approximation)."""
    ebn0_db = _ebn0_from_snr(snr_db, bit_rate_bps, bandwidth_hz)
    ebn0 = 10.0 ** (ebn0_db / 10.0)
    # Standard DQPSK approximation via the Marcum-Q bound; the simpler
    # exponential bound is adequate for reproducing PER *shapes*.
    return _scalar_or_array(np.clip(0.5 * np.exp(-0.59 * 2.0 * ebn0), 0.0, 0.5), snr_db)


def ber_oqpsk_dsss(
    snr_db: float | np.ndarray, *, bit_rate_bps: float = 250e3, bandwidth_hz: float = 2e6
) -> float | np.ndarray:
    """802.15.4 O-QPSK/DSSS bit error rate (coherent QPSK with spreading gain)."""
    ebn0_db = _ebn0_from_snr(snr_db, bit_rate_bps, bandwidth_hz)
    ebn0 = 10.0 ** (ebn0_db / 10.0)
    return _scalar_or_array(np.clip(qfunc(np.sqrt(2.0 * ebn0)), 0.0, 0.5), snr_db)


def ber_ook_envelope(snr_db: float | np.ndarray) -> float | np.ndarray:
    """Non-coherent on-off-keying BER for the peak-detector downlink."""
    snr = 10.0 ** (np.asarray(snr_db, dtype=float) / 10.0)
    return _scalar_or_array(np.clip(0.5 * np.exp(-snr / 4.0), 0.0, 0.5), snr_db)


def packet_error_rate(bit_error_rate: float | np.ndarray, packet_bits: int) -> float | np.ndarray:
    """PER for independent bit errors."""
    if packet_bits <= 0:
        raise ConfigurationError("packet_bits must be positive")
    ber = np.clip(np.asarray(bit_error_rate, dtype=float), 0.0, 1.0)
    return _scalar_or_array(1.0 - (1.0 - ber) ** packet_bits, bit_error_rate)


def wifi_packet_error_rate(
    snr_db: float | np.ndarray,
    *,
    rate_mbps: float,
    payload_bytes: int,
    header_bytes: int = 28,
) -> float | np.ndarray:
    """802.11b packet error rate, accounting for the 1 Mbps PLCP preamble/header.

    Both the 2 Mbps and the 11 Mbps interscatter packets carry their PLCP
    preamble and header at 1 Mbps DBPSK, which is why the paper observes
    similar PERs for the two rates at the small payload sizes that fit in a
    BLE advertisement (§4.2).  Broadcasts over arrays of SNRs.
    """
    if payload_bytes <= 0:
        raise ConfigurationError("payload_bytes must be positive")
    preamble_header_bits = 192  # long PLCP preamble + header at 1 Mbps
    header_ber = np.asarray(ber_dbpsk(snr_db, bit_rate_bps=1e6))
    header_ok = (1.0 - header_ber) ** preamble_header_bits

    payload_bits = (payload_bytes + header_bytes) * 8
    if rate_mbps in (1.0, 5.5):
        payload_ber = np.asarray(ber_dbpsk(snr_db, bit_rate_bps=rate_mbps * 1e6))
    elif rate_mbps in (2.0, 11.0):
        payload_ber = np.asarray(ber_dqpsk(snr_db, bit_rate_bps=rate_mbps * 1e6))
    else:
        raise ConfigurationError(f"unsupported 802.11b rate {rate_mbps}")
    payload_ok = (1.0 - payload_ber) ** payload_bits
    return _scalar_or_array(1.0 - header_ok * payload_ok, snr_db)


def required_snr_db(rate_mbps: float) -> float:
    """Approximate SNR needed for reliable 802.11b reception at a given rate.

    The paper quotes ~6 dB for 2 Mbps and notes all 802.11b rates work below
    14 dB (§2.3.1); these thresholds are used by the coexistence and range
    helpers.
    """
    thresholds = {1.0: 4.0, 2.0: 6.0, 5.5: 8.0, 11.0: 10.0}
    if rate_mbps not in thresholds:
        raise ConfigurationError(f"unsupported 802.11b rate {rate_mbps}")
    return thresholds[rate_mbps]
