"""Geometry helpers: positions, distances and unit conversions.

The paper reports distances in feet and inches; the propagation models work
in metres.  The Fig. 10 experiment places the Wi-Fi receiver perpendicular
to the midpoint of the Bluetooth-transmitter ↔ tag segment, which
:func:`fig10_geometry` encodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FEET_PER_METER",
    "Position",
    "feet_to_meters",
    "meters_to_feet",
    "inches_to_meters",
    "distance_feet",
    "fig10_geometry",
]

#: Feet in one metre.
FEET_PER_METER = 3.280839895


def feet_to_meters(feet: float) -> float:
    """Convert feet to metres."""
    return feet / FEET_PER_METER


def meters_to_feet(meters: float) -> float:
    """Convert metres to feet."""
    return meters * FEET_PER_METER


def inches_to_meters(inches: float) -> float:
    """Convert inches to metres."""
    return inches * 0.0254


@dataclass(frozen=True)
class Position:
    """A point in a 2-D lab coordinate system, in metres."""

    x: float
    y: float

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres."""
        return float(np.hypot(self.x - other.x, self.y - other.y))


def distance_feet(a: Position, b: Position) -> float:
    """Distance between two positions in feet."""
    return meters_to_feet(a.distance_to(b))


def fig10_geometry(
    bluetooth_to_tag_feet: float, receiver_offset_feet: float
) -> tuple[Position, Position, Position]:
    """Positions for the Fig. 10 measurement geometry.

    The Bluetooth transmitter and the tag sit ``bluetooth_to_tag_feet``
    apart on the x-axis; the Wi-Fi receiver moves perpendicular from the
    midpoint of that segment.

    Returns
    -------
    (bluetooth, tag, receiver):
        Positions in metres.
    """
    separation_m = feet_to_meters(bluetooth_to_tag_feet)
    offset_m = feet_to_meters(receiver_offset_feet)
    bluetooth = Position(0.0, 0.0)
    tag = Position(separation_m, 0.0)
    receiver = Position(separation_m / 2.0, offset_m)
    return bluetooth, tag, receiver
