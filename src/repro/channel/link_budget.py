"""Backscatter link budgets (the two-hop product channel).

A backscatter link from a Bluetooth transmitter (power ``P_tx``) via a tag
to a receiver has received power::

    P_rx = P_tx + G_tx − L(d_tx→tag) + G_tag − L_conv + G_tag − L(d_tag→rx) + G_rx

where ``L_conv`` is the tag's conversion loss: the backscattered signal is a
*modulated reflection*, so energy is lost to the reflection efficiency of
the switch (|Γ| < 1), to the square-wave harmonics, and to splitting power
across the modulation sidebands.  Tissue layers in front of an implanted
tag attenuate both hops.

``DirectLinkBudget`` models the ordinary one-hop link (used for the
Bluetooth-to-tag wake-up threshold and the Wi-Fi-to-tag downlink of
Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LinkBudgetError
from repro.obs import metrics as obs
from repro.channel.antennas import ANTENNAS, AntennaModel
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.channel.tissue import TissueLayer, tissue_attenuation_db

__all__ = ["BackscatterLinkResult", "BackscatterLinkBudget", "DirectLinkBudget"]

#: Conversion loss of an ideal four-state single-sideband backscatter
#: modulator: the fundamental of the ±1 square-wave quadrature carrier holds
#: 8/π² of the power (≈ −0.9 dB), the switch reflection efficiency and
#: modulation overhead account for the rest.  6-8 dB is typical of measured
#: backscatter front ends; the paper's ranges are consistent with ~6 dB.
DEFAULT_CONVERSION_LOSS_DB = 6.0


@dataclass(frozen=True)
class BackscatterLinkResult:
    """Outcome of a backscatter link-budget evaluation.

    Attributes
    ----------
    rssi_dbm:
        Received signal power at the Wi-Fi/ZigBee receiver.
    incident_power_dbm:
        Power arriving at the tag from the RF source (determines whether
        the envelope detector wakes up).
    snr_db:
        SNR at the receiver given its noise model.
    detectable:
        Whether the receiver's sensitivity floor is met.
    """

    rssi_dbm: float
    incident_power_dbm: float
    snr_db: float
    detectable: bool


@dataclass
class BackscatterLinkBudget:
    """Two-hop backscatter link calculator.

    Parameters
    ----------
    source_power_dbm:
        Transmit power of the RF source (the Bluetooth device).
    source_antenna / tag_antenna / receiver_antenna:
        Antenna models (names from :data:`repro.channel.antennas.ANTENNAS`
        or instances).
    path_loss:
        Propagation model applied to both hops.
    noise:
        Receiver noise model (22 MHz bandwidth for Wi-Fi).
    conversion_loss_db:
        Tag conversion loss.
    tissue:
        Optional tissue layer covering the tag (applied to both hops).
    receiver_sensitivity_dbm:
        Sensitivity floor of the commodity receiver.
    """

    source_power_dbm: float = 0.0
    source_antenna: AntennaModel | str = "monopole_2dbi"
    tag_antenna: AntennaModel | str = "monopole_2dbi"
    receiver_antenna: AntennaModel | str = "monopole_2dbi"
    path_loss: PathLossModel = field(default_factory=PathLossModel)
    noise: NoiseModel = field(default_factory=NoiseModel)
    conversion_loss_db: float = DEFAULT_CONVERSION_LOSS_DB
    tissue: TissueLayer | str | None = None
    receiver_sensitivity_dbm: float = -94.0

    def __post_init__(self) -> None:
        self.source_antenna = self._resolve(self.source_antenna)
        self.tag_antenna = self._resolve(self.tag_antenna)
        self.receiver_antenna = self._resolve(self.receiver_antenna)

    @staticmethod
    def _resolve(antenna: AntennaModel | str) -> AntennaModel:
        if isinstance(antenna, AntennaModel):
            return antenna
        try:
            return ANTENNAS[antenna]
        except KeyError as exc:
            raise LinkBudgetError(
                f"unknown antenna {antenna!r}; available: {sorted(ANTENNAS)}"
            ) from exc

    # ------------------------------------------------------------------ API
    def evaluate(
        self,
        source_to_tag_m: float,
        tag_to_receiver_m: float,
        *,
        rng: np.random.Generator | None = None,
    ) -> BackscatterLinkResult:
        """Evaluate the link for the given hop distances (in metres)."""
        if source_to_tag_m < 0 or tag_to_receiver_m < 0:
            raise LinkBudgetError("distances must be non-negative")
        obs.count("channel.link_realisations")

        tissue_loss = 0.0
        if self.tissue is not None:
            # One pass on the incident hop, one on the reflected hop.
            tissue_loss = tissue_attenuation_db(self.tissue, passes=1)

        incident = (
            self.source_power_dbm
            + self.source_antenna.gain_dbi
            - self.path_loss.loss_db(source_to_tag_m, rng=rng)
            + self.tag_antenna.gain_dbi
            - tissue_loss
        )
        reflected = incident - self.conversion_loss_db
        rssi = (
            reflected
            + self.tag_antenna.gain_dbi
            - tissue_loss
            - self.path_loss.loss_db(tag_to_receiver_m, rng=rng)
            + self.receiver_antenna.gain_dbi
        )
        snr = self.noise.snr_db(rssi)
        return BackscatterLinkResult(
            rssi_dbm=float(rssi),
            incident_power_dbm=float(incident),
            snr_db=float(snr),
            detectable=rssi >= self.receiver_sensitivity_dbm,
        )

    def rssi_sweep(
        self,
        source_to_tag_m: float,
        tag_to_receiver_m: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """RSSI at the receiver for an array of tag→receiver distances."""
        return np.array(
            [
                self.evaluate(source_to_tag_m, float(d), rng=rng).rssi_dbm
                for d in np.asarray(tag_to_receiver_m, dtype=float)
            ]
        )

    def evaluate_batch(
        self,
        source_to_tag_m: np.ndarray | float,
        tag_to_receiver_m: np.ndarray | float,
        *,
        rng: np.random.Generator | None = None,
        xp=None,
    ):
        """Broadcasting batch counterpart of :meth:`evaluate`.

        Evaluates whole arrays of hop-distance realisations in one shot
        (one vectorised shadowing draw per hop) on the requested array
        backend; returns a
        :class:`repro.mc.channel.BatchLinkResult`.  Statistics match a
        loop over :meth:`evaluate`; only RNG consumption order differs.
        """
        # Local import: repro.mc.channel imports this module at top level.
        from repro.mc.channel import backscatter_link_batch

        return backscatter_link_batch(self, source_to_tag_m, tag_to_receiver_m, rng=rng, xp=xp)


@dataclass
class DirectLinkBudget:
    """One-hop link budget (transmitter → receiver)."""

    tx_power_dbm: float = 0.0
    tx_antenna: AntennaModel | str = "monopole_2dbi"
    rx_antenna: AntennaModel | str = "monopole_2dbi"
    path_loss: PathLossModel = field(default_factory=PathLossModel)
    noise: NoiseModel = field(default_factory=lambda: NoiseModel(bandwidth_hz=20e6))
    tissue: TissueLayer | str | None = None

    def __post_init__(self) -> None:
        self.tx_antenna = BackscatterLinkBudget._resolve(self.tx_antenna)
        self.rx_antenna = BackscatterLinkBudget._resolve(self.rx_antenna)

    def received_power_dbm(self, distance_m: float, *, rng: np.random.Generator | None = None) -> float:
        """Received power for a given distance."""
        obs.count("channel.link_realisations")
        tissue_loss = 0.0
        if self.tissue is not None:
            tissue_loss = tissue_attenuation_db(self.tissue, passes=1)
        return float(
            self.tx_power_dbm
            + self.tx_antenna.gain_dbi
            - self.path_loss.loss_db(distance_m, rng=rng)
            + self.rx_antenna.gain_dbi
            - tissue_loss
        )

    def snr_db(self, distance_m: float, *, rng: np.random.Generator | None = None) -> float:
        """SNR at the receiver for a given distance."""
        return self.noise.snr_db(self.received_power_dbm(distance_m, rng=rng))

    def received_power_dbm_batch(
        self,
        distance_m: np.ndarray,
        *,
        rng: np.random.Generator | None = None,
        xp=None,
    ):
        """Broadcasting batch counterpart of :meth:`received_power_dbm`.

        One vectorised shadowing draw covers the whole distance array;
        the dB arithmetic runs on the requested array backend.
        """
        # Local import: repro.mc.channel imports this module at top level.
        from repro.mc.channel import direct_rssi_batch

        return direct_rssi_batch(self, distance_m, rng=rng, xp=xp)
