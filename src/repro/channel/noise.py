"""Receiver noise models."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LinkBudgetError

__all__ = ["BOLTZMANN_CONSTANT", "thermal_noise_dbm", "NoiseModel"]

#: Boltzmann constant (J/K).
BOLTZMANN_CONSTANT = 1.380649e-23


def thermal_noise_dbm(bandwidth_hz: float, *, temperature_k: float = 290.0) -> float:
    """Thermal noise floor kTB in dBm for the given bandwidth."""
    if bandwidth_hz <= 0:
        raise LinkBudgetError("bandwidth must be positive")
    noise_watts = BOLTZMANN_CONSTANT * temperature_k * bandwidth_hz
    return float(10.0 * np.log10(noise_watts) + 30.0)


@dataclass(frozen=True)
class NoiseModel:
    """Receiver noise description.

    Attributes
    ----------
    bandwidth_hz:
        Noise bandwidth of the receiver (22 MHz for 802.11b, 2 MHz for
        802.15.4, 1 MHz for a BLE receiver).
    noise_figure_db:
        Receiver noise figure.
    temperature_k:
        Physical temperature.
    interference_dbm:
        Extra in-band interference power (e.g. residual Bluetooth leakage),
        added to the noise floor.
    """

    bandwidth_hz: float = 22e6
    noise_figure_db: float = 6.0
    temperature_k: float = 290.0
    interference_dbm: float | None = None

    @property
    def noise_floor_dbm(self) -> float:
        """Total noise + interference power at the demodulator input."""
        thermal = thermal_noise_dbm(self.bandwidth_hz, temperature_k=self.temperature_k)
        floor = thermal + self.noise_figure_db
        if self.interference_dbm is not None:
            floor = 10.0 * np.log10(
                10.0 ** (floor / 10.0) + 10.0 ** (self.interference_dbm / 10.0)
            )
        return float(floor)

    def snr_db(self, signal_dbm: float) -> float:
        """SNR for a given received signal power."""
        return signal_dbm - self.noise_floor_dbm
