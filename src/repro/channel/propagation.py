"""Path-loss models for the 2.4 GHz indoor links of the evaluation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import LinkBudgetError
from repro.utils.dsp import scalar_or_array as _scalar_or_array

__all__ = ["free_space_path_loss_db", "log_distance_path_loss_db", "PathLossModel"]

#: Speed of light (m/s).
SPEED_OF_LIGHT_M_S = 299_792_458.0


def free_space_path_loss_db(
    distance_m: float | np.ndarray, frequency_hz: float = 2.45e9
) -> float | np.ndarray:
    """Friis free-space path loss in dB.  Broadcasts over distance arrays.

    A minimum distance of 1 cm is enforced so the near-field singularity
    does not produce negative losses for the very short implant links.
    """
    if np.any(np.asarray(distance_m) < 0):
        raise LinkBudgetError("distance must be non-negative")
    if frequency_hz <= 0:
        raise LinkBudgetError("frequency must be positive")
    distance = np.maximum(np.asarray(distance_m, dtype=float), 0.01)
    wavelength = SPEED_OF_LIGHT_M_S / frequency_hz
    return _scalar_or_array(20.0 * np.log10(4.0 * np.pi * distance / wavelength), distance_m)


def log_distance_path_loss_db(
    distance_m: float | np.ndarray,
    *,
    frequency_hz: float = 2.45e9,
    reference_distance_m: float = 1.0,
    path_loss_exponent: float = 2.1,
    shadowing_db: float | np.ndarray = 0.0,
) -> float | np.ndarray:
    """Log-distance path loss with optional shadowing.

    Indoor line-of-sight 2.4 GHz exponents of 1.8-2.2 match office corridors
    like those in the paper's range experiments.  Broadcasts over distance
    (and per-link shadowing) arrays.
    """
    if np.any(np.asarray(distance_m) < 0):
        raise LinkBudgetError("distance must be non-negative")
    distance = np.maximum(np.asarray(distance_m, dtype=float), 0.01)
    reference_loss = free_space_path_loss_db(reference_distance_m, frequency_hz)
    near = np.asarray(free_space_path_loss_db(distance, frequency_hz))
    far = reference_loss + 10.0 * path_loss_exponent * np.log10(
        np.maximum(distance, reference_distance_m) / reference_distance_m
    )
    loss = np.where(distance <= reference_distance_m, near, far) + shadowing_db
    return _scalar_or_array(loss, np.asarray(distance_m) + np.asarray(shadowing_db))


@dataclass(frozen=True)
class PathLossModel:
    """A configurable path-loss model instance.

    Attributes
    ----------
    frequency_hz:
        Carrier frequency.
    path_loss_exponent:
        Log-distance exponent (2.0 = free space).
    reference_distance_m:
        Distance at which free-space loss anchors the model.
    shadowing_sigma_db:
        Standard deviation of log-normal shadowing; 0 disables it.
    """

    frequency_hz: float = 2.45e9
    path_loss_exponent: float = 2.1
    reference_distance_m: float = 1.0
    shadowing_sigma_db: float = 0.0

    def loss_db(
        self, distance_m: float | np.ndarray, *, rng: np.random.Generator | None = None
    ) -> float | np.ndarray:
        """Path loss, one independent link realisation per element.

        Broadcasts over distance arrays with an *independent* shadowing draw
        per element (the batched Monte-Carlo engine relies on this); scalar
        callers consume exactly one draw, as before.
        """
        shadowing: float | np.ndarray = 0.0
        if self.shadowing_sigma_db > 0:
            generator = rng if rng is not None else np.random.default_rng()
            shadowing = generator.normal(
                0.0, self.shadowing_sigma_db, size=np.shape(distance_m)
            )
        return log_distance_path_loss_db(
            distance_m,
            frequency_hz=self.frequency_hz,
            reference_distance_m=self.reference_distance_m,
            path_loss_exponent=self.path_loss_exponent,
            shadowing_db=shadowing,
        )
