"""Attenuation of biological tissue and immersion liquids at 2.4 GHz.

The contact-lens prototype is evaluated immersed in contact-lens solution
(§5.1) and the neural-recording antenna inside a 0.75-inch pork chop
(§5.2), chosen because muscle has dielectric properties similar to grey
matter at 2.4 GHz (Gabriel et al.).  Both add a roughly exponential loss
per unit depth on each pass through the material; a backscatter link passes
through twice (in and out).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import LinkBudgetError

__all__ = ["TissueLayer", "TISSUE_PRESETS", "tissue_attenuation_db"]


@dataclass(frozen=True)
class TissueLayer:
    """A lossy dielectric layer the RF signal must traverse.

    Attributes
    ----------
    name:
        Material name.
    attenuation_db_per_cm:
        One-way attenuation per centimetre at 2.45 GHz.
    thickness_cm:
        Layer thickness along the propagation path.
    interface_loss_db:
        Fixed loss from reflection/mismatch at the material boundary.
    """

    name: str
    attenuation_db_per_cm: float
    thickness_cm: float
    interface_loss_db: float = 0.0

    @property
    def one_way_loss_db(self) -> float:
        """Attenuation for a single pass through the layer."""
        if self.thickness_cm < 0:
            raise LinkBudgetError("thickness must be non-negative")
        return self.attenuation_db_per_cm * self.thickness_cm + self.interface_loss_db


#: Material presets at 2.45 GHz (attenuation values follow published
#: dielectric data for saline and muscle; numbers are per-centimetre).
TISSUE_PRESETS: dict[str, TissueLayer] = {
    "contact_lens_saline": TissueLayer(
        name="contact lens solution",
        attenuation_db_per_cm=6.0,
        thickness_cm=0.5,
        interface_loss_db=2.0,
    ),
    "muscle_0_75_inch": TissueLayer(
        name="pork muscle, 0.75 inch",
        attenuation_db_per_cm=10.0,
        thickness_cm=0.16,  # antenna sits 0.0625 inch below the surface
        interface_loss_db=6.0,
    ),
    "skin_and_skull": TissueLayer(
        name="skin + skull (reference)",
        attenuation_db_per_cm=7.0,
        thickness_cm=1.2,
        interface_loss_db=3.0,
    ),
}


def tissue_attenuation_db(layer: TissueLayer | str, *, passes: int = 2) -> float:
    """Total attenuation for *passes* traversals of a tissue layer.

    A backscatter tag embedded in tissue sees the layer twice: once on the
    incident carrier and once on the reflected signal.
    """
    if isinstance(layer, str):
        try:
            layer = TISSUE_PRESETS[layer]
        except KeyError as exc:
            raise LinkBudgetError(
                f"unknown tissue preset {layer!r}; available: {sorted(TISSUE_PRESETS)}"
            ) from exc
    if passes < 0:
        raise LinkBudgetError("passes must be non-negative")
    return layer.one_way_loss_db * passes
