"""The interscatter system: the paper's primary contribution.

The pieces map onto the paper's design section:

* :mod:`repro.core.tone_source` — Bluetooth as a single-tone RF source (§2.2).
* :mod:`repro.core.timing` — packet-in-packet timing arithmetic: how much
  Wi-Fi fits inside one Bluetooth advertisement, guard intervals (§2.2, §2.3.3).
* :mod:`repro.core.uplink` — the tag synthesizing 802.11b or ZigBee packets
  by single-sideband backscattering the tone (§2.3).
* :mod:`repro.core.downlink` — the OFDM-as-AM reverse link (§2.4).
* :mod:`repro.core.device` — the tag device model (state machine + power).
* :mod:`repro.core.protocol` — the query-reply protocol and the RTS/CTS /
  CTS-to-Self collision-avoidance optimisations (§2.3.3, §2.5).
* :mod:`repro.core.coexistence` — the airtime/interference model behind the
  Fig. 12 iperf experiment.
* :mod:`repro.core.link` — :class:`InterscatterLink`, the high-level façade
  that wires everything together for end-to-end simulation.
"""

from repro.core.tone_source import BluetoothToneSource, ToneParameters
from repro.core.timing import InterscatterTiming, max_wifi_payload_bytes
from repro.core.uplink import InterscatterUplink, UplinkResult, UplinkTarget
from repro.core.downlink import InterscatterDownlink, DownlinkResult
from repro.core.device import InterscatterDevice, DeviceState
from repro.core.protocol import QueryReplyProtocol, ChannelReservation, ProtocolEvent
from repro.core.coexistence import CoexistenceSimulator, CoexistenceResult
from repro.core.link import InterscatterLink, EndToEndResult

__all__ = [
    "BluetoothToneSource",
    "ToneParameters",
    "InterscatterTiming",
    "max_wifi_payload_bytes",
    "InterscatterUplink",
    "UplinkResult",
    "UplinkTarget",
    "InterscatterDownlink",
    "DownlinkResult",
    "InterscatterDevice",
    "DeviceState",
    "QueryReplyProtocol",
    "ChannelReservation",
    "ProtocolEvent",
    "CoexistenceSimulator",
    "CoexistenceResult",
    "InterscatterLink",
    "EndToEndResult",
]
