"""Coexistence of backscatter with ordinary Wi-Fi traffic (Fig. 12, §4.3).

The paper measures the throughput of an iperf TCP flow between a Wi-Fi AP
and a smartphone on channel 6 while a backscatter device generates packets
whose *mirror copy* (double-sideband designs only) lands on channel 6.  The
result: at low backscatter rates nothing changes; at 650-1000 packets/s the
double-sideband mirror collides with the flow and cuts its throughput,
while the single-sideband design leaves it untouched.

The model is an airtime/collision abstraction rather than a full 802.11 DCF
simulator: the iperf flow occupies a fraction of the channel airtime
determined by its MCS and TCP/MAC overheads; each backscatter packet that
lands on the channel during an ongoing frame corrupts it and triggers a
retransmission (and, through rate adaptation, a lower MCS when loss becomes
persistent).  That level of abstraction is enough to reproduce who wins and
roughly by how much.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["CoexistenceResult", "CoexistenceSimulator"]


@dataclass(frozen=True)
class CoexistenceResult:
    """Throughput of the concurrent Wi-Fi flow under backscatter interference.

    Attributes
    ----------
    scenario:
        ``"baseline"``, ``"single_sideband"`` or ``"double_sideband"``.
    backscatter_rate_pps:
        Backscatter packets per second.
    iperf_throughput_mbps:
        Achieved TCP throughput of the concurrent flow.
    frame_loss_ratio:
        Fraction of the flow's frames corrupted by interference.
    """

    scenario: str
    backscatter_rate_pps: float
    iperf_throughput_mbps: float
    frame_loss_ratio: float


class CoexistenceSimulator:
    """Airtime model of an iperf flow sharing channel 6 with backscatter.

    Parameters
    ----------
    baseline_throughput_mbps:
        TCP throughput of the flow with no backscatter device present
        (≈20 Mbps for the 802.11g link in the paper's Fig. 12).
    frame_duration_s:
        Mean air time of one aggregate TCP data frame exchange.
    backscatter_packet_duration_s:
        Air time of one backscatter-generated packet (a 32-byte 2 Mbps
        packet ≈ 224 µs with its short preamble).
    mirror_interference_fraction:
        Fraction of the backscatter packet's energy that lands on the
        victim channel: ≈1.0 for the double-sideband mirror copy, ≈0.0 for
        single sideband (only spectral-regrowth leakage).
    rate_adaptation:
        Model the throughput collapse caused by 802.11 rate adaptation
        backing off under persistent loss.
    """

    def __init__(
        self,
        *,
        baseline_throughput_mbps: float = 20.0,
        frame_duration_s: float = 1.5e-3,
        backscatter_packet_duration_s: float = 224e-6,
        rate_adaptation: bool = True,
    ) -> None:
        if baseline_throughput_mbps <= 0:
            raise ConfigurationError("baseline_throughput_mbps must be positive")
        if frame_duration_s <= 0 or backscatter_packet_duration_s <= 0:
            raise ConfigurationError("durations must be positive")
        self.baseline_throughput_mbps = baseline_throughput_mbps
        self.frame_duration_s = frame_duration_s
        self.backscatter_packet_duration_s = backscatter_packet_duration_s
        self.rate_adaptation = rate_adaptation

    def _mirror_fraction(self, scenario: str) -> float:
        if scenario == "baseline":
            return 0.0
        if scenario == "single_sideband":
            # Residual leakage from square-wave harmonics only.
            return 0.02
        if scenario == "double_sideband":
            return 1.0
        raise ConfigurationError(
            "scenario must be 'baseline', 'single_sideband' or 'double_sideband'"
        )

    def evaluate(self, scenario: str, backscatter_rate_pps: float) -> CoexistenceResult:
        """Throughput of the flow for one scenario / backscatter rate."""
        if backscatter_rate_pps < 0:
            raise ConfigurationError("backscatter_rate_pps must be non-negative")
        mirror = self._mirror_fraction(scenario)
        if scenario == "baseline":
            backscatter_rate_pps = 0.0

        # Probability an iperf frame overlaps at least one interfering packet.
        interfering_rate = backscatter_rate_pps * mirror
        vulnerable_window = self.frame_duration_s + self.backscatter_packet_duration_s
        collisions_per_frame = interfering_rate * vulnerable_window
        frame_loss = 1.0 - np.exp(-collisions_per_frame)

        # Lost frames are retransmitted: goodput scales with (1 - loss); rate
        # adaptation compounds the damage once loss is persistent.
        throughput = self.baseline_throughput_mbps * (1.0 - frame_loss)
        if self.rate_adaptation and frame_loss > 0.1:
            adaptation_penalty = 1.0 - min(0.5, (frame_loss - 0.1) * 1.5)
            throughput *= adaptation_penalty
        # The airtime consumed by the interfering packets themselves.
        airtime_stolen = min(interfering_rate * self.backscatter_packet_duration_s, 0.9)
        throughput *= 1.0 - airtime_stolen

        return CoexistenceResult(
            scenario=scenario,
            backscatter_rate_pps=float(backscatter_rate_pps),
            iperf_throughput_mbps=float(max(throughput, 0.0)),
            frame_loss_ratio=float(frame_loss),
        )

    def sweep(self, rates_pps: list[float] | None = None) -> list[CoexistenceResult]:
        """Reproduce the Fig. 12 sweep: baseline, SSB and DSB at each rate."""
        rates = rates_pps if rates_pps is not None else [50.0, 650.0, 1000.0]
        results: list[CoexistenceResult] = []
        for rate in rates:
            results.append(self.evaluate("baseline", rate))
            results.append(self.evaluate("single_sideband", rate))
            results.append(self.evaluate("double_sideband", rate))
        return results
