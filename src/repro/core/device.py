"""The interscatter tag device model: state machine, timing and energy.

The tag's life around one Bluetooth advertisement (§2.2, §3):

1. ``IDLE`` — everything but the envelope detector is power-gated.
2. ``DETECTING`` — the envelope detector sees energy; the tag waits out the
   un-controllable packet prefix (preamble, access address, header, AdvA ≈
   104 µs for a 31-byte advertisement) plus a guard interval.
3. ``BACKSCATTERING`` — the baseband, synthesizer and modulator run and the
   synthesized Wi-Fi/ZigBee packet is emitted; this must finish before the
   Bluetooth CRC starts.
4. back to ``IDLE`` (or ``LISTENING`` when a downlink reply is expected).

The device model accounts energy per state using the IC power model and
exposes the duty-cycling arithmetic the paper's discussion section appeals
to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.backscatter.power import InterscatterPowerModel, PowerBreakdown
from repro.core.timing import InterscatterTiming

__all__ = ["DeviceState", "BackscatterOpportunity", "InterscatterDevice"]

#: Power draw (µW) of the always-on envelope detector front end; comparable
#: to published passive wake-up receivers.
ENVELOPE_DETECTOR_POWER_UW = 0.5


class DeviceState(enum.Enum):
    """Operating states of the interscatter tag."""

    IDLE = "idle"
    DETECTING = "detecting"
    BACKSCATTERING = "backscattering"
    LISTENING = "listening"


@dataclass(frozen=True)
class BackscatterOpportunity:
    """Timing of one serviced Bluetooth advertisement.

    Attributes
    ----------
    detected:
        Whether the envelope detector triggered at all.
    detection_error_s:
        Error in the estimated start of the payload (positive = late).
    backscatter_started_s:
        Time (relative to the true payload start) the tag began driving the
        switch network.
    wifi_psdu_bytes:
        Size of the synthesized packet.
    fits_in_window:
        Whether the packet finished before the Bluetooth CRC.
    energy_uj:
        Energy consumed servicing the opportunity.
    """

    detected: bool
    detection_error_s: float
    backscatter_started_s: float
    wifi_psdu_bytes: int
    fits_in_window: bool
    energy_uj: float


class InterscatterDevice:
    """Behavioural model of the interscatter tag.

    Parameters
    ----------
    timing:
        Packet-in-packet timing configuration.
    power_model:
        IC power model (65 nm reference by default).
    detection_jitter_s:
        Standard deviation of the energy detector's estimate of the payload
        start; the 4 µs guard interval exists to absorb this (§2.2).
    detection_probability:
        Probability the envelope detector triggers on an advertisement that
        is above its threshold.
    """

    def __init__(
        self,
        timing: InterscatterTiming | None = None,
        *,
        power_model: InterscatterPowerModel | None = None,
        detection_jitter_s: float = 1.5e-6,
        detection_probability: float = 0.995,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.timing = timing if timing is not None else InterscatterTiming()
        self.power_model = power_model if power_model is not None else InterscatterPowerModel()
        if detection_jitter_s < 0:
            raise ConfigurationError("detection_jitter_s must be non-negative")
        if not 0.0 <= detection_probability <= 1.0:
            raise ConfigurationError("detection_probability must be in [0, 1]")
        self.detection_jitter_s = detection_jitter_s
        self.detection_probability = detection_probability
        self._rng = rng if rng is not None else np.random.default_rng(5)
        self.state = DeviceState.IDLE
        self._energy_uj = 0.0
        self._opportunities: list[BackscatterOpportunity] = []

    # ---------------------------------------------------------------- status
    @property
    def total_energy_uj(self) -> float:
        """Total energy accounted so far (µJ)."""
        return self._energy_uj

    @property
    def opportunities(self) -> tuple[BackscatterOpportunity, ...]:
        """History of serviced advertisements."""
        return tuple(self._opportunities)

    # ------------------------------------------------------------------ API
    def service_advertisement(self, *, wifi_psdu_bytes: int | None = None) -> BackscatterOpportunity:
        """Simulate the tag's behaviour across one Bluetooth advertisement."""
        timing = self.timing
        if wifi_psdu_bytes is None:
            wifi_psdu_bytes = timing.max_wifi_psdu_bytes()

        detected = bool(self._rng.random() < self.detection_probability)
        detection_error = float(self._rng.normal(0.0, self.detection_jitter_s)) if detected else 0.0

        if not detected:
            opportunity = BackscatterOpportunity(
                detected=False,
                detection_error_s=0.0,
                backscatter_started_s=0.0,
                wifi_psdu_bytes=0,
                fits_in_window=False,
                energy_uj=self._idle_energy_uj(timing.ble_payload_duration_s),
            )
            self._finish(opportunity)
            return opportunity

        self.state = DeviceState.DETECTING
        start = detection_error + timing.guard_interval_s
        wifi_air_time = timing.wifi_air_time_s(wifi_psdu_bytes)
        # The packet-size budget already reserves the guard interval, so the
        # nominal schedule ends exactly at the payload/CRC boundary.  A late
        # detection of up to one guard interval pushes the tail of the Wi-Fi
        # packet into the Bluetooth CRC, which is harmless: the CRC is
        # transmitted on a different channel than the synthesized packet
        # (§2.2), so only an overrun beyond that slack counts as a miss.
        deadline = timing.ble_payload_duration_s + timing.guard_interval_s
        fits = start >= 0 and (start + wifi_air_time) <= deadline

        self.state = DeviceState.BACKSCATTERING
        active_power_uw = self.power_model.estimate(
            wifi_rate_mbps=timing.wifi_rate_mbps
        ).total_uw
        energy = (
            active_power_uw * wifi_air_time
            + ENVELOPE_DETECTOR_POWER_UW * timing.ble_payload_duration_s
        )
        opportunity = BackscatterOpportunity(
            detected=True,
            detection_error_s=detection_error,
            backscatter_started_s=start,
            wifi_psdu_bytes=wifi_psdu_bytes,
            fits_in_window=fits,
            energy_uj=energy,  # µW × s = µJ
        )
        self._finish(opportunity)
        return opportunity

    def average_power_uw(self, advertising_interval_s: float = 0.02) -> float:
        """Average power when servicing one advertisement per interval.

        Captures the duty-cycling argument of §7: higher bit rates shorten
        the active window and push the average power towards the envelope
        detector's floor.
        """
        if advertising_interval_s <= 0:
            raise ConfigurationError("advertising_interval_s must be positive")
        wifi_air_time = self.timing.wifi_air_time_s(self.timing.max_wifi_psdu_bytes())
        active_power = self.power_model.estimate(
            wifi_rate_mbps=self.timing.wifi_rate_mbps
        ).total_uw
        duty = wifi_air_time / advertising_interval_s
        return float(active_power * duty + ENVELOPE_DETECTOR_POWER_UW)

    def power_breakdown(self) -> PowerBreakdown:
        """Active-mode power breakdown at the configured Wi-Fi rate."""
        return self.power_model.estimate(wifi_rate_mbps=self.timing.wifi_rate_mbps)

    # ------------------------------------------------------------- internals
    def _idle_energy_uj(self, duration_s: float) -> float:
        return ENVELOPE_DETECTOR_POWER_UW * duration_s

    def _finish(self, opportunity: BackscatterOpportunity) -> None:
        self._energy_uj += opportunity.energy_uj
        self._opportunities.append(opportunity)
        self.state = DeviceState.IDLE
