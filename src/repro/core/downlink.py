"""The interscatter downlink: 802.11g OFDM as an AM modulator (§2.4).

Ties together the constant-OFDM payload crafter, the commodity OFDM
transmitter model (with its scrambler-seed behaviour) and the tag's passive
peak-detector receiver:

1. The Wi-Fi device (an Atheros-class chipset) is about to transmit a
   frame; its scrambler seed is known or predictable (§4.4).
2. The access point's payload bits are chosen so that the OFDM symbols
   AM-encode the query bits at 125 kbps (random+constant = 1,
   random+random = 0).
3. The tag's peak detector tracks the waveform envelope and recovers the
   bits — no carrier synthesis, no FFT, just a comparator.

The downlink can be evaluated at the waveform level (exact symbol
envelopes) and at the link level (BER vs distance, Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.bits import as_bit_array
from repro.utils.dsp import add_awgn
from repro.backscatter.detector import PeakDetectorReceiver
from repro.channel.error_models import ber_ook_envelope
from repro.channel.link_budget import DirectLinkBudget
from repro.wifi.ofdm.constant_ofdm import ConstantOfdmCrafter, DOWNLINK_BIT_RATE_BPS
from repro.wifi.ofdm.rates import OfdmRate
from repro.wifi.ofdm.scrambler_seeds import ScramblerSeedModel, AtherosIncrementingSeedModel

__all__ = ["DownlinkResult", "InterscatterDownlink"]


@dataclass(frozen=True)
class DownlinkResult:
    """Outcome of one downlink transmission.

    Attributes
    ----------
    message_bits:
        Bits the Wi-Fi device encoded.
    decoded_bits:
        Bits the tag's peak detector recovered.
    bit_errors:
        Number of mismatches.
    bit_error_rate:
        ``bit_errors / len(message_bits)``.
    rssi_dbm:
        Signal power at the tag (None for pure waveform simulations).
    scrambler_seed:
        Seed used for the frame.
    seed_predicted_correctly:
        Whether the crafter's seed prediction matched the seed the chipset
        actually used (always True for fixed/incrementing models once
        synchronised; False forces a garbled symbol plan).
    """

    message_bits: np.ndarray
    decoded_bits: np.ndarray
    bit_errors: int
    bit_error_rate: float
    rssi_dbm: float | None
    scrambler_seed: int
    seed_predicted_correctly: bool = True

    @property
    def bit_rate_bps(self) -> float:
        """Downlink bit rate (fixed by the two-symbols-per-bit encoding)."""
        return DOWNLINK_BIT_RATE_BPS


class InterscatterDownlink:
    """Wi-Fi → tag AM downlink simulator.

    Parameters
    ----------
    rate:
        OFDM rate of the querying Wi-Fi device (36 Mbps in the paper).
    seed_model:
        How the chipset picks scrambler seeds; the default increments per
        frame like the Atheros chipsets the paper measured.
    peak_detector:
        The tag's receiver model.
    """

    def __init__(
        self,
        rate: OfdmRate | float = OfdmRate.RATE_36,
        *,
        seed_model: ScramblerSeedModel | None = None,
        peak_detector: PeakDetectorReceiver | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rate = rate if isinstance(rate, OfdmRate) else OfdmRate.from_mbps(float(rate))
        self.seed_model = seed_model if seed_model is not None else AtherosIncrementingSeedModel()
        self.peak_detector = peak_detector if peak_detector is not None else PeakDetectorReceiver()
        self._rng = rng if rng is not None else np.random.default_rng(11)
        self._crafter = ConstantOfdmCrafter(self.rate, rng=self._rng)

    # ------------------------------------------------------------------ API
    def transmit_waveform(self, message_bits: np.ndarray, *, snr_db: float | None = None) -> DownlinkResult:
        """Waveform-level downlink: craft, transmit, peak-detect, compare."""
        bits = as_bit_array(message_bits)
        predicted_seed = self.seed_model.predict(0)
        actual_seed = self.seed_model.next_seed()
        seed_ok = predicted_seed is None or predicted_seed == actual_seed
        crafting_seed = predicted_seed if predicted_seed is not None else actual_seed

        plan = self._crafter.plan(bits, scrambler_seed=crafting_seed)
        # The frame is scrambled with the seed the chipset *actually* uses;
        # if the prediction was wrong the constant symbols are destroyed.
        waveform = self._crafter.waveform(
            AmSymbolPlanWithSeed(plan, actual_seed) if not seed_ok else plan
        )
        samples = waveform.samples
        if snr_db is not None:
            samples = add_awgn(samples, snr_db, rng=self._rng)

        decoded = self.peak_detector.decode_bits(
            samples,
            samples_per_symbol=80,
            num_symbols=waveform.num_data_symbols,
            start_sample=waveform.data_start_sample,
        )
        decoded = decoded[: bits.size]
        errors = int(np.count_nonzero(decoded != bits[: decoded.size])) + max(
            0, bits.size - decoded.size
        )
        return DownlinkResult(
            message_bits=bits,
            decoded_bits=decoded,
            bit_errors=errors,
            bit_error_rate=errors / bits.size,
            rssi_dbm=None,
            scrambler_seed=actual_seed,
            seed_predicted_correctly=seed_ok,
        )

    def link_bit_error_rate(
        self,
        distance_m: float,
        *,
        tx_power_dbm: float = 20.0,
        link_budget: DirectLinkBudget | None = None,
    ) -> tuple[float, float]:
        """Analytic downlink BER at a given Wi-Fi-transmitter → tag distance.

        Returns ``(ber, rssi_dbm)``.  The tag's peak detector is an envelope
        (OOK-like) receiver whose sensitivity floor is −32 dBm for the
        off-the-shelf prototype (§4.4).  The AM depth of a constant-vs-random
        OFDM symbol is large, so the link behaves like a cliff: while the
        input stays above the detector's sensitivity the comparator margin
        keeps the BER very low, and below the floor the output is noise —
        exactly the shape of Fig. 13.
        """
        budget = link_budget if link_budget is not None else DirectLinkBudget(tx_power_dbm=tx_power_dbm)
        budget.tx_power_dbm = tx_power_dbm
        rssi = budget.received_power_dbm(distance_m)
        sensitivity = self.peak_detector.sensitivity_dbm
        if rssi <= sensitivity:
            return 0.5, rssi
        # Above the floor the comparator sees the full constant-vs-random
        # envelope contrast; the 12 dB term models that built-in AM depth.
        margin_db = rssi - sensitivity
        ber = ber_ook_envelope(margin_db + 12.0)
        return float(ber), float(rssi)

    def simulate_link(
        self,
        message_bits: np.ndarray,
        distance_m: float,
        *,
        tx_power_dbm: float = 20.0,
        rng: np.random.Generator | None = None,
    ) -> DownlinkResult:
        """Monte-Carlo downlink transmission at a given distance."""
        bits = as_bit_array(message_bits)
        ber, rssi = self.link_bit_error_rate(distance_m, tx_power_dbm=tx_power_dbm)
        generator = rng if rng is not None else self._rng
        actual_seed = self.seed_model.next_seed()
        flips = generator.random(bits.size) < ber
        decoded = np.bitwise_xor(bits, flips.astype(np.uint8))
        errors = int(np.count_nonzero(flips))
        return DownlinkResult(
            message_bits=bits,
            decoded_bits=decoded,
            bit_errors=errors,
            bit_error_rate=errors / bits.size,
            rssi_dbm=rssi,
            scrambler_seed=actual_seed,
        )


class AmSymbolPlanWithSeed:
    """A symbol plan re-bound to a different (mispredicted) scrambler seed.

    Duck-types the fields of :class:`repro.wifi.ofdm.constant_ofdm.AmSymbolPlan`
    that the crafter's ``waveform`` method needs, but swaps the seed —
    modelling what happens when the chipset scrambles the crafted payload
    with a seed other than the one it was crafted for.
    """

    def __init__(self, plan, actual_seed: int) -> None:
        self.message_bits = plan.message_bits
        self.symbol_kinds = plan.symbol_kinds
        self.data_bits = plan.data_bits
        self.scrambler_seed = actual_seed
        self.rate = plan.rate
