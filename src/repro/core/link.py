"""High-level façade: an end-to-end interscatter link.

:class:`InterscatterLink` wires the Bluetooth tone source, the tag device,
the backscatter uplink and the OFDM AM downlink into one object so the
examples and experiments can express scenarios in a few lines:

>>> link = InterscatterLink(wifi_rate_mbps=2.0)
>>> result = link.transmit(b"glucose=5.4mmol/L")
>>> result.crc_ok
True
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.ble.devices import BleDeviceProfile
from repro.channel.geometry import feet_to_meters
from repro.channel.link_budget import BackscatterLinkBudget
from repro.core.device import InterscatterDevice
from repro.core.downlink import DownlinkResult, InterscatterDownlink
from repro.core.timing import InterscatterTiming
from repro.core.tone_source import BluetoothToneSource
from repro.core.uplink import InterscatterUplink, UplinkResult, UplinkTarget

__all__ = ["EndToEndResult", "InterscatterLink"]


@dataclass(frozen=True)
class EndToEndResult:
    """Result of one end-to-end interscatter exchange.

    Attributes
    ----------
    uplink:
        Result of the tag → receiver (backscattered Wi-Fi/ZigBee) direction.
    downlink:
        Result of the receiver → tag (OFDM AM) direction, when a query was
        requested.
    crc_ok:
        Convenience mirror of ``uplink.crc_ok``.
    tag_energy_uj:
        Energy the tag spent on the exchange.
    """

    uplink: UplinkResult
    downlink: DownlinkResult | None
    crc_ok: bool
    tag_energy_uj: float


class InterscatterLink:
    """End-to-end interscatter link between commodity devices and a tag.

    Parameters
    ----------
    wifi_rate_mbps:
        802.11b rate the tag synthesizes (2, 5.5 or 11 Mbps).
    target:
        ``"wifi"`` (default) or ``"zigbee"``.
    bluetooth_device:
        Profile of the Bluetooth RF source (name or instance).
    bluetooth_power_dbm:
        Advertising transmit power (0/4/10/20 dBm in the evaluation).
    bluetooth_to_tag_feet / tag_to_receiver_feet:
        Link geometry, in feet to match the paper's reporting.
    tag_antenna:
        Antenna of the tag (name from :data:`repro.channel.antennas.ANTENNAS`).
    tissue:
        Optional tissue preset covering the tag (for implant scenarios).
    use_waveform_pipeline:
        When True, :meth:`transmit` runs the full waveform simulation
        (slower, exact); when False it uses the link-budget + error-model
        path (fast, statistical).
    """

    def __init__(
        self,
        *,
        wifi_rate_mbps: float = 2.0,
        target: str | UplinkTarget = UplinkTarget.WIFI_80211B,
        bluetooth_device: str | BleDeviceProfile = "ti_cc2650",
        bluetooth_power_dbm: float = 10.0,
        bluetooth_to_tag_feet: float = 1.0,
        tag_to_receiver_feet: float = 10.0,
        tag_antenna: str = "monopole_2dbi",
        tissue: str | None = None,
        use_waveform_pipeline: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(23)
        self.timing = InterscatterTiming(
            wifi_rate_mbps=wifi_rate_mbps if target in ("wifi", UplinkTarget.WIFI_80211B) else 2.0
        )
        self.tone_source = BluetoothToneSource(
            bluetooth_device, tx_power_dbm=bluetooth_power_dbm, rng=self._rng
        )
        self.device = InterscatterDevice(self.timing, rng=self._rng)
        budget = BackscatterLinkBudget(
            source_power_dbm=bluetooth_power_dbm,
            tag_antenna=tag_antenna,
            tissue=tissue,
        )
        self.uplink = InterscatterUplink(
            target,
            wifi_rate_mbps=wifi_rate_mbps,
            link_budget=budget,
            rng=self._rng,
        )
        self.downlink = InterscatterDownlink(rng=self._rng)
        self.bluetooth_power_dbm = bluetooth_power_dbm
        self.bluetooth_to_tag_feet = bluetooth_to_tag_feet
        self.tag_to_receiver_feet = tag_to_receiver_feet
        self.use_waveform_pipeline = use_waveform_pipeline

    # ------------------------------------------------------------------ API
    def transmit(
        self,
        payload: bytes = b"interscatter",
        *,
        query_bits: np.ndarray | None = None,
    ) -> EndToEndResult:
        """Run one exchange: optional downlink query, then the uplink reply."""
        if not payload:
            raise ConfigurationError("payload must not be empty")
        # Minimal frames carry 2 bytes of sequence number and a 4-byte FCS.
        overhead = 6 if self.uplink.frame_style == "minimal" else 28
        max_payload = self.timing.max_wifi_payload_bytes(mac_overhead_bytes=overhead)
        if self.uplink.target is UplinkTarget.WIFI_80211B and len(payload) > max_payload:
            raise ConfigurationError(
                f"payload of {len(payload)} bytes does not fit in one advertisement; "
                f"maximum at {self.timing.wifi_rate_mbps} Mbps is {max_payload} bytes"
            )

        downlink_result: DownlinkResult | None = None
        if query_bits is not None:
            downlink_result = self.downlink.simulate_link(
                query_bits,
                feet_to_meters(self.tag_to_receiver_feet),
                rng=self._rng,
            )

        opportunity = self.device.service_advertisement()
        if self.use_waveform_pipeline:
            uplink_result = self.uplink.simulate_waveform(payload)
        else:
            uplink_result = self.uplink.simulate_link(
                source_power_dbm=self.bluetooth_power_dbm,
                source_to_tag_m=feet_to_meters(self.bluetooth_to_tag_feet),
                tag_to_receiver_m=feet_to_meters(self.tag_to_receiver_feet),
                payload_bytes=len(payload),
                rng=self._rng,
            )
        crc_ok = uplink_result.crc_ok and opportunity.detected and opportunity.fits_in_window
        return EndToEndResult(
            uplink=uplink_result,
            downlink=downlink_result,
            crc_ok=crc_ok,
            tag_energy_uj=opportunity.energy_uj,
        )

    def rssi_at(self, tag_to_receiver_feet: float) -> float:
        """RSSI of the synthesized packet at a given receiver distance."""
        result = self.uplink.simulate_link(
            source_power_dbm=self.bluetooth_power_dbm,
            source_to_tag_m=feet_to_meters(self.bluetooth_to_tag_feet),
            tag_to_receiver_m=feet_to_meters(tag_to_receiver_feet),
        )
        return result.rssi_dbm

    def packet_error_rate_at(self, tag_to_receiver_feet: float, *, payload_bytes: int = 31) -> float:
        """Analytic PER at a given receiver distance."""
        result = self.uplink.simulate_link(
            source_power_dbm=self.bluetooth_power_dbm,
            source_to_tag_m=feet_to_meters(self.bluetooth_to_tag_feet),
            tag_to_receiver_m=feet_to_meters(tag_to_receiver_feet),
            payload_bytes=payload_bytes,
        )
        return result.packet_error_rate if result.packet_error_rate is not None else 1.0
