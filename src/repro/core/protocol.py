"""Query-reply protocol and collision-avoidance optimisations (§2.3.3, §2.5).

Three mechanisms from the paper are modelled:

* **CTS-to-Self reservation** — a device that owns both the Wi-Fi and the
  Bluetooth radio schedules a CTS_to_Self just before the Bluetooth
  advertisement, reserving the Wi-Fi channel for the backscatter duration.
* **RTS/CTS bootstrapping across advertising channels** — advertisements go
  out on channels 37, 38 and 39 separated by ΔT (≈400 µs on TI chipsets).
  The tag backscatters an RTS while channel 37 is transmitting; the Wi-Fi
  receiver answers with a CTS reserving the medium for ``2ΔT + T_bluetooth``,
  covering the copies on channels 38 and 39 that carry the actual data.
* **Data-first variant** — the RTS is replaced by a data packet so no
  airtime is wasted when the channel was idle anyway.

The model is event-based at microsecond granularity: it produces a schedule
of protocol events and computes delivery/collision statistics under a
configurable level of contending Wi-Fi traffic.

It also implements the §2.5 query-reply loop: the Wi-Fi device queries each
tag over the AM downlink, the addressed tag replies over the backscatter
uplink, and multiple tags are served one after the other.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.core.timing import InterscatterTiming

__all__ = ["ProtocolEvent", "ChannelReservation", "QueryReplyProtocol", "ReservationStrategy"]

#: Gap between the copies of an advertisement on channels 37/38/39 for TI
#: chipsets (§2.3.3).
DEFAULT_INTER_CHANNEL_GAP_S = 400e-6


class ReservationStrategy(enum.Enum):
    """How the Wi-Fi channel is protected during backscatter."""

    NONE = "none"
    CTS_TO_SELF = "cts_to_self"
    RTS_CTS = "rts_cts"
    DATA_FIRST = "data_first"


@dataclass(frozen=True)
class ProtocolEvent:
    """One event in the protocol timeline.

    Attributes
    ----------
    time_s:
        Event start time.
    duration_s:
        Event duration.
    kind:
        Event label (e.g. ``"ble_adv_ch37"``, ``"rts"``, ``"cts"``,
        ``"backscatter_data"``, ``"collision"``).
    channel:
        Logical channel the event occupies (e.g. ``"wifi_11"``).
    success:
        Whether the event completed without collision.
    """

    time_s: float
    duration_s: float
    kind: str
    channel: str
    success: bool = True


@dataclass(frozen=True)
class ChannelReservation:
    """A medium reservation obtained via CTS/CTS-to-Self.

    Attributes
    ----------
    start_s / duration_s:
        Reservation window.
    mechanism:
        Strategy that obtained it.
    """

    start_s: float
    duration_s: float
    mechanism: ReservationStrategy


@dataclass
class QueryReplyProtocol:
    """Scheduler for the interscatter query-reply exchange.

    Parameters
    ----------
    timing:
        Packet-in-packet timing (determines backscatter packet air times).
    strategy:
        Channel-reservation strategy.
    inter_channel_gap_s:
        ΔT between advertising-channel copies.
    contention_probability:
        Probability that an unprotected backscatter transmission collides
        with other Wi-Fi traffic (per packet).
    downlink_query_bits:
        Length of the AM query sent to address a tag.
    """

    timing: InterscatterTiming = field(default_factory=InterscatterTiming)
    strategy: ReservationStrategy = ReservationStrategy.RTS_CTS
    inter_channel_gap_s: float = DEFAULT_INTER_CHANNEL_GAP_S
    contention_probability: float = 0.2
    downlink_query_bits: int = 16

    def __post_init__(self) -> None:
        if not 0.0 <= self.contention_probability <= 1.0:
            raise ConfigurationError("contention_probability must be in [0, 1]")
        if self.inter_channel_gap_s < 0:
            raise ConfigurationError("inter_channel_gap_s must be non-negative")
        if self.downlink_query_bits <= 0:
            raise ConfigurationError("downlink_query_bits must be positive")

    # ------------------------------------------------------------------ API
    def advertisement_event_timeline(self, *, start_s: float = 0.0) -> list[ProtocolEvent]:
        """Timeline of one advertising event (channels 37, 38, 39)."""
        duration = self.timing.ble_payload_duration_s + 80e-6  # payload + prefix/CRC
        events = []
        for index, channel in enumerate((37, 38, 39)):
            t = start_s + index * (duration + self.inter_channel_gap_s)
            events.append(
                ProtocolEvent(
                    time_s=t,
                    duration_s=duration,
                    kind=f"ble_adv_ch{channel}",
                    channel=f"ble_{channel}",
                )
            )
        return events

    def reservation_window_s(self) -> float:
        """Length of the medium reservation the CTS grants: 2ΔT + T_bluetooth."""
        t_bluetooth = self.timing.ble_payload_duration_s + 80e-6
        return 2.0 * self.inter_channel_gap_s + t_bluetooth

    def schedule_exchange(
        self,
        *,
        num_data_packets: int = 2,
        rng: np.random.Generator | None = None,
        start_s: float = 0.0,
    ) -> tuple[list[ProtocolEvent], ChannelReservation | None]:
        """Schedule one full exchange and report whether data survived.

        Returns the event list and the reservation obtained (if any).  With
        ``RTS_CTS`` or ``DATA_FIRST`` the first advertising-channel copy is
        spent bootstrapping the reservation and only the remaining copies
        carry data, exactly as described in §2.3.3.
        """
        generator = rng if rng is not None else np.random.default_rng()
        adv_events = self.advertisement_event_timeline(start_s=start_s)
        events: list[ProtocolEvent] = list(adv_events)
        reservation: ChannelReservation | None = None
        wifi_air = self.timing.wifi_air_time_s(self.timing.max_wifi_psdu_bytes())

        def collided() -> bool:
            return bool(generator.random() < self.contention_probability)

        if self.strategy is ReservationStrategy.CTS_TO_SELF:
            cts_time = start_s - 60e-6
            events.insert(
                0,
                ProtocolEvent(
                    time_s=cts_time, duration_s=44e-6, kind="cts_to_self", channel="wifi_11"
                ),
            )
            reservation = ChannelReservation(
                start_s=cts_time,
                duration_s=(adv_events[-1].time_s + adv_events[-1].duration_s) - cts_time,
                mechanism=self.strategy,
            )

        protected_from = None
        if self.strategy in (ReservationStrategy.RTS_CTS, ReservationStrategy.DATA_FIRST):
            first = adv_events[0]
            bootstrap_kind = "rts" if self.strategy is ReservationStrategy.RTS_CTS else "backscatter_data"
            bootstrap_success = not collided()
            events.append(
                ProtocolEvent(
                    time_s=first.time_s + self.timing.guard_interval_s,
                    duration_s=wifi_air,
                    kind=bootstrap_kind,
                    channel="wifi_11",
                    success=bootstrap_success,
                )
            )
            if bootstrap_success:
                cts_start = first.time_s + first.duration_s + 10e-6
                events.append(
                    ProtocolEvent(
                        time_s=cts_start, duration_s=44e-6, kind="cts", channel="wifi_11"
                    )
                )
                reservation = ChannelReservation(
                    start_s=cts_start,
                    duration_s=self.reservation_window_s(),
                    mechanism=self.strategy,
                )
                protected_from = cts_start

        data_copies = adv_events[1:] if self.strategy in (
            ReservationStrategy.RTS_CTS,
            ReservationStrategy.DATA_FIRST,
        ) else adv_events
        for adv in data_copies[:num_data_packets]:
            protected = False
            if reservation is not None:
                window_start = reservation.start_s if protected_from is None else protected_from
                protected = window_start <= adv.time_s <= window_start + reservation.duration_s or (
                    self.strategy is ReservationStrategy.CTS_TO_SELF
                )
            success = True if protected else not collided()
            events.append(
                ProtocolEvent(
                    time_s=adv.time_s + self.timing.guard_interval_s,
                    duration_s=wifi_air,
                    kind="backscatter_data",
                    channel="wifi_11",
                    success=success,
                )
            )
        events.sort(key=lambda e: e.time_s)
        return events, reservation

    def delivery_statistics(
        self,
        *,
        num_exchanges: int = 100,
        num_data_packets: int = 2,
        rng: np.random.Generator | None = None,
    ) -> dict[str, float]:
        """Monte-Carlo delivery/retransmission statistics for the strategy."""
        generator = rng if rng is not None else np.random.default_rng(17)
        delivered = 0
        attempted = 0
        bootstrap_failures = 0
        for _ in range(num_exchanges):
            events, reservation = self.schedule_exchange(
                num_data_packets=num_data_packets, rng=generator
            )
            data_events = [e for e in events if e.kind == "backscatter_data"]
            attempted += len(data_events)
            delivered += sum(1 for e in data_events if e.success)
            if self.strategy in (ReservationStrategy.RTS_CTS, ReservationStrategy.DATA_FIRST):
                if reservation is None:
                    bootstrap_failures += 1
        return {
            "delivery_ratio": delivered / attempted if attempted else 0.0,
            "packets_attempted": float(attempted),
            "packets_delivered": float(delivered),
            "bootstrap_failure_ratio": bootstrap_failures / num_exchanges,
        }

    def query_reply_round(self, num_tags: int, *, rng: np.random.Generator | None = None) -> dict[str, float]:
        """Serve *num_tags* tags with the §2.5 query-reply loop.

        Each round: downlink query (125 kbps AM) then one uplink backscatter
        reply per advertising event.  Returns aggregate latency/throughput.
        """
        if num_tags <= 0:
            raise ConfigurationError("num_tags must be positive")
        query_time = self.downlink_query_bits / 125_000.0
        adv_event_time = 3 * (self.timing.ble_payload_duration_s + 80e-6) + 2 * self.inter_channel_gap_s
        per_tag = query_time + adv_event_time
        stats = self.delivery_statistics(num_exchanges=num_tags, rng=rng)
        payload_bits = self.timing.max_wifi_psdu_bytes() * 8
        return {
            "round_latency_s": per_tag * num_tags,
            "per_tag_latency_s": per_tag,
            "delivery_ratio": stats["delivery_ratio"],
            "aggregate_goodput_bps": stats["delivery_ratio"] * payload_bits * 2 / per_tag,
        }
