"""Packet-in-packet timing arithmetic (§2.2, §2.3.3).

The synthesized Wi-Fi packet must fit entirely inside the Bluetooth
advertising payload window: it starts after the un-controllable prefix
(preamble, access address, header, AdvA — detected by the tag's envelope
detector) plus a guard interval covering the detector's timing uncertainty,
and must finish before the Bluetooth CRC begins.

The paper reports that within a 31-byte (248 µs) advertising payload the
Wi-Fi payload can be 38 / 104 / 209 bytes at 2 / 5.5 / 11 Mbps, and that a
1 Mbps packet does not fit at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.ble.packet import MAX_ADV_DATA_BYTES
from repro.wifi.dsss.plcp import (
    PLCP_HEADER_BITS,
    PLCP_PREAMBLE_BITS,
    SHORT_PLCP_PREAMBLE_BITS,
)

__all__ = [
    "InterscatterTiming",
    "max_wifi_payload_bytes",
    "data_packet_wifi_budget",
    "PAPER_PAYLOAD_SIZES",
]

#: Wi-Fi payload sizes the paper quotes for one 31-byte BLE advertisement.
PAPER_PAYLOAD_SIZES = {2.0: 38, 5.5: 104, 11.0: 209}

#: Default guard interval the implementation inserts after energy detection
#: to absorb the start-of-payload estimation error (§2.2).
DEFAULT_GUARD_INTERVAL_S = 4e-6

#: Air time of the short PLCP preamble (1 Mbps) + header (2 Mbps): 96 µs.
SHORT_PLCP_OVERHEAD_S = SHORT_PLCP_PREAMBLE_BITS * 1e-6 + PLCP_HEADER_BITS / 2.0 * 1e-6

#: Air time of the long PLCP preamble + header (all at 1 Mbps): 192 µs.
LONG_PLCP_OVERHEAD_S = (PLCP_PREAMBLE_BITS + PLCP_HEADER_BITS) * 1e-6


@dataclass(frozen=True)
class InterscatterTiming:
    """Timing of one backscatter opportunity inside a BLE advertisement.

    Attributes
    ----------
    ble_payload_bytes:
        AdvData length of the advertisement.
    guard_interval_s:
        Guard time consumed after the detected start of the payload.
    wifi_rate_mbps:
        Rate of the synthesized 802.11b packet.
    short_plcp_preamble:
        Whether the synthesized packet uses the 96 µs short PLCP preamble
        (the tag's default) or the 192 µs long one.  With the long preamble
        a 2 Mbps packet cannot carry a useful payload inside one
        advertisement, mirroring the paper's observation that a 1 Mbps
        packet does not fit at all.
    """

    ble_payload_bytes: int = MAX_ADV_DATA_BYTES
    guard_interval_s: float = DEFAULT_GUARD_INTERVAL_S
    wifi_rate_mbps: float = 2.0
    short_plcp_preamble: bool = True

    def __post_init__(self) -> None:
        if not 0 < self.ble_payload_bytes <= MAX_ADV_DATA_BYTES:
            raise ConfigurationError(
                f"BLE payload must be 1-{MAX_ADV_DATA_BYTES} bytes, got {self.ble_payload_bytes}"
            )
        if self.guard_interval_s < 0:
            raise ConfigurationError("guard interval must be non-negative")
        if self.wifi_rate_mbps not in (1.0, 2.0, 5.5, 11.0):
            raise ConfigurationError(f"unsupported 802.11b rate {self.wifi_rate_mbps}")
        if self.short_plcp_preamble and self.wifi_rate_mbps == 1.0:
            raise ConfigurationError("the short PLCP preamble cannot precede a 1 Mbps payload")

    @property
    def ble_payload_duration_s(self) -> float:
        """Duration of the AdvData payload at 1 Mbps."""
        return self.ble_payload_bytes * 8e-6

    @property
    def backscatter_window_s(self) -> float:
        """Usable backscatter window after the guard interval."""
        return max(self.ble_payload_duration_s - self.guard_interval_s, 0.0)

    @property
    def wifi_overhead_s(self) -> float:
        """Air time of the Wi-Fi PLCP preamble + header."""
        return SHORT_PLCP_OVERHEAD_S if self.short_plcp_preamble else LONG_PLCP_OVERHEAD_S

    def max_wifi_psdu_bytes(self) -> int:
        """Largest Wi-Fi MPDU (including MAC header and FCS) that fits."""
        available = self.backscatter_window_s - self.wifi_overhead_s
        if available <= 0:
            return 0
        return int(available * self.wifi_rate_mbps * 1e6 // 8)

    def max_wifi_payload_bytes(self, mac_overhead_bytes: int = 0) -> int:
        """Largest Wi-Fi frame-body payload that fits.

        The paper's 38/104/209-byte numbers count the whole PSDU, so the
        default MAC overhead is zero; pass 28 to get the application payload
        under a minimal data-frame header + FCS.
        """
        return max(self.max_wifi_psdu_bytes() - mac_overhead_bytes, 0)

    def fits(self, wifi_psdu_bytes: int) -> bool:
        """Whether a PSDU of the given size fits in the window."""
        return 0 < wifi_psdu_bytes <= self.max_wifi_psdu_bytes()

    def wifi_air_time_s(self, wifi_psdu_bytes: int) -> float:
        """Air time of a Wi-Fi packet with the given PSDU size at this rate."""
        return self.wifi_overhead_s + wifi_psdu_bytes * 8.0 / (self.wifi_rate_mbps * 1e6)


def data_packet_wifi_budget(
    wifi_rate_mbps: float,
    *,
    ble_data_payload_bytes: int = 251,
    guard_interval_s: float = DEFAULT_GUARD_INTERVAL_S,
) -> dict[str, float]:
    """Wi-Fi budget when backscattering BLE *data* packets (paper §7).

    Data-channel packets with the Bluetooth 4.2 length extension carry up to
    251 payload bytes (2008 µs at 1 Mbps) — an ~8× longer tone window than a
    31-byte advertisement.  This helper quantifies the future-work claim:
    1 Mbps Wi-Fi packets fit, and per-packet throughput grows accordingly.

    Returns a dictionary with the tone window, the largest Wi-Fi PSDU that
    fits (long preamble for 1 Mbps, short otherwise) and the multiple of the
    advertising-packet budget it represents.
    """
    if not 0 < ble_data_payload_bytes <= 251:
        raise ConfigurationError("BLE data payload must be 1-251 bytes")
    window_s = ble_data_payload_bytes * 8e-6 - guard_interval_s
    overhead_s = LONG_PLCP_OVERHEAD_S if wifi_rate_mbps == 1.0 else SHORT_PLCP_OVERHEAD_S
    usable_s = max(window_s - overhead_s, 0.0)
    max_psdu = int(usable_s * wifi_rate_mbps * 1e6 // 8)
    if wifi_rate_mbps == 1.0:
        adv_budget = 0
    else:
        adv_budget = max_wifi_payload_bytes(wifi_rate_mbps)
    return {
        "tone_window_s": window_s,
        "max_wifi_psdu_bytes": float(max_psdu),
        "fits_1mbps_packet": float(wifi_rate_mbps != 1.0 or max_psdu > 0),
        "gain_over_advertising": float(max_psdu / adv_budget) if adv_budget else float("inf"),
    }


def max_wifi_payload_bytes(
    wifi_rate_mbps: float,
    *,
    ble_payload_bytes: int = MAX_ADV_DATA_BYTES,
    guard_interval_s: float = 0.0,
) -> int:
    """Convenience wrapper reproducing the paper's §2.3.3 packet-size table.

    The paper's 38/104/209-byte numbers assume the whole 248 µs payload
    window is usable, so the default guard interval here is zero; the
    device model still budgets its 4 µs guard when it actually transmits.
    """
    timing = InterscatterTiming(
        ble_payload_bytes=ble_payload_bytes,
        guard_interval_s=guard_interval_s,
        wifi_rate_mbps=wifi_rate_mbps,
    )
    return timing.max_wifi_psdu_bytes()
