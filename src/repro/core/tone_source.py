"""Bluetooth devices as single-tone RF sources for backscatter (§2.2).

Wraps the BLE substrate into the abstraction the rest of the core needs:
"give me a single tone at a known frequency, for a known duration, with a
known power, plus the timing of the packet around it".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ble.channels import advertising_channel
from repro.ble.devices import BleDeviceProfile
from repro.ble.radio import BleTransmission, BleTransmitter
from repro.ble.single_tone import SingleTonePayload, craft_single_tone_payload

__all__ = ["ToneParameters", "BluetoothToneSource"]


@dataclass(frozen=True)
class ToneParameters:
    """Description of the single tone a Bluetooth device will emit.

    Attributes
    ----------
    channel_index:
        BLE advertising channel carrying the tone.
    center_frequency_hz:
        Channel centre frequency.
    tone_frequency_hz:
        Actual tone frequency: centre ± 250 kHz depending on the constant
        bit value chosen, plus any device carrier offset.
    duration_s:
        Duration of the payload window during which the tone is pure.
    tx_power_dbm:
        Transmit power.
    tone_bit:
        The constant bit value (1 → +250 kHz, 0 → −250 kHz).
    """

    channel_index: int
    center_frequency_hz: float
    tone_frequency_hz: float
    duration_s: float
    tx_power_dbm: float
    tone_bit: int


class BluetoothToneSource:
    """A commodity Bluetooth device configured to emit single-tone payloads.

    Parameters
    ----------
    device:
        Device profile name or instance (see :data:`repro.ble.devices.DEVICE_PROFILES`).
    channel_index:
        Advertising channel (the paper uses 38 so the +35.75 MHz shift lands
        on Wi-Fi channel 11).
    tone_bit:
        Constant bit value to craft the payload for.
    payload_length:
        AdvData length in bytes (31 maximises the backscatter window).
    tx_power_dbm:
        Override of the profile transmit power (0/4/10/20 dBm in Fig. 10).
    samples_per_symbol:
        Waveform oversampling factor.
    android_constraint:
        Model the Android API's 24-controllable-byte limitation.
    """

    def __init__(
        self,
        device: str | BleDeviceProfile = "ti_cc2650",
        *,
        channel_index: int = 38,
        tone_bit: int = 1,
        payload_length: int = 31,
        tx_power_dbm: float | None = None,
        samples_per_symbol: int = 8,
        android_constraint: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.transmitter = BleTransmitter(
            device,
            samples_per_symbol=samples_per_symbol,
            tx_power_dbm=tx_power_dbm,
            rng=rng,
        )
        self.channel_index = channel_index
        self.tone_bit = tone_bit
        self.payload_length = payload_length
        self.android_constraint = android_constraint
        self._crafted: SingleTonePayload = craft_single_tone_payload(
            channel_index,
            tone_bit=tone_bit,
            payload_length=payload_length,
            android_constraint=android_constraint,
        )

    @property
    def profile(self) -> BleDeviceProfile:
        """The underlying device profile."""
        return self.transmitter.profile

    @property
    def crafted_payload(self) -> SingleTonePayload:
        """The crafted AdvData payload that produces the tone."""
        return self._crafted

    def tone_parameters(self) -> ToneParameters:
        """Describe the tone this source will produce."""
        channel = advertising_channel(self.channel_index)
        deviation = self.profile.frequency_deviation_hz
        offset = deviation if self.tone_bit == 1 else -deviation
        return ToneParameters(
            channel_index=self.channel_index,
            center_frequency_hz=channel.frequency_hz,
            tone_frequency_hz=channel.frequency_hz + offset + self.profile.carrier_offset_hz,
            duration_s=self._crafted.packet.payload_duration_s,
            tx_power_dbm=self.transmitter.tx_power_dbm,
            tone_bit=self.tone_bit,
        )

    def transmit(self) -> BleTransmission:
        """Emit one advertising packet carrying the single-tone payload."""
        return self.transmitter.transmit(self._crafted.packet)

    def transmit_random(self) -> BleTransmission:
        """Emit an advertisement with random data (the Fig. 9 comparison case)."""
        return self.transmitter.transmit_random_payload(
            self.channel_index, payload_length=self.payload_length
        )

    @property
    def sample_rate_hz(self) -> float:
        """Sample rate of emitted waveforms."""
        return self.transmitter.sample_rate_hz
