"""The interscatter uplink: synthesizing Wi-Fi / ZigBee by backscatter (§2.3).

The pipeline simulated here, end to end at the waveform level:

1. A Bluetooth device transmits an advertising packet whose payload was
   crafted to whiten into a constant bit stream, so the payload window is a
   single tone at ``f_ble ± 250 kHz`` (:mod:`repro.core.tone_source`).
2. The tag detects the packet with its envelope detector, waits out the
   un-controllable prefix plus a guard interval, and then drives its switch
   network with the single-sideband waveform carrying the 802.11b (or
   802.15.4) baseband (:mod:`repro.backscatter.ssb`).
3. The reflection of the incident tone is the synthesized packet, centred at
   ``f_ble + Δf`` — Wi-Fi channel 11 for BLE channel 38 and Δf = 35.75 MHz.
4. A commodity receiver mixes that channel to baseband, matched-filters to
   chip rate and decodes the packet (:mod:`repro.wifi.dsss.receiver` or
   :mod:`repro.zigbee.receiver`).

Because simulating 88 Msample/s waveforms for every distance/power point
would be slow, the uplink exposes two granularities:

* :meth:`InterscatterUplink.simulate_waveform` — the full waveform pipeline
  at one operating point (used by integration tests and spectrum figures).
* :meth:`InterscatterUplink.simulate_link` — link-budget + error-model
  evaluation (used by the range/PER sweeps of Figs. 10, 11, 14).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DecodeError
from repro.utils.dsp import add_awgn, dbm_to_watts, signal_power, watts_to_dbm
from repro.ble.channels import advertising_channel
from repro.backscatter.ssb import SingleSidebandModulator
from repro.backscatter.dsb import DoubleSidebandModulator
from repro.channel.error_models import wifi_packet_error_rate, ber_oqpsk_dsss, packet_error_rate
from repro.channel.link_budget import BackscatterLinkBudget
from repro.wifi.channels import wifi_channel_frequency_mhz
from repro.wifi.dsss.frames import WifiDataFrame
from repro.wifi.dsss.receiver import DsssDecodeResult, DsssReceiver
from repro.wifi.dsss.transmitter import CHIP_RATE_HZ, DsssTransmitter
from repro.zigbee.channels import zigbee_channel_frequency_mhz
from repro.zigbee.oqpsk import CHIP_RATE_HZ as ZIGBEE_CHIP_RATE_HZ
from repro.zigbee.oqpsk import OqpskWaveform
from repro.zigbee.receiver import ZigbeeDecodeResult, ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeFrame, ZigbeeTransmitter

__all__ = ["UplinkTarget", "UplinkResult", "InterscatterUplink"]


class UplinkTarget(enum.Enum):
    """Protocol the tag synthesizes on the uplink."""

    WIFI_80211B = "wifi"
    ZIGBEE_802154 = "zigbee"


@dataclass(frozen=True)
class UplinkResult:
    """Outcome of one uplink simulation.

    Attributes
    ----------
    target:
        Synthesized protocol.
    crc_ok:
        Whether the commodity receiver's CRC check passed.
    rssi_dbm:
        Received signal strength at the commodity receiver.
    snr_db:
        SNR at the receiver.
    payload:
        Decoded payload bytes (empty when decoding failed).
    decode:
        The raw decoder result, when the waveform pipeline was used.
    packet_error_rate:
        Analytic PER at this operating point, when the link-budget pipeline
        was used.
    shift_hz:
        Sub-carrier shift applied by the tag.
    output_frequency_mhz:
        Centre frequency of the synthesized packet.
    """

    target: UplinkTarget
    crc_ok: bool
    rssi_dbm: float
    snr_db: float
    payload: bytes = b""
    decode: DsssDecodeResult | ZigbeeDecodeResult | None = None
    packet_error_rate: float | None = None
    shift_hz: float = 35_750_000.0
    output_frequency_mhz: float = 2462.0


class InterscatterUplink:
    """Synthesize Wi-Fi or ZigBee packets by backscattering a Bluetooth tone.

    Parameters
    ----------
    target:
        Protocol to synthesize.
    wifi_rate_mbps:
        802.11b rate (ignored for ZigBee).
    ble_channel:
        Advertising channel providing the tone (38 in the paper).
    output_channel:
        Wi-Fi channel (11) or ZigBee channel (14) to land on.
    sideband:
        ``"single"`` for the paper's design, ``"double"`` for the prior-work
        baseline (used by the Fig. 6 / Fig. 12 comparisons).
    sample_rate_hz:
        Simulation rate of the backscatter waveform pipeline.
    link_budget:
        Link budget used by :meth:`simulate_link`; a default two-monopole
        budget is built when omitted.
    frame_style:
        ``"minimal"`` (default) wraps the payload in just a CRC-32, matching
        the paper's compact experiment packets whose 31/77-byte payloads fit
        the §2.3.3 size budget; ``"data"`` builds a full 802.11 data MPDU
        with a 24-byte MAC header.
    """

    def __init__(
        self,
        target: UplinkTarget | str = UplinkTarget.WIFI_80211B,
        *,
        wifi_rate_mbps: float = 2.0,
        ble_channel: int = 38,
        output_channel: int | None = None,
        sideband: str = "single",
        sample_rate_hz: float = 88_000_000.0,
        link_budget: BackscatterLinkBudget | None = None,
        frame_style: str = "minimal",
        rng: np.random.Generator | None = None,
    ) -> None:
        if frame_style not in ("minimal", "data"):
            raise ConfigurationError("frame_style must be 'minimal' or 'data'")
        self.frame_style = frame_style
        self.target = UplinkTarget(target) if not isinstance(target, UplinkTarget) else target
        self.wifi_rate_mbps = wifi_rate_mbps
        self.ble_channel = ble_channel
        if output_channel is None:
            output_channel = 11 if self.target is UplinkTarget.WIFI_80211B else 14
        self.output_channel = output_channel
        if sideband not in ("single", "double"):
            raise ConfigurationError("sideband must be 'single' or 'double'")
        self.sideband = sideband
        self.sample_rate_hz = sample_rate_hz
        self.link_budget = link_budget if link_budget is not None else BackscatterLinkBudget()
        self._rng = rng if rng is not None else np.random.default_rng(3)

    # -------------------------------------------------------------- helpers
    @property
    def ble_frequency_mhz(self) -> float:
        """Centre frequency of the Bluetooth tone's channel."""
        return advertising_channel(self.ble_channel).frequency_mhz

    @property
    def output_frequency_mhz(self) -> float:
        """Centre frequency of the synthesized packet."""
        if self.target is UplinkTarget.WIFI_80211B:
            return wifi_channel_frequency_mhz(self.output_channel)
        return zigbee_channel_frequency_mhz(self.output_channel)

    @property
    def shift_hz(self) -> float:
        """Sub-carrier shift required to move the tone to the output channel.

        For the paper's channel plan (BLE 38 → Wi-Fi 11) this is ≈36 MHz;
        the hardware uses 35.75 MHz, a deliberate slight offset that still
        lands well inside the 22 MHz-wide Wi-Fi channel while easing clock
        generation.  We honour the paper's 35.75 MHz for that plan and
        otherwise compute the exact difference.
        """
        exact = (self.output_frequency_mhz - self.ble_frequency_mhz) * 1e6
        if self.target is UplinkTarget.WIFI_80211B and self.ble_channel == 38 and self.output_channel == 11:
            return 35_750_000.0
        return exact

    def _baseband_chips(self, payload: bytes, sequence_number: int) -> tuple[np.ndarray, float, bytes]:
        """Encode the payload into protocol baseband chips.

        Returns (chips, chip_rate, psdu_bytes).
        """
        if self.target is UplinkTarget.WIFI_80211B:
            transmitter = DsssTransmitter(self.wifi_rate_mbps, short_preamble=True)
            if self.frame_style == "minimal":
                from repro.wifi.dsss.frames import mpdu_with_fcs

                body = sequence_number.to_bytes(2, "little") + payload
                packet = transmitter.encode_psdu(mpdu_with_fcs(body))
            else:
                frame = WifiDataFrame(payload=payload, sequence_number=sequence_number)
                packet = transmitter.encode_frame(frame)
            return packet.chips, CHIP_RATE_HZ, packet.psdu
        transmitter = ZigbeeTransmitter()
        frame = ZigbeeFrame(payload=payload, sequence_number=sequence_number & 0xFF)
        packet = transmitter.encode_frame(frame)
        # The ZigBee O-QPSK baseband is used directly (already a waveform).
        return packet.waveform.samples, transmitter.sample_rate_hz, packet.psdu

    # ------------------------------------------------------------------ API
    def simulate_waveform(
        self,
        payload: bytes = b"interscatter",
        *,
        sequence_number: int = 0,
        incident_tone_power_dbm: float = -20.0,
        snr_db: float | None = 30.0,
    ) -> UplinkResult:
        """Full waveform-level simulation of one synthesized packet.

        The incident Bluetooth tone is modelled as a unit tone at the tag
        (its absolute power only scales the output), the tag modulates it
        with the single- or double-sideband reflection waveform, the result
        is mixed from ``f_ble`` down to the output channel centre and
        decimated to chip rate for the commodity receiver.
        """
        chips, chip_rate, _psdu = self._baseband_chips(payload, sequence_number)

        if self.sideband == "single":
            modulator = SingleSidebandModulator(
                shift_hz=self.shift_hz, sample_rate_hz=self.sample_rate_hz
            )
        else:
            modulator = DoubleSidebandModulator(
                shift_hz=self.shift_hz, sample_rate_hz=self.sample_rate_hz
            )
        baseband = modulator.upsample_symbols(chips, chip_rate) if hasattr(
            modulator, "upsample_symbols"
        ) else np.repeat(chips, int(self.sample_rate_hz // chip_rate))
        reflection = modulator.modulate_baseband(baseband)

        # Incident tone (complex baseband relative to the BLE channel centre,
        # at the +250 kHz offset the crafted payload produces).
        amplitude = np.sqrt(dbm_to_watts(incident_tone_power_dbm))
        n = np.arange(reflection.reflection.size)
        tone = amplitude * np.exp(2j * np.pi * 250e3 * n / self.sample_rate_hz)
        backscattered = reflection.apply_to(tone)

        # Mix down to the synthesized packet's centre.  In the BLE-centred
        # baseband the packet sits at (tone offset + sub-carrier shift) —
        # 36 MHz for the BLE-38 → Wi-Fi-11 plan — so removing exactly that
        # amount presents the commodity receiver with a packet at baseband
        # zero, the same as tuning it to the output channel.
        packet_center_hz = 250e3 + self.shift_hz
        received = backscattered * np.exp(
            -2j * np.pi * packet_center_hz * n / self.sample_rate_hz
        )

        if snr_db is not None:
            received = add_awgn(received, snr_db, rng=self._rng)
        rssi_dbm = watts_to_dbm(signal_power(backscattered))

        # Decimate to chip rate with simple averaging (integrate & dump).
        decim = int(round(self.sample_rate_hz / chip_rate))
        usable = (received.size // decim) * decim
        received_chips = received[:usable].reshape(-1, decim).mean(axis=1)

        return self._decode(received_chips, chip_rate, rssi_dbm, snr_db)

    def _decode(
        self,
        received_chips: np.ndarray,
        chip_rate: float,
        rssi_dbm: float,
        snr_db: float | None,
    ) -> UplinkResult:
        """Hand the received chip stream to the right commodity receiver."""
        snr_value = float("inf") if snr_db is None else float(snr_db)
        if self.target is UplinkTarget.WIFI_80211B:
            receiver = DsssReceiver(short_preamble=True)
            try:
                decode = receiver.decode_chips(received_chips, rssi_dbm=rssi_dbm)
                if self.frame_style == "minimal":
                    # Minimal frames are <sequence:2><payload><fcs:4>.
                    payload_bytes = decode.psdu[2:-4] if decode.crc_ok else b""
                else:
                    payload_bytes = decode.payload
                return UplinkResult(
                    target=self.target,
                    crc_ok=decode.crc_ok,
                    rssi_dbm=rssi_dbm,
                    snr_db=snr_value,
                    payload=payload_bytes,
                    decode=decode,
                    shift_hz=self.shift_hz,
                    output_frequency_mhz=self.output_frequency_mhz,
                )
            except DecodeError:
                return UplinkResult(
                    target=self.target,
                    crc_ok=False,
                    rssi_dbm=rssi_dbm,
                    snr_db=snr_value,
                    shift_hz=self.shift_hz,
                    output_frequency_mhz=self.output_frequency_mhz,
                )
        try:
            # The ZigBee baseband was passed through at waveform resolution;
            # decode via the O-QPSK demodulator path instead of hard chips.
            decode = self._decode_zigbee_waveform(received_chips, chip_rate, rssi_dbm)
            return UplinkResult(
                target=self.target,
                crc_ok=decode.crc_ok,
                rssi_dbm=rssi_dbm,
                snr_db=snr_value,
                payload=decode.frame.payload if decode.frame else b"",
                decode=decode,
                shift_hz=self.shift_hz,
                output_frequency_mhz=self.output_frequency_mhz,
            )
        except DecodeError:
            return UplinkResult(
                target=self.target,
                crc_ok=False,
                rssi_dbm=rssi_dbm,
                snr_db=snr_value,
                shift_hz=self.shift_hz,
                output_frequency_mhz=self.output_frequency_mhz,
            )

    def _decode_zigbee_waveform(
        self, samples: np.ndarray, sample_rate_hz: float, rssi_dbm: float
    ) -> ZigbeeDecodeResult:
        """Decode a ZigBee O-QPSK waveform received at an arbitrary sample rate.

        The backscatter channel leaves an unknown constant phase rotation on
        the waveform (tone phase + switch quantisation).  A real CC2531
        recovers the carrier phase from the preamble; here the receiver
        simply tries a small grid of candidate rotations and keeps the one
        with the fewest chip errors.
        """
        receiver_sps = 4
        target_rate = ZIGBEE_CHIP_RATE_HZ * receiver_sps
        ratio = sample_rate_hz / target_rate
        if ratio >= 1:
            indices = (np.arange(int(samples.size / ratio)) * ratio).astype(int)
            resampled = samples[indices]
        else:
            resampled = np.interp(
                np.arange(0, samples.size, ratio), np.arange(samples.size), samples
            )
        receiver = ZigbeeReceiver(samples_per_chip=receiver_sps)
        best: ZigbeeDecodeResult | None = None
        last_error: DecodeError | None = None
        for rotation in np.arange(0.0, 2.0 * np.pi, np.pi / 8.0):
            waveform = OqpskWaveform(
                samples=resampled * np.exp(1j * rotation),
                sample_rate_hz=target_rate,
                num_chips=int(resampled.size // receiver_sps),
            )
            try:
                candidate = receiver.decode_waveform(waveform)
            except DecodeError as exc:
                last_error = exc
                continue
            if best is None or candidate.mean_chip_errors < best.mean_chip_errors:
                best = candidate
            if candidate.crc_ok and candidate.mean_chip_errors == 0.0:
                best = candidate
                break
        if best is None:
            raise last_error if last_error is not None else DecodeError("ZigBee decode failed")
        return ZigbeeDecodeResult(
            psdu=best.psdu,
            frame=best.frame,
            crc_ok=best.crc_ok,
            rssi_dbm=rssi_dbm,
            mean_chip_errors=best.mean_chip_errors,
        )

    def simulate_link(
        self,
        *,
        source_power_dbm: float,
        source_to_tag_m: float,
        tag_to_receiver_m: float,
        payload_bytes: int = 31,
        rng: np.random.Generator | None = None,
    ) -> UplinkResult:
        """Link-budget + error-model evaluation of one operating point."""
        budget = self.link_budget
        budget.source_power_dbm = source_power_dbm
        link = budget.evaluate(source_to_tag_m, tag_to_receiver_m, rng=rng)
        if self.target is UplinkTarget.WIFI_80211B:
            per = wifi_packet_error_rate(
                link.snr_db, rate_mbps=self.wifi_rate_mbps, payload_bytes=payload_bytes
            )
        else:
            ber = ber_oqpsk_dsss(link.snr_db)
            per = packet_error_rate(ber, (payload_bytes + 11) * 8)
        generator = rng if rng is not None else self._rng
        crc_ok = bool(link.detectable and generator.random() > per)
        return UplinkResult(
            target=self.target,
            crc_ok=crc_ok,
            rssi_dbm=link.rssi_dbm,
            snr_db=link.snr_db,
            packet_error_rate=float(per),
            shift_hz=self.shift_hz,
            output_frequency_mhz=self.output_frequency_mhz,
        )
