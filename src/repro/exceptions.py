"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish configuration problems from decode failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class PacketFormatError(ReproError):
    """A packet could not be assembled because a field is out of range."""


class DecodeError(ReproError):
    """A receiver failed to find or decode a packet in the supplied waveform."""


class SynchronizationError(DecodeError):
    """A receiver could not locate a preamble / start-frame delimiter."""


class CrcError(DecodeError):
    """A packet was located and demodulated but its CRC check failed."""


class LinkBudgetError(ReproError):
    """A link-budget computation was asked for a physically meaningless setup."""
