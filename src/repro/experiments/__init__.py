"""Experiment drivers: one module per table/figure of the paper's evaluation.

Every module exposes a ``run(...)`` function that returns a plain result
object with the series the corresponding figure plots (or the rows the
table lists), and self-registers with :mod:`repro.api` at import time —
so importing this package populates the experiment registry.  Prefer the
unified front door::

    from repro.api import Runner
    result = Runner().run("fig11", engine="batch")

or, from the shell, ``python -m repro run fig11 --engine batch``.  The
benchmark harness in ``benchmarks/`` and ``examples/reproduce_paper.py``
both go through the registry; EXPERIMENTS.md records paper-vs-measured.

=========================  ============================================
Module                      Paper artefact
=========================  ============================================
``fig06_sideband``          Fig. 6  — SSB vs DSB backscatter spectrum
``fig09_single_tone``       Fig. 9  — BLE single-tone spectra (3 devices)
``fig10_rssi``              Fig. 10 — Wi-Fi RSSI vs distance / TX power
``fig11_per``               Fig. 11 — Wi-Fi packet-error-rate CDF
``fig12_coexistence``       Fig. 12 — iperf throughput under backscatter
``fig13_downlink_ber``      Fig. 13 — downlink BER vs distance
``fig14_zigbee_rssi``       Fig. 14 — ZigBee RSSI CDF
``fig15_contact_lens``      Fig. 15 — contact-lens RSSI vs distance
``fig16_neural_implant``    Fig. 16 — implant RSSI vs distance
``fig17_card_to_card``      Fig. 17 — card-to-card BER vs distance
``table_power``             §3      — 28 µW IC power breakdown
``table_packet_sizes``      §2.3.3  — Wi-Fi payload per BLE advertisement
``mac_scaling``             beyond  — fleet size × MAC policy sweep
=========================  ============================================
"""

from repro.experiments import (
    fig06_sideband,
    fig09_single_tone,
    fig10_rssi,
    fig11_per,
    fig12_coexistence,
    fig13_downlink_ber,
    fig14_zigbee_rssi,
    fig15_contact_lens,
    fig16_neural_implant,
    fig17_card_to_card,
    mac_scaling,
    table_packet_sizes,
    table_power,
)

__all__ = [
    "fig06_sideband",
    "fig09_single_tone",
    "fig10_rssi",
    "fig11_per",
    "fig12_coexistence",
    "fig13_downlink_ber",
    "fig14_zigbee_rssi",
    "fig15_contact_lens",
    "fig16_neural_implant",
    "fig17_card_to_card",
    "mac_scaling",
    "table_packet_sizes",
    "table_power",
]
