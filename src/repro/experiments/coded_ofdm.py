"""Coded-OFDM waveform sweep — hard vs soft Viterbi over AWGN (beyond the paper).

The paper's PER experiments lean on the analytic 802.11b link abstraction;
this driver exercises the *waveform-accurate* 802.11a/g coding chain in
:mod:`repro.mc` instead: scramble → convolutional encode → puncture →
interleave → map → AWGN → demap → deinterleave → depuncture → batched
Viterbi → descramble, a whole batch of codewords per vectorised call.

Both receivers run on **identical channel realisations** (same seed, and
the message/noise draws happen before the decision branch), so the
comparison is paired: the hard receiver demaps to bits before the trellis,
the soft receiver feeds max-log LLRs into the soft-metric Viterbi.  Coding
theory puts the soft decoder ~2 dB ahead at the PER ≈ 10⁻² operating
point; the sweep measures that gap directly by log-interpolating each
curve's crossing of ``target_error_rate``.

The chain runs on any registered array backend (``backend=`` /
``REPRO_BACKEND``); random draws stay on the numpy ``Generator``, so the
results are float-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register, resolve_engine
from repro.exceptions import ConfigurationError
from repro.mc.backend import resolve_engine_backend
from repro.mc.sweep import CodedOfdmPipeline, run_sweep
from repro.plots.figure import Figure, Series
from repro.wifi.ofdm.rates import OfdmRate

__all__ = ["CodedOfdmSweepResult", "run", "summarize"]


@dataclass(frozen=True)
class CodedOfdmSweepResult:
    """Paired hard/soft sweep of the batched coding chain.

    Attributes
    ----------
    snr_db:
        Operating points (per-symbol SNR).
    rate_mbps / statistic / trials:
        Sweep configuration (statistic is ``"per"`` or ``"ber"``).
    hard_error_rate / soft_error_rate:
        The two receivers' mean error statistic at each point.
    hard_std_error / soft_std_error:
        Standard error of those means.
    target_error_rate:
        The operating point the crossings are interpolated at.
    hard_crossing_snr_db / soft_crossing_snr_db:
        SNR where each curve crosses the target (log-interpolated;
        ``nan`` when the curve never crosses inside the grid).
    soft_gain_db:
        ``hard_crossing − soft_crossing`` — the soft-decision coding
        gain at the target error rate.
    """

    snr_db: np.ndarray
    rate_mbps: float
    statistic: str
    trials: int
    hard_error_rate: np.ndarray
    soft_error_rate: np.ndarray
    hard_std_error: np.ndarray
    soft_std_error: np.ndarray
    target_error_rate: float
    hard_crossing_snr_db: float
    soft_crossing_snr_db: float
    soft_gain_db: float


def _crossing_snr_db(snr_db: np.ndarray, error_rate: np.ndarray, target: float, *, floor: float) -> float:
    """SNR where the (monotone-trend) curve first reaches *target*, log-interpolated.

    Zero-event points are floored at half a count so the interpolation in
    ``log10(error rate)`` stays finite; ``nan`` means the curve never
    reaches the target inside the grid.
    """
    rates = np.maximum(np.asarray(error_rate, dtype=float), floor)
    below = np.flatnonzero(rates <= target)
    if below.size == 0:
        return float("nan")
    index = int(below[0])
    if index == 0:
        return float(snr_db[0])
    left, right = np.log10(rates[index - 1]), np.log10(rates[index])
    fraction = (np.log10(target) - left) / (right - left)
    return float(snr_db[index - 1] + fraction * (snr_db[index] - snr_db[index - 1]))


def _sweep_batch(rate, snr_points, trials, num_symbols, statistic, decision, seed, xp):
    """One decision's whole sweep through the batched kernel chain."""
    pipeline = CodedOfdmPipeline(rate, num_symbols=num_symbols, statistic=statistic, decision=decision)
    return run_sweep(snr_points, trials, pipeline, seed=seed, xp=xp)


_ENGINES = {"batch": _sweep_batch}


def run(
    *,
    rate_mbps: float = 12.0,
    snr_start_db: float = 0.0,
    snr_stop_db: float = 9.0,
    snr_step_db: float = 0.5,
    trials: int = 1000,
    num_symbols: int = 4,
    statistic: str = "per",
    target_error_rate: float = 0.01,
    seed: int = 2016,
    engine: str = "batch",
    backend: str | None = None,
) -> CodedOfdmSweepResult:
    """Sweep the coded-OFDM chain with hard and soft decoding at every point.

    Both decisions reuse the same ``seed``, and the pipeline draws its
    message and noise *before* the decision branch — so each trial is the
    same channel realisation decoded twice, and the soft curve sits at or
    below the hard curve point by point up to Monte-Carlo noise.
    ``engine="batch"`` is the only engine (the chain *is* the batched
    kernels); ``backend`` picks the array namespace the kernels run on.
    """
    sweep = resolve_engine("coded_ofdm", engine, _ENGINES)
    xp = resolve_engine_backend("coded_ofdm", engine, backend)
    if snr_stop_db < snr_start_db:
        raise ConfigurationError("snr_stop_db must be >= snr_start_db")
    if snr_step_db <= 0:
        raise ConfigurationError("snr_step_db must be positive")
    rate = OfdmRate.from_mbps(float(rate_mbps))
    points = np.arange(snr_start_db, snr_stop_db + snr_step_db / 2.0, snr_step_db)
    hard = sweep(rate, points, trials, num_symbols, statistic, "hard", seed, xp)
    soft = sweep(rate, points, trials, num_symbols, statistic, "soft", seed, xp)
    floor = 1.0 / (2.0 * trials)
    hard_crossing = _crossing_snr_db(points, hard.error_rate, target_error_rate, floor=floor)
    soft_crossing = _crossing_snr_db(points, soft.error_rate, target_error_rate, floor=floor)
    return CodedOfdmSweepResult(
        snr_db=points,
        rate_mbps=float(rate_mbps),
        statistic=statistic,
        trials=trials,
        hard_error_rate=hard.error_rate,
        soft_error_rate=soft.error_rate,
        hard_std_error=hard.std_error,
        soft_std_error=soft.std_error,
        target_error_rate=target_error_rate,
        hard_crossing_snr_db=hard_crossing,
        soft_crossing_snr_db=soft_crossing,
        soft_gain_db=hard_crossing - soft_crossing,
    )


def summarize(result: CodedOfdmSweepResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    label = result.statistic.upper()
    if np.isnan(result.soft_gain_db):
        gain = f"{label} {result.target_error_rate:g} not reached inside the SNR grid at this trial budget"
    else:
        gain = (
            f"soft-decision gain {result.soft_gain_db:.1f} dB at {label} {result.target_error_rate:g} "
            f"(hard crosses at {result.hard_crossing_snr_db:.1f} dB, soft at "
            f"{result.soft_crossing_snr_db:.1f} dB)"
        )
    return [
        f"{result.rate_mbps:g} Mbps, {result.trials} codewords/point: {gain}",
        f"{label} at {result.snr_db[-1]:g} dB SNR: hard {result.hard_error_rate[-1]:.4f}, "
        f"soft {result.soft_error_rate[-1]:.4f}",
        "theory: soft-metric Viterbi buys ~2 dB over hard slicing at PER ~ 1e-2",
    ]


def metrics(result: CodedOfdmSweepResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        "soft_gain_db": float(result.soft_gain_db),
        "hard_crossing_snr_db": float(result.hard_crossing_snr_db),
        "soft_crossing_snr_db": float(result.soft_crossing_snr_db),
    }


def plot(result: CodedOfdmSweepResult) -> Figure:
    """Declarative figure: hard vs soft error-rate curves over SNR."""
    label = result.statistic.upper()
    edges = np.array([float(result.snr_db[0]), float(result.snr_db[-1])])
    return Figure(
        title=f"Coded OFDM — hard vs soft Viterbi ({result.rate_mbps:g} Mbps)",
        xlabel="SNR (dB)",
        ylabel=label,
        series=(
            Series(label="hard decision", x=result.snr_db, y=result.hard_error_rate),
            Series(label="soft decision (LLR)", x=result.snr_db, y=result.soft_error_rate),
            Series(
                label=f"target {label} {result.target_error_rate:g}",
                x=edges,
                y=np.array([result.target_error_rate, result.target_error_rate]),
            ),
        ),
        caption="Identical channel realisations decoded twice: the LLR trellis crosses the "
        "target error rate ~2 dB before hard slicing.",
    )


register(
    name="coded_ofdm",
    title="Coded OFDM — hard vs soft Viterbi over AWGN (beyond the paper)",
    run=run,
    engines=_ENGINES,
    fast_params={"snr_step_db": 2.0, "snr_stop_db": 8.0, "trials": 400},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
