"""Fig. 6 — single-sideband vs double-sideband backscatter spectrum.

The paper plots the spectrum of a 2 Mbps backscatter-generated Wi-Fi signal
shifted by 22 MHz, produced once with the paper's single-sideband modulator
and once with a prior double-sideband design.  The DSB design shows a
strong mirror copy at −22 MHz; the SSB design does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register
from repro.plots.figure import Figure, Series
from repro.backscatter.dsb import DoubleSidebandModulator
from repro.backscatter.ssb import SingleSidebandModulator
from repro.utils.spectrum import PowerSpectrum, power_spectral_density, spectrum_asymmetry_db
from repro.wifi.dsss.frames import mpdu_with_fcs
from repro.wifi.dsss.transmitter import CHIP_RATE_HZ, DsssTransmitter

__all__ = ["SidebandSpectrumResult", "run", "summarize"]


@dataclass(frozen=True)
class SidebandSpectrumResult:
    """Spectra and summary statistics for the Fig. 6 comparison.

    Attributes
    ----------
    shift_hz:
        Sub-carrier shift used (22 MHz, matching the figure).
    ssb_spectrum / dsb_spectrum:
        Two-sided PSD estimates of the two designs' output.
    ssb_image_rejection_db:
        Upper-sideband minus lower-sideband power for the SSB design
        (large and positive = mirror suppressed).
    dsb_image_rejection_db:
        Same metric for the DSB design (≈0 = mirror present).
    """

    shift_hz: float
    ssb_spectrum: PowerSpectrum
    dsb_spectrum: PowerSpectrum
    ssb_image_rejection_db: float
    dsb_image_rejection_db: float


def run(
    *,
    shift_hz: float = 22e6,
    sample_rate_hz: float = 88e6,
    wifi_rate_mbps: float = 2.0,
    payload: bytes = b"\x55" * 32,
) -> SidebandSpectrumResult:
    """Generate the Fig. 6 spectra.

    A 2 Mbps 802.11b packet (32-byte payload, as in §4.3) provides the
    baseband; each modulator imposes it on a unit incident tone with the
    requested shift and the two output spectra are estimated with Welch.
    """
    transmitter = DsssTransmitter(wifi_rate_mbps, short_preamble=True)
    packet = transmitter.encode_psdu(mpdu_with_fcs(payload))

    ssb = SingleSidebandModulator(shift_hz=shift_hz, sample_rate_hz=sample_rate_hz)
    dsb = DoubleSidebandModulator(shift_hz=shift_hz, sample_rate_hz=sample_rate_hz)

    baseband = ssb.upsample_symbols(packet.chips, CHIP_RATE_HZ)
    incident = np.ones(baseband.size, dtype=complex)

    ssb_output = ssb.modulate_baseband(baseband).apply_to(incident)
    dsb_output = dsb.modulate_baseband(baseband).apply_to(incident)

    ssb_spectrum = power_spectral_density(ssb_output, sample_rate_hz)
    dsb_spectrum = power_spectral_density(dsb_output, sample_rate_hz)
    half_width = wifi_rate_mbps * 1e6 * 5.5  # half of the 22 MHz channel

    return SidebandSpectrumResult(
        shift_hz=shift_hz,
        ssb_spectrum=ssb_spectrum,
        dsb_spectrum=dsb_spectrum,
        ssb_image_rejection_db=spectrum_asymmetry_db(ssb_spectrum, 0.0, shift_hz, half_width),
        dsb_image_rejection_db=spectrum_asymmetry_db(dsb_spectrum, 0.0, shift_hz, half_width),
    )


def summarize(result: SidebandSpectrumResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    return [
        f"measured: SSB sideband asymmetry {result.ssb_image_rejection_db:+.1f} dB, "
        f"DSB {result.dsb_image_rejection_db:+.1f} dB",
        "paper:    DSB shows a mirror copy, SSB eliminates it",
    ]


def metrics(result: SidebandSpectrumResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        "ssb_image_rejection_db": result.ssb_image_rejection_db,
        "dsb_image_rejection_db": result.dsb_image_rejection_db,
    }


def plot(result: SidebandSpectrumResult) -> Figure:
    """Declarative figure matching the paper's spectrum comparison."""
    return Figure(
        title="Fig. 6 — SSB vs DSB backscatter spectrum",
        xlabel="Frequency offset (MHz)",
        ylabel="PSD (dB)",
        series=(
            Series(
                label="single sideband",
                x=result.ssb_spectrum.frequencies_hz / 1e6,
                y=result.ssb_spectrum.psd_db,
            ),
            Series(
                label="double sideband",
                x=result.dsb_spectrum.frequencies_hz / 1e6,
                y=result.dsb_spectrum.psd_db,
            ),
        ),
        caption="The DSB design mirrors the packet at the negative offset; the SSB design suppresses it.",
    )


register(
    name="fig06",
    title="Fig. 6 — single-sideband vs double-sideband backscatter spectrum",
    run=run,
    engines={"scalar": run},
    artifact="Fig. 6",
    fast_params={"payload": b"\x55" * 16},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
