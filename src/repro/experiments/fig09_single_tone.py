"""Fig. 9 — creating single-tone transmissions on commodity Bluetooth devices.

The paper records the spectrum of a TI CC2650, a Galaxy S5 and a Moto 360
while they transmit (a) ordinary random advertising payloads and (b) the
crafted payload that whitens to a constant bit stream.  The random payload
fills the ~2 MHz BLE channel; the crafted payload collapses into a single
tone offset ≈250 kHz from the channel centre.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register
from repro.core.tone_source import BluetoothToneSource
from repro.plots.figure import Figure, Series
from repro.utils.spectrum import (
    PowerSpectrum,
    occupied_bandwidth,
    power_spectral_density,
    spectral_peak,
)

__all__ = ["DeviceToneResult", "SingleToneResult", "run", "summarize"]


@dataclass(frozen=True)
class DeviceToneResult:
    """Spectra for one Bluetooth device (one panel of Fig. 9).

    Attributes
    ----------
    device:
        Profile key (``ti_cc2650``, ``galaxy_s5``, ``moto360``).
    random_spectrum / tone_spectrum:
        PSDs of the payload window for random and crafted payloads.
    random_bandwidth_hz / tone_bandwidth_hz:
        99 %-power occupied bandwidths of the two cases.
    tone_peak_offset_hz:
        Frequency of the strongest bin of the crafted-payload spectrum
        (should sit near +250 kHz plus the device's carrier offset).
    """

    device: str
    random_spectrum: PowerSpectrum
    tone_spectrum: PowerSpectrum
    random_bandwidth_hz: float
    tone_bandwidth_hz: float
    tone_peak_offset_hz: float


@dataclass(frozen=True)
class SingleToneResult:
    """All three device panels of Fig. 9."""

    devices: dict[str, DeviceToneResult]


def run(
    *,
    devices: tuple[str, ...] = ("ti_cc2650", "galaxy_s5", "moto360"),
    channel_index: int = 38,
    samples_per_symbol: int = 8,
    seed: int = 2016,
) -> SingleToneResult:
    """Generate the Fig. 9 spectra for the requested device profiles."""
    results: dict[str, DeviceToneResult] = {}
    for index, device in enumerate(devices):
        rng = np.random.default_rng(seed + index)
        source = BluetoothToneSource(
            device,
            channel_index=channel_index,
            samples_per_symbol=samples_per_symbol,
            rng=rng,
        )
        tone_tx = source.transmit()
        random_tx = source.transmit_random()
        sample_rate = source.sample_rate_hz

        tone_spectrum = power_spectral_density(tone_tx.payload_waveform, sample_rate)
        random_spectrum = power_spectral_density(random_tx.payload_waveform, sample_rate)
        peak_offset, _ = spectral_peak(tone_spectrum)

        results[device] = DeviceToneResult(
            device=device,
            random_spectrum=random_spectrum,
            tone_spectrum=tone_spectrum,
            random_bandwidth_hz=occupied_bandwidth(random_spectrum),
            tone_bandwidth_hz=occupied_bandwidth(tone_spectrum),
            tone_peak_offset_hz=peak_offset,
        )
    return SingleToneResult(devices=results)


def summarize(result: SingleToneResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    lines = [
        f"{device:12s}: random payload {panel.random_bandwidth_hz / 1e3:7.0f} kHz occupied, "
        f"crafted payload {panel.tone_bandwidth_hz / 1e3:6.0f} kHz, "
        f"tone at {panel.tone_peak_offset_hz / 1e3:+.0f} kHz"
        for device, panel in result.devices.items()
    ]
    lines.append("paper: the crafted payload collapses the ~2 MHz channel into a single tone near +250 kHz")
    return lines


def metrics(result: SingleToneResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    out: dict[str, float] = {}
    for device, panel in result.devices.items():
        out[f"{device}_tone_bandwidth_hz"] = panel.tone_bandwidth_hz
        out[f"{device}_tone_peak_offset_hz"] = panel.tone_peak_offset_hz
    return out


def _band(spectrum: PowerSpectrum, half_width_hz: float) -> tuple[np.ndarray, np.ndarray]:
    mask = np.abs(spectrum.frequencies_hz) <= half_width_hz
    return spectrum.frequencies_hz[mask] / 1e3, spectrum.psd_db[mask]


def plot(result: SingleToneResult) -> Figure:
    """Declarative figure: crafted tones vs one random-payload reference."""
    half_width_hz = 1e6  # the interesting ±1 MHz of the ~2 MHz BLE channel
    series = []
    first = next(iter(result.devices.values()))
    x, y = _band(first.random_spectrum, half_width_hz)
    series.append(Series(label=f"{first.device} random payload", x=x, y=y))
    for panel in result.devices.values():
        x, y = _band(panel.tone_spectrum, half_width_hz)
        series.append(Series(label=f"{panel.device} crafted tone", x=x, y=y))
    return Figure(
        title="Fig. 9 — BLE single-tone spectra",
        xlabel="Frequency offset (kHz)",
        ylabel="PSD (dB)",
        series=tuple(series),
        caption="The crafted payload collapses the ~2 MHz BLE channel into a single tone near +250 kHz.",
    )


register(
    name="fig09",
    title="Fig. 9 — BLE single-tone spectra on three commodity devices",
    run=run,
    engines={"scalar": run},
    artifact="Fig. 9",
    fast_params={"samples_per_symbol": 4},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
