"""Fig. 10 — Wi-Fi RSSI of backscatter-generated packets vs distance.

The paper fixes the Bluetooth transmitter and the backscatter tag 1 ft (a)
or 3 ft (b) apart, moves the Wi-Fi receiver perpendicular to the midpoint
of that segment out to 90 ft, and records the RSSI of the 2 Mbps packets
for Bluetooth transmit powers of 0, 4, 10 and 20 dBm.

The reproduction uses the two-hop backscatter link budget with the Fig. 10
geometry; the expected qualitative findings (higher TX power → more range,
1 ft separation beats 3 ft, 20 dBm reaches ≈90 ft) are asserted by the
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import distance_grid, furthest_reach
from repro.api.registry import register, resolve_engine
from repro.ble.devices import TX_POWER_LEVELS_DBM
from repro.channel.geometry import fig10_geometry
from repro.channel.link_budget import BackscatterLinkBudget
from repro.mc.backend import resolve_engine_backend, to_numpy
from repro.mc.channel import backscatter_link_batch
from repro.plots.figure import Figure, Series

__all__ = ["RssiCurve", "RssiVsDistanceResult", "run", "summarize"]


@dataclass(frozen=True)
class RssiCurve:
    """One curve of Fig. 10: RSSI vs receiver distance at one TX power.

    Attributes
    ----------
    tx_power_dbm:
        Bluetooth transmit power.
    bluetooth_to_tag_feet:
        Separation of the Bluetooth transmitter and the tag.
    distances_feet:
        Receiver offsets from the midpoint (the figure's x-axis).
    rssi_dbm:
        Predicted RSSI at each distance.
    range_feet:
        Furthest distance at which the RSSI stays above the receiver
        sensitivity used in the experiment.
    """

    tx_power_dbm: float
    bluetooth_to_tag_feet: float
    distances_feet: np.ndarray
    rssi_dbm: np.ndarray
    range_feet: float


@dataclass(frozen=True)
class RssiVsDistanceResult:
    """Both panels of Fig. 10 (1 ft and 3 ft separations)."""

    curves: dict[tuple[float, float], RssiCurve]
    sensitivity_dbm: float

    def curve(self, tx_power_dbm: float, separation_feet: float) -> RssiCurve:
        """Convenience accessor for one (power, separation) curve."""
        return self.curves[(tx_power_dbm, separation_feet)]


def _curve_scalar(budget, hop_in, hop_out, xp):  # lint-ok: RL001 -- scalar engine is numpy-only by declaration
    """Two-hop budget one receiver offset at a time."""
    rssi = np.empty(hop_in.size)
    for index in range(hop_in.size):
        rssi[index] = budget.evaluate(float(hop_in[index]), float(hop_out[index])).rssi_dbm
    return rssi


def _curve_batch(budget, hop_in, hop_out, xp):
    """Whole distance grid in one vectorised link-budget call."""
    return to_numpy(backscatter_link_batch(budget, hop_in, hop_out, xp=xp).rssi_dbm)


_ENGINES = {"scalar": _curve_scalar, "batch": _curve_batch}


def run(
    *,
    tx_powers_dbm: tuple[float, ...] = TX_POWER_LEVELS_DBM,
    separations_feet: tuple[float, ...] = (1.0, 3.0),
    max_distance_feet: float = 90.0,
    step_feet: float = 2.0,
    sensitivity_dbm: float = -94.0,
    wifi_rate_mbps: float = 2.0,
    engine: str = "scalar",
    backend: str | None = None,
) -> RssiVsDistanceResult:
    """Compute the Fig. 10 RSSI curves.

    ``engine="scalar"`` (default) evaluates the two-hop budget one receiver
    offset at a time; ``"batch"`` evaluates each curve's whole distance grid
    in one vectorised :func:`repro.mc.channel.backscatter_link_batch` call,
    on any registered array ``backend``.  The geometry is deterministic (no
    shadowing), so the two engines agree to floating-point precision.
    """
    trace = resolve_engine("fig10", engine, _ENGINES)
    xp = resolve_engine_backend("fig10", engine, backend)
    distances = distance_grid(1.0, max_distance_feet, step_feet)
    curves: dict[tuple[float, float], RssiCurve] = {}
    for separation in separations_feet:
        hops = [fig10_geometry(separation, float(offset)) for offset in distances]
        hop_in = np.array([bluetooth.distance_to(tag) for bluetooth, tag, _ in hops])
        hop_out = np.array([tag.distance_to(receiver) for _, tag, receiver in hops])
        for power in tx_powers_dbm:
            budget = BackscatterLinkBudget(
                source_power_dbm=power, receiver_sensitivity_dbm=sensitivity_dbm
            )
            rssi = trace(budget, hop_in, hop_out, xp)
            curves[(power, separation)] = RssiCurve(
                tx_power_dbm=power,
                bluetooth_to_tag_feet=separation,
                distances_feet=distances,
                rssi_dbm=rssi,
                range_feet=furthest_reach(distances, rssi, sensitivity_dbm),
            )
    return RssiVsDistanceResult(curves=curves, sensitivity_dbm=sensitivity_dbm)


def summarize(result: RssiVsDistanceResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    lines = []
    for power, separation in sorted(result.curves, key=lambda key: (key[1], key[0])):
        curve = result.curves[(power, separation)]
        lines.append(
            f"BT-tag {separation:.0f} ft, {power:4.0f} dBm: "
            f"RSSI {curve.rssi_dbm[0]:6.1f} dBm at {curve.distances_feet[0]:.0f} ft, "
            f"{curve.rssi_dbm[-1]:6.1f} dBm at {curve.distances_feet[-1]:.0f} ft, "
            f"range {curve.range_feet:.0f} ft"
        )
    lines.append("paper: ~90 ft of range at 20 dBm with the devices 1 ft apart")
    return lines


def metrics(result: RssiVsDistanceResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        f"range_ft_{power:g}dbm_{separation:g}ft": result.curves[(power, separation)].range_feet
        for power, separation in sorted(result.curves, key=lambda key: (key[1], key[0]))
    }


def plot(result: RssiVsDistanceResult) -> Figure:
    """Declarative figure: one RSSI curve per (separation, TX power)."""
    series = []
    x_low, x_high = np.inf, -np.inf
    for power, separation in sorted(result.curves, key=lambda key: (key[1], key[0])):
        curve = result.curves[(power, separation)]
        x_low = min(x_low, float(curve.distances_feet[0]))
        x_high = max(x_high, float(curve.distances_feet[-1]))
        series.append(
            Series(
                label=f"{separation:g} ft sep, {power:g} dBm",
                x=curve.distances_feet,
                y=curve.rssi_dbm,
            )
        )
    series.append(
        Series(
            label=f"sensitivity {result.sensitivity_dbm:g} dBm",
            x=np.array([x_low, x_high]),
            y=np.array([result.sensitivity_dbm, result.sensitivity_dbm]),
        )
    )
    return Figure(
        title="Fig. 10 — Wi-Fi RSSI vs distance",
        xlabel="Receiver distance (ft)",
        ylabel="RSSI (dBm)",
        series=tuple(series),
        caption="Higher Bluetooth TX power and a closer tag keep the backscattered Wi-Fi above sensitivity further out.",
    )


register(
    name="fig10",
    title="Fig. 10 — Wi-Fi RSSI vs distance and Bluetooth TX power",
    run=run,
    engines=_ENGINES,
    artifact="Fig. 10",
    fast_params={"step_feet": 10.0},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
