"""Fig. 10 — Wi-Fi RSSI of backscatter-generated packets vs distance.

The paper fixes the Bluetooth transmitter and the backscatter tag 1 ft (a)
or 3 ft (b) apart, moves the Wi-Fi receiver perpendicular to the midpoint
of that segment out to 90 ft, and records the RSSI of the 2 Mbps packets
for Bluetooth transmit powers of 0, 4, 10 and 20 dBm.

The reproduction uses the two-hop backscatter link budget with the Fig. 10
geometry; the expected qualitative findings (higher TX power → more range,
1 ft separation beats 3 ft, 20 dBm reaches ≈90 ft) are asserted by the
benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ble.devices import TX_POWER_LEVELS_DBM
from repro.channel.geometry import fig10_geometry
from repro.channel.link_budget import BackscatterLinkBudget

__all__ = ["RssiCurve", "RssiVsDistanceResult", "run"]


@dataclass(frozen=True)
class RssiCurve:
    """One curve of Fig. 10: RSSI vs receiver distance at one TX power.

    Attributes
    ----------
    tx_power_dbm:
        Bluetooth transmit power.
    bluetooth_to_tag_feet:
        Separation of the Bluetooth transmitter and the tag.
    distances_feet:
        Receiver offsets from the midpoint (the figure's x-axis).
    rssi_dbm:
        Predicted RSSI at each distance.
    range_feet:
        Furthest distance at which the RSSI stays above the receiver
        sensitivity used in the experiment.
    """

    tx_power_dbm: float
    bluetooth_to_tag_feet: float
    distances_feet: np.ndarray
    rssi_dbm: np.ndarray
    range_feet: float


@dataclass(frozen=True)
class RssiVsDistanceResult:
    """Both panels of Fig. 10 (1 ft and 3 ft separations)."""

    curves: dict[tuple[float, float], RssiCurve]
    sensitivity_dbm: float

    def curve(self, tx_power_dbm: float, separation_feet: float) -> RssiCurve:
        """Convenience accessor for one (power, separation) curve."""
        return self.curves[(tx_power_dbm, separation_feet)]


def run(
    *,
    tx_powers_dbm: tuple[float, ...] = TX_POWER_LEVELS_DBM,
    separations_feet: tuple[float, ...] = (1.0, 3.0),
    max_distance_feet: float = 90.0,
    step_feet: float = 2.0,
    sensitivity_dbm: float = -94.0,
    wifi_rate_mbps: float = 2.0,
) -> RssiVsDistanceResult:
    """Compute the Fig. 10 RSSI curves."""
    distances = np.arange(1.0, max_distance_feet + step_feet, step_feet)
    curves: dict[tuple[float, float], RssiCurve] = {}
    for separation in separations_feet:
        for power in tx_powers_dbm:
            budget = BackscatterLinkBudget(
                source_power_dbm=power, receiver_sensitivity_dbm=sensitivity_dbm
            )
            rssi = np.empty(distances.size)
            for index, offset in enumerate(distances):
                bluetooth, tag, receiver = fig10_geometry(separation, float(offset))
                rssi[index] = budget.evaluate(
                    bluetooth.distance_to(tag), tag.distance_to(receiver)
                ).rssi_dbm
            above = np.where(rssi >= sensitivity_dbm)[0]
            range_feet = float(distances[above[-1]]) if above.size else 0.0
            curves[(power, separation)] = RssiCurve(
                tx_power_dbm=power,
                bluetooth_to_tag_feet=separation,
                distances_feet=distances,
                rssi_dbm=rssi,
                range_feet=range_feet,
            )
    return RssiVsDistanceResult(curves=curves, sensitivity_dbm=sensitivity_dbm)
