"""Fig. 11 — packet error rate CDF of backscatter-generated Wi-Fi packets.

The paper transmits 200 unique sequence numbers in a loop at 2 and 11 Mbps
(payloads of 31 and 77 bytes so each packet fits in one advertisement) and
plots the CDF of the packet error rate observed across the whole range of
RSSI values seen in the deployment.  The headline findings: the two rates
have similar loss because both carry the same 1 Mbps preamble/header and
the payloads are short, and roughly 30 % of locations show PER > 0.3 at the
lowest RSSIs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import empirical_cdf, shadowed_backscatter_budget
from repro.api.registry import register, resolve_engine
from repro.channel.error_models import wifi_packet_error_rate
from repro.channel.geometry import feet_to_meters
from repro.mc.backend import resolve_engine_backend, to_numpy
from repro.mc.channel import backscatter_link_batch
from repro.plots.figure import Figure, Series

__all__ = ["PerCdfResult", "run", "summarize"]


@dataclass(frozen=True)
class PerCdfResult:
    """PER samples and CDFs for the two rates.

    Attributes
    ----------
    per_by_rate:
        Rate (Mbps) → array of PER values, one per simulated location.
    cdf_by_rate:
        Rate → (sorted PER values, cumulative fraction) pairs.
    median_per:
        Rate → median PER.
    mean_rate_gap:
        Mean absolute difference between the 2 and 11 Mbps PERs at the same
        locations (small = the two curves are similar, as in the paper).
    """

    per_by_rate: dict[float, np.ndarray]
    cdf_by_rate: dict[float, tuple[np.ndarray, np.ndarray]]
    median_per: dict[float, float]
    mean_rate_gap: float


def _per_scalar(budget, distances, rates_mbps, payload_bytes, num_packets, rng, xp):  # lint-ok: RL001 -- scalar engine is numpy-only by declaration
    """One-location-at-a-time loop, bit-identical to historical seeds."""
    per_by_rate = {rate: np.empty(distances.size) for rate in rates_mbps}
    for index, distance in enumerate(distances):
        link = budget.evaluate(feet_to_meters(1.0), feet_to_meters(float(distance)), rng=rng)
        for rate in rates_mbps:
            analytic = wifi_packet_error_rate(
                link.snr_db, rate_mbps=rate, payload_bytes=payload_bytes[rate]
            )
            losses = rng.random(num_packets) < analytic
            per_by_rate[rate][index] = float(np.mean(losses))
    return per_by_rate


def _per_batch(budget, distances, rates_mbps, payload_bytes, num_packets, rng, xp):
    """Whole-array link budgets and packet draws (≥10× faster)."""
    link = backscatter_link_batch(
        budget, feet_to_meters(1.0), feet_to_meters(distances), rng=rng, xp=xp
    )
    snr_db = to_numpy(link.snr_db)
    per_by_rate = {}
    for rate in rates_mbps:
        analytic = wifi_packet_error_rate(snr_db, rate_mbps=rate, payload_bytes=payload_bytes[rate])
        per_by_rate[rate] = rng.binomial(num_packets, analytic) / num_packets
    return per_by_rate


_ENGINES = {"scalar": _per_scalar, "batch": _per_batch}


def run(
    *,
    rates_mbps: tuple[float, ...] = (2.0, 11.0),
    payload_bytes: dict[float, int] | None = None,
    num_locations: int = 60,
    num_packets: int = 200,
    tx_power_dbm: float = 4.0,
    max_distance_feet: float = 60.0,
    seed: int = 11,
    engine: str = "scalar",
    backend: str | None = None,
) -> PerCdfResult:
    """Simulate the Fig. 11 PER CDF.

    Locations are drawn uniformly over the deployment range with log-normal
    shadowing so the full spread of RSSI values the paper reports is
    represented; at each location the analytic PER for both rates is
    evaluated and a 200-packet loop is simulated.

    ``engine`` selects the Monte-Carlo substrate: ``"scalar"`` (default)
    keeps the original one-location-at-a-time loop, bit-identical to
    historical seeds; ``"batch"`` evaluates every location's link budget and
    packet draws in whole-array :mod:`repro.mc` operations (≥10× faster) on
    any registered array ``backend``.  The two engines draw from the RNG in
    different orders, so their results agree only up to Monte-Carlo noise;
    across backends the batch engine is float-identical.
    """
    measure = resolve_engine("fig11", engine, _ENGINES)
    xp = resolve_engine_backend("fig11", engine, backend)
    if payload_bytes is None:
        payload_bytes = {2.0: 31, 11.0: 77}
    rng = np.random.default_rng(seed)
    budget = shadowed_backscatter_budget(tx_power_dbm, shadowing_sigma_db=4.0)

    distances = rng.uniform(3.0, max_distance_feet, num_locations)
    per_by_rate = measure(budget, distances, rates_mbps, payload_bytes, num_packets, rng, xp)

    cdf_by_rate: dict[float, tuple[np.ndarray, np.ndarray]] = {}
    median_per: dict[float, float] = {}
    for rate in rates_mbps:
        cdf_by_rate[rate] = empirical_cdf(per_by_rate[rate])
        median_per[rate] = float(np.median(cdf_by_rate[rate][0]))

    gaps = np.abs(per_by_rate[rates_mbps[0]] - per_by_rate[rates_mbps[-1]])
    return PerCdfResult(
        per_by_rate=per_by_rate,
        cdf_by_rate=cdf_by_rate,
        median_per=median_per,
        mean_rate_gap=float(np.mean(gaps)),
    )


def summarize(result: PerCdfResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    medians = ", ".join(f"{rate:g} Mbps {value:.3f}" for rate, value in result.median_per.items())
    return [
        f"median PER: {medians}",
        f"mean |PER gap| across locations: {result.mean_rate_gap:.3f}",
        "paper: the two rates show similar loss; PER exceeds 0.3 at the lowest RSSIs",
    ]


def metrics(result: PerCdfResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    out = {f"median_per_{rate:g}mbps": value for rate, value in result.median_per.items()}
    out["mean_rate_gap"] = result.mean_rate_gap
    return out


def plot(result: PerCdfResult) -> Figure:
    """Declarative figure: one empirical PER CDF per Wi-Fi rate."""
    return Figure(
        title="Fig. 11 — Wi-Fi packet error rate CDF",
        xlabel="Packet error rate",
        ylabel="CDF",
        kind="cdf",
        series=tuple(
            Series(label=f"{rate:g} Mbps", x=values, y=fractions)
            for rate, (values, fractions) in result.cdf_by_rate.items()
        ),
        caption="Both rates show similar loss (shared 1 Mbps preamble); the worst locations exceed PER 0.3.",
    )


register(
    name="fig11",
    title="Fig. 11 — Wi-Fi packet error rate CDF (2 vs 11 Mbps)",
    run=run,
    engines=_ENGINES,
    artifact="Fig. 11",
    fast_params={"num_locations": 15, "num_packets": 50},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
