"""Fig. 12 — effect of backscatter on a concurrent Wi-Fi (iperf) flow.

An AP ↔ phone iperf TCP flow runs on channel 6 while the backscatter device
generates 2 Mbps packets (32-byte payload) whose mirror copy — only present
for double-sideband designs — lands on channel 6.  The paper sweeps the
backscatter packet rate over 50, 650 and 1000 packets/s and compares the
flow's throughput against a no-backscatter baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register
from repro.core.coexistence import CoexistenceResult, CoexistenceSimulator
from repro.plots.figure import Figure, Series

__all__ = ["CoexistenceFigureResult", "run", "summarize"]


@dataclass(frozen=True)
class CoexistenceFigureResult:
    """Throughput bars of Fig. 12.

    Attributes
    ----------
    baseline_mbps:
        Throughput with no backscatter device present.
    results:
        (scenario, rate) → :class:`CoexistenceResult`.
    rates_pps:
        Backscatter packet rates swept.
    """

    baseline_mbps: float
    results: dict[tuple[str, float], CoexistenceResult]
    rates_pps: tuple[float, ...]

    def throughput(self, scenario: str, rate_pps: float) -> float:
        """Convenience accessor for one bar of the figure."""
        return self.results[(scenario, rate_pps)].iperf_throughput_mbps


def run(
    *,
    rates_pps: tuple[float, ...] = (50.0, 650.0, 1000.0),
    baseline_throughput_mbps: float = 20.0,
) -> CoexistenceFigureResult:
    """Evaluate the Fig. 12 scenarios."""
    simulator = CoexistenceSimulator(baseline_throughput_mbps=baseline_throughput_mbps)
    results: dict[tuple[str, float], CoexistenceResult] = {}
    for rate in rates_pps:
        for scenario in ("baseline", "single_sideband", "double_sideband"):
            results[(scenario, rate)] = simulator.evaluate(scenario, rate)
    return CoexistenceFigureResult(
        baseline_mbps=baseline_throughput_mbps,
        results=results,
        rates_pps=tuple(rates_pps),
    )


def summarize(result: CoexistenceFigureResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    lines = [
        f"{rate:6.0f} pkt/s: baseline {result.throughput('baseline', rate):5.1f} Mbps, "
        f"SSB {result.throughput('single_sideband', rate):5.1f} Mbps, "
        f"DSB {result.throughput('double_sideband', rate):5.1f} Mbps"
        for rate in result.rates_pps
    ]
    lines.append("paper: negligible impact at 50 pkt/s; DSB collapses the flow at 650-1000 pkt/s")
    return lines


_SCENARIOS = ("baseline", "single_sideband", "double_sideband")


def metrics(result: CoexistenceFigureResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    top_rate = max(result.rates_pps)
    out = {"baseline_mbps": result.baseline_mbps}
    for scenario in _SCENARIOS:
        out[f"throughput_mbps_{scenario}_{top_rate:g}pps"] = result.throughput(scenario, top_rate)
    return out


def plot(result: CoexistenceFigureResult) -> Figure:
    """Declarative figure: grouped throughput bars per backscatter rate."""
    return Figure(
        title="Fig. 12 — iperf throughput under backscatter interference",
        xlabel="Backscatter packet rate",
        ylabel="Throughput (Mbps)",
        kind="bar",
        categories=tuple(f"{rate:g} pps" for rate in result.rates_pps),
        series=tuple(
            Series(
                label=scenario.replace("_", " "),
                y=[result.throughput(scenario, rate) for rate in result.rates_pps],
            )
            for scenario in _SCENARIOS
        ),
        caption="SSB backscatter coexists with the iperf flow; the DSB mirror collapses it at high rates.",
    )


register(
    name="fig12",
    title="Fig. 12 — iperf throughput under backscatter interference",
    run=run,
    engines={"scalar": run},
    artifact="Fig. 12",
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
