"""Fig. 13 — BER of the 802.11g → low-power receiver downlink vs distance.

A Wi-Fi device transmits 36 Mbps OFDM packets whose payload was crafted
(with a known scrambler seed) to AM-encode a repeating bit pattern; the
tag's peak-detector receiver is moved away and the bit error rate recorded.
The paper reports BER below 0.01 out to ≈18 ft with an off-the-shelf
receiver whose sensitivity is −32 dBm at 160 kbps, degrading quickly
beyond that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import distance_grid, furthest_reach
from repro.api.registry import register, resolve_engine
from repro.channel.geometry import feet_to_meters
from repro.core.downlink import InterscatterDownlink
from repro.plots.figure import Figure, Series

__all__ = ["DownlinkBerResult", "run", "summarize"]


@dataclass(frozen=True)
class DownlinkBerResult:
    """BER vs distance series of Fig. 13.

    Attributes
    ----------
    distances_feet:
        Wi-Fi-transmitter → tag distances.
    ber:
        Bit error rate at each distance (analytic model + Monte-Carlo).
    rssi_dbm:
        Received power at the tag at each distance.
    range_below_1pct_feet:
        Furthest distance with BER < 0.01.
    """

    distances_feet: np.ndarray
    ber: np.ndarray
    rssi_dbm: np.ndarray
    range_below_1pct_feet: float


def _ber_scalar(downlink, distances, tx_power_dbm, message_bits, rng):
    """Per-distance simulate_link loop, bit-identical to historical seeds."""
    ber = np.empty(distances.size)
    rssi = np.empty(distances.size)
    bits = rng.integers(0, 2, message_bits).astype(np.uint8)
    for index, distance in enumerate(distances):
        result = downlink.simulate_link(
            bits, feet_to_meters(float(distance)), tx_power_dbm=tx_power_dbm, rng=rng
        )
        ber[index] = result.bit_error_rate
        rssi[index] = result.rssi_dbm if result.rssi_dbm is not None else np.nan
    return ber, rssi


def _ber_batch(downlink, distances, tx_power_dbm, message_bits, rng):
    """One vectorised binomial draw over the analytic BER curve."""
    rng.integers(0, 2, message_bits)  # consume the message draw like scalar
    analytic = np.empty(distances.size)
    rssi = np.empty(distances.size)
    for index, distance in enumerate(distances):
        analytic[index], rssi[index] = downlink.link_bit_error_rate(
            feet_to_meters(float(distance)), tx_power_dbm=tx_power_dbm
        )
    ber = rng.binomial(message_bits, analytic, size=distances.size) / message_bits
    return ber, rssi


_ENGINES = {"scalar": _ber_scalar, "batch": _ber_batch}


def run(
    *,
    max_distance_feet: float = 26.0,
    step_feet: float = 1.0,
    tx_power_dbm: float = 20.0,
    message_bits: int = 512,
    seed: int = 13,
    engine: str = "scalar",
) -> DownlinkBerResult:
    """Evaluate the downlink BER across distance.

    ``engine="scalar"`` (default) keeps the original per-distance
    :meth:`InterscatterDownlink.simulate_link` loop, bit-identical to
    historical seeds; ``"batch"`` draws every distance's bit errors as one
    vectorised binomial over the analytic BER curve.
    """
    measure = resolve_engine("fig13", engine, _ENGINES)
    rng = np.random.default_rng(seed)
    downlink = InterscatterDownlink(rng=rng)
    distances = distance_grid(1.0, max_distance_feet, step_feet)
    ber, rssi = measure(downlink, distances, tx_power_dbm, message_bits, rng)
    return DownlinkBerResult(
        distances_feet=distances,
        ber=ber,
        rssi_dbm=rssi,
        range_below_1pct_feet=furthest_reach(distances, ber, 0.01, below=True, strict=True),
    )


def summarize(result: DownlinkBerResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    return [
        f"BER < 1% out to {result.range_below_1pct_feet:.0f} ft, "
        f"rising to {result.ber[-1]:.2f} at {result.distances_feet[-1]:.0f} ft",
        "paper: BER below 0.01 out to ~18 ft, degrading quickly beyond",
    ]


def metrics(result: DownlinkBerResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        "range_below_1pct_feet": result.range_below_1pct_feet,
        "max_ber": float(np.max(result.ber)),
    }


def plot(result: DownlinkBerResult) -> Figure:
    """Declarative figure: downlink BER against distance with the 1% line."""
    edges = np.array([float(result.distances_feet[0]), float(result.distances_feet[-1])])
    return Figure(
        title="Fig. 13 — downlink BER vs distance",
        xlabel="Wi-Fi transmitter to tag distance (ft)",
        ylabel="Bit error rate",
        series=(
            Series(label="measured BER", x=result.distances_feet, y=result.ber),
            Series(label="1% threshold", x=edges, y=np.array([0.01, 0.01])),
        ),
        caption="The AM downlink stays below 1% BER out to roughly the paper's ~18 ft, degrading quickly beyond.",
    )


register(
    name="fig13",
    title="Fig. 13 — downlink BER vs distance (802.11g AM → peak detector)",
    run=run,
    engines=_ENGINES,
    artifact="Fig. 13",
    fast_params={"step_feet": 2.0, "message_bits": 256},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
