"""Fig. 14 — CDF of ZigBee RSSI for backscatter-generated 802.15.4 packets.

The paper backscatters a TI CC2650's advertisements on BLE channel 38 into
ZigBee channel 14 (2420 MHz) and receives the packets with a commodity TI
CC2531 placed at five locations up to 15 ft from the tag, plotting the CDF
of the reported RSSI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import empirical_cdf, shadowed_backscatter_budget
from repro.api.registry import register, resolve_engine
from repro.channel.geometry import feet_to_meters
from repro.mc.backend import resolve_engine_backend, to_numpy
from repro.mc.channel import backscatter_link_batch
from repro.plots.figure import Figure, Series

__all__ = ["ZigbeeRssiResult", "run", "summarize"]


@dataclass(frozen=True)
class ZigbeeRssiResult:
    """The ZigBee RSSI samples and their CDF.

    Attributes
    ----------
    locations_feet:
        Tag → receiver distances of the measurement locations.
    rssi_samples_dbm:
        All RSSI samples (several packets per location, with shadowing).
    cdf:
        (sorted RSSI values, cumulative fraction).
    median_rssi_dbm:
        Median of the samples.
    detectable_fraction:
        Fraction of samples above the CC2531's sensitivity (≈−97 dBm, and
        the paper notes ZigBee's noise sensitivity is better than Wi-Fi's).
    """

    locations_feet: np.ndarray
    rssi_samples_dbm: np.ndarray
    cdf: tuple[np.ndarray, np.ndarray]
    median_rssi_dbm: float
    detectable_fraction: float


def _sample_scalar(budget, locations_feet, bluetooth_to_tag_feet, packets_per_location, rng, xp):  # lint-ok: RL001 -- scalar engine is numpy-only by declaration
    """Per-packet loop, bit-identical to historical seeds (numpy-only)."""
    samples: list[float] = []
    for distance in locations_feet:
        for _ in range(packets_per_location):
            link = budget.evaluate(
                feet_to_meters(bluetooth_to_tag_feet), feet_to_meters(float(distance)), rng=rng
            )
            samples.append(link.rssi_dbm)
    return np.array(samples)


def _sample_batch(budget, locations_feet, bluetooth_to_tag_feet, packets_per_location, rng, xp):
    """Every (location, packet) link realisation in one vectorised call."""
    distances = np.repeat(np.asarray(locations_feet, dtype=float), packets_per_location)  # lint-ok: RL001 -- host-side grid for the numpy RNG hatch
    link = backscatter_link_batch(
        budget, feet_to_meters(bluetooth_to_tag_feet), feet_to_meters(distances), rng=rng, xp=xp
    )
    return to_numpy(link.rssi_dbm)


_ENGINES = {"scalar": _sample_scalar, "batch": _sample_batch}


def run(
    *,
    locations_feet: tuple[float, ...] = (3.0, 6.0, 9.0, 12.0, 15.0),
    bluetooth_to_tag_feet: float = 2.0,
    tx_power_dbm: float = 0.0,
    packets_per_location: int = 40,
    receiver_sensitivity_dbm: float = -97.0,
    seed: int = 14,
    engine: str = "scalar",
    backend: str | None = None,
) -> ZigbeeRssiResult:
    """Simulate the Fig. 14 RSSI CDF.

    ``engine="scalar"`` (default) keeps the original per-packet loop,
    bit-identical to historical seeds; ``"batch"`` evaluates every
    (location, packet) link realisation in one vectorised :mod:`repro.mc`
    call, on any registered array ``backend`` (random draws stay on the
    numpy generator, so every backend is float-identical).
    """
    sample = resolve_engine("fig14", engine, _ENGINES)
    xp = resolve_engine_backend("fig14", engine, backend)
    rng = np.random.default_rng(seed)
    budget = shadowed_backscatter_budget(
        tx_power_dbm,
        shadowing_sigma_db=3.0,
        noise_bandwidth_hz=2e6,
        receiver_sensitivity_dbm=receiver_sensitivity_dbm,
    )
    rssi = sample(budget, locations_feet, bluetooth_to_tag_feet, packets_per_location, rng, xp)
    return ZigbeeRssiResult(
        locations_feet=np.array(locations_feet),
        rssi_samples_dbm=rssi,
        cdf=empirical_cdf(rssi),
        median_rssi_dbm=float(np.median(rssi)),
        detectable_fraction=float(np.mean(rssi >= receiver_sensitivity_dbm)),
    )


def summarize(result: ZigbeeRssiResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    values, _ = result.cdf
    return [
        f"RSSI spans {values[0]:.1f} to {values[-1]:.1f} dBm, median {result.median_rssi_dbm:.1f} dBm, "
        f"{100 * result.detectable_fraction:.0f}% of packets above CC2531 sensitivity",
        "paper: RSSI between roughly -95 and -55 dBm over five locations up to 15 ft",
    ]


def metrics(result: ZigbeeRssiResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        "median_rssi_dbm": result.median_rssi_dbm,
        "detectable_fraction": result.detectable_fraction,
    }


def plot(result: ZigbeeRssiResult) -> Figure:
    """Declarative figure: the empirical RSSI CDF across all samples."""
    values, fractions = result.cdf
    return Figure(
        title="Fig. 14 — ZigBee RSSI CDF",
        xlabel="RSSI (dBm)",
        ylabel="CDF",
        kind="cdf",
        series=(Series(label="all locations", x=values, y=fractions),),
        caption="Backscatter-generated 802.15.4 packets span roughly -95 to -55 dBm across the deployment.",
    )


register(
    name="fig14",
    title="Fig. 14 — ZigBee RSSI CDF for backscatter-generated 802.15.4 packets",
    run=run,
    engines=_ENGINES,
    artifact="Fig. 14",
    fast_params={"packets_per_location": 10},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
