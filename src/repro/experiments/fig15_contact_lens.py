"""Fig. 15 — Wi-Fi RSSI from the contact-lens antenna prototype.

The lens antenna (1 cm loop in PDMS) is immersed in contact-lens solution,
the Bluetooth source sits 12 inches away, and the Wi-Fi receiver distance
is swept; RSSI is recorded for 10 and 20 dBm Bluetooth transmit powers.
The paper's headline: more than 24 inches of range to a commodity receiver
despite the tiny antenna and the liquid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import distance_grid, furthest_reach
from repro.api.registry import register
from repro.apps.contact_lens import SmartContactLens
from repro.plots.figure import Figure, Series

__all__ = ["ContactLensRssiResult", "run", "summarize"]


@dataclass(frozen=True)
class ContactLensRssiResult:
    """RSSI-vs-distance curves of Fig. 15.

    Attributes
    ----------
    distances_inches:
        Receiver distances (x-axis of the figure).
    rssi_by_power:
        TX power (dBm) → RSSI array.
    range_by_power:
        TX power → furthest distance above the receiver sensitivity.
    sensitivity_dbm:
        Receiver sensitivity used for the range calculation.
    """

    distances_inches: np.ndarray
    rssi_by_power: dict[float, np.ndarray]
    range_by_power: dict[float, float]
    sensitivity_dbm: float


def run(
    *,
    tx_powers_dbm: tuple[float, ...] = (10.0, 20.0),
    watch_distance_inches: float = 12.0,
    max_distance_inches: float = 44.0,
    step_inches: float = 2.0,
    sensitivity_dbm: float = -86.0,
) -> ContactLensRssiResult:
    """Evaluate the contact-lens RSSI curves."""
    distances = distance_grid(4.0, max_distance_inches, step_inches)
    rssi_by_power: dict[float, np.ndarray] = {}
    range_by_power: dict[float, float] = {}
    for power in tx_powers_dbm:
        lens = SmartContactLens(
            watch_power_dbm=power, watch_distance_inches=watch_distance_inches
        )
        rssi = lens.rssi_sweep(distances)
        rssi_by_power[power] = rssi
        range_by_power[power] = furthest_reach(distances, rssi, sensitivity_dbm)
    return ContactLensRssiResult(
        distances_inches=distances,
        rssi_by_power=rssi_by_power,
        range_by_power=range_by_power,
        sensitivity_dbm=sensitivity_dbm,
    )


def summarize(result: ContactLensRssiResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    lines = [
        f"{power:4.0f} dBm Bluetooth: usable range {reach:.0f} inches"
        for power, reach in result.range_by_power.items()
    ]
    lines.append("paper: more than 24 inches of range; RSSI -72 to -86 dBm over the sweep")
    return lines


def metrics(result: ContactLensRssiResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {f"range_in_{power:g}dbm": reach for power, reach in result.range_by_power.items()}


def plot(result: ContactLensRssiResult) -> Figure:
    """Declarative figure: one RSSI curve per Bluetooth TX power."""
    edges = np.array([float(result.distances_inches[0]), float(result.distances_inches[-1])])
    series = [
        Series(label=f"{power:g} dBm Bluetooth", x=result.distances_inches, y=rssi)
        for power, rssi in result.rssi_by_power.items()
    ]
    series.append(
        Series(
            label=f"sensitivity {result.sensitivity_dbm:g} dBm",
            x=edges,
            y=np.array([result.sensitivity_dbm, result.sensitivity_dbm]),
        )
    )
    return Figure(
        title="Fig. 15 — smart contact lens RSSI vs distance",
        xlabel="Receiver distance (inches)",
        ylabel="RSSI (dBm)",
        series=tuple(series),
        caption="The lens antenna through eye tissue still delivers tens of inches of usable range.",
    )


register(
    name="fig15",
    title="Fig. 15 — smart contact lens RSSI vs distance",
    run=run,
    engines={"scalar": run},
    artifact="Fig. 15",
    fast_params={"step_inches": 4.0},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
