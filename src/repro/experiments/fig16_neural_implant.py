"""Fig. 16 — Wi-Fi RSSI from the implanted neural-recorder antenna.

The implant antenna (4 cm loop in PDMS) sits inside a 0.75-inch slab of
muscle tissue, the Bluetooth source 3 inches from the tissue surface, and
the Wi-Fi receiver distance is swept; RSSI is recorded for 10 and 20 dBm
Bluetooth powers.  The paper emphasises that the achieved range (tens of
inches) comfortably exceeds the 1-2 cm of prior dedicated-reader implants
and works with phone-class 10 dBm transmitters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import distance_grid, furthest_reach
from repro.api.registry import register
from repro.apps.neural_implant import NeuralImplant
from repro.plots.figure import Figure, Series

__all__ = ["NeuralImplantRssiResult", "run", "summarize"]


@dataclass(frozen=True)
class NeuralImplantRssiResult:
    """RSSI-vs-distance curves of Fig. 16.

    Attributes
    ----------
    distances_inches:
        Receiver distances (x-axis of the figure).
    rssi_by_power:
        TX power (dBm) → RSSI array.
    range_by_power:
        TX power → furthest distance above the receiver sensitivity.
    sensitivity_dbm:
        Receiver sensitivity used for the range calculation.
    """

    distances_inches: np.ndarray
    rssi_by_power: dict[float, np.ndarray]
    range_by_power: dict[float, float]
    sensitivity_dbm: float


def run(
    *,
    tx_powers_dbm: tuple[float, ...] = (10.0, 20.0),
    bluetooth_distance_inches: float = 3.0,
    max_distance_inches: float = 80.0,
    step_inches: float = 4.0,
    sensitivity_dbm: float = -92.0,
) -> NeuralImplantRssiResult:
    """Evaluate the neural-implant RSSI curves."""
    distances = distance_grid(4.0, max_distance_inches, step_inches)
    rssi_by_power: dict[float, np.ndarray] = {}
    range_by_power: dict[float, float] = {}
    for power in tx_powers_dbm:
        implant = NeuralImplant(
            bluetooth_power_dbm=power, bluetooth_distance_inches=bluetooth_distance_inches
        )
        rssi = implant.rssi_sweep(distances)
        rssi_by_power[power] = rssi
        range_by_power[power] = furthest_reach(distances, rssi, sensitivity_dbm)
    return NeuralImplantRssiResult(
        distances_inches=distances,
        rssi_by_power=rssi_by_power,
        range_by_power=range_by_power,
        sensitivity_dbm=sensitivity_dbm,
    )


def summarize(result: NeuralImplantRssiResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    lines = [
        f"{power:4.0f} dBm Bluetooth: usable range {reach:.0f} inches"
        for power, reach in result.range_by_power.items()
    ]
    lines.append("paper: tens of inches of range through 0.75 in of tissue, far beyond prior 1-2 cm readers")
    return lines


def metrics(result: NeuralImplantRssiResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {f"range_in_{power:g}dbm": reach for power, reach in result.range_by_power.items()}


def plot(result: NeuralImplantRssiResult) -> Figure:
    """Declarative figure: one RSSI curve per Bluetooth TX power."""
    edges = np.array([float(result.distances_inches[0]), float(result.distances_inches[-1])])
    series = [
        Series(label=f"{power:g} dBm Bluetooth", x=result.distances_inches, y=rssi)
        for power, rssi in result.rssi_by_power.items()
    ]
    series.append(
        Series(
            label=f"sensitivity {result.sensitivity_dbm:g} dBm",
            x=edges,
            y=np.array([result.sensitivity_dbm, result.sensitivity_dbm]),
        )
    )
    return Figure(
        title="Fig. 16 — implanted neural recorder RSSI vs distance",
        xlabel="Receiver distance (inches)",
        ylabel="RSSI (dBm)",
        series=tuple(series),
        caption="Through 0.75 in of tissue the implant reaches far beyond prior 1-2 cm inductive readers.",
    )


register(
    name="fig16",
    title="Fig. 16 — implanted neural recorder RSSI vs distance",
    run=run,
    engines={"scalar": run},
    artifact="Fig. 16",
    fast_params={"step_inches": 8.0},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
