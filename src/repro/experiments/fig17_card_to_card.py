"""Fig. 17 — BER of card-to-card communication powered by a smartphone.

One credit-card prototype transmits an 18-bit payload at 100 kbps to the
other by backscattering the single tone emitted by a 10 dBm Bluetooth
phone 3 inches away; the cards' separation is swept and the bit error rate
recorded.  The paper's headline: card-to-card communication works out to
≈30 inches with phone-class transmit power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.placement import distance_grid, furthest_reach
from repro.api.registry import register, resolve_engine
from repro.apps.card_to_card import CARD_PAYLOAD_BITS, CardToCardLink
from repro.plots.figure import Figure, Series

__all__ = ["CardToCardBerResult", "run", "summarize"]


@dataclass(frozen=True)
class CardToCardBerResult:
    """BER-vs-separation series of Fig. 17.

    Attributes
    ----------
    separations_inches:
        Card separations (the figure's x-axis).
    analytic_ber:
        Model BER at each separation.
    measured_ber:
        Monte-Carlo BER from repeated 18-bit messages at each separation.
    usable_range_inches:
        Furthest separation with BER below 20 %.
    """

    separations_inches: np.ndarray
    analytic_ber: np.ndarray
    measured_ber: np.ndarray
    usable_range_inches: float


def _ber_scalar(link, separations, analytic, messages_per_point, rng):
    """Every 18-bit message through the link one at a time (historical seeds)."""
    measured = np.empty(separations.size)
    for index, separation in enumerate(separations):
        errors = 0
        bits = 0
        for _ in range(messages_per_point):
            result = link.send_message(card_separation_inches=float(separation), rng=rng)
            errors += result.bit_errors
            bits += result.sent_bits.size
        measured[index] = errors / bits
    return measured


def _ber_batch(link, separations, analytic, messages_per_point, rng):
    """Each separation's total bit-error count as one binomial draw."""
    total_bits = messages_per_point * CARD_PAYLOAD_BITS
    return rng.binomial(total_bits, analytic, size=separations.size) / total_bits


_ENGINES = {"scalar": _ber_scalar, "batch": _ber_batch}


def run(
    *,
    phone_power_dbm: float = 10.0,
    phone_to_transmitter_inches: float = 3.0,
    max_separation_inches: float = 34.0,
    step_inches: float = 2.0,
    messages_per_point: int = 200,
    seed: int = 17,
    engine: str = "scalar",
) -> CardToCardBerResult:
    """Evaluate the card-to-card BER sweep.

    ``engine="scalar"`` (default) sends every 18-bit message through the
    link object one at a time, bit-identical to historical seeds;
    ``"batch"`` draws each separation's total bit-error count as one
    binomial over the analytic BER curve.  The engines consume the RNG in
    different orders, so they agree up to Monte-Carlo noise.
    """
    measure = resolve_engine("fig17", engine, _ENGINES)
    rng = np.random.default_rng(seed)
    link = CardToCardLink(
        phone_power_dbm=phone_power_dbm,
        phone_to_transmitter_inches=phone_to_transmitter_inches,
        rng=rng,
    )
    separations = distance_grid(2.0, max_separation_inches, step_inches)
    analytic = link.ber_sweep(separations)
    measured = measure(link, separations, analytic, messages_per_point, rng)
    return CardToCardBerResult(
        separations_inches=separations,
        analytic_ber=analytic,
        measured_ber=measured,
        usable_range_inches=furthest_reach(separations, measured, 0.2, below=True),
    )


def summarize(result: CardToCardBerResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    return [
        f"usable range (BER < 20%): {result.usable_range_inches:.0f} inches, "
        f"BER {result.measured_ber[0]:.3f} at {result.separations_inches[0]:.0f} in, "
        f"{result.measured_ber[-1]:.2f} at {result.separations_inches[-1]:.0f} in",
        "paper: card-to-card communication works out to ~30 inches with phone-class power",
    ]


def metrics(result: CardToCardBerResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    return {
        "usable_range_inches": result.usable_range_inches,
        "mean_measured_ber": float(np.mean(result.measured_ber)),
    }


def plot(result: CardToCardBerResult) -> Figure:
    """Declarative figure: analytic vs Monte-Carlo BER against separation."""
    return Figure(
        title="Fig. 17 — card-to-card BER vs separation",
        xlabel="Card separation (inches)",
        ylabel="Bit error rate",
        series=(
            Series(label="analytic model", x=result.separations_inches, y=result.analytic_ber),
            Series(label="Monte-Carlo", x=result.separations_inches, y=result.measured_ber),
        ),
        caption="Card-to-card links stay usable (BER < 20%) out to roughly the paper's ~30 inches.",
    )


register(
    name="fig17",
    title="Fig. 17 — card-to-card BER vs separation",
    run=run,
    engines=_ENGINES,
    artifact="Fig. 17",
    fast_params={"messages_per_point": 20, "step_inches": 4.0},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
