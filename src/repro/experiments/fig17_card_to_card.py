"""Fig. 17 — BER of card-to-card communication powered by a smartphone.

One credit-card prototype transmits an 18-bit payload at 100 kbps to the
other by backscattering the single tone emitted by a 10 dBm Bluetooth
phone 3 inches away; the cards' separation is swept and the bit error rate
recorded.  The paper's headline: card-to-card communication works out to
≈30 inches with phone-class transmit power.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.card_to_card import CardToCardLink

__all__ = ["CardToCardBerResult", "run"]


@dataclass(frozen=True)
class CardToCardBerResult:
    """BER-vs-separation series of Fig. 17.

    Attributes
    ----------
    separations_inches:
        Card separations (the figure's x-axis).
    analytic_ber:
        Model BER at each separation.
    measured_ber:
        Monte-Carlo BER from repeated 18-bit messages at each separation.
    usable_range_inches:
        Furthest separation with BER below 20 %.
    """

    separations_inches: np.ndarray
    analytic_ber: np.ndarray
    measured_ber: np.ndarray
    usable_range_inches: float


def run(
    *,
    phone_power_dbm: float = 10.0,
    phone_to_transmitter_inches: float = 3.0,
    max_separation_inches: float = 34.0,
    step_inches: float = 2.0,
    messages_per_point: int = 200,
    seed: int = 17,
) -> CardToCardBerResult:
    """Evaluate the card-to-card BER sweep."""
    rng = np.random.default_rng(seed)
    link = CardToCardLink(
        phone_power_dbm=phone_power_dbm,
        phone_to_transmitter_inches=phone_to_transmitter_inches,
        rng=rng,
    )
    separations = np.arange(2.0, max_separation_inches + step_inches, step_inches)
    analytic = link.ber_sweep(separations)
    measured = np.empty(separations.size)
    for index, separation in enumerate(separations):
        errors = 0
        bits = 0
        for _ in range(messages_per_point):
            result = link.send_message(card_separation_inches=float(separation), rng=rng)
            errors += result.bit_errors
            bits += result.sent_bits.size
        measured[index] = errors / bits
    usable = np.where(measured <= 0.2)[0]
    usable_range = float(separations[usable[-1]]) if usable.size else 0.0
    return CardToCardBerResult(
        separations_inches=separations,
        analytic_ber=analytic,
        measured_ber=measured,
        usable_range_inches=usable_range,
    )
