"""MAC density — delivery ratio vs device density on the epoch engine.

The mac_scaling sweep stops at a few hundred devices because the
continuous-time heap engine resolves every transmission individually.
This driver rides the epoch-batched engine of
:mod:`repro.netsim.batched` instead, so the density axis extends into the
thousands-of-devices regime the interscatter applications imply (a
stadium of payment cards, a ward of implants) while a single sweep stays
interactive.

Beyond raw density it exposes the contention-realism knobs of
:class:`repro.netsim.batched.EpochMacParams` as sweepable parameters:
imperfect CCA detection probability, the exponential-backoff retry
ladder with its abort counter, and a per-device duty-cycle limit.  The
headline figure is the delivery-ratio-vs-density curve per MAC policy —
the batched analogue of the classic offered-load/throughput collapse.

``engine="reference"`` runs the same epoch contract through the scalar
oracle of the differential tests, so small densities can be cross-checked
bit-for-bit against the vectorised engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register, resolve_engine
from repro.netsim.batched import BatchedFleetSimulator, EpochReferenceSimulator
from repro.netsim.fleet import FleetScenario
from repro.plots.figure import Figure, Series

__all__ = ["MacDensityResult", "run", "summarize", "DEFAULT_DENSITIES", "DEFAULT_MACS"]

#: Device densities swept by default (devices sharing one carrier).
DEFAULT_DENSITIES = (25, 50, 100, 200, 400, 800, 1600)

#: MAC policies compared by default.
DEFAULT_MACS = ("aloha", "slotted_aloha", "csma", "tdma")


@dataclass(frozen=True)
class MacDensityResult:
    """Series of the density sweep.

    Attributes
    ----------
    densities:
        The swept fleet sizes (x-axis).
    macs:
        Policy names, in sweep order.
    profile / period_s / duration_s / seed:
        Scenario parameters shared by every run.
    duty_cycle / cca_reliability / max_attempts:
        Contention-realism knobs forwarded to every epoch MAC.
    delivery_ratio / throughput_bps / attempt_per / utilization:
        Policy name → array over densities.
    """

    densities: np.ndarray
    macs: tuple[str, ...]
    profile: str
    period_s: float
    duration_s: float
    seed: int
    duty_cycle: float
    cca_reliability: float
    max_attempts: int
    delivery_ratio: dict[str, np.ndarray]
    throughput_bps: dict[str, np.ndarray]
    attempt_per: dict[str, np.ndarray]
    utilization: dict[str, np.ndarray]


def _simulate_batched(scenario: FleetScenario):
    """Vectorised epoch engine (per-device MAC state in numpy arrays)."""
    return BatchedFleetSimulator(scenario).run().aggregate()


def _simulate_reference(scenario: FleetScenario):
    """Scalar epoch oracle — same contract, one device at a time."""
    return EpochReferenceSimulator(scenario).run().aggregate()


_ENGINES = {"batched": _simulate_batched, "reference": _simulate_reference}


def run(
    *,
    densities: tuple[int, ...] = DEFAULT_DENSITIES,
    macs: tuple[str, ...] = DEFAULT_MACS,
    profile: str = "contact_lens",
    period_s: float = 0.25,
    duration_s: float = 10.0,
    seed: int = 2016,
    duty_cycle: float = 1.0,
    cca_reliability: float = 1.0,
    max_attempts: int = 8,
    engine: str = "batched",
) -> MacDensityResult:
    """Sweep device density × MAC policy on the epoch-batched engine.

    The default contact-lens interval keeps the channel unsaturated until
    several hundred devices, so the full default sweep shows each policy's
    knee.  ``duty_cycle``, ``cca_reliability`` and ``max_attempts`` are
    forwarded to every MAC via ``mac_params`` — see
    :class:`repro.netsim.batched.EpochMacParams` for their semantics.
    """
    simulate = resolve_engine("mac_density", engine, _ENGINES)
    series: dict[str, dict[str, list[float]]] = {
        metric: {mac: [] for mac in macs}
        for metric in ("delivery_ratio", "throughput_bps", "attempt_per", "utilization")
    }
    for mac in macs:
        mac_params = {"duty_cycle": duty_cycle, "max_attempts": max_attempts}
        if mac == "csma":  # imperfect carrier sense is a CSMA-only knob
            mac_params["cca_reliability"] = cca_reliability
        for density in densities:
            scenario = FleetScenario(
                profile=profile,
                num_devices=density,
                mac=mac,
                duration_s=duration_s,
                period_s=period_s,
                seed=seed,
                engine=engine,
                mac_params=dict(mac_params),
            )
            aggregate = simulate(scenario)
            series["delivery_ratio"][mac].append(aggregate.delivery_ratio)
            series["throughput_bps"][mac].append(aggregate.throughput_bps)
            series["attempt_per"][mac].append(aggregate.attempt_per)
            series["utilization"][mac].append(aggregate.utilization)
    return MacDensityResult(
        densities=np.array(densities, dtype=int),
        macs=tuple(macs),
        profile=profile,
        period_s=period_s,
        duration_s=duration_s,
        seed=seed,
        duty_cycle=duty_cycle,
        cca_reliability=cca_reliability,
        max_attempts=max_attempts,
        delivery_ratio={m: np.array(v) for m, v in series["delivery_ratio"].items()},
        throughput_bps={m: np.array(v) for m, v in series["throughput_bps"].items()},
        attempt_per={m: np.array(v) for m, v in series["attempt_per"].items()},
        utilization={m: np.array(v) for m, v in series["utilization"].items()},
    )


def summarize(result: MacDensityResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    largest = result.densities[-1]
    lines = [
        f"{mac:13s}: delivery {result.delivery_ratio[mac][-1]:.2f} at {largest} devices, "
        f"goodput {result.throughput_bps[mac][-1] / 1e3:.1f} kbps, "
        f"attempt PER {result.attempt_per[mac][-1]:.2f}"
        for mac in result.macs
    ]
    lines.append(
        "expected: random-access policies collapse past their knee while TDMA polling degrades gracefully"
    )
    return lines


def metrics(result: MacDensityResult) -> dict[str, float]:
    """Scalar headline metrics (at the largest density) for aggregation."""
    out: dict[str, float] = {}
    for mac in result.macs:
        out[f"delivery_{mac}"] = float(result.delivery_ratio[mac][-1])
        out[f"utilization_{mac}"] = float(result.utilization[mac][-1])
    return out


def plot(result: MacDensityResult) -> Figure:
    """Declarative figure: delivery ratio per MAC across device density."""
    return Figure(
        title="MAC density — delivery ratio vs device density (epoch engine)",
        xlabel="Device density (devices per carrier)",
        ylabel="Delivery ratio",
        series=tuple(
            Series(label=mac, x=result.densities, y=result.delivery_ratio[mac])
            for mac in result.macs
        ),
        caption="Epoch-batched sweep into the thousands-of-devices regime: "
        "random access collapses past its knee, TDMA polling degrades gracefully.",
    )


register(
    name="mac_density",
    title="MAC density — delivery vs density on the epoch-batched engine (beyond the paper)",
    run=run,
    engines=_ENGINES,
    fast_params={"densities": (5, 10, 25, 50, 100), "period_s": 0.005, "duration_s": 1.0},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
