"""MAC scaling — fleet size vs delivery for multi-device interscatter.

The paper evaluates one tag per carrier; this driver asks the scaling
question its applications imply: as N contact lenses (or implants, or
cards) share one single-tone carrier, how do the candidate medium-access
policies compare?  For each fleet size and MAC policy it runs one seeded
:class:`~repro.netsim.fleet.FleetSimulator` scenario and records delivery
ratio, aggregate goodput, attempt-level PER, medium utilization and median
latency.

The qualitative findings mirror classic MAC analysis: pure ALOHA collapses
first as offered load grows, slotting roughly doubles the usable capacity,
carrier sensing removes attempt-level collisions, and downlink-driven TDMA
polling stays collision-free at every size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import register, resolve_engine
from repro.netsim.batched import BatchedFleetSimulator
from repro.netsim.fleet import FleetScenario, FleetSimulator
from repro.plots.figure import Figure, Series

__all__ = ["MacScalingResult", "run", "summarize", "DEFAULT_FLEET_SIZES", "DEFAULT_MACS"]

#: Fleet sizes swept by default (1 tag reproduces the paper's setting).
DEFAULT_FLEET_SIZES = (1, 5, 10, 25, 50, 100, 200)

#: MAC policies compared by default.
DEFAULT_MACS = ("aloha", "slotted_aloha", "csma", "tdma")


@dataclass(frozen=True)
class MacScalingResult:
    """Series of the MAC-scaling sweep.

    Attributes
    ----------
    fleet_sizes:
        The swept fleet sizes (x-axis).
    macs:
        Policy names, in sweep order.
    profile / period_s / duration_s / seed:
        Scenario parameters shared by every run.
    delivery_ratio / throughput_bps / attempt_per / utilization /
    latency_p50_s:
        Policy name → array over fleet sizes.
    """

    fleet_sizes: np.ndarray
    macs: tuple[str, ...]
    profile: str
    period_s: float
    duration_s: float
    seed: int
    delivery_ratio: dict[str, np.ndarray]
    throughput_bps: dict[str, np.ndarray]
    attempt_per: dict[str, np.ndarray]
    utilization: dict[str, np.ndarray]
    latency_p50_s: dict[str, np.ndarray]


def _simulate(phy_fast_path: bool, **scenario_kwargs):
    scenario = FleetScenario(phy_fast_path=phy_fast_path, **scenario_kwargs)
    return FleetSimulator(scenario).run().aggregate()


def _simulate_exact(**scenario_kwargs):
    """Analytic PHY error model evaluated per packet."""
    return _simulate(False, **scenario_kwargs)


def _simulate_fast_path(**scenario_kwargs):
    """Packet fates from the memoised LinkAbstraction PER tables."""
    return _simulate(True, **scenario_kwargs)


def _simulate_batched(**scenario_kwargs):
    """Epoch-batched vectorised engine (per-device state in numpy arrays)."""
    scenario = FleetScenario(engine="batched", **scenario_kwargs)
    return BatchedFleetSimulator(scenario).run().aggregate()


_ENGINES = {
    "scalar": _simulate_exact,
    "fast_path": _simulate_fast_path,
    "batched": _simulate_batched,
}


def run(
    *,
    fleet_sizes: tuple[int, ...] = DEFAULT_FLEET_SIZES,
    macs: tuple[str, ...] = DEFAULT_MACS,
    profile: str = "contact_lens",
    period_s: float = 0.02,
    duration_s: float = 2.0,
    seed: int = 2016,
    engine: str = "scalar",
) -> MacScalingResult:
    """Sweep fleet size × MAC policy and collect the aggregate metrics.

    The default 20 ms packet interval pushes a 200-device fleet well past
    channel saturation so the policies separate; pass a larger ``period_s``
    for a light-load sweep.

    ``engine="scalar"`` (default) evaluates the analytic PHY error model
    per packet; ``"fast_path"`` resolves packet fates through the memoised
    PER tables of :class:`repro.mc.link_abstraction.LinkAbstraction`
    (statistically equivalent up to the table's SINR binning, essential for
    1000+ device fleets).
    """
    simulate = resolve_engine("mac_scaling", engine, _ENGINES)
    series: dict[str, dict[str, list[float]]] = {
        metric: {mac: [] for mac in macs}
        for metric in (
            "delivery_ratio",
            "throughput_bps",
            "attempt_per",
            "utilization",
            "latency_p50_s",
        )
    }
    for mac in macs:
        for size in fleet_sizes:
            aggregate = simulate(
                profile=profile,
                num_devices=size,
                mac=mac,
                duration_s=duration_s,
                period_s=period_s,
                seed=seed,
            )
            series["delivery_ratio"][mac].append(aggregate.delivery_ratio)
            series["throughput_bps"][mac].append(aggregate.throughput_bps)
            series["attempt_per"][mac].append(aggregate.attempt_per)
            series["utilization"][mac].append(aggregate.utilization)
            series["latency_p50_s"][mac].append(aggregate.latency_p50_s)
    return MacScalingResult(
        fleet_sizes=np.array(fleet_sizes, dtype=int),
        macs=tuple(macs),
        profile=profile,
        period_s=period_s,
        duration_s=duration_s,
        seed=seed,
        delivery_ratio={m: np.array(v) for m, v in series["delivery_ratio"].items()},
        throughput_bps={m: np.array(v) for m, v in series["throughput_bps"].items()},
        attempt_per={m: np.array(v) for m, v in series["attempt_per"].items()},
        utilization={m: np.array(v) for m, v in series["utilization"].items()},
        latency_p50_s={m: np.array(v) for m, v in series["latency_p50_s"].items()},
    )


def summarize(result: MacScalingResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    largest = result.fleet_sizes[-1]
    lines = [
        f"{mac:13s}: delivery {result.delivery_ratio[mac][-1]:.2f} at {largest} devices, "
        f"goodput {result.throughput_bps[mac][-1] / 1e3:.1f} kbps, "
        f"attempt PER {result.attempt_per[mac][-1]:.2f}"
        for mac in result.macs
    ]
    lines.append("expected: ALOHA collapses first, slotting doubles capacity, TDMA polling stays collision-free")
    return lines


def metrics(result: MacScalingResult) -> dict[str, float]:
    """Scalar headline metrics (at the largest fleet) for aggregation."""
    out: dict[str, float] = {}
    for mac in result.macs:
        out[f"delivery_{mac}"] = float(result.delivery_ratio[mac][-1])
        out[f"goodput_kbps_{mac}"] = float(result.throughput_bps[mac][-1] / 1e3)
    return out


def plot(result: MacScalingResult) -> Figure:
    """Declarative figure: delivery ratio per MAC across fleet sizes."""
    return Figure(
        title="MAC scaling — delivery ratio vs fleet size",
        xlabel="Fleet size (devices)",
        ylabel="Delivery ratio",
        series=tuple(
            Series(label=mac, x=result.fleet_sizes, y=result.delivery_ratio[mac])
            for mac in result.macs
        ),
        caption="ALOHA collapses first, slotting doubles capacity, TDMA polling stays collision-free.",
    )


register(
    name="mac_scaling",
    title="MAC scaling — fleet size × MAC policy sweep (beyond the paper)",
    run=run,
    engines=_ENGINES,
    fast_params={"fleet_sizes": (1, 5, 10), "duration_s": 0.5},
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
