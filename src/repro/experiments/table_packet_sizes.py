"""§2.3.3 packet-size arithmetic — Wi-Fi payload per Bluetooth advertisement.

A 31-byte BLE advertising payload lasts 248 µs.  Inside that window the tag
can synthesize a Wi-Fi packet of 38, 104 or 209 bytes at 2, 5.5 or 11 Mbps,
and a 1 Mbps packet does not fit at all.  This driver reproduces those
numbers from the timing model and also reports the derived per-advertising-
event goodput used in the discussion of BLE data packets as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import register
from repro.core.timing import InterscatterTiming, max_wifi_payload_bytes
from repro.plots.figure import Figure, Series

__all__ = ["PacketSizeTableResult", "run", "summarize", "PAPER_PACKET_SIZES"]

#: The paper's quoted Wi-Fi payload sizes per 31-byte BLE advertisement.
PAPER_PACKET_SIZES = {2.0: 38, 5.5: 104, 11.0: 209}


@dataclass(frozen=True)
class PacketSizeTableResult:
    """Packet sizes and goodput derived from the timing model.

    Attributes
    ----------
    max_psdu_bytes:
        Wi-Fi rate → largest PSDU fitting in one 31-byte advertisement.
    one_mbps_fits:
        Whether a 1 Mbps packet (long preamble) fits at all (the paper: no).
    goodput_bps:
        Wi-Fi rate → goodput with one advertisement per 20 ms interval.
    with_guard_interval:
        Same sizes when the tag's 4 µs guard interval is budgeted.
    """

    max_psdu_bytes: dict[float, int]
    one_mbps_fits: bool
    goodput_bps: dict[float, float]
    with_guard_interval: dict[float, int]


def run(*, advertising_interval_s: float = 0.02) -> PacketSizeTableResult:
    """Compute the §2.3.3 packet-size table."""
    rates = (2.0, 5.5, 11.0)
    max_bytes = {rate: max_wifi_payload_bytes(rate) for rate in rates}
    with_guard = {
        rate: max_wifi_payload_bytes(rate, guard_interval_s=4e-6) for rate in rates
    }
    goodput = {
        rate: max_bytes[rate] * 8.0 / advertising_interval_s for rate in rates
    }
    # "Fitting" a 1 Mbps packet means fitting one that carries a useful MAC
    # frame (24-byte header + FCS); only six PSDU bytes squeeze in after the
    # mandatory long preamble, so no useful 1 Mbps packet fits (paper §2.3.3).
    one_mbps = InterscatterTiming(wifi_rate_mbps=1.0, short_plcp_preamble=False)
    return PacketSizeTableResult(
        max_psdu_bytes=max_bytes,
        one_mbps_fits=one_mbps.max_wifi_payload_bytes(mac_overhead_bytes=28) > 0,
        goodput_bps=goodput,
        with_guard_interval=with_guard,
    )


def summarize(result: PacketSizeTableResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    goodput_kbps = {rate: round(bps / 1e3, 1) for rate, bps in result.goodput_bps.items()}
    return [
        f"max PSDU bytes: {result.max_psdu_bytes} (paper: 38/104/209)",
        f"useful 1 Mbps packet fits: {result.one_mbps_fits} (paper: no)",
        f"goodput at one advertisement per 20 ms (kbps): {goodput_kbps}",
    ]


def metrics(result: PacketSizeTableResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    out: dict[str, float] = {}
    for rate, size in result.max_psdu_bytes.items():
        out[f"max_psdu_bytes_{rate:g}mbps"] = float(size)
    for rate, bps in result.goodput_bps.items():
        out[f"goodput_kbps_{rate:g}mbps"] = bps / 1e3
    return out


def plot(result: PacketSizeTableResult) -> Figure:
    """Declarative figure: largest PSDU per Wi-Fi rate, with/without guard."""
    rates = tuple(result.max_psdu_bytes)
    return Figure(
        title="§2.3.3 — Wi-Fi payload per Bluetooth advertisement",
        xlabel="Wi-Fi rate",
        ylabel="Max PSDU (bytes)",
        kind="bar",
        categories=tuple(f"{rate:g} Mbps" for rate in rates),
        series=(
            Series(label="no guard interval", y=[float(result.max_psdu_bytes[rate]) for rate in rates]),
            Series(label="with 4 µs guard", y=[float(result.with_guard_interval[rate]) for rate in rates]),
        ),
        caption="Higher Wi-Fi rates fit more payload into one 31-byte advertisement window.",
    )


register(
    name="table_packet_sizes",
    title="§2.3.3 — Wi-Fi payload per Bluetooth advertisement",
    run=run,
    engines={"scalar": run},
    artifact="§2.3.3 table",
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
