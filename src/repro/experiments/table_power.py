"""§3 power table — the 28 µW interscatter IC budget.

The paper's 65 nm implementation consumes, while generating 2 Mbps 802.11b
packets with a 35.75 MHz shift: 9.69 µW in the frequency synthesizer,
8.51 µW in the baseband processor and 9.79 µW in the backscatter modulator,
28 µW in total.  This driver reports the model's breakdown at the reference
point plus the scaling sweeps used by the ablation benches (power vs Wi-Fi
rate and vs sub-carrier shift) and the comparison against active radios.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.api.registry import register
from repro.backscatter.power import ACTIVE_RADIO_POWER_UW, InterscatterPowerModel, PowerBreakdown
from repro.plots.figure import Figure, Series

__all__ = ["PowerTableResult", "run", "summarize", "PAPER_POWER_UW"]

#: The paper's reported block powers (µW).
PAPER_POWER_UW = {
    "frequency_synthesizer_uw": 9.69,
    "baseband_processor_uw": 8.51,
    "backscatter_modulator_uw": 9.79,
    "total_uw": 27.99,
}


@dataclass(frozen=True)
class PowerTableResult:
    """Reference power breakdown plus scaling sweeps.

    Attributes
    ----------
    reference:
        Breakdown at the paper's operating point (2 Mbps, 35.75 MHz).
    by_rate:
        Wi-Fi rate → total power (µW).
    by_shift:
        Sub-carrier shift (Hz) → total power (µW).
    savings_vs_active:
        Radio name → power-saving factor of interscatter vs that radio.
    energy_per_bit_nj:
        Energy per generated Wi-Fi bit at the reference point.
    """

    reference: PowerBreakdown
    by_rate: dict[float, float]
    by_shift: dict[float, float]
    savings_vs_active: dict[str, float]
    energy_per_bit_nj: float


def run(
    *,
    rates_mbps: tuple[float, ...] = (2.0, 5.5, 11.0),
    shifts_hz: tuple[float, ...] = (12e6, 24e6, 35.75e6, 48e6),
) -> PowerTableResult:
    """Evaluate the power model at the reference point and across sweeps."""
    model = InterscatterPowerModel()
    reference = model.reference_breakdown()
    by_rate = {rate: model.estimate(wifi_rate_mbps=rate).total_uw for rate in rates_mbps}
    by_shift = {shift: model.estimate(shift_hz=shift).total_uw for shift in shifts_hz}
    savings = {radio: model.savings_versus_active(radio) for radio in ACTIVE_RADIO_POWER_UW}
    return PowerTableResult(
        reference=reference,
        by_rate=by_rate,
        by_shift=by_shift,
        savings_vs_active=savings,
        energy_per_bit_nj=model.energy_per_bit_nj(),
    )


def summarize(result: PowerTableResult) -> list[str]:
    """Headline report lines for the CLI and the reproduction script."""
    reference = result.reference
    return [
        f"frequency synthesizer: {reference.frequency_synthesizer_uw:.2f} µW (paper 9.69)",
        f"baseband processor:    {reference.baseband_processor_uw:.2f} µW (paper 8.51)",
        f"backscatter modulator: {reference.backscatter_modulator_uw:.2f} µW (paper 9.79)",
        f"total:                 {reference.total_uw:.2f} µW (paper ~28)",
        f"energy per generated Wi-Fi bit: {result.energy_per_bit_nj * 1e3:.1f} pJ/bit",
    ]


def metrics(result: PowerTableResult) -> dict[str, float]:
    """Scalar headline metrics for cross-campaign aggregation."""
    out = {
        "total_uw_reference": result.reference.total_uw,
        "energy_per_bit_nj": result.energy_per_bit_nj,
    }
    for rate, total_uw in result.by_rate.items():
        out[f"total_uw_{rate:g}mbps"] = total_uw
    return out


def plot(result: PowerTableResult) -> Figure:
    """Declarative figure: total IC power per generated Wi-Fi rate."""
    rates = tuple(result.by_rate)
    return Figure(
        title="§3 — interscatter IC power vs Wi-Fi rate",
        xlabel="Generated Wi-Fi rate",
        ylabel="Total power (µW)",
        kind="bar",
        categories=tuple(f"{rate:g} Mbps" for rate in rates),
        series=(Series(label="total power", y=[result.by_rate[rate] for rate in rates]),),
        caption="The whole IC stays in the tens of microwatts — orders of magnitude below active radios.",
    )


register(
    name="table_power",
    title="§3 — the 28 µW interscatter IC power budget",
    run=run,
    engines={"scalar": run},
    artifact="§3 table",
    summarize=summarize,
    metrics=metrics,
    plot=plot,
)
