"""``repro.fabric`` — the distributed campaign execution fabric.

The single-machine campaign runner (``Runner(jobs=N)`` over a
``ProcessPoolExecutor``) grows here into a multi-machine fabric, in
three pieces that compose through the existing store format:

* **Content-addressed caching** (:mod:`repro.fabric.cas`): cache keys
  derived from the driver module's *normalized* source plus the
  canonical invocation material, so stored results survive
  parameter-preserving refactors and invalidate on behavioural edits —
  ``run --all`` at full fidelity becomes incremental.
* **Deterministic shard slicing** (:mod:`repro.fabric.slicing`):
  ``specs[I::N]`` strides over the expanded batch — seeds are fixed
  before slicing, so any (I, N) decomposition merged back together is
  bit-identical to a serial run.  ``python -m repro run --specs grid
  --shard-index I --shard-count N`` is the CLI surface.
* **Remote fan-in** (:mod:`repro.fabric.remote` +
  :mod:`repro.fabric.manifest`): ``ResultStore.merge`` ingests
  ``file://`` and ``http(s)://`` shard URIs (stdlib only, torn-line
  tolerant, deduplicated by result key), and the strict-JSON campaign
  manifest proves at merge time that N shards reassemble one grid.

The nightly full-fidelity workflow is the capstone consumer: an N-job
matrix each executing one slice, a fan-in job combining manifests,
merging stores and publishing the nightly ``EXPERIMENTS.md`` +
``FIGURES.md`` beside the committed fast-campaign documents.
"""

from repro.fabric.cas import (
    CACHE_POLICIES,
    check_policy,
    content_key,
    driver_source_hash,
    normalized_source_digest,
)
from repro.fabric.manifest import (
    MANIFEST_VERSION,
    CampaignManifest,
    ShardEntry,
    combine_manifests,
    grid_hash,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.fabric.remote import ShardFetch, fetch_shard, is_uri, parse_shard_lines
from repro.fabric.slicing import read_spec_files, shard_slice, spec_identity

__all__ = [
    "CACHE_POLICIES",
    "check_policy",
    "content_key",
    "driver_source_hash",
    "normalized_source_digest",
    "MANIFEST_VERSION",
    "CampaignManifest",
    "ShardEntry",
    "combine_manifests",
    "grid_hash",
    "read_manifest",
    "validate_manifest",
    "write_manifest",
    "ShardFetch",
    "fetch_shard",
    "is_uri",
    "parse_shard_lines",
    "read_spec_files",
    "shard_slice",
    "spec_identity",
]
