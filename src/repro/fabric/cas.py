"""Content-addressed cache keys for campaign resume.

The store's original resume policy matches specs against stored envelopes
by exact *invocation* key — a hash of (experiment, engine, seed, params,
backend).  That key is blind to the code that produced the result: edit a
driver and a stale cache silently survives; refactor a driver without
changing behaviour and nothing forces a re-run either way.

This module derives the **content key**: the invocation material plus a
hash of the driver module's *normalized* source.  Normalization parses
the source to an AST and hashes its dump, so formatting, comments and
line numbers do not participate — a whitespace/comment-only refactor
keeps every cache entry warm, while any behavioural edit (changed
constant, new branch, renamed call) produces a different digest and
forces re-execution.  ``run --all`` at full fidelity thereby becomes
incremental: only experiments whose drivers actually changed re-run.

The :class:`~repro.api.runner.Runner` records
:func:`driver_source_hash` on every envelope it writes and, under the
``cache="content"`` policy, matches pending specs against stored
envelopes by :func:`content_key` instead of the invocation key.
Envelopes written before the fabric existed carry no source hash and are
simply cache misses under the content policy — never false hits.
"""

from __future__ import annotations

import ast
import hashlib
import importlib
import inspect
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

from repro.api.serialization import canonical_json
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:
    from repro.api.registry import Experiment

__all__ = [
    "CACHE_POLICIES",
    "check_policy",
    "content_key",
    "driver_source_hash",
    "module_source",
    "normalized_source_digest",
]

#: The resume policies the Runner and the CLI accept.
CACHE_POLICIES = ("content", "invocation", "off")


def check_policy(policy: str) -> str:
    """Validate a cache policy name; returns it unchanged."""
    if policy not in CACHE_POLICIES:
        raise ConfigurationError(
            f"unknown cache policy {policy!r}; choose one of {list(CACHE_POLICIES)}"
        )
    return policy


def normalized_source_digest(source: str) -> str:
    """sha256 of *source*'s AST dump — formatting and comments excluded.

    Two sources that parse to the same tree (whitespace moved, comments
    added or dropped, trailing blank lines) digest identically; any
    change that survives parsing — a different constant, operator,
    branch or name — does not.  ``ast.dump`` omits line/column
    attributes by default, so pure reflow never shifts the digest.
    """
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise ConfigurationError(f"cannot normalize driver source: {exc}") from exc
    digest = hashlib.sha256(ast.dump(tree).encode("utf-8"))
    return digest.hexdigest()


def module_source(module_name: str) -> str:
    """The raw source text of *module_name* (imported if necessary)."""
    module = importlib.import_module(module_name)
    return inspect.getsource(module)


def driver_source_hash(experiment: Experiment) -> str | None:
    """Normalized source digest of *experiment*'s driver module.

    Returns ``None`` when the source is unavailable (a driver registered
    from a REPL or an exec'd test module) — such experiments are simply
    never content-cacheable, which fails safe: they re-execute.
    """
    try:
        return normalized_source_digest(module_source(experiment.module))
    except (OSError, TypeError, ImportError):
        return None


def content_key(
    experiment: str,
    engine: str,
    seed: int | None,
    params: Mapping[str, Any],
    *,
    backend: str | None = None,
    source_hash: str,
) -> str:
    """Content hash of one invocation *and* the driver source that runs it.

    Same material as :func:`repro.api.store.invocation_key` plus the
    normalized driver source digest, so a cache keyed this way survives
    parameter-preserving refactors and invalidates on behavioural edits.
    ``params`` must be the decoded parameter dict, exactly as for the
    invocation key.
    """
    material: dict[str, Any] = {
        "experiment": experiment,
        "engine": engine,
        "seed": seed,
        "params": dict(params),
        "source": source_hash,
    }
    if backend is not None:
        material["backend"] = backend
    digest = hashlib.sha256(canonical_json(material).encode("utf-8"))
    return digest.hexdigest()[:16]
