"""The campaign manifest: strict-JSON ledger of a sharded campaign.

When a grid is sliced across N machines, each machine knows only its own
slice; the manifest is the document that lets the fan-in step prove the
slices reassemble the campaign.  Every shard writes one::

    {"manifest_version": 1,
     "grid_hash": "<sha256 of the full expanded batch>",
     "spec_count": 112,
     "shard_count": 4,
     "shards": [{"index": 2, "status": "complete",
                 "uri": "file:///…/shard-2-store", "result_count": 28}]}

``grid_hash`` covers the *whole* expanded batch (pre-slice), so shards
produced from different grid documents — or the same document after an
edit — can never be merged into one campaign by accident.
:func:`combine_manifests` is the fan-in check: every manifest must agree
on grid hash, spec count and shard count, and together the entries must
cover every index exactly once with status ``complete``.

Like every other generated document in the repo, manifests are strict
JSON with a schema version and a validator (:func:`validate_manifest`);
writers round-trip through the validator before any bytes hit disk
(enforced statically by lint rule RL007).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.api.serialization import canonical_json
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

__all__ = [
    "MANIFEST_VERSION",
    "SHARD_STATUSES",
    "CampaignManifest",
    "ShardEntry",
    "combine_manifests",
    "grid_hash",
    "read_manifest",
    "validate_manifest",
    "write_manifest",
]

#: Version stamp of the manifest document layout.
MANIFEST_VERSION = 1

#: The per-shard execution states a manifest may record.
SHARD_STATUSES = ("pending", "complete", "failed")


def grid_hash(specs: Sequence[ExperimentSpec]) -> str:
    """sha256 identifying the full expanded batch, order included.

    Hashing the serialized specs (not the grid document text) means two
    grid files that expand to the same batch share a campaign identity,
    while any change to the expansion — parameters, seeds, order, count —
    produces a different hash and refuses to merge with stale shards.
    """
    material = canonical_json([spec.to_dict() for spec in specs])
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardEntry:
    """One shard's row in the manifest.

    Attributes
    ----------
    index:
        Shard index in ``[0, shard_count)``.
    status:
        One of :data:`SHARD_STATUSES`.
    uri:
        Where the shard's results live (``file://`` or ``http(s)://``),
        or ``None`` when not yet published.
    result_count:
        Envelopes the shard holds, or ``None`` when unknown.
    """

    index: int
    status: str
    uri: str | None = None
    result_count: int | None = None

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form of this entry."""
        return {
            "index": self.index,
            "status": self.status,
            "uri": self.uri,
            "result_count": self.result_count,
        }


@dataclass(frozen=True)
class CampaignManifest:
    """The whole campaign ledger: grid identity plus per-shard entries."""

    grid_hash: str
    spec_count: int
    shard_count: int
    shards: tuple[ShardEntry, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form of the manifest (shards sorted by index)."""
        return {
            "manifest_version": MANIFEST_VERSION,
            "grid_hash": self.grid_hash,
            "spec_count": self.spec_count,
            "shard_count": self.shard_count,
            "shards": [entry.to_dict() for entry in sorted(self.shards, key=lambda e: e.index)],
        }

    @classmethod
    def from_dict(cls, document: dict[str, Any]) -> "CampaignManifest":
        """Rebuild a manifest from :meth:`to_dict` output (validated first)."""
        validate_manifest(document)
        return cls(
            grid_hash=document["grid_hash"],
            spec_count=document["spec_count"],
            shard_count=document["shard_count"],
            shards=tuple(
                ShardEntry(
                    index=entry["index"],
                    status=entry["status"],
                    uri=entry.get("uri"),
                    result_count=entry.get("result_count"),
                )
                for entry in document["shards"]
            ),
        )

    @property
    def complete(self) -> bool:
        """Whether every shard index is present and ``complete``."""
        done = {entry.index for entry in self.shards if entry.status == "complete"}
        return done == set(range(self.shard_count))


def validate_manifest(document: Any) -> None:
    """Validate a manifest document's shape; raise on the first violation."""
    if not isinstance(document, dict):
        raise ConfigurationError(f"manifest must be an object, got {type(document).__name__}")
    if document.get("manifest_version") != MANIFEST_VERSION:
        raise ConfigurationError(
            f"unsupported manifest_version {document.get('manifest_version')!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    if not isinstance(document.get("grid_hash"), str) or len(document["grid_hash"]) != 64:
        raise ConfigurationError("manifest field 'grid_hash' must be a sha256 hex string")
    for name in ("spec_count", "shard_count"):
        value = document.get(name)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            raise ConfigurationError(f"manifest field {name!r} must be a non-negative integer")
    if document["shard_count"] < 1:
        raise ConfigurationError("manifest field 'shard_count' must be >= 1")
    if not isinstance(document.get("shards"), list):
        raise ConfigurationError("manifest field 'shards' must be a list")
    seen: set[int] = set()
    for entry in document["shards"]:
        if not isinstance(entry, dict):
            raise ConfigurationError(f"manifest shard entry must be an object, got {type(entry).__name__}")
        index = entry.get("index")
        if isinstance(index, bool) or not isinstance(index, int):
            raise ConfigurationError("manifest shard entry is missing an integer 'index'")
        if not 0 <= index < document["shard_count"]:
            raise ConfigurationError(
                f"manifest shard index {index} is outside [0, {document['shard_count']})"
            )
        if index in seen:
            raise ConfigurationError(f"manifest lists shard index {index} twice")
        seen.add(index)
        if entry.get("status") not in SHARD_STATUSES:
            raise ConfigurationError(
                f"manifest shard {index} has status {entry.get('status')!r}; "
                f"allowed: {list(SHARD_STATUSES)}"
            )
        if not (entry.get("uri") is None or isinstance(entry["uri"], str)):
            raise ConfigurationError(f"manifest shard {index} field 'uri' must be a string or null")
        count = entry.get("result_count")
        if not (count is None or (isinstance(count, int) and not isinstance(count, bool) and count >= 0)):
            raise ConfigurationError(
                f"manifest shard {index} field 'result_count' must be a non-negative integer or null"
            )


def write_manifest(path: str | Path, manifest: CampaignManifest) -> None:
    """Serialize *manifest* to *path* — round-tripping the validator first."""
    document = manifest.to_dict()
    validate_manifest(document)
    Path(path).write_text(json.dumps(document, indent=2, allow_nan=False) + "\n", encoding="utf-8")


def read_manifest(path: str | Path) -> CampaignManifest:
    """Load and validate a manifest document from *path*."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read manifest {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"manifest {str(path)!r} is not valid JSON: {exc}") from exc
    return CampaignManifest.from_dict(document)


def combine_manifests(manifests: Sequence[CampaignManifest]) -> CampaignManifest:
    """Fan-in check: fold per-shard manifests into one complete campaign ledger.

    Every manifest must describe the same campaign (grid hash, spec and
    shard counts), and together the shard entries must cover every index
    exactly once with status ``complete`` — otherwise the merge would
    silently publish a partial grid as the full-fidelity result.
    """
    if not manifests:
        raise ConfigurationError("no manifests to combine")
    head = manifests[0]
    entries: dict[int, ShardEntry] = {}
    for manifest in manifests:
        for name in ("grid_hash", "spec_count", "shard_count"):
            if getattr(manifest, name) != getattr(head, name):
                raise ConfigurationError(
                    f"manifests disagree on {name}: {getattr(head, name)!r} vs "
                    f"{getattr(manifest, name)!r} — these shards are not slices of one campaign"
                )
        for entry in manifest.shards:
            previous = entries.get(entry.index)
            if previous is not None and previous != entry:
                raise ConfigurationError(
                    f"conflicting manifest entries for shard {entry.index}: "
                    f"{previous!r} vs {entry!r}"
                )
            entries[entry.index] = entry
    combined = CampaignManifest(
        grid_hash=head.grid_hash,
        spec_count=head.spec_count,
        shard_count=head.shard_count,
        shards=tuple(entries[index] for index in sorted(entries)),
    )
    incomplete = [
        index
        for index in range(head.shard_count)
        if entries.get(index) is None or entries[index].status != "complete"
    ]
    if incomplete:
        raise ConfigurationError(
            f"campaign is incomplete: shard(s) {incomplete} of {head.shard_count} "
            "are missing or not complete"
        )
    return combined
