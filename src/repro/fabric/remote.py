"""Remote shard ingestion: ``file://`` and ``http(s)://`` fan-in sources.

A distributed campaign leaves its shards wherever the machines that ran
them put them — a mounted volume, a CI artifact served over HTTP.  The
fan-in step (:meth:`repro.api.store.ResultStore.merge`) accepts shard
*URIs* alongside local store paths; this module does the fetching with
nothing beyond the stdlib ``urllib``.

A shard resource is JSON lines, exactly as on disk: one result envelope
per line.  Parsing is torn-line tolerant — a line that does not parse as
JSON (the truncated tail of a killed writer, or a partial download) is
counted and skipped, never fatal — and non-object lines are ignored, so
merging a half-written remote shard degrades to merging what survived.
``file://`` URIs may also name a store *directory*, in which case every
``*.jsonl`` shard inside it is read in sorted order, mirroring
:meth:`~repro.api.store.ResultStore.shard_paths`.
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["ShardFetch", "fetch_shard", "is_uri", "parse_shard_lines"]

#: RFC 3986 scheme prefix — what distinguishes a URI source from a path.
_SCHEME = re.compile(r"^[A-Za-z][A-Za-z0-9+.-]*://")

#: Schemes the fabric knows how to fetch.
_SUPPORTED_SCHEMES = ("file", "http", "https")

#: Default socket timeout for HTTP shard fetches, seconds.
_HTTP_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ShardFetch:
    """One fetched shard resource: its parsed envelopes and the damage count.

    Attributes
    ----------
    documents:
        Every line that parsed as a JSON object, in resource order.
    torn_lines_skipped:
        Lines that did not parse as JSON — truncated writes or partial
        transfers — skipped rather than failing the whole fan-in.
    """

    documents: tuple[dict[str, Any], ...]
    torn_lines_skipped: int


def is_uri(source: str) -> bool:
    """Whether *source* is a URI (has a scheme) rather than a filesystem path."""
    return bool(_SCHEME.match(source))


def parse_shard_lines(text: str) -> ShardFetch:
    """Parse JSONL *text* tolerantly into a :class:`ShardFetch`."""
    documents: list[dict[str, Any]] = []
    torn = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            document = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if isinstance(document, dict):
            documents.append(document)
    return ShardFetch(documents=tuple(documents), torn_lines_skipped=torn)


def _fetch_file(uri: str) -> ShardFetch:
    path = Path(urllib.request.url2pathname(urllib.parse.urlparse(uri).path))
    if path.is_dir():
        documents: list[dict[str, Any]] = []
        torn = 0
        for shard in sorted(path.glob("*.jsonl")):
            fetched = parse_shard_lines(shard.read_text(encoding="utf-8"))
            documents.extend(fetched.documents)
            torn += fetched.torn_lines_skipped
        return ShardFetch(documents=tuple(documents), torn_lines_skipped=torn)
    try:
        return parse_shard_lines(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ConfigurationError(f"cannot read shard {uri!r}: {exc}") from exc


def _fetch_http(uri: str, timeout_s: float) -> ShardFetch:
    try:
        with urllib.request.urlopen(uri, timeout=timeout_s) as response:
            body = response.read()
    except (urllib.error.URLError, OSError) as exc:
        raise ConfigurationError(f"cannot fetch shard {uri!r}: {exc}") from exc
    return parse_shard_lines(body.decode("utf-8", errors="replace"))


def fetch_shard(uri: str, *, timeout_s: float = _HTTP_TIMEOUT_S) -> ShardFetch:
    """Fetch and parse one shard URI (``file://`` path/dir or ``http(s)://``)."""
    scheme = urllib.parse.urlparse(uri).scheme.lower()
    if scheme not in _SUPPORTED_SCHEMES:
        raise ConfigurationError(
            f"unsupported shard URI scheme {scheme!r} in {uri!r}; "
            f"supported: {list(_SUPPORTED_SCHEMES)}"
        )
    if scheme == "file":
        return _fetch_file(uri)
    return _fetch_http(uri, timeout_s)
