"""Deterministic shard slicing of expanded campaign batches.

A distributed campaign executes one grid across N machines.  The
contract that makes the fan-in trivial: every per-spec seed is derived
at *expansion* time (:func:`repro.api.campaign.derive_seed`), before any
sharding, so slicing is pure list arithmetic — shard I of N is
``specs[I::N]``, a disjoint, order-stable stride over the expanded
batch.  Any (I, N) decomposition merged back together is bit-identical
to a serial run; the tests assert disjointness and completeness at every
(I, N) over the committed fleet grid.

:func:`read_spec_files` is the multi-document front end: it expands
several grid files, concatenates them in argument order, and rejects
duplicate specs strictly — two grid files that expand to the same
(experiment, params, engine, seed, backend) invocation would race to
write the same result key, so the overlap fails loudly before any work
starts.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.api.campaign import read_specs
from repro.api.serialization import canonical_json
from repro.api.spec import ExperimentSpec
from repro.exceptions import ConfigurationError

__all__ = ["read_spec_files", "shard_slice", "spec_identity"]


def spec_identity(spec: ExperimentSpec) -> str:
    """Canonical JSON of the spec's serialized form — its duplicate-detection key."""
    return canonical_json(spec.to_dict())


def shard_slice(
    specs: Sequence[ExperimentSpec], shard_index: int, shard_count: int
) -> list[ExperimentSpec]:
    """Shard *shard_index* of *shard_count*: the ``specs[index::count]`` stride.

    The stride preserves expansion order inside each shard, balances
    shard sizes to within one spec, and partitions the batch exactly:
    the shards are pairwise disjoint and their union is the input.
    Because seeds were fixed before slicing, executing the shards on N
    machines and merging is bit-identical to a serial run.
    """
    if shard_count < 1:
        raise ConfigurationError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ConfigurationError(
            f"shard index must be in [0, {shard_count}), got {shard_index}"
        )
    return list(specs[shard_index::shard_count])


def read_spec_files(paths: Sequence[str | Path]) -> list[ExperimentSpec]:
    """Expand several grid documents into one batch, rejecting duplicates.

    Files are expanded independently (:func:`repro.api.campaign.read_specs`)
    and concatenated in argument order, so sharding a multi-file campaign
    slices the same combined batch on every machine.  A spec that appears
    twice — within one file or across files — is a configuration error:
    both copies would produce the same result key, and one machine's work
    would silently shadow the other's.
    """
    if not paths:
        raise ConfigurationError("no grid documents given")
    specs: list[ExperimentSpec] = []
    seen: dict[str, str] = {}
    for path in paths:
        for spec in read_specs(path):
            identity = spec_identity(spec)
            previous = seen.get(identity)
            if previous is not None:
                raise ConfigurationError(
                    f"duplicate spec for experiment {spec.experiment!r} "
                    f"(params {spec.params!r}, seed {spec.seed!r}) in {str(path)!r}; "
                    f"first defined in {previous!r}"
                )
            seen[identity] = str(path)
            specs.append(spec)
    return specs
