"""``repro.lint`` — the AST-based contract checker for the repo's invariants.

The platform's correctness rests on conventions that ordinary tests only
catch by accident: backend-pure ``xp`` kernels, seeded-Generator-only
randomness, byte-deterministic document generation, telemetry isolation,
complete driver registration and typed exceptions.  This package turns
each into an enforced static rule — the cheap triage tier that runs
before the expensive test tier.

Layout:

* :mod:`repro.lint.engine` — :class:`Rule` registry, :class:`Finding`
  records, the pragma-aware file walker;
* :mod:`repro.lint.rules` — the RL001–RL006 catalogue;
* :mod:`repro.lint.baseline` — grandfathered findings, ratcheted to zero;
* :mod:`repro.lint.reporting` — text / strict-JSON / markdown output.

Shell entry point: ``python -m repro lint [PATHS] [--rule ID] [--json]
[--baseline FILE] [--check]`` (see :mod:`repro.api.cli`).
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineResult,
    apply_baseline,
    baseline_from_findings,
    fingerprint,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    Finding,
    Rule,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    register_rule,
    select_rules,
)
from repro.lint.reporting import (
    LINT_SCHEMA_VERSION,
    build_document,
    render_markdown,
    render_text,
    validate_lint_document,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "Finding",
    "LINT_SCHEMA_VERSION",
    "Rule",
    "apply_baseline",
    "baseline_from_findings",
    "build_document",
    "fingerprint",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "render_markdown",
    "render_text",
    "select_rules",
    "validate_lint_document",
    "write_baseline",
]
