"""The committed-baseline mechanism: grandfather old findings, fail new ones.

A baseline is a strict-JSON document listing findings that existed when a
rule landed and are tracked down to zero instead of blocking the PR that
introduced the rule.  Each entry is identified by a *fingerprint* — a
content hash of ``rule | path | snippet`` — so entries survive unrelated
line-number drift but die with the offending code.

:func:`apply_baseline` partitions a lint run three ways:

* **new** findings — not covered by the baseline → the run fails;
* **suppressed** findings — matched a baseline entry (up to its
  ``count``) → reported as grandfathered, exit stays green;
* **stale** entries — baseline entries the tree no longer produces →
  the ratchet: ``--check`` fails until they are removed, so the file
  only ever shrinks.

``python -m repro lint --write-baseline`` regenerates the document from
the current findings; each entry keeps a free-form ``note`` field for
linking the follow-up that will retire it.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro.exceptions import ConfigurationError
from repro.lint.engine import Finding

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineResult",
    "apply_baseline",
    "baseline_from_findings",
    "fingerprint",
    "load_baseline",
    "write_baseline",
]

#: Version stamp of the baseline document layout.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Content hash identifying a finding independent of its line number."""
    material = f"{finding.rule}|{finding.path}|{finding.snippet}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (or *count* identical ones).

    Attributes
    ----------
    fingerprint:
        :func:`fingerprint` of the grandfathered finding.
    rule:
        Rule id, kept readable in the committed document.
    path:
        Offending file, kept readable in the committed document.
    snippet:
        The offending source line (stripped) the fingerprint hashes.
    count:
        How many identical findings the entry covers (same rule, path
        and snippet text can legitimately occur on several lines).
    note:
        Free-form link to the follow-up that will retire the entry.
    """

    fingerprint: str
    rule: str
    path: str
    snippet: str
    count: int = 1
    note: str = ""

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form, as committed."""
        return {
            "fingerprint": self.fingerprint,
            "rule": self.rule,
            "path": self.path,
            "snippet": self.snippet,
            "count": self.count,
            "note": self.note,
        }


@dataclass(frozen=True)
class Baseline:
    """A parsed baseline document."""

    entries: tuple[BaselineEntry, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON document form."""
        return {
            "version": BASELINE_VERSION,
            "entries": [entry.to_dict() for entry in self.entries],
        }


@dataclass(frozen=True)
class BaselineResult:
    """Outcome of checking findings against a baseline."""

    new: tuple[Finding, ...] = ()
    suppressed: tuple[Finding, ...] = ()
    stale: tuple[BaselineEntry, ...] = ()


def _entry_from_dict(data: Any, index: int) -> BaselineEntry:
    if not isinstance(data, dict):
        raise ConfigurationError(f"baseline entry {index} must be an object")
    required = {"fingerprint": str, "rule": str, "path": str, "snippet": str}
    for name, expected in required.items():
        if not isinstance(data.get(name), expected):
            raise ConfigurationError(
                f"baseline entry {index} field {name!r} must be a {expected.__name__}"
            )
    count = data.get("count", 1)
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        raise ConfigurationError(f"baseline entry {index} field 'count' must be a positive integer")
    note = data.get("note", "")
    if not isinstance(note, str):
        raise ConfigurationError(f"baseline entry {index} field 'note' must be a string")
    return BaselineEntry(
        fingerprint=data["fingerprint"],
        rule=data["rule"],
        path=data["path"],
        snippet=data["snippet"],
        count=count,
        note=note,
    )


def load_baseline(path: str | Path) -> Baseline:
    """Read and validate a committed baseline document."""
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"baseline file not found: {target}") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"baseline file {target} is not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("version") != BASELINE_VERSION:
        raise ConfigurationError(
            f"baseline file {target} must be an object with version {BASELINE_VERSION}"
        )
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise ConfigurationError(f"baseline file {target} field 'entries' must be a list")
    parsed = tuple(_entry_from_dict(entry, index) for index, entry in enumerate(entries))
    seen = Counter(entry.fingerprint for entry in parsed)
    duplicates = sorted(name for name, count in seen.items() if count > 1)
    if duplicates:
        raise ConfigurationError(
            f"baseline file {target} has duplicate fingerprints {duplicates}; "
            "merge them into one entry with a count"
        )
    return Baseline(entries=parsed)


def baseline_from_findings(findings: Iterable[Finding], *, note: str = "") -> Baseline:
    """Build a baseline grandfathering exactly the given findings."""
    entries: dict[str, BaselineEntry] = {}
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = fingerprint(finding)
        if key in entries:
            entries[key] = BaselineEntry(
                **{**entries[key].to_dict(), "count": entries[key].count + 1}
            )
        else:
            entries[key] = BaselineEntry(
                fingerprint=key,
                rule=finding.rule,
                path=finding.path,
                snippet=finding.snippet,
                note=note,
            )
    return Baseline(entries=tuple(entries.values()))


def write_baseline(path: str | Path, findings: Iterable[Finding], *, note: str = "") -> Baseline:
    """Write the baseline for *findings* to *path* (strict JSON, trailing newline)."""
    baseline = baseline_from_findings(findings, note=note)
    text = json.dumps(baseline.to_dict(), indent=2, allow_nan=False) + "\n"
    Path(path).write_text(text, encoding="utf-8")
    return baseline


def apply_baseline(findings: Iterable[Finding], baseline: Baseline) -> BaselineResult:
    """Partition *findings* into new vs suppressed, and find stale entries.

    Findings matching an entry's fingerprint are suppressed up to the
    entry's ``count``; any beyond it are new (the code regressed).
    Entries matched fewer times than their count are stale — the ratchet
    that forces the baseline to shrink as violations are fixed.
    """
    budget = {entry.fingerprint: entry.count for entry in baseline.entries}
    new: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(findings, key=lambda f: f.sort_key):
        key = fingerprint(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            suppressed.append(finding)
        else:
            new.append(finding)
    stale = tuple(
        entry for entry in baseline.entries if budget.get(entry.fingerprint, 0) > 0
    )
    return BaselineResult(new=tuple(new), suppressed=tuple(suppressed), stale=stale)
