"""Core of the contract checker: rules, findings, pragmas and the file walker.

The engine is deliberately dependency-free (stdlib ``ast`` only) so the
cheap static tier can run before anything is installed.  A :class:`Rule`
couples a stable id (``RL001``), a category, a short description and a
fix hint to a checker callable; :func:`lint_paths` parses every Python
file once into a :class:`LintContext` and funnels it through each
applicable rule, returning sorted :class:`Finding` records.

Two rule kinds exist:

* ``file`` rules see one :class:`LintContext` at a time — the common
  case (an AST visitor over a single module);
* ``project`` rules see every parsed context of the run at once, for
  cross-module invariants such as RL005's "each driver module both
  registers completely *and* is imported by the package façade".

Deliberate, documented exceptions are suppressed in source with a
pragma comment — ``# lint-ok: RL001 -- reason`` — on the finding's line
or on any *anchor line* the rule attaches (RL001 anchors the enclosing
``def``, so one pragma can bless a whole boundary function).  Everything
else an exception list would need lives in the committed baseline
(:mod:`repro.lint.baseline`), which only ever shrinks.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.exceptions import ConfigurationError

__all__ = [
    "Finding",
    "LintContext",
    "Rule",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "parse_source",
    "register_rule",
    "select_rules",
]

#: ``# lint-ok: RL001`` or ``# lint-ok: RL001, RL004 -- why it is fine``.
_PRAGMA = re.compile(r"#\s*lint-ok:\s*([A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)")

#: Rule ids look like ``RL001`` — two capitals, three digits.
_RULE_ID = re.compile(r"^[A-Z]{2}\d{3}$")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    rule:
        Rule id (``RL001``).
    category:
        The rule's category slug (``backend-purity``).
    path:
        Posix path of the offending file, as given to the walker.
    line:
        1-based source line.
    message:
        What is wrong, specifically (names the offending symbol).
    snippet:
        The stripped source line — also the stable part of the baseline
        fingerprint, so findings survive unrelated line-number drift.
    fix_hint:
        The rule's generic remediation hint.
    anchor_lines:
        Extra lines where a ``# lint-ok:`` pragma also suppresses this
        finding (e.g. the enclosing ``def``).  Not serialized.
    """

    rule: str
    category: str
    path: str
    line: int
    message: str
    snippet: str
    fix_hint: str = ""
    anchor_lines: tuple[int, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form (anchor lines are engine-internal)."""
        return {
            "rule": self.rule,
            "category": self.category,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fix_hint": self.fix_hint,
        }

    @property
    def sort_key(self) -> tuple[str, int, str, str]:
        """Deterministic ordering: path, line, rule, message."""
        return (self.path, self.line, self.rule, self.message)


class LintContext:
    """One parsed source file: path, source, AST and pragma table."""

    def __init__(self, path: str, source: str) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        try:
            self.tree = ast.parse(source)
        except SyntaxError as exc:
            raise ConfigurationError(f"cannot lint {self.path}: {exc}") from exc
        self._pragmas = _collect_pragmas(self.lines)

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-based *line* (empty if out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressed(self, rule: str, lines: Iterable[int]) -> bool:
        """Whether a ``# lint-ok:`` pragma for *rule* sits on any of *lines*."""
        return any(rule in self._pragmas.get(line, ()) for line in lines)

    def finding(
        self,
        rule: "Rule",
        line: int,
        message: str,
        *,
        anchor_lines: Iterable[int] = (),
    ) -> Finding:
        """Build a :class:`Finding` for *rule* at *line* in this file."""
        return Finding(
            rule=rule.id,
            category=rule.category,
            path=self.path,
            line=line,
            message=message,
            snippet=self.snippet(line),
            fix_hint=rule.fix_hint,
            anchor_lines=tuple(anchor_lines),
        )


def _collect_pragmas(lines: list[str]) -> dict[int, frozenset[str]]:
    pragmas: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA.search(text)
        if match:
            pragmas[number] = frozenset(part.strip() for part in match.group(1).split(","))
    return pragmas


@dataclass(frozen=True)
class Rule:
    """One registered contract rule.

    Attributes
    ----------
    id:
        Stable identifier (``RL001``); what ``--rule``, pragmas and the
        baseline refer to.
    category:
        Short kebab-case slug grouping related rules.
    description:
        One line for ``lint --list-rules`` and the JSON document.
    fix_hint:
        Generic remediation advice attached to every finding.
    check:
        ``file`` kind: ``check(context) -> Iterable[Finding]``.
        ``project`` kind: ``check(contexts) -> Iterable[Finding]``.
    kind:
        ``"file"`` (per-module visitor) or ``"project"`` (cross-module).
    scope:
        Regex the posix path must match for the rule to apply
        (``None`` = every file).  Project rules scope inside ``check``.
    exclude:
        Regex that exempts matching paths even when ``scope`` matches.
    """

    id: str
    category: str
    description: str
    fix_hint: str
    check: Callable[..., Iterable[Finding]]
    kind: str = "file"
    scope: str | None = None
    exclude: str | None = None

    def applies_to(self, path: str) -> bool:
        """Whether this (file-kind) rule runs on *path*."""
        posix = Path(path).as_posix()
        if self.scope is not None and not re.search(self.scope, posix):
            return False
        if self.exclude is not None and re.search(self.exclude, posix):
            return False
        return True


_RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Add *rule* to the registry; ids are unique and shaped ``AANNN``."""
    if not _RULE_ID.match(rule.id):
        raise ConfigurationError(f"rule id {rule.id!r} does not match RLnnn")
    if rule.kind not in ("file", "project"):
        raise ConfigurationError(f"rule {rule.id}: unknown kind {rule.kind!r}")
    if rule.id in _RULES:
        raise ConfigurationError(f"rule {rule.id!r} is already registered")
    _RULES[rule.id] = rule
    return rule


def iter_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_rules()
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """Look up one rule by id."""
    _load_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {rule_id!r}; registered: {sorted(_RULES)}"
        ) from None


def select_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """Resolve ``--rule`` selections (``None``/empty = every rule)."""
    ids = list(rule_ids or ())
    if not ids:
        return iter_rules()
    return [get_rule(rule_id) for rule_id in ids]


def _load_rules() -> None:
    """Import the rule catalogue exactly once (it self-registers)."""
    import repro.lint.rules  # noqa: F401  (import populates the registry)


def parse_source(source: str, path: str = "<string>") -> LintContext:
    """Parse *source* into a :class:`LintContext` (raises on syntax errors)."""
    return LintContext(path, source)


def _run(rules: list[Rule], contexts: list[LintContext]) -> list[Finding]:
    by_path = {context.path: context for context in contexts}
    findings: list[Finding] = []
    for rule in rules:
        if rule.kind == "project":
            raw: Iterable[Finding] = rule.check(contexts)
        else:
            raw = (
                finding
                for context in contexts
                if rule.applies_to(context.path)
                for finding in rule.check(context)
            )
        for finding in raw:
            context = by_path.get(finding.path)
            if context is not None and context.suppressed(
                finding.rule, (finding.line, *finding.anchor_lines)
            ):
                continue
            findings.append(finding)
    return sorted(findings, key=lambda finding: finding.sort_key)


def lint_source(
    source: str, path: str = "<string>", rules: Iterable[str] | None = None
) -> list[Finding]:
    """Lint one in-memory module; *path* drives the rules' scoping."""
    return _run(select_rules(rules), [parse_source(source, path)])


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Yield the ``.py`` files under *paths* (files pass through, dirs recurse).

    Hidden directories and ``__pycache__`` are skipped; the order is
    sorted so runs are deterministic.
    """
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            for candidate in sorted(target.rglob("*.py")):
                parts = candidate.relative_to(target).parts
                if any(part == "__pycache__" or part.startswith(".") for part in parts):
                    continue
                yield candidate
        elif target.suffix == ".py":
            yield target
        elif not target.exists():
            raise ConfigurationError(f"lint path does not exist: {target}")


def lint_paths(
    paths: Iterable[str | Path], rules: Iterable[str] | None = None
) -> tuple[list[Finding], int]:
    """Lint every Python file under *paths*.

    Returns ``(findings, files_checked)``; findings are pragma-filtered
    and sorted.  Baseline application is the caller's concern
    (:func:`repro.lint.baseline.apply_baseline`).
    """
    selected = select_rules(rules)
    contexts = [
        LintContext(str(file), file.read_text(encoding="utf-8"))
        for file in iter_python_files(paths)
    ]
    return _run(selected, contexts), len(contexts)


# --------------------------------------------------------------------------
# Shared AST helpers for the rule catalogue.


class ImportMap:
    """Resolve names and attribute chains to dotted module paths.

    Built from every ``import``/``from ... import`` in the module, at any
    nesting level.  ``dotted(node)`` maps ``np.random.seed`` (with
    ``import numpy as np``) to ``"numpy.random.seed"``; names that were
    never imported resolve to ``None`` so local variables cannot
    masquerade as modules.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._map: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self._map[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self._map[root] = root
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    self._map[alias.asname or alias.name] = f"{node.module}.{alias.name}"

    def resolve(self, name: str) -> str | None:
        """Dotted path an imported *name* is bound to, else ``None``."""
        return self._map.get(name)

    def dotted(self, node: ast.AST) -> str | None:
        """Dotted path of a ``Name``/``Attribute`` chain rooted in an import."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.resolve(node.id)
        if base is None:
            return None
        return ".".join([base, *reversed(parts)])


def call_name(node: ast.Call) -> str | None:
    """The called function's bare name (``register`` for both ``register(...)``
    and ``api.register(...)``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def keyword_map(node: ast.Call) -> Mapping[str, ast.expr]:
    """The call's explicit keyword arguments by name (``**kwargs`` ignored)."""
    return {keyword.arg: keyword.value for keyword in node.keywords if keyword.arg}


@dataclass
class _FunctionInfo:
    """A function definition plus the names of its parameters."""

    node: ast.FunctionDef | ast.AsyncFunctionDef
    params: frozenset[str] = field(default_factory=frozenset)


def iter_functions(tree: ast.Module) -> Iterator[_FunctionInfo]:
    """Every function definition in *tree* with its parameter-name set."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            names = [
                arg.arg
                for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            ]
            if args.vararg:
                names.append(args.vararg.arg)
            if args.kwarg:
                names.append(args.kwarg.arg)
            yield _FunctionInfo(node=node, params=frozenset(names))
