"""Finding renderers: terminal text, strict JSON, and a markdown table.

Three views over the same sorted finding list:

* :func:`render_text` — ``path:line: RLnnn message`` lines with the
  offending snippet, grouped the way compilers print diagnostics;
* :func:`build_document` / :func:`validate_lint_document` — the strict
  JSON contract behind ``python -m repro lint --json`` (schema-versioned,
  so CI consumers can parse it without scraping);
* :func:`render_markdown` — the rule-id + ``file:line`` table the
  ``lint-contracts`` CI job appends to its step summary, mirroring the
  ``compare_benchmarks.py`` failure-table style.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.exceptions import ConfigurationError
from repro.lint.baseline import BaselineEntry
from repro.lint.engine import Finding, Rule

__all__ = [
    "LINT_SCHEMA_VERSION",
    "build_document",
    "render_markdown",
    "render_text",
    "validate_lint_document",
]

#: Version stamp of the ``--json`` document layout.
LINT_SCHEMA_VERSION = 1


def render_text(
    findings: Sequence[Finding],
    *,
    suppressed: Sequence[Finding] = (),
    stale: Sequence[BaselineEntry] = (),
) -> list[str]:
    """Human-readable diagnostic lines, compiler style."""
    lines: list[str] = []
    for finding in findings:
        lines.append(f"{finding.path}:{finding.line}: {finding.rule} {finding.message}")
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
        if finding.fix_hint:
            lines.append(f"    hint: {finding.fix_hint}")
    if suppressed:
        lines.append(f"{len(suppressed)} grandfathered finding(s) suppressed by the baseline:")
        for finding in suppressed:
            lines.append(f"    {finding.path}:{finding.line}: {finding.rule} {finding.message}")
    for entry in stale:
        lines.append(
            f"stale baseline entry {entry.fingerprint} ({entry.rule}, {entry.path}): "
            "the tree no longer produces it — remove the entry (or rerun --write-baseline)"
        )
    return lines


def render_markdown(
    findings: Sequence[Finding], *, title: str = "Lint contract findings"
) -> str:
    """A markdown table of findings for CI job summaries."""
    lines = [f"### {title}", ""]
    if not findings:
        lines.append("No findings — all contracts hold.")
        return "\n".join(lines) + "\n"
    lines.append("| Rule | Location | Message |")
    lines.append("| --- | --- | --- |")
    for finding in findings:
        message = finding.message.replace("|", "\\|")
        lines.append(f"| {finding.rule} | `{finding.path}:{finding.line}` | {message} |")
    return "\n".join(lines) + "\n"


def build_document(
    findings: Sequence[Finding],
    *,
    rules: Iterable[Rule],
    files_checked: int,
    suppressed: Sequence[Finding] = (),
    stale: Sequence[BaselineEntry] = (),
) -> dict[str, Any]:
    """The strict-JSON lint document ``--json`` emits."""
    return {
        "lint_schema_version": LINT_SCHEMA_VERSION,
        "rules": [
            {"id": rule.id, "category": rule.category, "description": rule.description}
            for rule in rules
        ],
        "summary": {
            "files_checked": files_checked,
            "findings": len(findings),
            "suppressed_by_baseline": len(suppressed),
            "stale_baseline_entries": len(stale),
        },
        "findings": [finding.to_dict() for finding in findings],
        "suppressed": [finding.to_dict() for finding in suppressed],
        "stale_baseline_entries": [entry.to_dict() for entry in stale],
    }


_FINDING_FIELDS = {
    "rule": str,
    "category": str,
    "path": str,
    "line": int,
    "message": str,
    "snippet": str,
    "fix_hint": str,
}


def _validate_finding(data: Any, where: str) -> None:
    if not isinstance(data, dict):
        raise ConfigurationError(f"lint document {where} must be an object")
    for name, expected in _FINDING_FIELDS.items():
        if not isinstance(data.get(name), expected) or isinstance(data.get(name), bool):
            raise ConfigurationError(
                f"lint document {where} field {name!r} must be a {expected.__name__}"
            )


def validate_lint_document(document: Any) -> None:
    """Validate a ``--json`` document; raises on the first violation."""
    if not isinstance(document, dict):
        raise ConfigurationError("lint document must be an object")
    if document.get("lint_schema_version") != LINT_SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported lint_schema_version {document.get('lint_schema_version')!r} "
            f"(expected {LINT_SCHEMA_VERSION})"
        )
    summary = document.get("summary")
    if not isinstance(summary, dict):
        raise ConfigurationError("lint document field 'summary' must be an object")
    for name in ("files_checked", "findings", "suppressed_by_baseline", "stale_baseline_entries"):
        value = summary.get(name)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            raise ConfigurationError(
                f"lint summary field {name!r} must be a non-negative integer"
            )
    rules = document.get("rules")
    if not isinstance(rules, list):
        raise ConfigurationError("lint document field 'rules' must be a list")
    for index, rule in enumerate(rules):
        if not isinstance(rule, dict) or not all(
            isinstance(rule.get(key), str) for key in ("id", "category", "description")
        ):
            raise ConfigurationError(
                f"lint document rule {index} must have string id/category/description"
            )
    for key in ("findings", "suppressed"):
        items = document.get(key)
        if not isinstance(items, list):
            raise ConfigurationError(f"lint document field {key!r} must be a list")
        for index, item in enumerate(items):
            _validate_finding(item, f"{key}[{index}]")
    if len(document["findings"]) != summary["findings"]:
        raise ConfigurationError("lint summary 'findings' does not match the findings list")
