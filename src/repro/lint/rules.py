"""The repo-specific rule catalogue: seven contracts, statically enforced.

Each rule turns a convention the platform's correctness rests on into an
AST check (see ``docs/architecture.md`` § Static guarantees for the
prose version of every contract):

========  ====================  ==============================================
Id        Category              Contract
========  ====================  ==============================================
RL001     backend-purity        ``xp``-taking kernels never call numpy
                                directly, except through the documented
                                ``xp.asarray`` lifting idiom / RNG escape
                                hatch.
RL002     rng-discipline        no legacy numpy global-state RNG, no stdlib
                                ``random`` — only seeded ``Generator`` draws.
RL003     determinism           result-producing modules never read clocks,
                                entropy, or iterate sets into output.
RL004     telemetry-isolation   the ``telemetry`` envelope key is invisible
                                to result identity, reports and figures.
RL005     registry-completeness every experiment driver registers
                                ``engines``/``metrics``/``plot`` and is
                                imported by the package façade.
RL006     exception-hygiene     library validation raises
                                :mod:`repro.exceptions` types — no bare
                                ``Exception``, no ``assert``.
RL007     document-validation   :mod:`repro.fabric` document writers
                                round-trip a ``validate_*`` checker before
                                any bytes hit disk.
========  ====================  ==============================================

Deliberate exceptions are blessed in source with ``# lint-ok: RLnnn``
pragmas (RL001 additionally honours a pragma on the enclosing ``def``
line, for functions that are *documented* numpy boundaries).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.lint.engine import (
    Finding,
    ImportMap,
    LintContext,
    Rule,
    call_name,
    iter_functions,
    keyword_map,
    register_rule,
)

__all__ = [
    "RL001",
    "RL002",
    "RL003",
    "RL004",
    "RL005",
    "RL006",
    "RL007",
]

#: numpy attributes an ``xp`` kernel may touch directly: dtypes, scalar
#: type hierarchy, array type (``isinstance`` checks) and constants —
#: names that configure numpy calls elsewhere rather than compute arrays.
# fmt: off
_NP_PASSIVE_ATTRS = frozenset(
    {
        "bool_", "complex64", "complex128", "float16", "float32", "float64",
        "int8", "int16", "int32", "int64", "intp",
        "uint8", "uint16", "uint32", "uint64",
        "dtype", "ndarray", "generic", "number", "integer", "floating",
        "complexfloating", "inexact", "signedinteger", "unsignedinteger",
        "newaxis", "inf", "nan", "pi", "e", "euler_gamma",
    }
)
# fmt: on

#: The non-legacy core of ``numpy.random``: seeded generators and the bit
#: generators that feed them.  Everything else on ``np.random`` is the
#: global-state legacy API.
# fmt: off
_NP_RANDOM_OK = frozenset(
    {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }
)
# fmt: on

#: Wall-clock / entropy calls that make output depend on when or where it
#: ran; each maps to the hint shown in the finding message.
_NONDETERMINISTIC_CALLS = {
    "time.time": "use no clock in result-producing code (runtimes ride the envelope separately)",
    "time.time_ns": "use no clock in result-producing code",
    "datetime.datetime.now": "generated documents must not embed timestamps",
    "datetime.datetime.utcnow": "generated documents must not embed timestamps",
    "datetime.date.today": "generated documents must not embed dates",
    "os.urandom": "seed a numpy Generator instead of reading OS entropy",
    "uuid.uuid1": "derive identifiers from content hashes, not UUIDs",
    "uuid.uuid4": "derive identifiers from content hashes, not UUIDs",
}

#: Result-producing modules: what they emit is committed and diffed
#: byte-for-byte, so any run-to-run variance is a bug.
_RESULT_SCOPE = r"repro/(api/(report|result)\.py|plots/[^/]+\.py)$"

#: Modules that define result identity or render envelopes into
#: documents — the places the ``telemetry`` key must stay invisible.
_TELEMETRY_SCOPE = r"repro/(api/(report|store)\.py|plots/[^/]+\.py)$"

#: Experiment driver modules (the package façade is handled separately).
_DRIVER_SCOPE = r"repro/experiments/(?!__init__\.py)[^/]+\.py$"

#: Test code is exempt from library exception hygiene (pytest asserts).
_TEST_EXCLUDE = r"(^|/)tests?/|(^|/)test_[^/]+\.py$|conftest\.py$"


def _numpy_attribute_roots(
    tree_part: Iterable[ast.AST], imports: ImportMap
) -> Iterator[tuple[ast.AST, str]]:
    """Outermost ``np.*`` attribute chains (and bare ``np`` names) with their
    dotted paths; inner attributes of a matched chain are not re-reported."""
    seen: set[ast.AST] = set()
    for node in tree_part:
        if node in seen:
            continue
        if isinstance(node, (ast.Attribute, ast.Name)):
            dotted = imports.dotted(node)
            if dotted == "numpy" or (dotted and dotted.startswith("numpy.")):
                inner = node
                while isinstance(inner, ast.Attribute):
                    seen.add(inner.value)
                    inner = inner.value
                yield node, dotted


def _inside_asarray_call(ancestors: list[ast.Call], imports: ImportMap) -> bool:
    """Whether any enclosing call is ``<namespace>.asarray(...)`` — the
    documented lifting idiom for numpy-built tables and RNG draws.

    ``np.asarray(...)`` itself does not count: lifting onto the *numpy*
    namespace inside an ``xp`` kernel is exactly the bug RL001 exists to
    catch.
    """
    for call in ancestors:
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr == "asarray":
            receiver = imports.dotted(func.value)
            if receiver is None or not receiver.startswith("numpy"):
                return True
    return False


def _check_backend_purity(context: LintContext) -> Iterator[Finding]:
    imports = ImportMap(context.tree)
    for info in iter_functions(context.tree):
        if "xp" not in info.params:
            continue
        # Walk with an explicit stack so each node knows its Call ancestry
        # (the asarray-lift whitelist needs the enclosing calls).
        stack: list[tuple[ast.AST, list[ast.Call]]] = [
            (child, []) for child in ast.iter_child_nodes(info.node)
        ]
        reported_chains: set[ast.AST] = set()
        while stack:
            node, calls = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested_params = {
                    arg.arg
                    for arg in (
                        *node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs
                    )
                }
                if "xp" in nested_params:
                    continue  # visited as its own function
            next_calls = calls + [node] if isinstance(node, ast.Call) else calls
            for child in ast.iter_child_nodes(node):
                stack.append((child, next_calls))
            if node in reported_chains or not isinstance(node, ast.Attribute):
                continue
            dotted = imports.dotted(node)
            if not dotted or not dotted.startswith("numpy."):
                continue
            inner: ast.AST = node
            while isinstance(inner, ast.Attribute):
                reported_chains.add(inner.value)
                inner = inner.value
            head = dotted.split(".")[1]
            if head in _NP_PASSIVE_ATTRS or head == "random":
                continue  # dtypes/constants; RNG discipline is RL002's job
            if _inside_asarray_call(calls, imports):
                continue  # the xp.asarray(...) lifting idiom
            yield context.finding(
                RL001,
                node.lineno,
                f"function {info.node.name}() takes an `xp` namespace but calls "
                f"{dotted} directly",
                anchor_lines=(info.node.lineno,),
            )


RL001 = register_rule(
    Rule(
        id="RL001",
        category="backend-purity",
        description=(
            "functions taking an `xp` array namespace must not call numpy "
            "directly (lift constants/draws with xp.asarray; dtypes and "
            "np.random Generators are the documented escape hatches)"
        ),
        fix_hint=(
            "use the xp namespace, wrap the numpy value in xp.asarray(...), or "
            "mark a documented numpy boundary with `# lint-ok: RL001 -- reason` "
            "on the def line"
        ),
        check=_check_backend_purity,
    )
)


def _check_rng_discipline(context: LintContext) -> Iterator[Finding]:
    imports = ImportMap(context.tree)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield context.finding(
                        RL002,
                        node.lineno,
                        "stdlib `random` is process-global state; draw from a "
                        "seeded numpy Generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module and node.module.split(".")[0] == "random":
                yield context.finding(
                    RL002,
                    node.lineno,
                    "stdlib `random` is process-global state; draw from a "
                    "seeded numpy Generator instead",
                )
    for node, dotted in _numpy_attribute_roots(ast.walk(context.tree), imports):
        if not dotted.startswith("numpy.random."):
            continue
        member = dotted.split(".")[2]
        if member not in _NP_RANDOM_OK:
            yield context.finding(
                RL002,
                node.lineno,
                f"{dotted} is the legacy global-state RNG API; use "
                "np.random.default_rng(seed) / Generator methods",
            )


RL002 = register_rule(
    Rule(
        id="RL002",
        category="rng-discipline",
        description=(
            "no np.random.seed / legacy np.random.* global-state API and no "
            "stdlib `random` — randomness flows through seeded numpy Generators"
        ),
        fix_hint="create a Generator with np.random.default_rng(seed) and pass it explicitly",
        check=_check_rng_discipline,
    )
)


def _is_set_expression(node: ast.expr, imports: ImportMap) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset") and imports.resolve(node.func.id) is None
    return False


def _check_determinism(context: LintContext) -> Iterator[Finding]:
    imports = ImportMap(context.tree)
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            dotted = imports.dotted(node.func)
            if dotted in _NONDETERMINISTIC_CALLS:
                yield context.finding(
                    RL003,
                    node.lineno,
                    f"{dotted}() in a result-producing module: "
                    f"{_NONDETERMINISTIC_CALLS[dotted]}",
                )
        iterables: list[ast.expr] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            iterables.extend(generator.iter for generator in node.generators)
        for iterable in iterables:
            if _is_set_expression(iterable, imports):
                yield context.finding(
                    RL003,
                    iterable.lineno,
                    "iterating a set in a result-producing module leaks hash "
                    "order into output",
                )


RL003 = register_rule(
    Rule(
        id="RL003",
        category="determinism",
        description=(
            "result-producing modules (repro.api.report, repro.api.result, "
            "repro.plots) must not read clocks/entropy or iterate sets into output"
        ),
        fix_hint="drop the clock/entropy call, or iterate sorted(...) for a stable order",
        check=_check_determinism,
        scope=_RESULT_SCOPE,
    )
)


def _check_telemetry_isolation(context: LintContext) -> Iterator[Finding]:
    message = (
        "the `telemetry` envelope key must not influence result identity, "
        "reports or figures (read it in repro.obs only)"
    )
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Attribute) and node.attr == "telemetry":
            yield context.finding(RL004, node.lineno, message)
        elif (
            isinstance(node, ast.Subscript)
            and isinstance(node.slice, ast.Constant)
            and node.slice.value == "telemetry"
        ):
            yield context.finding(RL004, node.lineno, message)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and node.args[0].value == "telemetry"
        ):
            yield context.finding(RL004, node.lineno, message)


RL004 = register_rule(
    Rule(
        id="RL004",
        category="telemetry-isolation",
        description=(
            "result_key/report/gallery code paths never read the `telemetry` "
            "envelope key — telemetry-on and telemetry-off campaigns must "
            "produce byte-identical documents"
        ),
        fix_hint="consume telemetry through repro.obs.stats, never in identity/report/plot code",
        check=_check_telemetry_isolation,
        scope=_TELEMETRY_SCOPE,
    )
)

#: Keywords every driver's register(...) call must pass with a non-None
#: value for the campaign/report/figure pipeline to cover it end to end.
_REQUIRED_REGISTER_KEYWORDS = ("engines", "metrics", "plot")


def _driver_module_name(path: str) -> str:
    return path.rsplit("/", 1)[-1].removesuffix(".py")


def _facade_imports(context: LintContext) -> set[str]:
    """Driver modules the experiments package façade imports."""
    imported: set[str] = set()
    for node in ast.walk(context.tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro.experiments" or node.module.endswith(".experiments")
        ):
            imported.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom) and node.level >= 1 and node.module is None:
            imported.update(alias.name for alias in node.names)
    return imported


def _check_registry_completeness(contexts: list[LintContext]) -> Iterator[Finding]:
    drivers = [c for c in contexts if re.search(_DRIVER_SCOPE, c.path)]
    facades = [c for c in contexts if re.search(r"repro/experiments/__init__\.py$", c.path)]
    facade_imports: set[str] | None = None
    if facades:
        facade_imports = set()
        for facade in facades:
            facade_imports |= _facade_imports(facade)
    for context in drivers:
        register_calls = [
            node
            for node in ast.walk(context.tree)
            if isinstance(node, ast.Call) and call_name(node) == "register"
        ]
        if not register_calls:
            yield context.finding(
                RL005,
                1,
                "experiment driver module never calls repro.api.register(...)",
            )
        for call in register_calls:
            keywords = keyword_map(call)
            missing = [
                name
                for name in _REQUIRED_REGISTER_KEYWORDS
                if name not in keywords
                or (
                    isinstance(keywords[name], ast.Constant)
                    and keywords[name].value is None
                )
            ]
            if missing:
                yield context.finding(
                    RL005,
                    call.lineno,
                    f"register(...) is missing required hook(s): {', '.join(missing)}",
                )
        if facade_imports is not None:
            module = _driver_module_name(context.path)
            if module not in facade_imports:
                yield context.finding(
                    RL005,
                    1,
                    f"driver {module!r} is not imported by repro/experiments/"
                    "__init__.py, so it never registers",
                )


RL005 = register_rule(
    Rule(
        id="RL005",
        category="registry-completeness",
        description=(
            "every repro.experiments driver registers engines, metrics and "
            "plot hooks and is imported by the package façade"
        ),
        fix_hint=(
            "pass engines=/metrics=/plot= to register(...) and import the "
            "module in repro/experiments/__init__.py"
        ),
        check=_check_registry_completeness,
        kind="project",
    )
)


def _check_exception_hygiene(context: LintContext) -> Iterator[Finding]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Assert):
            yield context.finding(
                RL006,
                node.lineno,
                "`assert` in library code vanishes under python -O; raise a "
                "repro.exceptions type",
            )
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in ("Exception", "BaseException", "AssertionError"):
                yield context.finding(
                    RL006,
                    node.lineno,
                    f"raise {name} is uncatchable-by-type for callers; use a "
                    "repro.exceptions type",
                )


RL006 = register_rule(
    Rule(
        id="RL006",
        category="exception-hygiene",
        description=(
            "library validation raises repro.exceptions types — no bare "
            "Exception/BaseException/AssertionError and no assert statements"
        ),
        fix_hint="raise ConfigurationError (or another repro.exceptions type) with a precise message",
        check=_check_exception_hygiene,
        scope=r"repro/",
        exclude=_TEST_EXCLUDE,
    )
)

#: Call attribute names that put document bytes on disk (or a stream).
_WRITE_ATTRS = ("write_text", "write_bytes")


def _check_document_validation(context: LintContext) -> Iterator[Finding]:
    imports = ImportMap(context.tree)
    for info in iter_functions(context.tree):
        first_write: ast.Call | None = None
        validates = False
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            name = func.id if isinstance(func, ast.Name) else None
            is_write = attr in _WRITE_ATTRS or imports.dotted(func) == "json.dump"
            if is_write and first_write is None:
                first_write = node
            if (attr or name or "").startswith("validate_"):
                validates = True
        if first_write is not None and not validates:
            yield context.finding(
                RL007,
                first_write.lineno,
                f"function {info.node.name}() writes a document without "
                "round-tripping a validate_*() checker first",
                anchor_lines=(info.node.lineno,),
            )


RL007 = register_rule(
    Rule(
        id="RL007",
        category="document-validation",
        description=(
            "repro.fabric functions that serialize documents to disk "
            "(write_text/write_bytes/json.dump) must call a validate_*() "
            "checker in the same function — invalid manifests never get written"
        ),
        fix_hint="run the document through its validate_*() function before writing the bytes",
        check=_check_document_validation,
        scope=r"repro/fabric/",
    )
)
