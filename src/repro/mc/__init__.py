"""``repro.mc`` — the batched Monte-Carlo PHY engine.

Three layers, each usable on its own:

* **Batched kernels** (:mod:`repro.mc.viterbi`, :mod:`repro.mc.kernels`):
  numpy-vectorised, bit-exact counterparts of the scalar 802.11 PHY blocks —
  trellis-batched hard-decision Viterbi, constellation (de)mapping, block
  (de)interleaving, scrambling and (de)puncturing over ``[N, L]`` batches.
* **Sweep driver** (:mod:`repro.mc.sweep`, :mod:`repro.mc.channel`):
  :func:`run_sweep` evaluates whole batches of Monte-Carlo trials per
  operating point; the channel helpers evaluate arrays of link-budget
  realisations in one call.
* **Link abstraction** (:mod:`repro.mc.link_abstraction`): memoised
  PER-vs-SINR tables that let the fleet simulator resolve packet outcomes
  by table lookup + Bernoulli draw instead of per-packet PHY work.
"""

from repro.mc.channel import BatchLinkResult, backscatter_link_batch, direct_rssi_batch
from repro.mc.kernels import (
    deinterleave_batch,
    demap_batch,
    depuncture_batch,
    interleave_batch,
    map_batch,
    puncture_batch,
    scramble_batch,
)
from repro.mc.link_abstraction import LinkAbstraction, PerTable
from repro.mc.sweep import (
    AnalyticWifiPerPipeline,
    CodedOfdmPipeline,
    OokBerPipeline,
    SweepResult,
    run_sweep,
)
from repro.mc.viterbi import BatchViterbiDecoder, encode_batch

__all__ = [
    "BatchLinkResult",
    "backscatter_link_batch",
    "direct_rssi_batch",
    "deinterleave_batch",
    "demap_batch",
    "depuncture_batch",
    "interleave_batch",
    "map_batch",
    "puncture_batch",
    "scramble_batch",
    "LinkAbstraction",
    "PerTable",
    "AnalyticWifiPerPipeline",
    "CodedOfdmPipeline",
    "OokBerPipeline",
    "SweepResult",
    "run_sweep",
    "BatchViterbiDecoder",
    "encode_batch",
]
