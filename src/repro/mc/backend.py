"""Pluggable array-API backends for the Monte-Carlo hot path.

Every hot-path kernel in :mod:`repro.mc` takes an explicit ``xp``
namespace and restricts itself to operations in the Python array-API
standard, so the same code runs on numpy (the committed-document
reference), CuPy, JAX, or the ``array-api-strict`` conformance
namespace.  This module is the resolution layer between a *backend
name* (what specs, the CLI and ``REPRO_BACKEND`` carry) and the
namespace object the kernels consume:

* :func:`get_namespace` maps a backend name or an array to its
  namespace.
* :data:`BACKENDS` is the registry of :class:`ArrayBackend` entries —
  ``numpy`` is always present; ``cupy``, ``jax`` and
  ``array-api-strict`` are registered when importable.
* :func:`default_backend` honours the ``REPRO_BACKEND`` environment
  variable and falls back to ``numpy``.

**The numpy-only escape hatch.**  The array-API standard deliberately
omits random number generation, so every random draw in the hot path
stays on ``numpy.random.Generator`` and is converted with
``xp.asarray(...)`` at the kernel boundary.  This is a feature, not a
limitation: because the draws are bit-identical regardless of backend,
two backends that agree on deterministic arithmetic produce
float-identical sweep results — which is exactly what the
backend-parity test suite asserts.

When the real ``array-api-strict`` package is not installed, a name
``array-api-strict`` is still registered, backed by an internal
whitelist proxy over numpy (:class:`_StrictNamespace`) that raises
``AttributeError`` for any name outside the standard.  It catches the
same accidental numpy-isms without adding a dependency; the CI job
installs the real package and runs the kernel suite under it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ArrayBackend",
    "BACKENDS",
    "backend_names",
    "default_backend",
    "get_backend",
    "get_namespace",
    "resolve_engine_backend",
    "resolve_namespace",
    "to_numpy",
]

#: Environment variable consulted by :func:`default_backend`.
ENV_VAR = "REPRO_BACKEND"

#: Names of the 2023.12/2024.12 array-API standard that the strict shim
#: exposes.  Everything else raises ``AttributeError`` — the same
#: failure mode as the real ``array-api-strict`` package, which is the
#: point: kernels written against the shim cannot silently lean on
#: numpy extensions such as ``ravel`` or fancy multi-axis indexing.
_ARRAY_API_NAMES = frozenset(
    {
        # creation
        "arange", "asarray", "empty", "empty_like", "eye", "from_dlpack", "full",
        "full_like", "linspace", "meshgrid", "ones", "ones_like", "tril", "triu",
        "zeros", "zeros_like",
        # manipulation
        "broadcast_arrays", "broadcast_to", "concat", "expand_dims", "flip",
        "moveaxis", "permute_dims", "repeat", "reshape", "roll", "squeeze",
        "stack", "tile", "unstack",
        # element-wise
        "abs", "acos", "acosh", "add", "asin", "asinh", "atan", "atan2", "atanh",
        "bitwise_and", "bitwise_invert", "bitwise_left_shift", "bitwise_or",
        "bitwise_right_shift", "bitwise_xor", "ceil", "clip", "conj", "copysign",
        "cos", "cosh", "divide", "equal", "exp", "expm1", "floor", "floor_divide",
        "greater", "greater_equal", "hypot", "imag", "isfinite", "isinf", "isnan",
        "less", "less_equal", "log", "log1p", "log2", "log10", "logaddexp",
        "logical_and", "logical_not", "logical_or", "logical_xor", "maximum",
        "minimum", "multiply", "negative", "nextafter", "not_equal", "positive",
        "pow", "real", "reciprocal", "remainder", "round", "sign", "signbit",
        "sin", "sinh", "sqrt", "square", "subtract", "tan", "tanh", "trunc",
        # statistical / reduction
        "all", "any", "argmax", "argmin", "count_nonzero", "cumulative_prod",
        "cumulative_sum", "max", "mean", "min", "prod", "std", "sum", "var",
        # searching / sorting / sets
        "argsort", "nonzero", "searchsorted", "sort", "unique_all",
        "unique_counts", "unique_inverse", "unique_values", "where",
        # indexing
        "take", "take_along_axis",
        # linear algebra
        "matmul", "matrix_transpose", "tensordot", "vecdot",
        # data types
        "astype", "can_cast", "finfo", "iinfo", "isdtype", "result_type",
        "bool", "complex64", "complex128", "float32", "float64",
        "int8", "int16", "int32", "int64",
        "uint8", "uint16", "uint32", "uint64",
        # constants
        "e", "inf", "nan", "newaxis", "pi",
    }
)


class _StrictNamespace:
    """Whitelist proxy over numpy exposing only array-API names.

    Arrays flowing through it remain plain ``numpy.ndarray``, so results
    are bit-identical to the numpy backend by construction — the shim
    constrains the *operation set*, not the arithmetic.
    """

    __array_api_version__ = "2023.12"

    def __getattr__(self, name: str) -> Any:
        if name in _ARRAY_API_NAMES:
            try:
                return getattr(np, name)
            except AttributeError as exc:  # pragma: no cover - numpy too old
                raise AttributeError(
                    f"installed numpy lacks array-API name {name!r}; numpy >= 2.0 required"
                ) from exc
        raise AttributeError(
            f"{name!r} is not part of the array-API standard "
            "(strict backend shim; use a portable operation)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<repro.mc.backend strict array-API shim over numpy>"


@dataclass(frozen=True)
class ArrayBackend:
    """One registered array-API backend.

    Attributes
    ----------
    name:
        Registry key — what ``--backend``, ``REPRO_BACKEND`` and the
        spec/envelope ``backend`` field carry.
    xp:
        The array namespace handed to kernels.
    description:
        One line for ``python -m repro backends``.
    to_numpy:
        Converter from this backend's arrays to ``numpy.ndarray`` —
        applied at the driver boundary so payloads always serialise.
    simulated:
        True when the entry is backed by the internal shim rather than
        the real package of that name.
    """

    name: str
    xp: Any
    description: str
    to_numpy: Callable[[Any], np.ndarray] = field(default=np.asarray)
    simulated: bool = False


def _generic_to_numpy(array: Any) -> np.ndarray:
    """Best-effort conversion of any backend's array to numpy."""
    if isinstance(array, np.ndarray):
        return array
    for convert in (np.asarray, np.from_dlpack):
        try:
            return np.asarray(convert(array))
        except (TypeError, RuntimeError, BufferError):
            continue
    unwrapped = getattr(array, "_array", None)  # array_api_strict internals
    if isinstance(unwrapped, np.ndarray):
        return unwrapped
    raise TypeError(f"cannot convert {type(array).__name__} to numpy")


def _register_backends() -> dict[str, ArrayBackend]:
    backends: dict[str, ArrayBackend] = {
        "numpy": ArrayBackend(
            name="numpy",
            xp=np,
            description=f"numpy {np.__version__} — CPU reference (committed documents)",
        )
    }
    try:
        import array_api_strict  # type: ignore[import-not-found]

        backends["array-api-strict"] = ArrayBackend(
            name="array-api-strict",
            xp=array_api_strict,
            description=(
                f"array_api_strict {getattr(array_api_strict, '__version__', '?')}"
                " — standard-conformance namespace (numpy-backed)"
            ),
            to_numpy=_generic_to_numpy,
        )
    except ImportError:
        backends["array-api-strict"] = ArrayBackend(
            name="array-api-strict",
            xp=_StrictNamespace(),
            description="internal strict shim over numpy — array-API whitelist, numpy arrays",
            simulated=True,
        )
    try:
        import cupy  # type: ignore[import-not-found]

        backends["cupy"] = ArrayBackend(
            name="cupy",
            xp=cupy,
            description=f"cupy {cupy.__version__} — CUDA GPU arrays",
            to_numpy=lambda array: np.asarray(cupy.asnumpy(array)),
        )
    except ImportError:
        pass
    try:
        import jax.numpy as jnp  # type: ignore[import-not-found]

        backends["jax"] = ArrayBackend(
            name="jax",
            xp=jnp,
            description="jax.numpy — XLA-compiled arrays (CPU/GPU/TPU)",
            to_numpy=_generic_to_numpy,
        )
    except ImportError:
        pass
    return backends


#: The backend registry.  ``numpy`` is always present; the others are
#: registered when their package imports (or, for ``array-api-strict``,
#: simulated by the internal shim so the conformance path always exists).
BACKENDS: dict[str, ArrayBackend] = _register_backends()


def backend_names() -> tuple[str, ...]:
    """Registered backend names, ``numpy`` first."""
    return tuple(sorted(BACKENDS, key=lambda name: (name != "numpy", name)))


def get_backend(name: str | None = None) -> ArrayBackend:
    """Look up a backend by name (``None`` → :func:`default_backend`)."""
    if name is None:
        return default_backend()
    try:
        return BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown array backend {name!r}; registered: {list(backend_names())}"
        ) from None


def default_backend() -> ArrayBackend:
    """The backend named by ``REPRO_BACKEND``, else ``numpy``.

    The environment variable is read on every call (not cached) so test
    fixtures and subprocess workers observe changes immediately.
    """
    name = os.environ.get(ENV_VAR, "").strip()
    if not name:
        return BACKENDS["numpy"]
    return get_backend(name)


def get_namespace(name_or_array: Any) -> Any:
    """Resolve a backend name or an array to its array namespace.

    Accepts a registered backend name (``"numpy"``,
    ``"array-api-strict"``, ...), ``None`` (the default backend), any
    object implementing ``__array_namespace__``, or a plain numpy
    array.
    """
    if name_or_array is None:
        return default_backend().xp
    if isinstance(name_or_array, str):
        return get_backend(name_or_array).xp
    if isinstance(name_or_array, np.ndarray):
        return np
    namespace = getattr(name_or_array, "__array_namespace__", None)
    if namespace is not None:
        return namespace()
    raise ConfigurationError(
        f"cannot resolve an array namespace from {type(name_or_array).__name__!r}; "
        "pass a registered backend name or an array-API array"
    )


def resolve_namespace(xp: Any) -> Any:
    """Normalise a kernel's ``xp`` argument to a namespace object.

    Kernels accept ``xp=None`` (default backend), a backend name, or a
    namespace directly — this helper funnels all three to a namespace.
    """
    if xp is None:
        return default_backend().xp
    if isinstance(xp, str):
        return get_backend(xp).xp
    return xp


def resolve_engine_backend(
    experiment: str,
    engine: str,
    backend: str | None,
    *,
    accelerated: tuple[str, ...] = ("batch",),
) -> Any:
    """Namespace for a driver's ``backend`` parameter, engine-checked.

    Scalar (per-realisation loop) engines are numpy-only by construction,
    so a non-numpy backend combined with one is a configuration error
    rather than a silent fallback.  Returns the namespace for *backend*
    (``None`` → the default backend).
    """
    name = backend if backend is not None else default_backend().name
    if name != "numpy" and engine not in accelerated:
        raise ConfigurationError(
            f"experiment {experiment!r}: engine {engine!r} runs on numpy only; "
            f"backend {name!r} requires one of {list(accelerated)}"
        )
    return get_namespace(name)


def to_numpy(array: Any) -> np.ndarray:
    """Convert any registered backend's array to ``numpy.ndarray``.

    Identity for numpy arrays (including those flowing through the
    strict shim); device transfer for accelerator backends.  Applied at
    driver boundaries so result payloads always hold numpy arrays.
    """
    return _generic_to_numpy(array)
