"""Whole-batch link-budget evaluation for Monte-Carlo sweeps.

:class:`repro.channel.link_budget.BackscatterLinkBudget` evaluates one link
realisation at a time (two scalar shadowing draws per call).  The helpers
here evaluate *arrays* of link realisations in one shot: the same dB-domain
budget arithmetic, with the log-normal shadowing of every hop drawn as one
vectorised ``rng.normal(size=...)``.  Statistics are identical to looping
the scalar evaluator; only the RNG consumption order differs, which is why
the experiments expose both engines (``scalar`` for bit-reproducibility of
historical seeds, ``batch`` for speed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.link_budget import BackscatterLinkBudget, DirectLinkBudget
from repro.channel.tissue import tissue_attenuation_db
from repro.obs import metrics as obs

__all__ = ["BatchLinkResult", "backscatter_link_batch", "direct_rssi_batch"]


@dataclass(frozen=True)
class BatchLinkResult:
    """Vectorised counterpart of ``BackscatterLinkResult``.

    Attributes
    ----------
    rssi_dbm / incident_power_dbm / snr_db / detectable:
        Arrays, one entry per link realisation.
    """

    rssi_dbm: np.ndarray
    incident_power_dbm: np.ndarray
    snr_db: np.ndarray
    detectable: np.ndarray


def _shadowed_loss_db(
    model,
    distance_m: np.ndarray,
    *,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Path loss for an array of realisations under *model*'s shadowing.

    ``PathLossModel.loss_db`` broadcasts with one independent shadowing draw
    per element, so the batch path is a plain delegation.
    """
    return np.asarray(model.loss_db(np.asarray(distance_m, dtype=float), rng=rng))


def backscatter_link_batch(
    budget: BackscatterLinkBudget,
    source_to_tag_m: np.ndarray | float,
    tag_to_receiver_m: np.ndarray | float,
    *,
    rng: np.random.Generator | None = None,
) -> BatchLinkResult:
    """Evaluate the two-hop budget for arrays of hop distances at once.

    Scalars broadcast, so a fixed source→tag hop with many tag→receiver
    realisations is one call.
    """
    d_in, d_out = np.broadcast_arrays(
        np.asarray(source_to_tag_m, dtype=float), np.asarray(tag_to_receiver_m, dtype=float)
    )
    obs.count("channel.link_realisations", int(d_in.size))
    tissue_loss = 0.0
    if budget.tissue is not None:
        tissue_loss = tissue_attenuation_db(budget.tissue, passes=1)
    incident = (
        budget.source_power_dbm
        + budget.source_antenna.gain_dbi
        - _shadowed_loss_db(budget.path_loss, d_in, rng=rng)
        + budget.tag_antenna.gain_dbi
        - tissue_loss
    )
    reflected = incident - budget.conversion_loss_db
    rssi = (
        reflected
        + budget.tag_antenna.gain_dbi
        - tissue_loss
        - _shadowed_loss_db(budget.path_loss, d_out, rng=rng)
        + budget.receiver_antenna.gain_dbi
    )
    return BatchLinkResult(
        rssi_dbm=rssi,
        incident_power_dbm=incident,
        snr_db=np.asarray(budget.noise.snr_db(rssi)),
        detectable=rssi >= budget.receiver_sensitivity_dbm,
    )


def direct_rssi_batch(
    budget: DirectLinkBudget,
    distance_m: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Received power of the one-hop link for an array of distances."""
    obs.count("channel.link_realisations", int(np.size(distance_m)))
    tissue_loss = 0.0
    if budget.tissue is not None:
        tissue_loss = tissue_attenuation_db(budget.tissue, passes=1)
    return (
        budget.tx_power_dbm
        + budget.tx_antenna.gain_dbi
        - _shadowed_loss_db(budget.path_loss, np.asarray(distance_m, dtype=float), rng=rng)
        + budget.rx_antenna.gain_dbi
        - tissue_loss
    )
