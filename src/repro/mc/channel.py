"""Whole-batch link-budget evaluation for Monte-Carlo sweeps.

:class:`repro.channel.link_budget.BackscatterLinkBudget` evaluates one link
realisation at a time (two scalar shadowing draws per call).  The helpers
here evaluate *arrays* of link realisations in one shot: the same dB-domain
budget arithmetic, with the log-normal shadowing of every hop drawn as one
vectorised ``rng.normal(size=...)``.  Statistics are identical to looping
the scalar evaluator; only the RNG consumption order differs, which is why
the experiments expose both engines (``scalar`` for bit-reproducibility of
historical seeds, ``batch`` for speed).

Both batch evaluators take an array namespace via the keyword-only ``xp``
argument.  The shadowing draw itself stays on the numpy ``Generator``
(the RNG escape hatch shared with the rest of :mod:`repro.mc`), so the
same seed yields float-identical results on every backend; the dB-domain
arithmetic downstream of the draw runs on ``xp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.channel.link_budget import BackscatterLinkBudget, DirectLinkBudget
from repro.channel.tissue import tissue_attenuation_db
from repro.mc.backend import resolve_namespace
from repro.obs import metrics as obs

__all__ = ["BatchLinkResult", "backscatter_link_batch", "direct_rssi_batch"]


@dataclass(frozen=True)
class BatchLinkResult:
    """Vectorised counterpart of ``BackscatterLinkResult``.

    Attributes
    ----------
    rssi_dbm / incident_power_dbm / snr_db / detectable:
        Arrays (on the evaluating backend), one entry per link realisation.
    """

    rssi_dbm: Any
    incident_power_dbm: Any
    snr_db: Any
    detectable: Any


def _shadowed_loss_db(
    model,
    distance_m: np.ndarray,
    *,
    rng: np.random.Generator | None,
) -> np.ndarray:
    """Path loss for an array of realisations under *model*'s shadowing.

    ``PathLossModel.loss_db`` broadcasts with one independent shadowing draw
    per element, so the batch path is a plain delegation.  This is the
    numpy-only escape hatch: the draw happens on the numpy ``Generator``
    and the caller lifts the result onto its ``xp`` namespace.
    """
    return np.asarray(model.loss_db(np.asarray(distance_m, dtype=float), rng=rng))


def backscatter_link_batch(  # lint-ok: RL001 -- host-side staging for the numpy shadowing-RNG hatch
    budget: BackscatterLinkBudget,
    source_to_tag_m: np.ndarray | float,
    tag_to_receiver_m: np.ndarray | float,
    *,
    rng: np.random.Generator | None = None,
    xp=None,
) -> BatchLinkResult:
    """Evaluate the two-hop budget for arrays of hop distances at once.

    Scalars broadcast, so a fixed source→tag hop with many tag→receiver
    realisations is one call.
    """
    xp = resolve_namespace(xp)
    d_in, d_out = np.broadcast_arrays(
        np.asarray(source_to_tag_m, dtype=float), np.asarray(tag_to_receiver_m, dtype=float)
    )
    obs.count("channel.link_realisations", int(d_in.size))
    tissue_loss = 0.0
    if budget.tissue is not None:
        tissue_loss = tissue_attenuation_db(budget.tissue, passes=1)
    incident = (
        budget.source_power_dbm
        + budget.source_antenna.gain_dbi
        - xp.asarray(_shadowed_loss_db(budget.path_loss, d_in, rng=rng))
        + budget.tag_antenna.gain_dbi
        - tissue_loss
    )
    reflected = incident - budget.conversion_loss_db
    rssi = (
        reflected
        + budget.tag_antenna.gain_dbi
        - tissue_loss
        - xp.asarray(_shadowed_loss_db(budget.path_loss, d_out, rng=rng))
        + budget.receiver_antenna.gain_dbi
    )
    # NoiseModel.snr_db is a scalar dB offset, portable across namespaces.
    return BatchLinkResult(
        rssi_dbm=rssi,
        incident_power_dbm=incident,
        snr_db=budget.noise.snr_db(rssi),
        detectable=rssi >= budget.receiver_sensitivity_dbm,
    )


def direct_rssi_batch(  # lint-ok: RL001 -- host-side staging for the numpy shadowing-RNG hatch
    budget: DirectLinkBudget,
    distance_m: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
    xp=None,
):
    """Received power of the one-hop link for an array of distances."""
    xp = resolve_namespace(xp)
    obs.count("channel.link_realisations", int(np.size(distance_m)))
    tissue_loss = 0.0
    if budget.tissue is not None:
        tissue_loss = tissue_attenuation_db(budget.tissue, passes=1)
    return (
        budget.tx_power_dbm
        + budget.tx_antenna.gain_dbi
        - xp.asarray(_shadowed_loss_db(budget.path_loss, np.asarray(distance_m, dtype=float), rng=rng))
        + budget.rx_antenna.gain_dbi
        - tissue_loss
    )
