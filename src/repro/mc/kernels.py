"""Batched bit-level PHY kernels: mapping, interleaving, scrambling, puncturing.

Every function here operates on a whole batch (leading axis) at once and is
bit-exact with the scalar implementation it mirrors:

* :func:`map_batch` / :func:`demap_batch` ↔ :mod:`repro.wifi.ofdm.mapping`
  (the demapper's nearest-level quantiser keeps the scalar ``argmin``
  tie-break: a point exactly between two levels snaps to the lower one);
* :func:`demap_soft_batch` — the LLR-producing variant feeding
  soft-decision Viterbi (max-log per-axis LLRs for the Gray-coded square
  constellations; positive LLR ⇒ bit 1);
* :func:`interleave_batch` / :func:`deinterleave_batch` ↔
  :mod:`repro.wifi.ofdm.interleaver`;
* :func:`scramble_batch` ↔ :class:`repro.wifi.scrambler.Ieee80211Scrambler`
  (keystreams are cached per seed — the x^7+x^4+1 LFSR has only 127 states);
* :func:`puncture_batch` / :func:`depuncture_batch` ↔ the pattern masks of
  :mod:`repro.wifi.ofdm.convolutional`.

Each kernel takes an explicit array namespace via the keyword-only ``xp``
argument (``None`` → :func:`repro.mc.backend.default_backend`) and uses
only array-API-portable operations: gathers are ``take`` with
precomputed index maps instead of fancy/boolean indexing or scatter
assignment, so the same code runs under numpy, CuPy, JAX and
``array-api-strict``.  Small constant tables (permutations, constellation
levels, LFSR keystreams) are built in numpy and converted once per call
with ``xp.asarray`` — the documented numpy-only escape hatch, shared with
the RNG draws upstream.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mc.backend import resolve_namespace
from repro.wifi.ofdm.convolutional import PUNCTURE_PATTERNS
from repro.wifi.ofdm.interleaver import interleaver_permutation
from repro.wifi.ofdm.mapping import Modulation, _axis_table
from repro.wifi.scrambler import Ieee80211Scrambler

__all__ = [
    "map_batch",
    "demap_batch",
    "demap_soft_batch",
    "interleave_batch",
    "deinterleave_batch",
    "scramble_batch",
    "puncture_batch",
    "depuncture_batch",
]


def _as_matrix(bits, xp, *, dtype=None, keep_floating: bool = False, validate_bits: bool = False):
    """Coerce input to a 2-D matrix ``[N, L]`` (1-D input becomes one row).

    ``dtype`` is the target dtype; with ``keep_floating`` a real-floating
    input keeps its dtype (LLR rows flow through the bit-plumbing kernels
    unquantised).
    """
    arr = xp.asarray(bits)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a [N, L] matrix, got shape {arr.shape}")
    if not (keep_floating and xp.isdtype(arr.dtype, "real floating")):
        if dtype is not None and arr.dtype != dtype:
            arr = xp.astype(arr, dtype)
    if validate_bits and arr.size and bool(xp.any(arr > 1)):
        raise ValueError("bit arrays may only contain 0 and 1")
    return arr


def _axis_tables(bits_per_axis: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(levels ascending, bits-per-level aligned to them, level by bit-group index)."""
    table = _axis_table(bits_per_axis)
    levels = np.array(sorted(table.values()))
    inverse = {v: k for k, v in table.items()}
    level_bits = np.array([inverse[float(level)] for level in levels], dtype=np.uint8)
    by_index = np.zeros(1 << bits_per_axis)
    for bits, level in table.items():
        index = 0
        for position, bit in enumerate(bits):
            index |= bit << (bits_per_axis - 1 - position)
        by_index[index] = level
    return levels, level_bits, by_index


def _take_rows(xp, table, index):
    """Gather ``table[index]`` for an integer index array of any shape.

    Portable replacement for multi-dimensional fancy indexing: flatten
    the indices, ``take`` along axis 0, and restore the shape (plus the
    table's trailing axes, if any).
    """
    flat = xp.take(table, xp.reshape(index, (-1,)), axis=0)
    return xp.reshape(flat, index.shape + table.shape[1:])


def map_batch(bits, modulation: Modulation, *, xp=None):
    """Map coded bits ``[N, L]`` to constellation points ``[N, L / bps]``."""
    xp = resolve_namespace(xp)
    arr = _as_matrix(bits, xp, dtype=xp.uint8)
    n, length = arr.shape
    bps = modulation.bits_per_symbol
    if length % bps != 0:
        raise ConfigurationError(f"bit count {length} not a multiple of {bps}")
    groups = xp.reshape(arr, (n, length // bps, bps))
    if modulation is Modulation.BPSK:
        return xp.astype(2.0 * xp.astype(groups[:, :, 0], xp.float64) - 1.0, xp.complex128)
    half = bps // 2
    _, _, by_index = _axis_tables(half)
    by_index = xp.asarray(by_index)
    weights = xp.asarray(1 << np.arange(half - 1, -1, -1), dtype=xp.int64)
    i_index = xp.matmul(xp.astype(groups[:, :, :half], xp.int64), weights)
    q_index = xp.matmul(xp.astype(groups[:, :, half:], xp.int64), weights)
    i_level = _take_rows(xp, by_index, i_index)
    q_level = _take_rows(xp, by_index, q_index)
    return (xp.astype(i_level, xp.complex128) + 1j * xp.astype(q_level, xp.complex128)) * modulation.normalization


def demap_batch(symbols, modulation: Modulation, *, xp=None):
    """Hard-decision demap ``[N, S]`` points back to coded bits ``[N, S * bps]``."""
    xp = resolve_namespace(xp)
    sym = _as_matrix(symbols, xp, dtype=xp.complex128)
    n, count = sym.shape
    bps = modulation.bits_per_symbol
    if modulation is Modulation.BPSK:
        return xp.astype(xp.real(sym) > 0, xp.uint8)
    half = bps // 2
    levels, level_bits, _ = _axis_tables(half)
    midpoints = xp.asarray((levels[:-1] + levels[1:]) / 2.0)
    level_bits = xp.asarray(level_bits)
    scaled = sym / modulation.normalization
    # side='left': a point exactly on a midpoint picks the lower level, the
    # same choice the scalar demapper's first-occurrence argmin makes.
    i_bits = _take_rows(xp, level_bits, xp.searchsorted(midpoints, xp.reshape(xp.real(scaled), (-1,)), side="left"))
    q_bits = _take_rows(xp, level_bits, xp.searchsorted(midpoints, xp.reshape(xp.imag(scaled), (-1,)), side="left"))
    out = xp.concat([xp.reshape(i_bits, (n, count, half)), xp.reshape(q_bits, (n, count, half))], axis=2)
    return xp.reshape(out, (n, count * bps))


def demap_soft_batch(symbols, modulation: Modulation, *, noise_var: float, xp=None):
    """Max-log LLRs ``[N, S * bps]`` for received points ``[N, S]``.

    ``noise_var`` is the total complex noise variance E|n|² (twice the
    per-axis variance).  Sign convention: positive LLR ⇒ bit 1, matching
    :meth:`BatchViterbiDecoder.decode_batch` with ``soft=True``; a hard
    decision on the LLR sign reproduces :func:`demap_batch` exactly.

    For the Gray-coded square constellations the I and Q axes are
    independent PAM, so each coded bit's LLR is a per-axis two-minimum
    expression: ``(min_{levels: bit=0} d² − min_{levels: bit=1} d²) /
    noise_var`` with ``d`` the distance from the received coordinate to
    the scaled level.
    """
    if noise_var <= 0:
        raise ConfigurationError(f"noise_var must be positive, got {noise_var}")
    xp = resolve_namespace(xp)
    sym = _as_matrix(symbols, xp, dtype=xp.complex128)
    n, count = sym.shape
    bps = modulation.bits_per_symbol
    if modulation is Modulation.BPSK:
        return 4.0 * xp.real(sym) / noise_var
    half = bps // 2
    levels, level_bits, _ = _axis_tables(half)
    scaled_levels = xp.asarray(levels * modulation.normalization)
    columns = []
    for coordinate in (xp.real(sym), xp.imag(sym)):
        distance_sq = (coordinate[:, :, None] - scaled_levels[None, None, :]) ** 2
        for position in range(half):
            zero_levels = xp.asarray(np.flatnonzero(level_bits[:, position] == 0))
            one_levels = xp.asarray(np.flatnonzero(level_bits[:, position] == 1))
            nearest_zero = xp.min(xp.take(distance_sq, zero_levels, axis=2), axis=2)
            nearest_one = xp.min(xp.take(distance_sq, one_levels, axis=2), axis=2)
            columns.append((nearest_zero - nearest_one) / noise_var)
    return xp.reshape(xp.stack(columns, axis=2), (n, count * bps))


def interleave_batch(bits, bits_per_subcarrier: int, *, xp=None):
    """Interleave each row (one OFDM symbol's coded bits) of ``[N, n_cbps]``."""
    xp = resolve_namespace(xp)
    arr = _as_matrix(bits, xp, dtype=xp.uint8, keep_floating=True)
    perm = interleaver_permutation(arr.shape[1], bits_per_subcarrier)
    # out[:, perm] = arr  ⇔  gather with the inverse permutation (scatter
    # assignment is not array-API-portable).
    return xp.take(arr, xp.asarray(np.argsort(perm)), axis=1)


def deinterleave_batch(bits, bits_per_subcarrier: int, *, xp=None):
    """Invert :func:`interleave_batch` row-wise."""
    xp = resolve_namespace(xp)
    arr = _as_matrix(bits, xp, dtype=xp.uint8, keep_floating=True)
    perm = interleaver_permutation(arr.shape[1], bits_per_subcarrier)
    return xp.take(arr, xp.asarray(perm), axis=1)


_KEYSTREAM_CACHE: dict[int, np.ndarray] = {}


def _keystream(seed: int, length: int) -> np.ndarray:
    cached = _KEYSTREAM_CACHE.get(seed)
    if cached is None or cached.size < length:
        cached = Ieee80211Scrambler(seed).keystream(max(length, 256))
        _KEYSTREAM_CACHE[seed] = cached
    return cached[:length]


def _keystream_table(seeds, rows: int, length: int) -> np.ndarray:
    """Host-side LFSR keystreams: ``[length]`` for a shared scalar seed,
    ``[rows, length]`` for per-row seeds (numpy — lifted by the caller)."""
    if np.isscalar(seeds):
        return _keystream(int(seeds), length)
    seed_arr = np.asarray(seeds, dtype=np.int64).ravel()
    if seed_arr.size != rows:
        raise ConfigurationError(f"need one seed per row: {seed_arr.size} != {rows}")
    return np.stack([_keystream(int(seed), length) for seed in seed_arr])


def scramble_batch(bits, seeds, *, xp=None):
    """Scramble (or descramble) ``[N, L]`` bit rows.

    ``seeds`` is one shared 7-bit seed or a per-row array of them (always
    host-side integers — the LFSR keystream is the numpy escape hatch).
    """
    xp = resolve_namespace(xp)
    arr = _as_matrix(bits, xp, dtype=xp.uint8)
    n, length = arr.shape
    keystreams = _keystream_table(seeds, n, length)
    if keystreams.ndim == 1:
        return xp.bitwise_xor(arr, xp.asarray(keystreams)[None, :])
    return xp.bitwise_xor(arr, xp.asarray(keystreams))


def _survivor_mask(pattern: np.ndarray, width: int) -> np.ndarray:
    """Host-side boolean survivor mask: *pattern* tiled out to *width*."""
    return np.tile(pattern, width // pattern.size).astype(bool)


def _depuncture_gather(mask: np.ndarray, kept_total: int) -> np.ndarray:
    """Host-side gather map realising ``full[:, mask] = punctured``:
    surviving positions index their source column, punctured positions the
    zero column appended at index *kept_total*."""
    return np.where(mask, np.cumsum(mask) - 1, kept_total)


def puncture_batch(coded_bits, rate: str, *, xp=None):
    """Puncture each row of rate-1/2 coded bits up to 2/3 or 3/4."""
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    xp = resolve_namespace(xp)
    pattern = PUNCTURE_PATTERNS[rate]
    coded = _as_matrix(coded_bits, xp, dtype=xp.uint8, keep_floating=True)
    if coded.shape[1] % pattern.size != 0:
        raise ValueError(
            f"coded bit count {coded.shape[1]} not a multiple of puncture block {pattern.size}"
        )
    mask = _survivor_mask(pattern, coded.shape[1])
    return xp.take(coded, xp.asarray(np.flatnonzero(mask)), axis=1)


def depuncture_batch(punctured_bits, rate: str, *, xp=None):
    """Re-insert erasures row-wise; returns ``(bits[N, L], known_mask[L])``.

    Hard bit rows come back zero-filled ``uint8``; real-floating rows
    (LLRs) keep their dtype with erasures at LLR 0 — the "no information"
    value — and ``known_mask`` is always a host-side numpy bool array.
    """
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    xp = resolve_namespace(xp)
    pattern = PUNCTURE_PATTERNS[rate]
    punctured = _as_matrix(punctured_bits, xp, dtype=xp.uint8, keep_floating=True)
    kept_per_block = int(pattern.sum())
    if punctured.shape[1] % kept_per_block != 0:
        raise ValueError(
            f"punctured bit count {punctured.shape[1]} not a multiple of {kept_per_block}"
        )
    blocks = punctured.shape[1] // kept_per_block
    mask = _survivor_mask(pattern, blocks * pattern.size)
    kept_total = punctured.shape[1]
    gather = _depuncture_gather(mask, kept_total)
    zero_column = xp.zeros((punctured.shape[0], 1), dtype=punctured.dtype)
    full = xp.take(xp.concat([punctured, zero_column], axis=1), xp.asarray(gather), axis=1)
    return full, mask
