"""Batched bit-level PHY kernels: mapping, interleaving, scrambling, puncturing.

Every function here operates on a whole batch (leading axis) at once and is
bit-exact with the scalar implementation it mirrors:

* :func:`map_batch` / :func:`demap_batch` ↔ :mod:`repro.wifi.ofdm.mapping`
  (the demapper's nearest-level quantiser keeps the scalar ``argmin``
  tie-break: a point exactly between two levels snaps to the lower one);
* :func:`interleave_batch` / :func:`deinterleave_batch` ↔
  :mod:`repro.wifi.ofdm.interleaver`;
* :func:`scramble_batch` ↔ :class:`repro.wifi.scrambler.Ieee80211Scrambler`
  (keystreams are cached per seed — the x^7+x^4+1 LFSR has only 127 states);
* :func:`puncture_batch` / :func:`depuncture_batch` ↔ the pattern masks of
  :mod:`repro.wifi.ofdm.convolutional`.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.convolutional import PUNCTURE_PATTERNS
from repro.wifi.ofdm.interleaver import interleaver_permutation
from repro.wifi.ofdm.mapping import Modulation, _axis_table
from repro.wifi.scrambler import Ieee80211Scrambler

__all__ = [
    "map_batch",
    "demap_batch",
    "interleave_batch",
    "deinterleave_batch",
    "scramble_batch",
    "puncture_batch",
    "depuncture_batch",
]


def _as_matrix(bits: np.ndarray, dtype=np.uint8, *, validate_bits: bool = False) -> np.ndarray:
    """Coerce input to a 2-D matrix ``[N, L]`` (1-D input becomes one row)."""
    arr = np.asarray(bits)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2:
        raise ConfigurationError(f"expected a [N, L] matrix, got shape {arr.shape}")
    arr = arr.astype(dtype, copy=False)
    if validate_bits and arr.size and arr.max(initial=0) > 1:
        raise ValueError("bit arrays may only contain 0 and 1")
    return arr


def _axis_tables(bits_per_axis: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(levels ascending, bits-per-level aligned to them, level by bit-group index)."""
    table = _axis_table(bits_per_axis)
    levels = np.array(sorted(table.values()))
    inverse = {v: k for k, v in table.items()}
    level_bits = np.array([inverse[float(level)] for level in levels], dtype=np.uint8)
    by_index = np.zeros(1 << bits_per_axis)
    for bits, level in table.items():
        index = 0
        for position, bit in enumerate(bits):
            index |= bit << (bits_per_axis - 1 - position)
        by_index[index] = level
    return levels, level_bits, by_index


def map_batch(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Map coded bits ``[N, L]`` to constellation points ``[N, L / bps]``."""
    arr = _as_matrix(bits)
    n, length = arr.shape
    bps = modulation.bits_per_symbol
    if length % bps != 0:
        raise ConfigurationError(f"bit count {length} not a multiple of {bps}")
    groups = arr.reshape(n, -1, bps)
    if modulation is Modulation.BPSK:
        return (2.0 * groups[:, :, 0].astype(float) - 1.0).astype(complex)
    half = bps // 2
    _, _, by_index = _axis_tables(half)
    weights = 1 << np.arange(half - 1, -1, -1)
    i_index = groups[:, :, :half].astype(np.int64) @ weights
    q_index = groups[:, :, half:].astype(np.int64) @ weights
    return modulation.normalization * (by_index[i_index] + 1j * by_index[q_index])


def demap_batch(symbols: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Hard-decision demap ``[N, S]`` points back to coded bits ``[N, S * bps]``."""
    sym = _as_matrix(symbols, dtype=complex)
    n, count = sym.shape
    bps = modulation.bits_per_symbol
    if modulation is Modulation.BPSK:
        return (sym.real > 0).astype(np.uint8)
    half = bps // 2
    levels, level_bits, _ = _axis_tables(half)
    midpoints = (levels[:-1] + levels[1:]) / 2.0
    scaled = sym / modulation.normalization
    # side='left': a point exactly on a midpoint picks the lower level, the
    # same choice the scalar demapper's first-occurrence argmin makes.
    i_bits = level_bits[np.searchsorted(midpoints, scaled.real, side="left")]
    q_bits = level_bits[np.searchsorted(midpoints, scaled.imag, side="left")]
    out = np.empty((n, count, bps), dtype=np.uint8)
    out[:, :, :half] = i_bits
    out[:, :, half:] = q_bits
    return out.reshape(n, count * bps)


def interleave_batch(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Interleave each row (one OFDM symbol's coded bits) of ``[N, n_cbps]``."""
    arr = _as_matrix(bits)
    perm = interleaver_permutation(arr.shape[1], bits_per_subcarrier)
    out = np.zeros_like(arr)
    out[:, perm] = arr
    return out


def deinterleave_batch(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Invert :func:`interleave_batch` row-wise."""
    arr = _as_matrix(bits)
    perm = interleaver_permutation(arr.shape[1], bits_per_subcarrier)
    return arr[:, perm]


_KEYSTREAM_CACHE: dict[int, np.ndarray] = {}


def _keystream(seed: int, length: int) -> np.ndarray:
    cached = _KEYSTREAM_CACHE.get(seed)
    if cached is None or cached.size < length:
        cached = Ieee80211Scrambler(seed).keystream(max(length, 256))
        _KEYSTREAM_CACHE[seed] = cached
    return cached[:length]


def scramble_batch(bits: np.ndarray, seeds: int | np.ndarray) -> np.ndarray:
    """Scramble (or descramble) ``[N, L]`` bit rows.

    ``seeds`` is one shared 7-bit seed or a per-row array of them.
    """
    arr = _as_matrix(bits)
    n, length = arr.shape
    if np.isscalar(seeds):
        return np.bitwise_xor(arr, _keystream(int(seeds), length)[None, :])
    seed_arr = np.asarray(seeds, dtype=np.int64).ravel()
    if seed_arr.size != n:
        raise ConfigurationError(f"need one seed per row: {seed_arr.size} != {n}")
    keystreams = np.stack([_keystream(int(seed), length) for seed in seed_arr])
    return np.bitwise_xor(arr, keystreams)


def puncture_batch(coded_bits: np.ndarray, rate: str) -> np.ndarray:
    """Puncture each row of rate-1/2 coded bits up to 2/3 or 3/4."""
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = PUNCTURE_PATTERNS[rate]
    coded = _as_matrix(coded_bits)
    if coded.shape[1] % pattern.size != 0:
        raise ValueError(
            f"coded bit count {coded.shape[1]} not a multiple of puncture block {pattern.size}"
        )
    mask = np.tile(pattern, coded.shape[1] // pattern.size).astype(bool)
    return coded[:, mask]


def depuncture_batch(punctured_bits: np.ndarray, rate: str) -> tuple[np.ndarray, np.ndarray]:
    """Re-insert erasures row-wise; returns ``(bits[N, L], known_mask[L])``."""
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = PUNCTURE_PATTERNS[rate]
    punctured = _as_matrix(punctured_bits)
    kept_per_block = int(np.sum(pattern))
    if punctured.shape[1] % kept_per_block != 0:
        raise ValueError(
            f"punctured bit count {punctured.shape[1]} not a multiple of {kept_per_block}"
        )
    blocks = punctured.shape[1] // kept_per_block
    mask = np.tile(pattern, blocks).astype(bool)
    full = np.zeros((punctured.shape[0], blocks * pattern.size), dtype=np.uint8)
    full[:, mask] = punctured
    return full, mask
