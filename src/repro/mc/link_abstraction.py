"""Link abstraction: cached per-(rate, payload) PER tables over SINR bins.

Large-scale MAC simulators stay tractable by *not* evaluating a channel
error model per packet: the PHY is abstracted into a PER-vs-SINR table built
once per link class, and each packet outcome becomes one table lookup plus
one Bernoulli draw.  :class:`LinkAbstraction` implements exactly that for
the fleet simulator — tables are built lazily from the vectorised
:mod:`repro.mc` error-model kernels (exact closed form by default, optional
Monte-Carlo via :func:`repro.mc.sweep.run_sweep`), memoised per
``(rate_mbps, payload_bytes)``, and looked up by linear interpolation on the
SINR grid.

The approximation is valid whenever the analytic AWGN PER model itself is —
i.e. for the synthesized 802.11b packets whose fate the fleet medium already
judges analytically; the table only discretises the SINR axis (default
0.25 dB bins, well below the dB-scale granularity of the underlying model).
Exact per-packet evaluation remains the default; the table is opt-in via
``SharedMedium(link_abstraction=...)`` or ``FleetScenario(phy_fast_path=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.error_models import wifi_packet_error_rate
from repro.mc.sweep import AnalyticWifiPerPipeline, run_sweep
from repro.obs import metrics as obs
from repro.utils.dsp import scalar_or_array

__all__ = ["PerTable", "LinkAbstraction"]


@dataclass(frozen=True)
class PerTable:
    """One memoised PER-vs-SINR curve.

    Attributes
    ----------
    sinr_db:
        Bin centres (ascending).
    per:
        Packet error rate at each bin centre.
    rate_mbps / payload_bytes:
        Link class the table describes.
    """

    sinr_db: np.ndarray
    per: np.ndarray
    rate_mbps: float
    payload_bytes: int

    def lookup(self, sinr_db: float | np.ndarray) -> float | np.ndarray:
        """Interpolated PER; SINRs outside the grid clamp to the edge bins."""
        value = np.interp(np.asarray(sinr_db, dtype=float), self.sinr_db, self.per)
        return scalar_or_array(value, sinr_db)


class LinkAbstraction:
    """Lazily built, memoised PER tables for the netsim fast path.

    Parameters
    ----------
    sinr_min_db / sinr_max_db / bin_width_db:
        SINR grid.  Below the grid PER clamps to the (≈1.0) lowest-bin
        value, above it to the (≈0.0) highest-bin value.
    mc_trials:
        0 (default) evaluates the closed-form PER at the bin centres in one
        vectorised call; a positive value estimates each bin by Monte-Carlo
        through :func:`repro.mc.sweep.run_sweep` instead.
    seed:
        Seed of the Monte-Carlo estimator (unused when ``mc_trials == 0``).
    """

    def __init__(
        self,
        *,
        sinr_min_db: float = -15.0,
        sinr_max_db: float = 40.0,
        bin_width_db: float = 0.25,
        mc_trials: int = 0,
        seed: int = 2016,
    ) -> None:
        if sinr_max_db <= sinr_min_db:
            raise ConfigurationError("sinr_max_db must exceed sinr_min_db")
        if bin_width_db <= 0:
            raise ConfigurationError("bin_width_db must be positive")
        self.sinr_grid_db = np.arange(sinr_min_db, sinr_max_db + bin_width_db, bin_width_db)
        self.mc_trials = mc_trials
        self.seed = seed
        self._tables: dict[tuple[float, int], PerTable] = {}
        self.tables_built = 0
        self.lookups = 0

    def table(self, *, rate_mbps: float, payload_bytes: int) -> PerTable:
        """The (lazily built) PER table for one link class."""
        key = (float(rate_mbps), int(payload_bytes))
        cached = self._tables.get(key)
        if cached is None:
            cached = self._build(rate_mbps=key[0], payload_bytes=key[1])
            self._tables[key] = cached
            self.tables_built += 1
            obs.count("mc.link_abstraction.tables_built")
        return cached

    def per(self, sinr_db: float, *, rate_mbps: float, payload_bytes: int) -> float:
        """Table-lookup PER for one packet outcome."""
        self.lookups += 1
        obs.count("mc.link_abstraction.lookups")
        return self.table(rate_mbps=rate_mbps, payload_bytes=payload_bytes).lookup(sinr_db)

    def per_array(
        self, sinr_db: np.ndarray, *, rate_mbps: float, payload_bytes: int
    ) -> np.ndarray:
        """Vectorised lookup for a batch of SINRs of the same link class."""
        self.lookups += int(np.size(sinr_db))
        obs.count("mc.link_abstraction.lookups", int(np.size(sinr_db)))
        return np.asarray(
            self.table(rate_mbps=rate_mbps, payload_bytes=payload_bytes).lookup(sinr_db)
        )

    # ------------------------------------------------------------- internals
    def _build(self, *, rate_mbps: float, payload_bytes: int) -> PerTable:
        if self.mc_trials > 0:
            sweep = run_sweep(
                self.sinr_grid_db,
                self.mc_trials,
                AnalyticWifiPerPipeline(rate_mbps=rate_mbps, payload_bytes=payload_bytes),
                seed=self.seed,
            )
            per = sweep.error_rate
        else:
            per = np.asarray(
                wifi_packet_error_rate(
                    self.sinr_grid_db, rate_mbps=rate_mbps, payload_bytes=payload_bytes
                )
            )
        return PerTable(
            sinr_db=self.sinr_grid_db,
            per=per,
            rate_mbps=float(rate_mbps),
            payload_bytes=int(payload_bytes),
        )
