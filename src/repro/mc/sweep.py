"""Whole-batch Monte-Carlo sweep driver.

``run_sweep(snr_points, trials, pipeline)`` replaces the one-trial-at-a-time
loops of the PER/BER experiments: a *pipeline* evaluates all ``trials``
realisations of one operating point in a single vectorised call, and the
driver walks the operating points, chunking batches to bound memory.

Three pipelines cover the reproduction's needs:

* :class:`AnalyticWifiPerPipeline` — link-abstraction PER draws from the
  closed-form 802.11b error model (the fig11-style experiments);
* :class:`OokBerPipeline` — peak-detector downlink bit errors (fig13-style);
* :class:`CodedOfdmPipeline` — the full batched PHY chain
  scramble → convolutional encode → puncture → interleave → map → AWGN →
  demap → deinterleave → depuncture → batched Viterbi → descramble,
  exercising every kernel in :mod:`repro.mc` at waveform-accurate coding
  level without per-trial Python loops.  ``decision="soft"`` swaps the
  hard demapper for :func:`repro.mc.kernels.demap_soft_batch` LLRs and
  decodes with the soft-metric Viterbi (~2 dB at the PER ≈ 10⁻² operating
  point).

Sweeps run on any registered array backend: pass ``xp=`` (a namespace,
a backend name, or ``None`` for the default backend) and it is threaded
into every kernel.  Random draws stay on the numpy ``Generator`` — the
documented escape hatch that makes results float-identical across
backends — and each batch's statistic is converted back to numpy at the
driver boundary.  ``rng``/``seed``/``max_batch``/``xp`` are
keyword-only (the one-release positional shim was removed on schedule).
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.error_models import ber_ook_envelope, wifi_packet_error_rate
from repro.mc.backend import resolve_namespace, to_numpy
from repro.mc.kernels import (
    deinterleave_batch,
    demap_batch,
    demap_soft_batch,
    depuncture_batch,
    interleave_batch,
    map_batch,
    puncture_batch,
    scramble_batch,
)
from repro.mc.viterbi import BatchViterbiDecoder, encode_batch
from repro.obs import metrics as obs
from repro.wifi.ofdm.rates import OfdmRate

__all__ = [
    "SweepPipeline",
    "SweepResult",
    "run_sweep",
    "AnalyticWifiPerPipeline",
    "OokBerPipeline",
    "CodedOfdmPipeline",
]


class SweepPipeline(Protocol):
    """One Monte-Carlo experiment, evaluated a whole batch at a time."""

    def run_batch(
        self, snr_db: float, trials: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return a ``[trials]`` array of per-trial error statistics in [0, 1].

        PER pipelines return 0/1 packet-failure indicators; BER pipelines
        return each trial's bit-error fraction.  A pipeline may additionally
        accept a keyword-only ``xp`` array namespace; :func:`run_sweep`
        passes one only to pipelines whose signature takes it.
        """
        ...


@dataclass(frozen=True)
class SweepResult:
    """Aggregated sweep output.

    Attributes
    ----------
    snr_db:
        Operating points.
    error_rate:
        Mean per-trial error statistic at each point (PER or BER).
    std_error:
        Standard error of that mean (Monte-Carlo confidence half-width ~2×).
    trials:
        Trials per point.
    """

    snr_db: np.ndarray
    error_rate: np.ndarray
    std_error: np.ndarray
    trials: int


def run_sweep(  # lint-ok: RL001 -- statistics aggregate in numpy at the driver boundary (documented)
    snr_points_db: np.ndarray,
    trials: int,
    pipeline: SweepPipeline,
    *,
    rng: np.random.Generator | None = None,
    seed: int = 0,
    max_batch: int = 4096,
    xp=None,
) -> SweepResult:
    """Run *pipeline* at every operating point with *trials* realisations each.

    ``rng``, ``seed``, ``max_batch`` and ``xp`` are keyword-only.  ``xp``
    selects the array backend (namespace, registered name, or ``None`` for
    the default) and is forwarded to pipelines that accept it; the
    aggregated statistics always come back as numpy.  ``max_batch`` caps
    the realisations evaluated per vectorised call so arbitrarily large
    trial counts stay within memory (the batched Viterbi's survivor
    history is the dominant allocation: ``steps × N × 64`` bytes).
    """
    if trials < 1:
        raise ConfigurationError("trials must be at least 1")
    points = np.atleast_1d(np.asarray(snr_points_db, dtype=float))
    generator = rng if rng is not None else np.random.default_rng(seed)
    chunk = max(1, int(max_batch))
    batch_kwargs = {}
    if _accepts_xp(pipeline):
        batch_kwargs["xp"] = resolve_namespace(xp)

    error_rate = np.empty(points.size)
    std_error = np.empty(points.size)
    with obs.span(
        "mc.run_sweep",
        pipeline=type(pipeline).__name__,
        points=int(points.size),
        trials=int(trials),
    ):
        for index, snr_db in enumerate(points):
            stats: list[np.ndarray] = []
            remaining = trials
            while remaining > 0:
                batch = min(chunk, remaining)
                obs.count("mc.sweep.batches")
                obs.count("mc.sweep.trials", batch)
                with obs.span("mc.pipeline.run_batch", snr_db=float(snr_db), trials=batch):
                    outcome = pipeline.run_batch(float(snr_db), batch, generator, **batch_kwargs)
                    stats.append(np.asarray(to_numpy(outcome), dtype=float))
                remaining -= batch
            merged = np.concatenate(stats)
            error_rate[index] = float(np.mean(merged))
            std_error[index] = float(np.std(merged) / np.sqrt(merged.size))
    return SweepResult(
        snr_db=points, error_rate=error_rate, std_error=std_error, trials=trials
    )


def _accepts_xp(pipeline: SweepPipeline) -> bool:
    """Whether the pipeline's ``run_batch`` takes a keyword ``xp``."""
    try:
        parameters = inspect.signature(pipeline.run_batch).parameters
    except (TypeError, ValueError):  # builtins / odd callables: assume legacy
        return False
    if "xp" in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values())


@dataclass(frozen=True)
class AnalyticWifiPerPipeline:
    """Packet-failure draws from the analytic 802.11b PER model."""

    rate_mbps: float
    payload_bytes: int

    def run_batch(self, snr_db: float, trials: int, rng: np.random.Generator) -> np.ndarray:
        per = wifi_packet_error_rate(
            snr_db, rate_mbps=self.rate_mbps, payload_bytes=self.payload_bytes
        )
        return (rng.random(trials) < per).astype(float)


@dataclass(frozen=True)
class OokBerPipeline:
    """Peak-detector (OOK-envelope) downlink bit-error fractions."""

    bits_per_trial: int = 512

    def run_batch(self, snr_db: float, trials: int, rng: np.random.Generator) -> np.ndarray:
        ber = ber_ook_envelope(snr_db)
        return rng.binomial(self.bits_per_trial, ber, size=trials) / self.bits_per_trial


class CodedOfdmPipeline:
    """Full batched 802.11a/g coding chain over an AWGN symbol channel.

    Each trial is one codeword of ``num_symbols`` OFDM symbols at *rate*.
    ``statistic`` selects what :meth:`run_batch` reports per trial: the
    bit-error fraction (``"ber"``) or a 0/1 codeword-failure flag (``"per"``).
    ``decision`` picks the receiver: ``"hard"`` demaps to bits before the
    Viterbi, ``"soft"`` feeds max-log LLRs into the soft-metric trellis
    (uniformly at-or-below the hard BER; ~2 dB at PER ≈ 10⁻²).
    """

    def __init__(
        self,
        rate: OfdmRate | float = OfdmRate.RATE_36,
        *,
        num_symbols: int = 4,
        statistic: str = "per",
        decision: str = "hard",
    ) -> None:
        if statistic not in ("per", "ber"):
            raise ConfigurationError(f"unknown statistic {statistic!r}")
        if decision not in ("hard", "soft"):
            raise ConfigurationError(f"unknown decision {decision!r}")
        self.rate = rate if isinstance(rate, OfdmRate) else OfdmRate.from_mbps(float(rate))
        if num_symbols < 1:
            raise ConfigurationError("num_symbols must be at least 1")
        self.num_symbols = num_symbols
        self.statistic = statistic
        self.decision = decision
        self._viterbi = BatchViterbiDecoder()

    def run_batch(
        self, snr_db: float, trials: int, rng: np.random.Generator, *, xp=None
    ) -> np.ndarray:
        xp = resolve_namespace(xp)
        params = self.rate.parameters
        n_cbps = params.coded_bits_per_symbol
        bps = params.modulation.bits_per_symbol
        data_bits = params.data_bits_per_symbol * self.num_symbols

        # All randomness stays on the numpy Generator (the cross-backend
        # escape hatch); the kernels lift it onto xp at their boundaries.
        message = rng.integers(0, 2, size=(trials, data_bits), dtype=np.uint8)
        seeds = rng.integers(1, 128, size=trials)
        scrambled = scramble_batch(message, seeds, xp=xp)
        coded = encode_batch(scrambled, xp=xp)
        punctured = puncture_batch(coded, params.coding_rate, xp=xp)

        per_symbol = xp.reshape(punctured, (trials * self.num_symbols, n_cbps))
        symbols = map_batch(interleave_batch(per_symbol, bps, xp=xp), params.modulation, xp=xp)

        sigma = math.sqrt(10.0 ** (-snr_db / 10.0) / 2.0)
        noise = sigma * (
            rng.standard_normal(symbols.shape) + 1j * rng.standard_normal(symbols.shape)
        )
        received = symbols + xp.asarray(noise)

        if self.decision == "soft":
            # Total complex noise variance E|n|² = 2σ².
            llrs = demap_soft_batch(
                received, params.modulation, noise_var=2.0 * sigma**2, xp=xp
            )
            streams = deinterleave_batch(llrs, bps, xp=xp)
        else:
            streams = deinterleave_batch(demap_batch(received, params.modulation, xp=xp), bps, xp=xp)
        rx_coded = xp.reshape(streams, (trials, self.num_symbols * n_cbps))
        full, known = depuncture_batch(rx_coded, params.coding_rate, xp=xp)
        decoded_scrambled = self._viterbi.decode_batch(
            full, known_mask=known, soft=self.decision == "soft", xp=xp
        )
        decoded = to_numpy(scramble_batch(decoded_scrambled, seeds, xp=xp))

        bit_errors = np.count_nonzero(decoded != message, axis=1)  # lint-ok: RL001 -- host-side statistic after to_numpy
        if self.statistic == "per":
            return (bit_errors > 0).astype(float)
        return bit_errors / data_bits
