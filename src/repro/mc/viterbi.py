"""Trellis-batched K=7 convolutional encoder and hard-decision Viterbi.

The scalar implementations in :mod:`repro.wifi.ofdm.convolutional` walk the
trellis one state and one bit at a time; decoding N codewords costs
``N × L × 64 × 2`` Python-level iterations.  The batched versions here keep
the *entire* batch's state metrics in one ``[N, 64]`` array and advance all
N trellises per step with a handful of numpy operations, which is what makes
Monte-Carlo PER sweeps over thousands of codewords tractable.

Both functions are bit-exact with their scalar counterparts (including
tie-breaking): the scalar decoder's strict ``<`` update keeps the first
candidate on a tie, and for every next state the two predecessors arrive in
ascending state order, so ``argmin`` (first occurrence) reproduces the
identical survivor choice.  The equivalence tests in ``tests/mc`` assert
this across random codewords, erasure masks and start states.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mc.kernels import _as_matrix
from repro.obs import metrics as obs
from repro.wifi.ofdm.convolutional import (
    CONSTRAINT_LENGTH,
    _G1_TAPS,
    _G2_TAPS,
)

__all__ = ["encode_batch", "BatchViterbiDecoder"]

_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)
_HISTORY_BITS = CONSTRAINT_LENGTH - 1


def _as_bit_matrix(bits: np.ndarray) -> np.ndarray:
    """Coerce input to a 2-D ``uint8`` 0/1 matrix ``[N, L]``."""
    return _as_matrix(bits, validate_bits=True)


def encode_batch(bits: np.ndarray, *, initial_history: np.ndarray | None = None) -> np.ndarray:
    """Encode ``bits[N, L]`` to interleaved pairs ``C1 C2`` of shape ``[N, 2L]``.

    ``initial_history`` is the ``[b[k-1], ..., b[k-6]]`` preload shared by all
    rows (or per-row when given as ``[N, 6]``); the default all-zeros matches
    the 802.11 frame start, exactly like the scalar encoder.
    """
    arr = _as_bit_matrix(bits)
    n, length = arr.shape
    if initial_history is None:
        history = np.zeros((n, _HISTORY_BITS), dtype=np.uint8)
    else:
        history = np.asarray(initial_history, dtype=np.uint8)
        if history.ndim == 1:
            history = np.broadcast_to(history, (n, history.size))
        if history.shape != (n, _HISTORY_BITS):
            raise ConfigurationError(
                f"history must have {_HISTORY_BITS} bits per row, got shape {history.shape}"
            )
    # padded[:, 6 - d : 6 - d + L] is b[k-d]; column layout [b[k-6] .. b[k-1] b[0] ..].
    padded = np.concatenate([history[:, ::-1], arr], axis=1)
    c1 = np.zeros((n, length), dtype=np.uint8)
    c2 = np.zeros((n, length), dtype=np.uint8)
    for tap in _G1_TAPS:
        c1 ^= padded[:, _HISTORY_BITS - tap : _HISTORY_BITS - tap + length]
    for tap in _G2_TAPS:
        c2 ^= padded[:, _HISTORY_BITS - tap : _HISTORY_BITS - tap + length]
    out = np.empty((n, 2 * length), dtype=np.uint8)
    out[:, 0::2] = c1
    out[:, 1::2] = c2
    return out


class BatchViterbiDecoder:
    """Hard-decision Viterbi over a batch of codewords at once.

    ``decode_batch(coded[N, L])`` advances all N trellises together: the
    branch metrics for every (predecessor state, input bit) pair are computed
    as one ``[N, 64, 2]`` array per step and the survivor selection is a
    single ``argmin`` over each next state's two ordered predecessors.
    """

    def __init__(self) -> None:
        states = np.arange(_NUM_STATES)
        # Expected C1/C2 for the transition taken *from* each state on each
        # input bit.  window[d] == b[k-d]: bit then the six history bits.
        history = (states[:, None] >> np.arange(_HISTORY_BITS)[None, :]) & 1  # [64, 6]
        outputs = np.zeros((_NUM_STATES, 2, 2), dtype=np.uint8)
        for bit in (0, 1):
            window = np.concatenate(
                [np.full((_NUM_STATES, 1), bit, dtype=np.int64), history], axis=1
            )  # [64, 7]
            c1 = np.zeros(_NUM_STATES, dtype=np.uint8)
            c2 = np.zeros(_NUM_STATES, dtype=np.uint8)
            for tap in _G1_TAPS:
                c1 ^= window[:, tap].astype(np.uint8)
            for tap in _G2_TAPS:
                c2 ^= window[:, tap].astype(np.uint8)
            outputs[:, bit, 0] = c1
            outputs[:, bit, 1] = c2
        self._outputs = outputs
        # Next state of (state, bit) is bit | ((state & 0x1F) << 1), so the
        # two predecessors of next-state s are (s >> 1) and (s >> 1) | 32 —
        # in that (ascending) order, both consuming input bit s & 1.
        next_states = np.arange(_NUM_STATES)
        self._entry_bit = (next_states & 1).astype(np.int64)  # [64]
        self._pred = np.stack(
            [next_states >> 1, (next_states >> 1) | (1 << (_HISTORY_BITS - 1))], axis=1
        )  # [64, 2]
        # Expected output pair of each next state's two incoming branches.
        self._branch_outputs = outputs[self._pred, self._entry_bit[:, None], :]  # [64, 2, 2]

    def decode_batch(
        self,
        coded_bits: np.ndarray,
        *,
        known_mask: np.ndarray | None = None,
        initial_state: int = 0,
    ) -> np.ndarray:
        """Decode ``coded_bits[N, L]`` (``C1 C2`` interleaved) to ``[N, L // 2]``.

        ``known_mask`` marks real (non-erasure) positions exactly as in the
        scalar decoder and may be ``[L]`` (shared) or ``[N, L]`` (per row).
        """
        coded = _as_bit_matrix(coded_bits)
        n, length = coded.shape
        if length % 2 != 0:
            raise ValueError("coded bit count must be even")
        if known_mask is None:
            known = np.ones((n, length), dtype=bool)
        else:
            known = np.asarray(known_mask, dtype=bool)
            if known.ndim == 1:
                known = np.broadcast_to(known, (n, length))
            if known.shape != (n, length):
                raise ValueError("known_mask shape mismatch")
        num_steps = length // 2

        with obs.span("mc.viterbi.decode_batch", codewords=int(n), coded_bits=int(length)):
            obs.count("mc.viterbi.codewords_decoded", n)
            metrics = np.full((n, _NUM_STATES), np.inf)
            metrics[:, initial_state] = 0.0
            # Survivor choice per step: which of the two ordered predecessors won.
            choices = np.empty((num_steps, n, _NUM_STATES), dtype=np.uint8)

            branch = self._branch_outputs  # [64, 2, 2]
            pred = self._pred  # [64, 2]
            for step in range(num_steps):
                r = coded[:, 2 * step : 2 * step + 2]  # [N, 2]
                m = known[:, 2 * step : 2 * step + 2]  # [N, 2]
                # Branch cost of each next state's two incoming transitions.  The
                # boolean mismatch terms must be cast *before* summing: numpy adds
                # booleans as logical OR, which would collapse a two-bit mismatch
                # into a cost of 1.
                cost = (
                    ((branch[None, :, :, 0] != r[:, None, None, 0]) & m[:, None, None, 0]).astype(
                        np.float64
                    )
                    + ((branch[None, :, :, 1] != r[:, None, None, 1]) & m[:, None, None, 1]).astype(
                        np.float64
                    )
                )  # [N, 64, 2]
                candidates = metrics[:, pred] + cost  # [N, 64, 2]
                choice = np.argmin(candidates, axis=2)  # ties -> lower predecessor
                choices[step] = choice
                metrics = np.take_along_axis(candidates, choice[:, :, None], axis=2)[:, :, 0]

            decoded = np.empty((n, num_steps), dtype=np.uint8)
            state = np.argmin(metrics, axis=1)  # [N]; first occurrence, as scalar
            rows = np.arange(n)
            for step in range(num_steps - 1, -1, -1):
                decoded[:, step] = state & 1
                winner = choices[step, rows, state]
                state = (state >> 1) | (winner.astype(np.int64) << (_HISTORY_BITS - 1))
            return decoded
