"""Trellis-batched K=7 convolutional encoder and batched Viterbi decoding.

The scalar implementations in :mod:`repro.wifi.ofdm.convolutional` walk the
trellis one state and one bit at a time; decoding N codewords costs
``N × L × 64 × 2`` Python-level iterations.  The batched versions here keep
the *entire* batch's state metrics in one ``[N, 64]`` array and advance all
N trellises per step with a handful of array operations, which is what makes
Monte-Carlo PER sweeps over thousands of codewords tractable.

Both functions are bit-exact with their scalar counterparts (including
tie-breaking): the scalar decoder's strict ``<`` update keeps the first
candidate on a tie, and for every next state the two predecessors arrive in
ascending state order, so ``argmin`` (first occurrence) reproduces the
identical survivor choice.  The equivalence tests in ``tests/mc`` assert
this across random codewords, erasure masks and start states.

``decode_batch`` also accepts demapper log-likelihood ratios
(``soft=True``): the trellis already carries float path metrics, so the
branch cost simply changes from masked Hamming distance to the negative
correlation ``−Σ (2c−1)·λ`` between the branch's expected coded bits and
the received LLRs (positive LLR ⇒ bit 1, the
:func:`repro.mc.kernels.demap_soft_batch` convention).  Feeding the
hard-decision LLRs ``2r−1`` reproduces the hard decoder's survivors
exactly — the per-step costs differ only by a positive affine map, which
preserves every comparison including ties.

Every entry point takes an explicit array namespace via the keyword-only
``xp`` argument (``None`` → the default backend) and uses only
array-API-portable operations; the constant trellis tables are built in
numpy once and converted per call with ``xp.asarray``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.mc.backend import resolve_namespace
from repro.mc.kernels import _as_matrix
from repro.obs import metrics as obs
from repro.wifi.ofdm.convolutional import (
    CONSTRAINT_LENGTH,
    _G1_TAPS,
    _G2_TAPS,
)

__all__ = ["encode_batch", "BatchViterbiDecoder"]

_NUM_STATES = 1 << (CONSTRAINT_LENGTH - 1)
_HISTORY_BITS = CONSTRAINT_LENGTH - 1


def _as_bit_matrix(bits, xp):
    """Coerce input to a 2-D ``uint8`` 0/1 matrix ``[N, L]``."""
    return _as_matrix(bits, xp, dtype=xp.uint8, validate_bits=True)


def encode_batch(bits, *, initial_history=None, xp=None):
    """Encode ``bits[N, L]`` to interleaved pairs ``C1 C2`` of shape ``[N, 2L]``.

    ``initial_history`` is the ``[b[k-1], ..., b[k-6]]`` preload shared by all
    rows (or per-row when given as ``[N, 6]``); the default all-zeros matches
    the 802.11 frame start, exactly like the scalar encoder.
    """
    xp = resolve_namespace(xp)
    arr = _as_bit_matrix(bits, xp)
    n, length = arr.shape
    if initial_history is None:
        history = xp.zeros((n, _HISTORY_BITS), dtype=xp.uint8)
    else:
        history = xp.astype(xp.asarray(initial_history), xp.uint8)
        if history.ndim == 1:
            history = xp.broadcast_to(history[None, :], (n, history.shape[0]))
        if history.shape != (n, _HISTORY_BITS):
            raise ConfigurationError(
                f"history must have {_HISTORY_BITS} bits per row, got shape {history.shape}"
            )
    # padded[:, 6 - d : 6 - d + L] is b[k-d]; column layout [b[k-6] .. b[k-1] b[0] ..].
    padded = xp.concat([xp.flip(history, axis=1), arr], axis=1)
    c1 = xp.zeros((n, length), dtype=xp.uint8)
    c2 = xp.zeros((n, length), dtype=xp.uint8)
    for tap in _G1_TAPS:
        c1 = xp.bitwise_xor(c1, padded[:, _HISTORY_BITS - tap : _HISTORY_BITS - tap + length])
    for tap in _G2_TAPS:
        c2 = xp.bitwise_xor(c2, padded[:, _HISTORY_BITS - tap : _HISTORY_BITS - tap + length])
    # out[:, 0::2] = c1; out[:, 1::2] = c2 — expressed as a portable
    # stack-then-reshape instead of strided scatter assignment.
    return xp.reshape(xp.stack([c1, c2], axis=2), (n, 2 * length))


class BatchViterbiDecoder:
    """Batched Viterbi over many codewords at once (hard or soft decision).

    ``decode_batch(coded[N, L])`` advances all N trellises together: the
    branch metrics for every (predecessor state, input bit) pair are computed
    as one ``[N, 64, 2]`` array per step and the survivor selection is a
    single ``argmin`` over each next state's two ordered predecessors.
    """

    def __init__(self) -> None:
        states = np.arange(_NUM_STATES)
        # Expected C1/C2 for the transition taken *from* each state on each
        # input bit.  window[d] == b[k-d]: bit then the six history bits.
        history = (states[:, None] >> np.arange(_HISTORY_BITS)[None, :]) & 1  # [64, 6]
        outputs = np.zeros((_NUM_STATES, 2, 2), dtype=np.uint8)
        for bit in (0, 1):
            window = np.concatenate(
                [np.full((_NUM_STATES, 1), bit, dtype=np.int64), history], axis=1
            )  # [64, 7]
            c1 = np.zeros(_NUM_STATES, dtype=np.uint8)
            c2 = np.zeros(_NUM_STATES, dtype=np.uint8)
            for tap in _G1_TAPS:
                c1 ^= window[:, tap].astype(np.uint8)
            for tap in _G2_TAPS:
                c2 ^= window[:, tap].astype(np.uint8)
            outputs[:, bit, 0] = c1
            outputs[:, bit, 1] = c2
        self._outputs = outputs
        # Next state of (state, bit) is bit | ((state & 0x1F) << 1), so the
        # two predecessors of next-state s are (s >> 1) and (s >> 1) | 32 —
        # in that (ascending) order, both consuming input bit s & 1.
        next_states = np.arange(_NUM_STATES)
        self._entry_bit = (next_states & 1).astype(np.int64)  # [64]
        self._pred = np.stack(
            [next_states >> 1, (next_states >> 1) | (1 << (_HISTORY_BITS - 1))], axis=1
        )  # [64, 2]
        # Expected output pair of each next state's two incoming branches.
        self._branch_outputs = outputs[self._pred, self._entry_bit[:, None], :]  # [64, 2, 2]
        # ±1 branch symbols for the soft (correlation) metric.
        self._branch_signs = 2.0 * self._branch_outputs.astype(np.float64) - 1.0

    def decode_batch(
        self,
        coded_bits,
        *,
        known_mask=None,
        initial_state: int = 0,
        soft: bool = False,
        xp=None,
    ):
        """Decode ``coded_bits[N, L]`` (``C1 C2`` interleaved) to ``[N, L // 2]``.

        With ``soft=False`` the input is hard coded bits; with ``soft=True``
        it is demapper LLRs (positive ⇒ bit 1) and the branch metric is the
        negative LLR correlation.  ``known_mask`` marks real (non-erasure)
        positions exactly as in the scalar decoder and may be ``[L]``
        (shared) or ``[N, L]`` (per row); for LLR input an erased position
        simply contributes 0 either way.
        """
        xp = resolve_namespace(xp)
        if soft:
            coded = _as_matrix(coded_bits, xp, dtype=xp.float64, keep_floating=True)
        else:
            coded = _as_bit_matrix(coded_bits, xp)
        n, length = coded.shape
        if length % 2 != 0:
            raise ValueError("coded bit count must be even")
        if known_mask is None:
            known = xp.ones((n, length), dtype=xp.bool)
        else:
            known = xp.astype(xp.asarray(known_mask), xp.bool)
            if known.ndim == 1:
                known = xp.broadcast_to(known[None, :], (n, length))
            if known.shape != (n, length):
                raise ValueError("known_mask shape mismatch")
        num_steps = length // 2

        with obs.span("mc.viterbi.decode_batch", codewords=int(n), coded_bits=int(length)):
            obs.count("mc.viterbi.codewords_decoded", n)
            start = xp.where(
                xp.arange(_NUM_STATES) == initial_state,
                xp.zeros(_NUM_STATES, dtype=xp.float64),
                xp.full(_NUM_STATES, xp.inf, dtype=xp.float64),
            )
            metrics = xp.broadcast_to(start[None, :], (n, _NUM_STATES))
            # Survivor choice per step: which of the two ordered predecessors won.
            choices: list = [None] * num_steps

            branch = xp.asarray(self._branch_outputs)  # [64, 2, 2]
            signs = xp.asarray(self._branch_signs)  # [64, 2, 2]
            pred_flat = xp.asarray(self._pred.reshape(-1))  # [128]
            if soft:
                # Masked LLRs: an erased position carries zero evidence.
                llrs = coded * xp.astype(known, xp.float64)
            for step in range(num_steps):
                if soft:
                    lam = llrs[:, 2 * step : 2 * step + 2]  # [N, 2]
                    # Negative correlation between the branch's ±1 coded
                    # symbols and the received LLRs: agreeing evidence
                    # lowers the path metric.
                    cost = -(
                        signs[None, :, :, 0] * lam[:, None, None, 0]
                        + signs[None, :, :, 1] * lam[:, None, None, 1]
                    )  # [N, 64, 2]
                else:
                    r = coded[:, 2 * step : 2 * step + 2]  # [N, 2]
                    m = known[:, 2 * step : 2 * step + 2]  # [N, 2]
                    # Branch cost of each next state's two incoming transitions.
                    # The boolean mismatch terms must be cast *before* summing:
                    # booleans add as logical OR, which would collapse a two-bit
                    # mismatch into a cost of 1.
                    cost = xp.astype(
                        (branch[None, :, :, 0] != r[:, None, None, 0]) & m[:, None, None, 0],
                        xp.float64,
                    ) + xp.astype(
                        (branch[None, :, :, 1] != r[:, None, None, 1]) & m[:, None, None, 1],
                        xp.float64,
                    )  # [N, 64, 2]
                # metrics[:, pred] — a 2-D gather, expressed portably as a
                # flat take over the predecessor table.
                prev = xp.reshape(xp.take(metrics, pred_flat, axis=1), (n, _NUM_STATES, 2))
                candidates = prev + cost  # [N, 64, 2]
                choice = xp.argmin(candidates, axis=2)  # ties -> lower predecessor
                choices[step] = xp.astype(choice, xp.uint8)
                # min() selects the same (first-occurrence) element argmin did.
                metrics = xp.min(candidates, axis=2)

            state = xp.argmin(metrics, axis=1)  # [N]; first occurrence, as scalar
            row_offsets = xp.arange(n) * _NUM_STATES
            columns: list = [None] * num_steps
            for step in range(num_steps - 1, -1, -1):
                columns[step] = xp.astype(state & 1, xp.uint8)
                # choices[step][rows, state] as a flat portable gather.
                winner = xp.take(xp.reshape(choices[step], (-1,)), row_offsets + state)
                state = (state >> 1) | (xp.astype(winner, xp.int64) << (_HISTORY_BITS - 1))
            return xp.stack(columns, axis=1)
