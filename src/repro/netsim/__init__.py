"""Discrete-event multi-device MAC/network simulator for interscatter fleets.

The single-link physics of :mod:`repro.core` answers "does one tag's packet
decode"; this package answers "what happens when dozens of contact lenses,
implants or payment cards share one single-tone carrier":

* :mod:`repro.netsim.events` — deterministic event queue + simulated clock.
* :mod:`repro.netsim.medium` — the shared Wi-Fi channel: carrier activity,
  overlapping transmissions, SINR-based capture/corruption built on the
  :mod:`repro.channel` link budgets and error models.
* :mod:`repro.netsim.mac` — pluggable MAC policies (pure/slotted ALOHA,
  CSMA with exponential backoff, OFDM-downlink-driven TDMA polling) behind
  one :class:`~repro.netsim.mac.MacProtocol` interface.
* :mod:`repro.netsim.fleet` — scenario layer instantiating N devices from
  the :mod:`repro.apps` profiles with ring placement geometry.
* :mod:`repro.netsim.batched` — epoch-batched execution for 10^5-device
  fleets: per-device MAC state in numpy arrays, one vectorised medium pass
  per epoch, plus the scalar epoch oracle the differential tests trust.
* :mod:`repro.netsim.metrics` — per-device and aggregate throughput, PER,
  delivery ratio, medium utilization and latency percentiles.

Quickstart
----------

>>> from repro.netsim import FleetScenario, FleetSimulator
>>> scenario = FleetScenario(profile="contact_lens", num_devices=20,
...                          mac="slotted_aloha", duration_s=2.0, seed=7)
>>> metrics = FleetSimulator(scenario).run()
>>> 0.0 <= metrics.aggregate().delivery_ratio <= 1.0
True
"""

from repro.netsim.events import Event, EventScheduler
from repro.netsim.medium import SharedMedium, Transmission, MediumOutcome
from repro.netsim.mac import (
    MAC_POLICIES,
    CsmaBackoff,
    MacProtocol,
    Packet,
    PureAloha,
    SlottedAloha,
    TdmaPolling,
    make_mac,
)
from repro.netsim.fleet import (
    PROFILES,
    FleetScenario,
    FleetSimulator,
    SimDevice,
    TrafficProfile,
    card_to_card_profile,
    contact_lens_profile,
    neural_implant_profile,
    ring_placement,
)
from repro.netsim.batched import (
    EPOCH_ENGINES,
    BatchedFleetSimulator,
    EpochMacParams,
    EpochReferenceSimulator,
    resolve_epoch_mac,
    simulate,
)
from repro.netsim.metrics import AggregateMetrics, DeviceStats, FleetMetrics

__all__ = [
    "Event",
    "EventScheduler",
    "SharedMedium",
    "Transmission",
    "MediumOutcome",
    "MacProtocol",
    "Packet",
    "PureAloha",
    "SlottedAloha",
    "CsmaBackoff",
    "TdmaPolling",
    "MAC_POLICIES",
    "make_mac",
    "TrafficProfile",
    "PROFILES",
    "contact_lens_profile",
    "neural_implant_profile",
    "card_to_card_profile",
    "ring_placement",
    "FleetScenario",
    "FleetSimulator",
    "SimDevice",
    "BatchedFleetSimulator",
    "EpochReferenceSimulator",
    "EpochMacParams",
    "EPOCH_ENGINES",
    "resolve_epoch_mac",
    "simulate",
    "DeviceStats",
    "AggregateMetrics",
    "FleetMetrics",
]
