"""Epoch-batched fleet execution: 10^5-device scenarios in numpy arrays.

The heap engine (:class:`repro.netsim.fleet.FleetSimulator`) dispatches one
Python callback per event, which caps fleets near 10^3 devices.  This module
trades continuous time for *epochs* — fixed slices of the virtual clock, one
packet air time wide by default — and keeps all per-device MAC state
(queue depths, backoff counters, retry ladders, next-attempt epochs) in
numpy arrays, so each epoch resolves every concurrent transmission in one
vectorised medium pass riding the memoised
:class:`~repro.mc.link_abstraction.LinkAbstraction` PER table plus one
Bernoulli draw per packet.

Two engines implement the *same* epoch contract:

* :class:`BatchedFleetSimulator` — the vectorised production engine.
* :class:`EpochReferenceSimulator` — an independently written per-device
  scalar oracle (Python loops, scalar RNG draws) used by the differential
  test suite.

Because numpy ``Generator`` array draws are bit-identical to the same number
of sequential scalar draws (``random(k)``, ``uniform(a, b, k)``,
``integers(lo, hi_array)``), the two engines consume the identical random
stream and must produce **bit-identical** per-device counters — that is the
equivalence contract ``tests/netsim/test_batched_equivalence.py`` enforces
for every MAC at N <= 64.  The continuous-time heap engine is *not* expected
to match bit-for-bit (it resolves collisions on real overlap intervals, not
epoch co-occupancy); it is compared statistically instead.

Epoch contract
--------------

Virtual time advances in epochs of ``epoch_s`` seconds (default: one MAC
slot, i.e. packet air time x 1.05; must be >= one air time).  The horizon is
``floor(duration_s / epoch_s)`` epochs.  Idle epochs are skipped via a
bucket queue keyed by epoch index, which consumes no randomness.  Within one
processed epoch ``e`` (``t_end = (e + 1) * epoch_s``), phases run in a fixed
order and every random draw happens in ascending device id:

1. **Arrivals** — rounds over devices whose next arrival falls before
   ``t_end``: push ``burst_size`` packets (full queues count
   ``queue_dropped``), then one ``uniform(-1, 1)`` jitter draw per device
   advances its next arrival by ``period_s * (1 + jitter_fraction * u)``.
2. **Initial access** for devices whose queue went empty -> non-empty:
   ALOHA/slotted attempt at ``e + 1``; CSMA draws ``integers(0, 2**BE)``
   epochs of initial backoff; TDMA waits for its next owned epoch
   (``device_id % num_slots``).
3. **Contention** — devices whose attempt epoch arrived.  Duty-cycle-blocked
   devices (per-device airtime > ``duty_cycle * t_end``) defer one epoch
   without drawing.  CSMA senses busy iff epoch ``e - 1`` carried any
   transmission: one ``random()`` detection draw per contender against
   ``cca_reliability``; detected-busy increments the CCA counter (abort
   above ``max_cca_attempts`` drops the head), survivors re-draw backoff
   with BE escalation.  TDMA draws one poll per contender against the
   device's downlink poll-decode probability.
4. **Medium** — the k surviving transmitters each occupy exactly this epoch.
   Interference per transmitter is ``np.sum(signal_w of all k) - own``;
   SINR = ``10*log10(signal / (noise + interference))``; ``k >= 2`` marks
   every packet collided and packets under the capture threshold get
   PER = 1, everything else looks up the PER table.  One ``random()`` draw
   per transmitter decides delivery (``rssi >= sensitivity and u > per``).
5. **Outcomes** — delivered heads pop (latency = ``t_end - created``);
   failed heads at ``max_attempts`` drop; the rest draw their retry ladder
   (ALOHA ``integers(0, base * 2**min(attempts-1, 10))`` epochs; slotted
   ``integers(1, 2**min(attempts, 10) + 1)`` slots; CSMA BE-escalated
   backoff; TDMA waits a superframe).  Retry draws precede the initial
   access draws of freshly exposed queue heads.

The PER table is always used (the batched mode exists *because* of the fast
path); ``FleetScenario.phy_fast_path`` is ignored here.  MAC knobs arrive
through ``FleetScenario.mac_params`` — see :func:`resolve_epoch_mac` —
including the contention-realism set: ``cca_reliability`` (imperfect CCA),
``max_attempts`` (retry-ladder abort counter) and ``duty_cycle`` (fraction
of elapsed virtual time a device may spend on air).
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.geometry import Position
from repro.channel.link_budget import BackscatterLinkBudget
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.core.downlink import InterscatterDownlink
from repro.core.timing import InterscatterTiming
from repro.mc.link_abstraction import LinkAbstraction
from repro.netsim.fleet import MAC_OVERHEAD_BYTES, FleetScenario, FleetSimulator, ring_placement
from repro.netsim.mac import MAX_BACKOFF_EXPONENT, POLL_BITS
from repro.netsim.metrics import FleetMetrics
from repro.obs import metrics as obs
from repro.utils.dsp import dbm_to_watts

__all__ = [
    "EpochMacParams",
    "resolve_epoch_mac",
    "BatchedFleetSimulator",
    "EpochReferenceSimulator",
    "simulate",
    "EPOCH_ENGINES",
]

#: MAC policies the epoch engines implement.
EPOCH_MACS = ("aloha", "slotted_aloha", "csma", "tdma")

#: Capture threshold shared with :class:`repro.netsim.medium.SharedMedium`.
CAPTURE_THRESHOLD_DB = 10.0


@dataclass(frozen=True)
class EpochMacParams:
    """Resolved MAC parameters of one epoch-engine run.

    Attributes
    ----------
    name:
        MAC policy (one of :data:`EPOCH_MACS`).
    max_attempts / queue_limit:
        Retry-ladder abort counter and per-device queue capacity.
    duty_cycle:
        Fraction of elapsed virtual time a device may occupy the medium
        (1.0 disables the limit; cf. LoRa regional duty-cycle caps).
    base_backoff_epochs:
        ALOHA first retry window in epochs (doubles per failure, capped at
        ``2**MAX_BACKOFF_EXPONENT``).
    min_be / max_be / max_cca_attempts / cca_reliability:
        CSMA backoff-exponent bounds, CCA abort counter and busy-detection
        probability (imperfect envelope-detector carrier sense).
    num_slots:
        TDMA superframe length; device ``i`` owns epochs where
        ``epoch % num_slots == i % num_slots``.
    """

    name: str
    max_attempts: int = 8
    queue_limit: int = 64
    duty_cycle: float = 1.0
    base_backoff_epochs: int = 4
    min_be: int = 3
    max_be: int = 6
    max_cca_attempts: int = 5
    cca_reliability: float = 1.0
    num_slots: int = 1


def resolve_epoch_mac(scenario: FleetScenario, epoch_s: float) -> EpochMacParams:
    """Map ``scenario.mac`` + ``scenario.mac_params`` onto epoch-engine knobs.

    Accepts the heap engine's vocabulary where it translates naturally:
    ``base_backoff_s`` quantises to epochs; ``slot_s`` / ``backoff_slot_s``
    are accepted and ignored (the epoch *is* the slot / backoff unit);
    unknown keys raise :class:`~repro.exceptions.ConfigurationError`.
    """
    name = scenario.mac
    if name not in EPOCH_MACS:
        raise ConfigurationError(f"unknown epoch MAC policy {name!r}; available: {sorted(EPOCH_MACS)}")
    params = dict(scenario.mac_params)
    fields: dict = {"name": name}
    fields["max_attempts"] = int(params.pop("max_attempts", 8))
    fields["queue_limit"] = int(params.pop("queue_limit", 64))
    fields["duty_cycle"] = float(params.pop("duty_cycle", 1.0))
    if fields["max_attempts"] < 1:
        raise ConfigurationError("max_attempts must be at least 1")
    if fields["queue_limit"] < 1:
        raise ConfigurationError("queue_limit must be at least 1")
    if not 0.0 < fields["duty_cycle"] <= 1.0:
        raise ConfigurationError("duty_cycle must be in (0, 1]")
    if name == "aloha":
        base = params.pop("base_backoff_epochs", None)
        if base is None and "base_backoff_s" in params:
            base = max(1, round(float(params.pop("base_backoff_s")) / epoch_s))
        fields["base_backoff_epochs"] = int(base) if base is not None else 4
        if fields["base_backoff_epochs"] < 1:
            raise ConfigurationError("base_backoff_epochs must be at least 1")
    elif name == "slotted_aloha":
        params.pop("slot_s", None)  # the epoch is the slot
    elif name == "csma":
        fields["min_be"] = int(params.pop("min_be", 3))
        fields["max_be"] = int(params.pop("max_be", 6))
        fields["max_cca_attempts"] = int(params.pop("max_cca_attempts", 5))
        fields["cca_reliability"] = float(params.pop("cca_reliability", 1.0))
        params.pop("backoff_slot_s", None)  # the epoch is the backoff unit
        if not 0 <= fields["min_be"] <= fields["max_be"] <= 20:
            raise ConfigurationError("need 0 <= min_be <= max_be <= 20")
        if fields["max_cca_attempts"] < 1:
            raise ConfigurationError("max_cca_attempts must be at least 1")
        if not 0.0 <= fields["cca_reliability"] <= 1.0:
            raise ConfigurationError("cca_reliability must be in [0, 1]")
    elif name == "tdma":
        fields["num_slots"] = int(params.pop("num_slots", scenario.num_devices))
        params.pop("slot_s", None)
        params.pop("slot_index", None)  # fixed to device_id % num_slots
        if fields["num_slots"] < 1:
            raise ConfigurationError("num_slots must be at least 1")
    if params:
        raise ConfigurationError(
            f"unknown batched MAC parameters for {name!r}: {sorted(params)}"
        )
    return EpochMacParams(**fields)


class _EpochSetup:
    """Scenario constants shared by both epoch engines.

    Both engines build their own instance from the same scenario, so every
    derived float (air time, epoch width, per-device RSSI / signal power,
    TDMA poll probabilities) is computed by the same code path and therefore
    bit-identical between them.
    """

    def __init__(self, scenario: FleetScenario, *, epoch_s: float | None = None) -> None:
        if scenario.num_devices < 1:
            raise ConfigurationError("num_devices must be at least 1")
        if scenario.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self.scenario = scenario
        self.profile = scenario.resolved_profile()
        timing = InterscatterTiming(wifi_rate_mbps=self.profile.wifi_rate_mbps)
        psdu_bytes = min(
            self.profile.payload_bytes + MAC_OVERHEAD_BYTES, timing.max_wifi_psdu_bytes()
        )
        if psdu_bytes <= 0:
            raise ConfigurationError(
                f"no Wi-Fi payload fits at {self.profile.wifi_rate_mbps} Mbps"
            )
        self.psdu_bytes = psdu_bytes
        self.air_time_s = timing.wifi_air_time_s(psdu_bytes)
        slot_s = self.air_time_s * (1.0 + FleetSimulator.SLOT_GUARD_FRACTION)
        self.epoch_s = float(epoch_s) if epoch_s is not None else slot_s
        if self.epoch_s < self.air_time_s:
            raise ConfigurationError(
                f"epoch_s must cover one packet air time ({self.air_time_s:.6g} s)"
            )
        self.num_epochs = int(scenario.duration_s / self.epoch_s)

        link_budget = BackscatterLinkBudget(
            source_power_dbm=scenario.source_power_dbm,
            tag_antenna=self.profile.tag_antenna,
            tissue=self.profile.tissue,
            path_loss=PathLossModel(path_loss_exponent=2.0),
            noise=NoiseModel(bandwidth_hz=22e6),
        )
        self.noise_w = dbm_to_watts(link_budget.noise.noise_floor_dbm)
        self.sensitivity_dbm = link_budget.receiver_sensitivity_dbm
        receiver = Position(0.0, self.profile.receiver_offset_m)
        origin = Position(0.0, 0.0)
        positions = ring_placement(
            scenario.num_devices,
            inner_radius_m=self.profile.inner_radius_m,
            ring_spacing_m=self.profile.ring_spacing_m,
        )
        to_origin = np.array([p.distance_to(origin) for p in positions])
        to_receiver = np.array([p.distance_to(receiver) for p in positions])
        self.rssi_dbm = np.asarray(
            link_budget.evaluate_batch(to_origin, to_receiver).rssi_dbm, dtype=float
        )
        self.signal_w = dbm_to_watts(self.rssi_dbm)
        self.per_table = LinkAbstraction().table(
            rate_mbps=self.profile.wifi_rate_mbps, payload_bytes=psdu_bytes
        )
        if scenario.mac == "tdma":
            downlink = InterscatterDownlink(rng=np.random.default_rng(scenario.seed))
            self.poll_success_prob = np.array(
                [
                    float(
                        (1.0 - downlink.link_bit_error_rate(p.distance_to(receiver))[0])
                        ** POLL_BITS
                    )
                    for p in positions
                ]
            )
        else:
            self.poll_success_prob = None


class BatchedFleetSimulator:
    """Vectorised epoch engine: per-device MAC state in numpy arrays.

    Parameters
    ----------
    scenario:
        The fleet configuration (``phy_fast_path`` is ignored — the PER
        table is always used).
    epoch_s:
        Epoch width override; defaults to one MAC slot.  Coarser epochs
        trade collision-window fidelity for fewer epochs (any two packets
        in the same epoch collide).
    record_epochs:
        When True, every processed epoch index is appended to
        ``epoch_trace`` (the invariant tests assert strict monotonicity).
    """

    def __init__(
        self,
        scenario: FleetScenario,
        *,
        epoch_s: float | None = None,
        record_epochs: bool = False,
    ) -> None:
        self.scenario = scenario
        self.setup = _EpochSetup(scenario, epoch_s=epoch_s)
        self.params = resolve_epoch_mac(scenario, self.setup.epoch_s)
        self.rng = np.random.default_rng(scenario.seed)
        n = scenario.num_devices
        limit = self.params.queue_limit
        self.queue_len = np.zeros(n, dtype=np.int64)
        self.head = np.zeros(n, dtype=np.int64)
        self.created = np.zeros((n, limit), dtype=float)
        self.head_attempts = np.zeros(n, dtype=np.int64)
        self.be = np.full(n, self.params.min_be, dtype=np.int64)
        self.cca_fails = np.zeros(n, dtype=np.int64)
        self.airtime_used = np.zeros(n, dtype=float)
        self.next_arrival_s = np.zeros(n, dtype=float)
        self.generated_ct = np.zeros(n, dtype=np.int64)
        self.queue_dropped_ct = np.zeros(n, dtype=np.int64)
        self.attempted_ct = np.zeros(n, dtype=np.int64)
        self.collided_ct = np.zeros(n, dtype=np.int64)
        self.delivered_ct = np.zeros(n, dtype=np.int64)
        self.dropped_ct = np.zeros(n, dtype=np.int64)
        self._slot_of = np.arange(n, dtype=np.int64) % self.params.num_slots
        self._lat_ids: list[np.ndarray] = []
        self._lat_vals: list[np.ndarray] = []
        self._attempt_buckets: dict[int, list[np.ndarray]] = {}
        self._arrival_buckets: dict[int, list[np.ndarray]] = {}
        self._epoch_heap: list[int] = []
        self._last_tx_epoch = -2
        self.epochs_processed = 0
        self.busy_epochs = 0
        self.transmissions_resolved = 0
        self.epoch_trace: list[int] = [] if record_epochs else None

    # --------------------------------------------------------------- buckets
    def _push(self, buckets: dict, epoch: int, ids: np.ndarray) -> None:
        if epoch >= self.setup.num_epochs or ids.size == 0:
            return
        entry = buckets.get(epoch)
        if entry is None:
            buckets[epoch] = [ids]
            heapq.heappush(self._epoch_heap, epoch)
        else:
            entry.append(ids)

    def _push_grouped(self, buckets: dict, epochs: np.ndarray, ids: np.ndarray) -> None:
        if ids.size == 0:
            return
        order = np.argsort(epochs, kind="stable")
        epochs = epochs[order]
        ids = ids[order]
        uniq, starts = np.unique(epochs, return_index=True)
        bounds = np.append(starts, epochs.size)
        for target, lo, hi in zip(uniq.tolist(), bounds[:-1].tolist(), bounds[1:].tolist(), strict=True):
            self._push(buckets, int(target), ids[lo:hi])

    def _pop_bucket(self, buckets: dict, epoch: int) -> np.ndarray:
        parts = buckets.pop(epoch, None)
        if not parts:
            return np.empty(0, dtype=np.int64)
        merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
        return np.sort(merged)

    def _next_epoch(self) -> int | None:
        while self._epoch_heap:
            epoch = heapq.heappop(self._epoch_heap)
            if epoch in self._arrival_buckets or epoch in self._attempt_buckets:
                return epoch
        return None

    # ------------------------------------------------------------ scheduling
    def _schedule_access(self, epoch: int, ids: np.ndarray) -> None:
        """Initial-access scheduling for freshly exposed queue heads."""
        if ids.size == 0:
            return
        name = self.params.name
        if name in ("aloha", "slotted_aloha"):
            self._push(self._attempt_buckets, epoch + 1, ids)
        elif name == "csma":
            width = self.rng.integers(0, 2 ** self.be[ids])
            self._push_grouped(self._attempt_buckets, epoch + 1 + width, ids)
        else:  # tdma: wait for the next owned epoch
            nxt = epoch + 1 + ((self._slot_of[ids] - (epoch + 1)) % self.params.num_slots)
            self._push_grouped(self._attempt_buckets, nxt, ids)

    def _pop_heads(self, ids: np.ndarray) -> np.ndarray:
        """Remove the head packet of each device; returns still-queued ids."""
        self.head[ids] = (self.head[ids] + 1) % self.params.queue_limit
        self.queue_len[ids] -= 1
        self.head_attempts[ids] = 0
        if self.params.name == "csma":
            self.be[ids] = self.params.min_be
            self.cca_fails[ids] = 0
        return ids[self.queue_len[ids] > 0]

    # ----------------------------------------------------------------- phases
    def _start(self) -> None:
        n = self.scenario.num_devices
        self.next_arrival_s = self.rng.uniform(0.0, self.setup.profile.period_s, n)
        epochs = (self.next_arrival_s / self.setup.epoch_s).astype(np.int64)
        self._push_grouped(self._arrival_buckets, epochs, np.arange(n, dtype=np.int64))

    def _run_epoch(self, epoch: int) -> None:
        if self.epoch_trace is not None:
            self.epoch_trace.append(epoch)
        self.epochs_processed += 1
        p = self.params
        setup = self.setup
        t_end = (epoch + 1) * setup.epoch_s

        # Phase 1: arrivals, in rounds of ascending device id.
        active = self._pop_bucket(self._arrival_buckets, epoch)
        fresh = active[self.queue_len[active] == 0]
        profile = setup.profile
        limit = p.queue_limit
        while active.size:
            t_arr = self.next_arrival_s[active].copy()
            for _ in range(profile.burst_size):
                self.generated_ct[active] += 1
                room = self.queue_len[active] < limit
                sub = active[room]
                pos = (self.head[sub] + self.queue_len[sub]) % limit
                self.created[sub, pos] = t_arr[room]
                self.queue_len[sub] += 1
                self.queue_dropped_ct[active[~room]] += 1
            jitter = self.rng.uniform(-1.0, 1.0, active.size)
            self.next_arrival_s[active] = t_arr + profile.period_s * (
                1.0 + profile.jitter_fraction * jitter
            )
            due = self.next_arrival_s[active] < t_end
            settled = active[~due]
            self._push_grouped(
                self._arrival_buckets,
                (self.next_arrival_s[settled] / setup.epoch_s).astype(np.int64),
                settled,
            )
            active = active[due]

        # Phase 2: initial access for queues that went empty -> non-empty.
        self._schedule_access(epoch, fresh)

        # Phase 3: contention.
        ready = self._pop_bucket(self._attempt_buckets, epoch)
        if p.duty_cycle < 1.0 and ready.size:
            allowed = self.airtime_used[ready] + setup.air_time_s <= p.duty_cycle * t_end
            self._push(self._attempt_buckets, epoch + 1, ready[~allowed])
            ready = ready[allowed]
        if p.name == "csma" and ready.size and self._last_tx_epoch == epoch - 1:
            detected = self.rng.random(ready.size) < p.cca_reliability
            clear = ready[~detected]
            self.cca_fails[clear] = 0
            busy = ready[detected]
            if busy.size:
                self.cca_fails[busy] += 1
                aborting = self.cca_fails[busy] > p.max_cca_attempts
                defer = busy[~aborting]
                if defer.size:
                    self.be[defer] = np.minimum(self.be[defer] + 1, p.max_be)
                    width = self.rng.integers(0, 2 ** self.be[defer])
                    self._push_grouped(self._attempt_buckets, epoch + 1 + width, defer)
                aborts = busy[aborting]
                if aborts.size:
                    self.dropped_ct[aborts] += 1
                    self._schedule_access(epoch, self._pop_heads(aborts))
            ready = clear
        elif p.name == "tdma" and ready.size:
            polled = self.rng.random(ready.size) < setup.poll_success_prob[ready]
            lost = ready[~polled]
            self._push_grouped(
                self._attempt_buckets, epoch + np.full(lost.size, p.num_slots), lost
            )
            ready = ready[polled]

        # Phase 4: one vectorised medium pass over the k transmitters.
        k = ready.size
        if k == 0:
            return
        self._last_tx_epoch = epoch
        self.busy_epochs += 1
        self.transmissions_resolved += k
        self.attempted_ct[ready] += 1
        self.head_attempts[ready] += 1
        self.airtime_used[ready] += setup.air_time_s
        signal = setup.signal_w[ready]
        interference = np.maximum(float(np.sum(signal)) - signal, 0.0)
        sinr_db = 10.0 * np.log10(signal / (setup.noise_w + interference))
        per = np.asarray(setup.per_table.lookup(sinr_db), dtype=float)
        if k >= 2:
            per = np.where(sinr_db < CAPTURE_THRESHOLD_DB, 1.0, per)
            self.collided_ct[ready] += 1
        draws = self.rng.random(k)
        delivered = (setup.rssi_dbm[ready] >= setup.sensitivity_dbm) & (draws > per)

        # Phase 5: outcomes.
        won = ready[delivered]
        lost = ready[~delivered]
        still: list[np.ndarray] = []
        if won.size:
            self.delivered_ct[won] += 1
            self._lat_ids.append(won)
            self._lat_vals.append(t_end - self.created[won, self.head[won]])
            still.append(self._pop_heads(won))
        if lost.size:
            exhausted = self.head_attempts[lost] >= p.max_attempts
            drops = lost[exhausted]
            retries = lost[~exhausted]
            if drops.size:
                self.dropped_ct[drops] += 1
                still.append(self._pop_heads(drops))
            if retries.size:
                if p.name == "aloha":
                    expo = np.minimum(self.head_attempts[retries] - 1, MAX_BACKOFF_EXPONENT)
                    width = self.rng.integers(0, p.base_backoff_epochs * 2**expo)
                    self._push_grouped(self._attempt_buckets, epoch + 1 + width, retries)
                elif p.name == "slotted_aloha":
                    expo = np.minimum(self.head_attempts[retries], MAX_BACKOFF_EXPONENT)
                    ahead = self.rng.integers(1, 2**expo + 1)
                    self._push_grouped(self._attempt_buckets, epoch + ahead, retries)
                elif p.name == "csma":
                    self.be[retries] = np.minimum(self.be[retries] + 1, p.max_be)
                    width = self.rng.integers(0, 2 ** self.be[retries])
                    self._push_grouped(self._attempt_buckets, epoch + 1 + width, retries)
                else:  # tdma: retry in the next owned slot
                    self._push(self._attempt_buckets, epoch + p.num_slots, retries)
        if still:
            self._schedule_access(epoch, np.sort(np.concatenate(still)))

    # -------------------------------------------------------------------- run
    def pending_packets(self) -> int:
        """Packets still queued (in flight) at the horizon."""
        return int(self.queue_len.sum())

    def run(self) -> FleetMetrics:
        """Execute the scenario and return the collected metrics."""
        with obs.span(
            "netsim.batched.run",
            profile=self.setup.profile.name,
            devices=self.scenario.num_devices,
            mac=self.params.name,
            engine="batched",
            horizon_epochs=self.setup.num_epochs,
        ):
            self._start()
            while True:
                epoch = self._next_epoch()
                if epoch is None:
                    break
                self._run_epoch(epoch)
            metrics = self._materialise()
        obs.count("netsim.batched.epochs", self.epochs_processed)
        obs.count("netsim.batched.resolved", self.transmissions_resolved)
        if self.busy_epochs:
            obs.gauge(
                "netsim.batched.mean_tx_per_busy_epoch",
                self.transmissions_resolved / self.busy_epochs,
            )
        return metrics

    def _materialise(self) -> FleetMetrics:
        metrics = FleetMetrics()
        n = self.scenario.num_devices
        if self._lat_ids:
            lat_dev = np.concatenate(self._lat_ids)
            lat_val = np.concatenate(self._lat_vals)
            order = np.argsort(lat_dev, kind="stable")
            lat_val = lat_val[order]
            counts = np.bincount(lat_dev, minlength=n)
            offsets = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
        else:
            lat_val = np.empty(0)
            offsets = np.zeros(n + 1, dtype=np.int64)
        name = self.setup.profile.name
        psdu = self.setup.psdu_bytes
        rssi = self.setup.rssi_dbm.tolist()
        generated = self.generated_ct.tolist()
        queue_dropped = self.queue_dropped_ct.tolist()
        attempted = self.attempted_ct.tolist()
        collided = self.collided_ct.tolist()
        delivered = self.delivered_ct.tolist()
        dropped = self.dropped_ct.tolist()
        for i in range(n):
            stats = metrics.add_device(i, name, rssi[i])
            stats.generated = generated[i]
            stats.queue_dropped = queue_dropped[i]
            stats.attempted = attempted[i]
            stats.collided = collided[i]
            stats.delivered = delivered[i]
            stats.dropped = dropped[i]
            stats.bytes_delivered = delivered[i] * psdu
            if offsets[i] != offsets[i + 1]:
                stats.latencies_s = lat_val[offsets[i] : offsets[i + 1]].tolist()
        metrics.finalize(
            duration_s=self.scenario.duration_s,
            busy_time_s=self.busy_epochs * self.setup.epoch_s,
            airtime_s=float(self.attempted_ct.sum()) * self.setup.air_time_s,
        )
        return metrics


class EpochReferenceSimulator:
    """Scalar oracle for the epoch contract: per-device loops, scalar draws.

    Written independently of :class:`BatchedFleetSimulator` on purpose — it
    keeps per-device state in Python scalars and deques and draws from the
    RNG one value at a time, in the documented ascending-device order.  The
    differential suite asserts its per-device counters are bit-identical to
    the vectorised engine's on every MAC; any contract drift between the two
    implementations breaks that equality.
    """

    def __init__(
        self,
        scenario: FleetScenario,
        *,
        epoch_s: float | None = None,
        record_epochs: bool = False,
    ) -> None:
        self.scenario = scenario
        self.setup = _EpochSetup(scenario, epoch_s=epoch_s)
        self.params = resolve_epoch_mac(scenario, self.setup.epoch_s)
        self.rng = np.random.default_rng(scenario.seed)
        n = scenario.num_devices
        self.queues: list[deque] = [deque() for _ in range(n)]
        self.head_attempts = [0] * n
        self.be = [self.params.min_be] * n
        self.cca_fails = [0] * n
        self.airtime_used = [0.0] * n
        self.next_arrival_s = [0.0] * n
        self.metrics = FleetMetrics()
        for i in range(n):
            self.metrics.add_device(
                i, self.setup.profile.name, float(self.setup.rssi_dbm[i])
            )
        self._attempt_buckets: dict[int, list[int]] = {}
        self._arrival_buckets: dict[int, list[int]] = {}
        self._epoch_heap: list[int] = []
        self._last_tx_epoch = -2
        self.epochs_processed = 0
        self.busy_epochs = 0
        self.transmissions_resolved = 0
        self.epoch_trace: list[int] = [] if record_epochs else None

    # --------------------------------------------------------------- buckets
    def _push(self, buckets: dict, epoch: int, device: int) -> None:
        if epoch >= self.setup.num_epochs:
            return
        entry = buckets.get(epoch)
        if entry is None:
            buckets[epoch] = [device]
            heapq.heappush(self._epoch_heap, epoch)
        else:
            entry.append(device)

    def _pop_bucket(self, buckets: dict, epoch: int) -> list[int]:
        return sorted(buckets.pop(epoch, []))

    def _next_epoch(self) -> int | None:
        while self._epoch_heap:
            epoch = heapq.heappop(self._epoch_heap)
            if epoch in self._arrival_buckets or epoch in self._attempt_buckets:
                return epoch
        return None

    # ------------------------------------------------------------ scheduling
    def _schedule_access(self, epoch: int, device: int) -> None:
        name = self.params.name
        if name in ("aloha", "slotted_aloha"):
            self._push(self._attempt_buckets, epoch + 1, device)
        elif name == "csma":
            width = int(self.rng.integers(0, 2 ** self.be[device]))
            self._push(self._attempt_buckets, epoch + 1 + width, device)
        else:
            slot = device % self.params.num_slots
            nxt = epoch + 1 + ((slot - (epoch + 1)) % self.params.num_slots)
            self._push(self._attempt_buckets, nxt, device)

    def _pop_head(self, device: int) -> bool:
        """Remove the device's head packet; True when more are queued."""
        self.queues[device].popleft()
        self.head_attempts[device] = 0
        if self.params.name == "csma":
            self.be[device] = self.params.min_be
            self.cca_fails[device] = 0
        return bool(self.queues[device])

    # ----------------------------------------------------------------- phases
    def _start(self) -> None:
        for i in range(self.scenario.num_devices):
            arrival = float(self.rng.uniform(0.0, self.setup.profile.period_s))
            self.next_arrival_s[i] = arrival
            self._push(self._arrival_buckets, int(arrival / self.setup.epoch_s), i)

    def _run_epoch(self, epoch: int) -> None:
        if self.epoch_trace is not None:
            self.epoch_trace.append(epoch)
        self.epochs_processed += 1
        p = self.params
        setup = self.setup
        t_end = (epoch + 1) * setup.epoch_s
        profile = setup.profile

        # Phase 1: arrivals in rounds of ascending device id.
        active = self._pop_bucket(self._arrival_buckets, epoch)
        fresh = [i for i in active if not self.queues[i]]
        while active:
            following = []
            for i in active:
                stats = self.metrics.devices[i]
                t_arr = self.next_arrival_s[i]
                for _ in range(profile.burst_size):
                    stats.generated += 1
                    if len(self.queues[i]) >= p.queue_limit:
                        stats.queue_dropped += 1
                    else:
                        self.queues[i].append(t_arr)
                jitter = float(self.rng.uniform(-1.0, 1.0))
                self.next_arrival_s[i] = t_arr + profile.period_s * (
                    1.0 + profile.jitter_fraction * jitter
                )
                if self.next_arrival_s[i] < t_end:
                    following.append(i)
                else:
                    self._push(
                        self._arrival_buckets,
                        int(self.next_arrival_s[i] / setup.epoch_s),
                        i,
                    )
            active = following

        # Phase 2: initial access for queues that went empty -> non-empty.
        for i in fresh:
            self._schedule_access(epoch, i)

        # Phase 3: contention.
        ready = self._pop_bucket(self._attempt_buckets, epoch)
        if p.duty_cycle < 1.0 and ready:
            allowed = []
            for i in ready:
                if self.airtime_used[i] + setup.air_time_s <= p.duty_cycle * t_end:
                    allowed.append(i)
                else:
                    self._push(self._attempt_buckets, epoch + 1, i)
            ready = allowed
        if p.name == "csma" and ready and self._last_tx_epoch == epoch - 1:
            clear, defers, aborts = [], [], []
            for i in ready:
                if float(self.rng.random()) < p.cca_reliability:
                    self.cca_fails[i] += 1
                    if self.cca_fails[i] > p.max_cca_attempts:
                        aborts.append(i)
                    else:
                        defers.append(i)
                else:
                    self.cca_fails[i] = 0
                    clear.append(i)
            for i in defers:
                self.be[i] = min(self.be[i] + 1, p.max_be)
                width = int(self.rng.integers(0, 2 ** self.be[i]))
                self._push(self._attempt_buckets, epoch + 1 + width, i)
            abort_heads = []
            for i in aborts:
                self.metrics.devices[i].dropped += 1
                if self._pop_head(i):
                    abort_heads.append(i)
            for i in abort_heads:
                self._schedule_access(epoch, i)
            ready = clear
        elif p.name == "tdma" and ready:
            polled = []
            for i in ready:
                if float(self.rng.random()) < float(setup.poll_success_prob[i]):
                    polled.append(i)
                else:
                    self._push(self._attempt_buckets, epoch + p.num_slots, i)
            ready = polled

        # Phase 4: medium resolution over the k transmitters.
        k = len(ready)
        if k == 0:
            return
        self._last_tx_epoch = epoch
        self.busy_epochs += 1
        self.transmissions_resolved += k
        total_w = float(np.sum(setup.signal_w[np.asarray(ready, dtype=np.int64)]))
        fates = []
        for i in ready:
            stats = self.metrics.devices[i]
            stats.attempted += 1
            self.head_attempts[i] += 1
            self.airtime_used[i] += setup.air_time_s
            signal = setup.signal_w[i]
            interference = max(total_w - signal, 0.0)
            sinr_db = 10.0 * np.log10(signal / (setup.noise_w + interference))
            per = setup.per_table.lookup(sinr_db)
            if k >= 2:
                if sinr_db < CAPTURE_THRESHOLD_DB:
                    per = 1.0
                stats.collided += 1
            fates.append((i, per))
        won, lost = [], []
        for i, per in fates:
            draw = float(self.rng.random())
            if setup.rssi_dbm[i] >= setup.sensitivity_dbm and draw > per:
                won.append(i)
            else:
                lost.append(i)

        # Phase 5: outcomes — delivered pops, drops, retry draws, new heads.
        new_heads = []
        for i in won:
            stats = self.metrics.devices[i]
            stats.delivered += 1
            stats.bytes_delivered += setup.psdu_bytes
            stats.latencies_s.append(t_end - self.queues[i][0])
            if self._pop_head(i):
                new_heads.append(i)
        retries = []
        for i in lost:
            if self.head_attempts[i] >= p.max_attempts:
                self.metrics.devices[i].dropped += 1
                if self._pop_head(i):
                    new_heads.append(i)
            else:
                retries.append(i)
        for i in retries:
            if p.name == "aloha":
                expo = min(self.head_attempts[i] - 1, MAX_BACKOFF_EXPONENT)
                width = int(self.rng.integers(0, p.base_backoff_epochs * 2**expo))
                self._push(self._attempt_buckets, epoch + 1 + width, i)
            elif p.name == "slotted_aloha":
                expo = min(self.head_attempts[i], MAX_BACKOFF_EXPONENT)
                ahead = int(self.rng.integers(1, 2**expo + 1))
                self._push(self._attempt_buckets, epoch + ahead, i)
            elif p.name == "csma":
                self.be[i] = min(self.be[i] + 1, p.max_be)
                width = int(self.rng.integers(0, 2 ** self.be[i]))
                self._push(self._attempt_buckets, epoch + 1 + width, i)
            else:
                self._push(self._attempt_buckets, epoch + p.num_slots, i)
        for i in sorted(new_heads):
            self._schedule_access(epoch, i)

    # -------------------------------------------------------------------- run
    def pending_packets(self) -> int:
        """Packets still queued (in flight) at the horizon."""
        return sum(len(q) for q in self.queues)

    def run(self) -> FleetMetrics:
        """Execute the scenario and return the collected metrics."""
        with obs.span(
            "netsim.batched.run",
            profile=self.setup.profile.name,
            devices=self.scenario.num_devices,
            mac=self.params.name,
            engine="reference",
            horizon_epochs=self.setup.num_epochs,
        ):
            self._start()
            while True:
                epoch = self._next_epoch()
                if epoch is None:
                    break
                self._run_epoch(epoch)
            attempted = sum(s.attempted for s in self.metrics.devices.values())
            self.metrics.finalize(
                duration_s=self.scenario.duration_s,
                busy_time_s=self.busy_epochs * self.setup.epoch_s,
                airtime_s=attempted * self.setup.air_time_s,
            )
        obs.count("netsim.batched.epochs", self.epochs_processed)
        obs.count("netsim.batched.resolved", self.transmissions_resolved)
        return self.metrics


#: Engine name -> epoch simulator class (the heap engine lives in fleet.py).
EPOCH_ENGINES = {
    "batched": BatchedFleetSimulator,
    "reference": EpochReferenceSimulator,
}


def simulate(
    scenario: FleetScenario, *, epoch_s: float | None = None
) -> FleetMetrics:
    """Run *scenario* under the engine its ``engine`` field names.

    ``"scalar"`` dispatches to the continuous-time heap engine
    (:class:`~repro.netsim.fleet.FleetSimulator`); ``"batched"`` and
    ``"reference"`` to the epoch engines of this module (``epoch_s``
    applies only to those).
    """
    if scenario.engine == "scalar":
        return FleetSimulator(scenario).run()
    try:
        engine = EPOCH_ENGINES[scenario.engine]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown netsim engine {scenario.engine!r}; "
            f"available: {['scalar', *sorted(EPOCH_ENGINES)]}"
        ) from exc
    return engine(scenario, epoch_s=epoch_s).run()
