"""Deterministic discrete-event scheduler for the fleet simulator.

A classic event-queue/simulated-clock kernel: callbacks are scheduled at
absolute simulation times and executed in time order.  Timestamp ties are
broken first by the caller-supplied ``tie_break`` key and only then by
insertion order, so that simultaneous events (slot boundaries, identical
backoff draws) resolve by an explicit, documented policy rather than by
whichever callback happened to be scheduled first.  The MAC layer passes
its device id as the key, which makes same-instant contention a stable
function of the scenario instead of a latent artefact of heap-insertion
order.  All randomness lives in the callers (which draw from one seeded
:class:`numpy.random.Generator`), so a seed fully determines a run.
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.exceptions import ConfigurationError
from repro.obs import metrics as obs

__all__ = ["Event", "EventScheduler"]


class Event:
    """Handle to a scheduled callback.

    Attributes
    ----------
    time_s:
        Absolute simulation time the callback fires at.
    tie_break:
        Caller-supplied ordering key for same-timestamp events (the MAC
        layer passes the device id); lower keys fire first.
    seq:
        Monotonic insertion counter, the final tie-breaker.
    cancelled:
        Whether :meth:`cancel` was called; cancelled events are skipped.
    """

    __slots__ = ("time_s", "tie_break", "seq", "callback", "cancelled")

    def __init__(
        self, time_s: float, seq: int, callback: Callable[[], None], *, tie_break: int = 0
    ) -> None:
        self.time_s = time_s
        self.tie_break = tie_break
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time_s, self.tie_break, self.seq) < (other.time_s, other.tie_break, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time_s:.6f}, key={self.tie_break}, seq={self.seq}, {state})"


class EventScheduler:
    """Event queue plus simulated clock.

    The scheduler never touches wall-clock time or global random state:
    :meth:`run` pops events in ``(time, tie_break, insertion order)`` order
    and invokes their callbacks, which may schedule further events.
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = 0
        self._now = 0.0

    # ---------------------------------------------------------------- status
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    # ------------------------------------------------------------------ API
    def schedule(
        self, delay_s: float, callback: Callable[[], None], *, tie_break: int = 0
    ) -> Event:
        """Schedule *callback* to run ``delay_s`` seconds from now."""
        if delay_s < 0:
            raise ConfigurationError(f"cannot schedule {delay_s} s in the past")
        return self.schedule_at(self._now + delay_s, callback, tie_break=tie_break)

    def schedule_at(
        self, time_s: float, callback: Callable[[], None], *, tie_break: int = 0
    ) -> Event:
        """Schedule *callback* at the absolute simulation time ``time_s``.

        ``tie_break`` orders same-timestamp events (lower keys first);
        events with equal keys keep insertion order.
        """
        if time_s < self._now:
            raise ConfigurationError(
                f"cannot schedule at {time_s} s; clock is already at {self._now} s"
            )
        event = Event(time_s, self._seq, callback, tie_break=tie_break)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_s
            event.callback()
            return True
        return False

    def run(self, until_s: float | None = None, *, max_events: int | None = None) -> int:
        """Run events until the queue drains or the clock would pass ``until_s``.

        Events scheduled beyond ``until_s`` are left in the queue and the
        clock is advanced to exactly ``until_s``.  Returns the number of
        events executed.
        """
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return executed
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until_s is not None and head.time_s > until_s:
                    break
                self.step()
                executed += 1
            if until_s is not None and until_s > self._now:
                self._now = until_s
            return executed
        finally:
            # One aggregate count per run() call keeps the per-event hot
            # loop free of any telemetry overhead.
            obs.count("netsim.events.dispatched", executed)
