"""Fleet scenarios: N interscatter devices sharing one single-tone carrier.

A :class:`FleetScenario` names an application profile (traffic shape +
antenna/tissue drawn from :mod:`repro.apps`), a fleet size, a MAC policy
and a seed; :class:`FleetSimulator` then

1. places the devices on concentric rings around the carrier source using
   :mod:`repro.channel.geometry` positions, with ring scale matched to the
   profile's physical range (contact lenses live tens of centimetres from
   the watch, implants centimetres from the headset),
2. evaluates each device's two-hop :class:`~repro.channel.link_budget.
   BackscatterLinkBudget` once (the fleet is static, so RSSI per device is
   a constant of the scenario),
3. drives per-device traffic generators and MAC instances over the shared
   medium with one seeded RNG and one event queue, and
4. returns :class:`~repro.netsim.metrics.FleetMetrics`.

Runs are fully deterministic in the scenario seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.exceptions import ConfigurationError
from repro.apps.card_to_card import CARD_PAYLOAD_BITS
from repro.apps.contact_lens import ContactLensReading
from repro.apps.neural_implant import NeuralFrame
from repro.channel.geometry import Position
from repro.channel.link_budget import BackscatterLinkBudget
from repro.channel.noise import NoiseModel
from repro.channel.propagation import PathLossModel
from repro.core.downlink import InterscatterDownlink
from repro.core.timing import InterscatterTiming
from repro.mc.link_abstraction import LinkAbstraction
from repro.netsim.events import EventScheduler
from repro.obs import metrics as obs
from repro.netsim.mac import (
    CsmaBackoff,
    MacProtocol,
    Packet,
    PureAloha,
    SlottedAloha,
    TdmaPolling,
    POLL_BITS,
    make_mac,
)
from repro.netsim.medium import SharedMedium
from repro.netsim.metrics import DeviceStats, FleetMetrics

__all__ = [
    "TrafficProfile",
    "PROFILES",
    "contact_lens_profile",
    "neural_implant_profile",
    "card_to_card_profile",
    "ring_placement",
    "FleetScenario",
    "SimDevice",
    "FleetSimulator",
]

#: Minimal 802.11b MAC header + FCS the apps prepend to their payloads.
MAC_OVERHEAD_BYTES = 6


@dataclass(frozen=True)
class TrafficProfile:
    """Traffic + physical profile of one device class.

    Attributes
    ----------
    name:
        Profile identifier (also used in metrics).
    payload_bytes:
        Application payload per packet; the synthesized PSDU adds
        :data:`MAC_OVERHEAD_BYTES` and is clipped to the packet-in-packet
        budget of the profile's Wi-Fi rate.
    period_s:
        Mean packet (or burst) interval per device.
    wifi_rate_mbps:
        802.11b rate of the synthesized packets.
    burst_size:
        Packets generated per traffic event (card swipes arrive in bursts).
    jitter_fraction:
        Uniform ±jitter applied to each interval, as a fraction of it.
    tag_antenna / tissue:
        Link-budget inputs from the corresponding app prototype.
    inner_radius_m / ring_spacing_m:
        Placement geometry: radius of the first device ring around the
        carrier source and the spacing of subsequent rings.
    receiver_offset_m:
        Distance from the carrier source to the fleet's Wi-Fi receiver.
    """

    name: str
    payload_bytes: int
    period_s: float
    wifi_rate_mbps: float = 2.0
    burst_size: int = 1
    jitter_fraction: float = 0.1
    tag_antenna: str = "monopole_2dbi"
    tissue: str | None = None
    inner_radius_m: float = 0.5
    ring_spacing_m: float = 0.25
    receiver_offset_m: float = 0.5


def contact_lens_profile(*, period_s: float = 0.25) -> TrafficProfile:
    """Glucose telemetry from smart contact lenses near a smart watch."""
    payload = len(ContactLensReading(glucose_mmol_per_l=5.5, sequence=0).encode())
    return TrafficProfile(
        name="contact_lens",
        payload_bytes=payload,
        period_s=period_s,
        wifi_rate_mbps=2.0,
        tag_antenna="contact_lens_loop",
        tissue="contact_lens_saline",
        inner_radius_m=0.25,
        ring_spacing_m=0.15,
        receiver_offset_m=0.3,
    )


def neural_implant_profile(
    *, period_s: float = 0.05, num_channels: int = 8, samples_per_channel: int = 8
) -> TrafficProfile:
    """ECoG frame streaming from implanted neural recorders."""
    frame = NeuralFrame(
        channel_samples=np.zeros((num_channels, samples_per_channel), dtype=np.int16),
        sequence=0,
    )
    return TrafficProfile(
        name="neural_implant",
        payload_bytes=len(frame.encode()),
        period_s=period_s,
        wifi_rate_mbps=11.0,
        tag_antenna="neural_implant_loop",
        tissue="muscle_0_75_inch",
        inner_radius_m=0.06,
        ring_spacing_m=0.02,
        receiver_offset_m=0.05,
    )


def card_to_card_profile(*, period_s: float = 1.0, burst_size: int = 4) -> TrafficProfile:
    """Bursty payment exchanges between credit-card form-factor devices."""
    payload = math.ceil(CARD_PAYLOAD_BITS / 8)
    return TrafficProfile(
        name="card_to_card",
        payload_bytes=payload,
        period_s=period_s,
        wifi_rate_mbps=2.0,
        burst_size=burst_size,
        tag_antenna="credit_card_trace",
        tissue=None,
        inner_radius_m=0.2,
        ring_spacing_m=0.15,
        receiver_offset_m=0.25,
    )


#: Registry of the Section-5 application profiles.
PROFILES = {
    "contact_lens": contact_lens_profile,
    "neural_implant": neural_implant_profile,
    "card_to_card": card_to_card_profile,
}


def ring_placement(
    num_devices: int,
    *,
    inner_radius_m: float,
    ring_spacing_m: float,
    per_first_ring: int = 8,
) -> list[Position]:
    """Deterministic concentric-ring placement around the origin.

    Ring ``k`` (1-based) has radius ``inner + (k-1)·spacing`` and holds
    ``per_first_ring·k`` devices, evenly spaced in angle with a half-step
    twist per ring so devices do not line up radially.
    """
    if num_devices < 1:
        raise ConfigurationError("num_devices must be at least 1")
    if inner_radius_m <= 0 or ring_spacing_m <= 0:
        raise ConfigurationError("placement radii must be positive")
    positions: list[Position] = []
    ring = 1
    while len(positions) < num_devices:
        radius = inner_radius_m + (ring - 1) * ring_spacing_m
        capacity = per_first_ring * ring
        count = min(capacity, num_devices - len(positions))
        twist = math.pi / capacity * (ring - 1)
        for i in range(count):
            angle = 2.0 * math.pi * i / capacity + twist
            positions.append(
                Position(radius * math.cos(angle), radius * math.sin(angle))
            )
        ring += 1
    return positions


@dataclass(frozen=True)
class FleetScenario:
    """One reproducible multi-device experiment configuration.

    Attributes
    ----------
    profile:
        Device class (a :class:`TrafficProfile` or a name from
        :data:`PROFILES`).
    num_devices:
        Fleet size.
    mac:
        MAC policy name from :data:`repro.netsim.mac.MAC_POLICIES`.
    duration_s:
        Simulated horizon.
    seed:
        Seed of the single RNG driving traffic jitter, backoffs, PER draws
        and poll losses.
    source_power_dbm:
        Transmit power of the shared single-tone carrier.
    period_s:
        Optional override of the profile's packet interval (the scaling
        experiments use it to push offered load).
    mac_params:
        Extra keyword arguments forwarded to the MAC constructor.
    phy_fast_path:
        When True, packet fates are resolved through the memoised PER
        tables of :class:`repro.mc.link_abstraction.LinkAbstraction`
        (table lookup + Bernoulli draw) instead of evaluating the analytic
        PHY error model per packet.  Statistically equivalent up to the
        table's 0.25 dB SINR binning; essential for 1000+ device fleets.
    engine:
        Execution engine ``repro.netsim.batched.simulate`` dispatches on:
        ``"scalar"`` (this module's continuous-time heap engine),
        ``"batched"`` (vectorised epoch engine) or ``"reference"`` (the
        scalar epoch oracle the differential tests trust).
    """

    profile: TrafficProfile | str = "contact_lens"
    num_devices: int = 10
    mac: str = "slotted_aloha"
    duration_s: float = 5.0
    seed: int = 2016
    source_power_dbm: float = 20.0
    period_s: float | None = None
    mac_params: dict = field(default_factory=dict)
    phy_fast_path: bool = False
    engine: str = "scalar"

    def resolved_profile(self) -> TrafficProfile:
        """The concrete profile, with any period override applied."""
        profile = self.profile
        if isinstance(profile, str):
            try:
                profile = PROFILES[profile]()
            except KeyError as exc:
                raise ConfigurationError(
                    f"unknown profile {self.profile!r}; available: {sorted(PROFILES)}"
                ) from exc
        if self.period_s is not None:
            profile = replace(profile, period_s=self.period_s)
        return profile


class SimDevice:
    """One placed device: geometry, link budget and MAC instance."""

    def __init__(
        self,
        device_id: int,
        position: Position,
        *,
        rssi_dbm: float,
        incident_power_dbm: float,
        psdu_bytes: int,
        air_time_s: float,
        rate_mbps: float,
        mac: MacProtocol,
        stats: DeviceStats,
    ) -> None:
        self.device_id = device_id
        self.position = position
        self.rssi_dbm = rssi_dbm
        self.incident_power_dbm = incident_power_dbm
        self.psdu_bytes = psdu_bytes
        self.air_time_s = air_time_s
        self.rate_mbps = rate_mbps
        self.mac = mac
        self.stats = stats
        self.sequence = 0


class FleetSimulator:
    """Runs one :class:`FleetScenario` end to end."""

    #: Safety margin added to MAC slots over the raw packet air time.
    SLOT_GUARD_FRACTION = 0.05

    def __init__(self, scenario: FleetScenario) -> None:
        if scenario.num_devices < 1:
            raise ConfigurationError("num_devices must be at least 1")
        if scenario.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        self.scenario = scenario
        self.profile = scenario.resolved_profile()
        self.rng = np.random.default_rng(scenario.seed)
        self.scheduler = EventScheduler()
        self.metrics = FleetMetrics()

        timing = InterscatterTiming(wifi_rate_mbps=self.profile.wifi_rate_mbps)
        budget_bytes = timing.max_wifi_psdu_bytes()
        psdu_bytes = min(self.profile.payload_bytes + MAC_OVERHEAD_BYTES, budget_bytes)
        if psdu_bytes <= 0:
            raise ConfigurationError(
                f"no Wi-Fi payload fits at {self.profile.wifi_rate_mbps} Mbps"
            )
        self._air_time_s = timing.wifi_air_time_s(psdu_bytes)
        slot_s = self._air_time_s * (1.0 + self.SLOT_GUARD_FRACTION)

        link_budget = BackscatterLinkBudget(
            source_power_dbm=scenario.source_power_dbm,
            tag_antenna=self.profile.tag_antenna,
            tissue=self.profile.tissue,
            path_loss=PathLossModel(path_loss_exponent=2.0),
            noise=NoiseModel(bandwidth_hz=22e6),
        )
        # The medium must judge packets against the same receiver the link
        # budget models, so it inherits that noise floor and sensitivity.
        self.link_abstraction = LinkAbstraction() if scenario.phy_fast_path else None
        self.medium = SharedMedium(
            noise=link_budget.noise,
            receiver_sensitivity_dbm=link_budget.receiver_sensitivity_dbm,
            link_abstraction=self.link_abstraction,
        )
        receiver = Position(0.0, self.profile.receiver_offset_m)
        positions = ring_placement(
            scenario.num_devices,
            inner_radius_m=self.profile.inner_radius_m,
            ring_spacing_m=self.profile.ring_spacing_m,
        )
        downlink = InterscatterDownlink(rng=np.random.default_rng(scenario.seed))
        origin = Position(0.0, 0.0)

        self.nodes: list[SimDevice] = []
        for device_id, position in enumerate(positions):
            link = link_budget.evaluate(
                position.distance_to(origin), position.distance_to(receiver)
            )
            mac = self._make_mac(
                device_id,
                slot_s=slot_s,
                downlink=downlink,
                poll_distance_m=position.distance_to(receiver),
            )
            stats = self.metrics.add_device(device_id, self.profile.name, link.rssi_dbm)
            node = SimDevice(
                device_id,
                position,
                rssi_dbm=link.rssi_dbm,
                incident_power_dbm=link.incident_power_dbm,
                psdu_bytes=psdu_bytes,
                air_time_s=self._air_time_s,
                rate_mbps=self.profile.wifi_rate_mbps,
                mac=mac,
                stats=stats,
            )
            mac.bind(node, self)
            self.nodes.append(node)

    # ------------------------------------------------------------- MAC setup
    def _make_mac(
        self,
        device_id: int,
        *,
        slot_s: float,
        downlink: InterscatterDownlink,
        poll_distance_m: float,
    ) -> MacProtocol:
        name = self.scenario.mac
        params = dict(self.scenario.mac_params)
        if name == PureAloha.name:
            params.setdefault("base_backoff_s", 4.0 * slot_s)
        elif name == SlottedAloha.name:
            params.setdefault("slot_s", slot_s)
        elif name == CsmaBackoff.name:
            params.setdefault("backoff_slot_s", slot_s / 4.0)
        elif name == TdmaPolling.name:
            ber, _ = downlink.link_bit_error_rate(poll_distance_m)
            params.setdefault("slot_index", device_id)
            params.setdefault("num_slots", self.scenario.num_devices)
            params.setdefault("slot_s", slot_s)
            params.setdefault("poll_success_prob", float((1.0 - ber) ** POLL_BITS))
        return make_mac(name, **params)

    # --------------------------------------------------------------- traffic
    def _schedule_arrival(self, node: SimDevice, delay_s: float) -> None:
        self.scheduler.schedule(delay_s, lambda: self._arrive(node))

    def _arrive(self, node: SimDevice) -> None:
        profile = self.profile
        for _ in range(profile.burst_size):
            node.sequence += 1
            packet = Packet(
                device_id=node.device_id,
                sequence=node.sequence,
                psdu_bytes=node.psdu_bytes,
                created_s=self.scheduler.now,
            )
            node.stats.generated += 1
            if not node.mac.packet_arrived(packet):
                node.stats.queue_dropped += 1
        jitter = profile.jitter_fraction * float(self.rng.uniform(-1.0, 1.0))
        self._schedule_arrival(node, profile.period_s * (1.0 + jitter))

    # ----------------------------------------------------- MAC-facing service
    def transmit(self, node: SimDevice, packet: Packet, done) -> None:
        """Put *packet* on the air; *done(packet, outcome)* fires at its end."""
        packet.attempts += 1
        node.stats.attempted += 1
        tx = self.medium.begin(
            device_id=node.device_id,
            rssi_dbm=node.rssi_dbm,
            duration_s=node.air_time_s,
            psdu_bytes=packet.psdu_bytes,
            rate_mbps=node.rate_mbps,
            now=self.scheduler.now,
        )

        def finish() -> None:
            outcome = self.medium.end(tx, now=self.scheduler.now, rng=self.rng)
            if outcome.collided:
                node.stats.collided += 1
            done(packet, outcome)

        self.scheduler.schedule(node.air_time_s, finish)

    def record_delivery(self, node: SimDevice, packet: Packet) -> None:
        """Credit a decoded packet to its device."""
        node.stats.delivered += 1
        node.stats.bytes_delivered += packet.psdu_bytes
        node.stats.latencies_s.append(self.scheduler.now - packet.created_s)

    def record_drop(self, node: SimDevice, packet: Packet) -> None:
        """Account a packet the MAC gave up on."""
        node.stats.dropped += 1

    # ------------------------------------------------------------------- run
    def run(self) -> FleetMetrics:
        """Execute the scenario and return the collected metrics."""
        with obs.span(
            "netsim.fleet.run",
            profile=self.profile.name,
            devices=self.scenario.num_devices,
            mac=self.scenario.mac,
            fast_path=self.scenario.phy_fast_path,
        ):
            for node in self.nodes:
                node.mac.start()
                # Desynchronise first arrivals across the fleet.
                self._schedule_arrival(
                    node, float(self.rng.uniform(0.0, self.profile.period_s))
                )
            self.scheduler.run(until_s=self.scenario.duration_s)
            self.medium.finalize(self.scenario.duration_s)
            self.metrics.finalize(
                duration_s=self.scenario.duration_s,
                busy_time_s=self.medium.busy_time_s,
                airtime_s=self.medium.airtime_s,
            )
        obs.gauge("netsim.medium.busy_time_s", self.medium.busy_time_s)
        obs.gauge("netsim.medium.airtime_s", self.medium.airtime_s)
        return self.metrics
