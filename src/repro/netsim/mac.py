"""Pluggable medium-access policies for backscatter fleets.

Every policy implements the same small :class:`MacProtocol` surface — a
per-device packet queue plus hooks deciding *when* the head of the queue
goes on the air — so the fleet simulator can swap them freely:

* :class:`PureAloha` — transmit on arrival, rebroadcast after a random
  (binary-exponentially widening) delay when the receiver did not get it.
* :class:`SlottedAloha` — the same, but attempts are aligned to slot
  boundaries sized to one packet air time, halving the vulnerable period.
* :class:`CsmaBackoff` — 802.15.4-flavoured CSMA: listen before talk via
  the medium's carrier-sense primitive, binary exponential backoff while
  the channel is busy, bounded CCA attempts.
* :class:`TdmaPolling` — contention-free polling driven by the paper's
  OFDM downlink: the access point addresses one device per slot, and a
  device only answers a poll it actually decodes (the poll delivery
  probability comes from the downlink BER at the device's distance).

Retransmissions assume immediate delivery feedback (the standard ALOHA
idealisation); a packet is dropped after ``max_attempts`` failures.
"""

from __future__ import annotations

import abc
from collections import deque
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.netsim.medium import MediumOutcome

__all__ = [
    "Packet",
    "MacProtocol",
    "PureAloha",
    "SlottedAloha",
    "CsmaBackoff",
    "TdmaPolling",
    "MAC_POLICIES",
    "make_mac",
]

#: Cap on the binary-exponential window growth of the ALOHA policies.  Deep
#: enough (2**10 slots ≈ 170 ms at contact-lens air times) for the retry
#: load to stabilise instead of storming when the channel saturates.
MAX_BACKOFF_EXPONENT = 10

#: Address bits in one TDMA poll (sets how many downlink bit errors it takes
#: to lose a poll).
POLL_BITS = 16


@dataclass
class Packet:
    """One application packet waiting in (or moving through) a MAC queue.

    Attributes
    ----------
    device_id:
        Originating device.
    sequence:
        Per-device sequence number.
    psdu_bytes:
        Size of the synthesized Wi-Fi PSDU carrying the packet.
    created_s:
        Simulation time the application generated the packet (for latency).
    attempts:
        Transmission attempts made so far.
    """

    device_id: int
    sequence: int
    psdu_bytes: int
    created_s: float
    attempts: int = 0


class MacProtocol(abc.ABC):
    """Common queue/retry machinery shared by every MAC policy.

    A policy instance is bound to exactly one device via :meth:`bind`; the
    simulator then feeds it packets (:meth:`packet_arrived`) and completion
    callbacks, and the policy decides attempt timing through its hooks.
    """

    name = "mac"

    def __init__(self, *, max_attempts: int = 8, queue_limit: int = 64) -> None:
        if max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if queue_limit < 1:
            raise ConfigurationError("queue_limit must be at least 1")
        self.max_attempts = max_attempts
        self.queue_limit = queue_limit
        self._queue: deque[Packet] = deque()
        self._pending = None  # scheduled attempt Event, if any
        self._in_flight = False
        self.node = None
        self.sim = None

    # -------------------------------------------------------------- plumbing
    def bind(self, node, sim) -> None:
        """Attach the policy to its device and the running simulator."""
        self.node = node
        self.sim = sim

    @property
    def scheduler(self):
        """The simulator's event scheduler."""
        return self.sim.scheduler

    @property
    def medium(self):
        """The shared medium (carrier-sense primitive)."""
        return self.sim.medium

    @property
    def rng(self):
        """The simulator's seeded random generator."""
        return self.sim.rng

    @property
    def queue_length(self) -> int:
        """Packets currently queued (including one mid-transmission)."""
        return len(self._queue)

    # ------------------------------------------------------------------ API
    def start(self) -> None:
        """Called once when the simulation begins (TDMA schedules slots)."""

    def packet_arrived(self, packet: Packet) -> bool:
        """Accept a new packet; returns False when the queue overflows."""
        if len(self._queue) >= self.queue_limit:
            return False
        self._queue.append(packet)
        self._kick()
        return True

    # ----------------------------------------------------------- policy hooks
    def access_delay_s(self, packet: Packet) -> float:
        """Delay before the first attempt of a fresh head-of-queue packet."""
        return 0.0

    @abc.abstractmethod
    def retry_delay_s(self, packet: Packet) -> float:
        """Delay before re-attempting a packet the receiver did not get."""

    def _packet_finished(self) -> None:
        """Hook run after a packet leaves the queue (delivered or dropped)."""

    # ------------------------------------------------------------- internals
    @property
    def _tie_break(self) -> int:
        """Ordering key for same-instant attempts: the bound device's id.

        Simultaneous MAC events (slot boundaries, equal backoff draws) used
        to resolve in heap-insertion order — a latent bias that favoured
        whichever device's previous event happened to run first.  Keying
        ties on the device id makes same-instant contention an explicit,
        documented function of the scenario.
        """
        return getattr(self.node, "device_id", 0)

    def _kick(self) -> None:
        if self._in_flight or self._pending is not None or not self._queue:
            return
        self._pending = self.scheduler.schedule(
            self.access_delay_s(self._queue[0]), self._attempt, tie_break=self._tie_break
        )

    def _attempt(self) -> None:
        self._pending = None
        if self._in_flight or not self._queue:
            return
        self._begin_transmission(self._queue[0])

    def _begin_transmission(self, packet: Packet) -> None:
        self._in_flight = True
        self.sim.transmit(self.node, packet, self._tx_done)

    def _tx_done(self, packet: Packet, outcome: MediumOutcome) -> None:
        self._in_flight = False
        if outcome.delivered:
            self._queue.popleft()
            self.sim.record_delivery(self.node, packet)
            self._packet_finished()
            self._kick()
        elif packet.attempts >= self.max_attempts:
            self._queue.popleft()
            self.sim.record_drop(self.node, packet)
            self._packet_finished()
            self._kick()
        else:
            self._handle_failure(packet)

    def _handle_failure(self, packet: Packet) -> None:
        self._pending = self.scheduler.schedule(
            self.retry_delay_s(packet), self._attempt, tie_break=self._tie_break
        )


class PureAloha(MacProtocol):
    """Unslotted ALOHA: talk whenever a packet arrives.

    Parameters
    ----------
    base_backoff_s:
        Width of the first retransmission window; the window doubles with
        every failed attempt (capped at ``2**MAX_BACKOFF_EXPONENT``).
    """

    name = "aloha"

    def __init__(self, *, base_backoff_s: float = 1e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        if base_backoff_s <= 0:
            raise ConfigurationError("base_backoff_s must be positive")
        self.base_backoff_s = base_backoff_s

    def retry_delay_s(self, packet: Packet) -> float:
        exponent = min(packet.attempts - 1, MAX_BACKOFF_EXPONENT)
        return float(self.rng.uniform(0.0, self.base_backoff_s * 2.0**exponent))


class SlottedAloha(MacProtocol):
    """Slotted ALOHA: attempts wait for the next slot boundary.

    Parameters
    ----------
    slot_s:
        Slot duration; the fleet layer sizes it to one packet air time.
    """

    name = "slotted_aloha"

    def __init__(self, *, slot_s: float = 1e-3, **kwargs) -> None:
        super().__init__(**kwargs)
        if slot_s <= 0:
            raise ConfigurationError("slot_s must be positive")
        self.slot_s = slot_s

    def _next_boundary(self, slots_ahead: int = 1) -> float:
        now = self.scheduler.now
        boundary = (int(now / self.slot_s) + slots_ahead) * self.slot_s
        return max(boundary - now, 0.0)

    def access_delay_s(self, packet: Packet) -> float:
        return self._next_boundary(1)

    def retry_delay_s(self, packet: Packet) -> float:
        exponent = min(packet.attempts, MAX_BACKOFF_EXPONENT)
        slots_ahead = int(self.rng.integers(1, 2**exponent + 1))
        return self._next_boundary(slots_ahead)


class CsmaBackoff(MacProtocol):
    """CSMA with binary exponential backoff (802.15.4-style unslotted CCA).

    Parameters
    ----------
    min_be / max_be:
        Bounds of the backoff exponent; the backoff before each clear
        channel assessment is uniform in ``[0, 2**BE)`` backoff slots.
    max_cca_attempts:
        Busy assessments tolerated before the packet is declared a channel
        access failure and dropped.
    backoff_slot_s:
        Duration of one backoff slot.
    cca_reliability:
        Probability a busy medium is actually detected as busy — the tag's
        envelope-detector carrier sense is not perfect (cf. the CCA_prob
        knob in LoRa MAC simulators).
    """

    name = "csma"

    def __init__(
        self,
        *,
        min_be: int = 3,
        max_be: int = 6,
        max_cca_attempts: int = 5,
        backoff_slot_s: float = 320e-6,
        cca_reliability: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if not 0 <= min_be <= max_be:
            raise ConfigurationError("need 0 <= min_be <= max_be")
        if max_cca_attempts < 1:
            raise ConfigurationError("max_cca_attempts must be at least 1")
        if not 0.0 <= cca_reliability <= 1.0:
            raise ConfigurationError("cca_reliability must be in [0, 1]")
        if backoff_slot_s <= 0:
            raise ConfigurationError("backoff_slot_s must be positive")
        self.min_be = min_be
        self.max_be = max_be
        self.max_cca_attempts = max_cca_attempts
        self.backoff_slot_s = backoff_slot_s
        self.cca_reliability = cca_reliability
        self._be = min_be
        self._cca_attempts = 0

    def _backoff_s(self) -> float:
        slots = int(self.rng.integers(0, 2**self._be))
        return slots * self.backoff_slot_s

    def access_delay_s(self, packet: Packet) -> float:
        return self._backoff_s()

    def retry_delay_s(self, packet: Packet) -> float:
        self._be = min(self._be + 1, self.max_be)
        return self._backoff_s()

    def _packet_finished(self) -> None:
        self._be = self.min_be
        self._cca_attempts = 0

    def _attempt(self) -> None:
        self._pending = None
        if self._in_flight or not self._queue:
            return
        sensed_busy = self.medium.busy and bool(
            self.rng.random() < self.cca_reliability
        )
        if sensed_busy:
            self._cca_attempts += 1
            if self._cca_attempts > self.max_cca_attempts:
                # Channel access failure: give up on the head packet.
                packet = self._queue.popleft()
                self.sim.record_drop(self.node, packet)
                self._packet_finished()
                self._kick()
                return
            self._be = min(self._be + 1, self.max_be)
            self._pending = self.scheduler.schedule(
                self._backoff_s(), self._attempt, tie_break=self._tie_break
            )
            return
        self._cca_attempts = 0
        self._begin_transmission(self._queue[0])


class TdmaPolling(MacProtocol):
    """Contention-free TDMA driven by OFDM-downlink polls.

    The access point runs a superframe of ``num_slots`` slots and polls one
    device per slot over the interscatter downlink (§2.4 of the paper); a
    device transmits the head of its queue only in its own slot and only
    when it decoded the poll.  Slots never overlap, so the only losses are
    missed polls, sub-sensitivity links and residual PER.

    Parameters
    ----------
    slot_index / num_slots:
        This device's slot and the superframe length.
    slot_s:
        Slot duration (≥ one packet air time).
    poll_success_prob:
        Probability the device decodes its poll — ``(1 - BER)**POLL_BITS``
        with the BER of the AM downlink at the device's distance.
    """

    name = "tdma"

    def __init__(
        self,
        *,
        slot_index: int = 0,
        num_slots: int = 1,
        slot_s: float = 1e-3,
        poll_success_prob: float = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        if num_slots < 1 or not 0 <= slot_index < num_slots:
            raise ConfigurationError("need 0 <= slot_index < num_slots")
        if slot_s <= 0:
            raise ConfigurationError("slot_s must be positive")
        if not 0.0 <= poll_success_prob <= 1.0:
            raise ConfigurationError("poll_success_prob must be in [0, 1]")
        self.slot_index = slot_index
        self.num_slots = num_slots
        self.slot_s = slot_s
        self.poll_success_prob = poll_success_prob

    @property
    def superframe_s(self) -> float:
        """Duration of one full polling round."""
        return self.num_slots * self.slot_s

    def start(self) -> None:
        self.scheduler.schedule(self.slot_index * self.slot_s, self._slot, tie_break=self._tie_break)

    def _slot(self) -> None:
        self.scheduler.schedule(self.superframe_s, self._slot, tie_break=self._tie_break)
        if self._in_flight or not self._queue:
            return
        if self.rng.random() >= self.poll_success_prob:
            return  # the poll itself was lost on the downlink
        self._begin_transmission(self._queue[0])

    def _kick(self) -> None:
        pass  # slot ticks, not arrivals, drive transmissions

    def retry_delay_s(self, packet: Packet) -> float:
        return 0.0  # unused: retries wait for the next owned slot

    def _handle_failure(self, packet: Packet) -> None:
        pass  # packet stays at the head of the queue for the next slot


#: Name → policy class registry used by scenarios and CLI-ish drivers.
MAC_POLICIES: dict[str, type[MacProtocol]] = {
    PureAloha.name: PureAloha,
    SlottedAloha.name: SlottedAloha,
    CsmaBackoff.name: CsmaBackoff,
    TdmaPolling.name: TdmaPolling,
}


def make_mac(name: str, **kwargs) -> MacProtocol:
    """Instantiate a MAC policy by registry name."""
    try:
        policy = MAC_POLICIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown MAC policy {name!r}; available: {sorted(MAC_POLICIES)}"
        ) from exc
    return policy(**kwargs)
