"""Shared-medium model: carrier activity, overlapping transmissions, capture.

All tags in a fleet backscatter the same single-tone carrier into the same
22 MHz Wi-Fi channel, so their synthesized packets contend at the one
receiver.  The medium tracks every in-flight transmission, accumulates the
mutual interference between overlapping ones, and — when a transmission
ends — decides its fate from the signal-to-interference-plus-noise ratio:

* no overlap → the link-budget SNR drives the analytic PER of
  :mod:`repro.channel.error_models`;
* overlap → a packet survives only through *capture*: its SINR must clear
  ``capture_threshold_db`` (a co-channel 802.11b correlator cannot ride its
  processing gain through an interferer the way it rides through thermal
  noise), after which the SINR-degraded PER still applies.  Comparable-power
  overlaps corrupt every packet involved.

The same activity bookkeeping doubles as the carrier-sense primitive for
CSMA MACs and as the medium-utilization metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.channel.error_models import wifi_packet_error_rate
from repro.channel.noise import NoiseModel
from repro.obs import metrics as obs
from repro.utils.dsp import dbm_to_watts

__all__ = ["Transmission", "MediumOutcome", "SharedMedium"]


@dataclass
class Transmission:
    """One in-flight packet on the shared medium.

    Attributes
    ----------
    device_id:
        Transmitting device.
    start_s / duration_s:
        Air-time interval of the packet.
    rssi_dbm:
        Received power of this packet at the fleet receiver.
    psdu_bytes / rate_mbps:
        Synthesized 802.11b packet parameters (drive the PER model).
    peak_interference_w:
        Largest concurrent interference power seen at any instant of the
        packet's air time (linear watts at the receiver).
    """

    device_id: int
    start_s: float
    duration_s: float
    rssi_dbm: float
    psdu_bytes: int
    rate_mbps: float
    signal_w: float = field(init=False)
    current_interference_w: float = field(default=0.0, init=False)
    peak_interference_w: float = field(default=0.0, init=False)

    def __post_init__(self) -> None:
        self.signal_w = dbm_to_watts(self.rssi_dbm)

    @property
    def end_s(self) -> float:
        """Scheduled end of the packet's air time."""
        return self.start_s + self.duration_s


@dataclass(frozen=True)
class MediumOutcome:
    """Fate of one transmission, decided when its air time ends.

    Attributes
    ----------
    delivered:
        Whether the packet decoded at the receiver.
    collided:
        Whether any other transmission overlapped this one.
    sinr_db:
        Signal-to-interference-plus-noise ratio used for the PER draw.
    packet_error_rate:
        Analytic PER at that SINR.
    rssi_dbm:
        Received power of the packet.
    """

    delivered: bool
    collided: bool
    sinr_db: float
    packet_error_rate: float
    rssi_dbm: float


class SharedMedium:
    """The one Wi-Fi channel a backscatter fleet shares.

    Parameters
    ----------
    noise:
        Receiver noise model (22 MHz Wi-Fi bandwidth by default).
    receiver_sensitivity_dbm:
        Sensitivity floor of the commodity receiver; packets below it are
        never decodable regardless of interference.
    capture_threshold_db:
        Minimum SINR for a packet that overlapped another transmission to
        capture the receiver; below it the packet is corrupted outright.
    link_abstraction:
        Optional :class:`repro.mc.link_abstraction.LinkAbstraction`.  When
        set, packet fates come from its memoised PER-vs-SINR tables (one
        lookup + one Bernoulli draw per packet) instead of evaluating the
        analytic PHY error model per packet — the fast path that makes
        1000-device fleets cheap.  ``None`` (the default) keeps the exact
        per-packet evaluation.
    """

    def __init__(
        self,
        *,
        noise: NoiseModel | None = None,
        receiver_sensitivity_dbm: float = -94.0,
        capture_threshold_db: float = 10.0,
        link_abstraction=None,
    ) -> None:
        self.noise = noise if noise is not None else NoiseModel(bandwidth_hz=22e6)
        self.receiver_sensitivity_dbm = receiver_sensitivity_dbm
        self.capture_threshold_db = capture_threshold_db
        self.link_abstraction = link_abstraction
        self._noise_w = dbm_to_watts(self.noise.noise_floor_dbm)
        self._active: list[Transmission] = []
        self._busy_since: float | None = None
        self.busy_time_s = 0.0
        self.airtime_s = 0.0
        self.transmissions = 0
        self.collisions = 0
        self.resolutions = 0
        self.fast_path_hits = 0
        self.phy_calls = 0

    # ---------------------------------------------------------------- status
    @property
    def busy(self) -> bool:
        """Whether any transmission is currently on the air (carrier sense)."""
        return bool(self._active)

    @property
    def active_count(self) -> int:
        """Number of simultaneously in-flight transmissions."""
        return len(self._active)

    def utilization(self, duration_s: float) -> float:
        """Fraction of *duration_s* during which the medium was busy."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        return min(self.busy_time_s / duration_s, 1.0)

    # ------------------------------------------------------------------ API
    def begin(
        self,
        *,
        device_id: int,
        rssi_dbm: float,
        duration_s: float,
        psdu_bytes: int,
        rate_mbps: float,
        now: float,
    ) -> Transmission:
        """Start a transmission and update the mutual-interference ledger."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        tx = Transmission(
            device_id=device_id,
            start_s=now,
            duration_s=duration_s,
            rssi_dbm=rssi_dbm,
            psdu_bytes=psdu_bytes,
            rate_mbps=rate_mbps,
        )
        for other in self._active:
            other.current_interference_w += tx.signal_w
            other.peak_interference_w = max(
                other.peak_interference_w, other.current_interference_w
            )
            tx.current_interference_w += other.signal_w
        tx.peak_interference_w = tx.current_interference_w
        if not self._active:
            self._busy_since = now
        self._active.append(tx)
        self.airtime_s += duration_s
        self.transmissions += 1
        return tx

    def end(self, tx: Transmission, *, now: float, rng: np.random.Generator) -> MediumOutcome:
        """Finish a transmission and decide whether it decoded."""
        try:
            self._active.remove(tx)
        except ValueError as exc:
            raise ConfigurationError("transmission is not active on this medium") from exc
        for other in self._active:
            other.current_interference_w = max(
                other.current_interference_w - tx.signal_w, 0.0
            )
        if not self._active and self._busy_since is not None:
            self.busy_time_s += now - self._busy_since
            self._busy_since = None

        sinr_db = float(
            10.0 * np.log10(tx.signal_w / (self._noise_w + tx.peak_interference_w))
        )
        self.resolutions += 1
        obs.count("netsim.medium.resolutions")
        collided = tx.peak_interference_w > 0.0
        if collided and sinr_db < self.capture_threshold_db:
            per = 1.0
        elif self.link_abstraction is not None:
            self.fast_path_hits += 1
            obs.count("netsim.medium.fast_path_hits")
            per = self.link_abstraction.per(
                sinr_db, rate_mbps=tx.rate_mbps, payload_bytes=tx.psdu_bytes
            )
        else:
            self.phy_calls += 1
            obs.count("netsim.medium.phy_calls")
            per = wifi_packet_error_rate(
                sinr_db, rate_mbps=tx.rate_mbps, payload_bytes=tx.psdu_bytes
            )
        if collided:
            self.collisions += 1
            obs.count("netsim.medium.collisions")
        delivered = bool(
            tx.rssi_dbm >= self.receiver_sensitivity_dbm and rng.random() > per
        )
        return MediumOutcome(
            delivered=delivered,
            collided=collided,
            sinr_db=sinr_db,
            packet_error_rate=float(per),
            rssi_dbm=tx.rssi_dbm,
        )

    def finalize(self, now: float) -> None:
        """Close the busy-time ledger at the end of a run.

        Transmissions still in flight at *now* (the simulation horizon)
        contribute their elapsed busy time but never produce an outcome.
        """
        if self._busy_since is not None:
            self.busy_time_s += max(now - self._busy_since, 0.0)
            self._busy_since = now if self._active else None
