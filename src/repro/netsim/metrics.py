"""Per-device and aggregate metrics for fleet simulations.

The simulator feeds one :class:`DeviceStats` per device; at the end of a
run :class:`FleetMetrics` rolls them up into the aggregate numbers the
scaling experiments plot — throughput, delivery ratio, attempt-level PER,
medium utilization and latency percentiles.  ``fingerprint()`` condenses a
whole run into a hashable tuple so tests (and the example walkthrough) can
assert bit-identical results across runs at the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DeviceStats", "AggregateMetrics", "FleetMetrics"]


@dataclass
class DeviceStats:
    """Counters for one device in the fleet.

    Attributes
    ----------
    generated:
        Packets produced by the application.
    queue_dropped:
        Packets refused because the MAC queue was full.
    attempted:
        Transmission attempts (retries included).
    collided:
        Attempts that overlapped another transmission.
    delivered / dropped:
        Packets that decoded at the receiver / were abandoned by the MAC.
    bytes_delivered:
        Payload volume of delivered packets.
    latencies_s:
        Generation-to-delivery latency of each delivered packet.
    """

    device_id: int
    profile: str
    rssi_dbm: float = 0.0
    generated: int = 0
    queue_dropped: int = 0
    attempted: int = 0
    collided: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_delivered: int = 0
    latencies_s: list[float] = field(default_factory=list)

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of everything the application generated."""
        return self.delivered / self.generated if self.generated else 0.0

    @property
    def attempt_per(self) -> float:
        """Fraction of transmission attempts that failed."""
        if not self.attempted:
            return 0.0
        return 1.0 - self.delivered / self.attempted

    def throughput_bps(self, duration_s: float) -> float:
        """Delivered goodput over the run."""
        return self.bytes_delivered * 8.0 / duration_s if duration_s > 0 else 0.0

    def mean_latency_s(self) -> float:
        """Mean delivery latency (0 when nothing was delivered)."""
        if not self.latencies_s:
            return 0.0
        return float(np.mean(self.latencies_s))


@dataclass(frozen=True)
class AggregateMetrics:
    """Fleet-wide rollup of one simulation run.

    Attributes
    ----------
    throughput_bps:
        Total delivered goodput.
    delivery_ratio:
        Delivered / generated across the fleet.
    attempt_per:
        Failed fraction of all transmission attempts.
    utilization:
        Fraction of the run during which the medium was busy.
    offered_airtime_s:
        Sum of all transmission air times (exceeds the busy time when
        transmissions overlap — the gap is the collision load).
    latency_p50_s / latency_p90_s / latency_p99_s:
        Delivery-latency percentiles over every delivered packet
        (0 when nothing was delivered).
    """

    num_devices: int
    duration_s: float
    generated: int
    queue_dropped: int
    attempted: int
    collided: int
    delivered: int
    dropped: int
    throughput_bps: float
    delivery_ratio: float
    attempt_per: float
    utilization: float
    offered_airtime_s: float
    latency_p50_s: float
    latency_p90_s: float
    latency_p99_s: float


class FleetMetrics:
    """Collects per-device statistics and produces the aggregate view."""

    def __init__(self) -> None:
        self.devices: dict[int, DeviceStats] = {}
        self.duration_s = 0.0
        self.busy_time_s = 0.0
        self.offered_airtime_s = 0.0

    # -------------------------------------------------------------- recording
    def add_device(self, device_id: int, profile: str, rssi_dbm: float) -> DeviceStats:
        """Register a device and return its stats record."""
        stats = DeviceStats(device_id=device_id, profile=profile, rssi_dbm=rssi_dbm)
        self.devices[device_id] = stats
        return stats

    def finalize(self, *, duration_s: float, busy_time_s: float, airtime_s: float) -> None:
        """Record the run horizon and the medium's activity ledger."""
        self.duration_s = duration_s
        self.busy_time_s = busy_time_s
        self.offered_airtime_s = airtime_s

    # -------------------------------------------------------------- reporting
    def aggregate(self) -> AggregateMetrics:
        """Roll every device up into fleet-wide metrics."""
        stats = list(self.devices.values())
        generated = sum(s.generated for s in stats)
        attempted = sum(s.attempted for s in stats)
        delivered = sum(s.delivered for s in stats)
        latencies = [lat for s in stats for lat in s.latencies_s]
        if latencies:
            p50, p90, p99 = (
                float(v) for v in np.percentile(latencies, [50.0, 90.0, 99.0])
            )
        else:
            p50 = p90 = p99 = 0.0
        return AggregateMetrics(
            num_devices=len(stats),
            duration_s=self.duration_s,
            generated=generated,
            queue_dropped=sum(s.queue_dropped for s in stats),
            attempted=attempted,
            collided=sum(s.collided for s in stats),
            delivered=delivered,
            dropped=sum(s.dropped for s in stats),
            throughput_bps=sum(s.throughput_bps(self.duration_s) for s in stats),
            delivery_ratio=delivered / generated if generated else 0.0,
            attempt_per=1.0 - delivered / attempted if attempted else 0.0,
            utilization=(
                min(self.busy_time_s / self.duration_s, 1.0) if self.duration_s else 0.0
            ),
            offered_airtime_s=self.offered_airtime_s,
            latency_p50_s=p50,
            latency_p90_s=p90,
            latency_p99_s=p99,
        )

    def fingerprint(self) -> tuple:
        """Exact per-device digest for determinism checks."""
        return tuple(
            (
                s.device_id,
                s.generated,
                s.queue_dropped,
                s.attempted,
                s.collided,
                s.delivered,
                s.dropped,
                s.bytes_delivered,
                float(sum(s.latencies_s)),
            )
            for s in sorted(self.devices.values(), key=lambda s: s.device_id)
        )

    def format_report(self, *, per_device_rows: int = 5) -> str:
        """Human-readable aggregate + head-of-fleet table."""
        agg = self.aggregate()
        lines = [
            f"devices={agg.num_devices}  duration={agg.duration_s:.2f}s  "
            f"generated={agg.generated}  delivered={agg.delivered}  "
            f"dropped={agg.dropped}  queue_dropped={agg.queue_dropped}",
            f"delivery_ratio={agg.delivery_ratio:.3f}  attempt_per={agg.attempt_per:.3f}  "
            f"throughput={agg.throughput_bps / 1e3:.1f} kbps  "
            f"utilization={agg.utilization:.3f}",
            f"latency p50/p90/p99 = {agg.latency_p50_s * 1e3:.2f} / "
            f"{agg.latency_p90_s * 1e3:.2f} / {agg.latency_p99_s * 1e3:.2f} ms",
            f"{'id':>4} {'rssi':>7} {'gen':>5} {'del':>5} {'ratio':>6} "
            f"{'coll':>5} {'lat(ms)':>8}",
        ]
        for stats in sorted(self.devices.values(), key=lambda s: s.device_id)[
            :per_device_rows
        ]:
            lines.append(
                f"{stats.device_id:>4} {stats.rssi_dbm:>7.1f} {stats.generated:>5} "
                f"{stats.delivered:>5} {stats.delivery_ratio:>6.3f} {stats.collided:>5} "
                f"{stats.mean_latency_s() * 1e3:>8.2f}"
            )
        if len(self.devices) > per_device_rows:
            lines.append(f"   … {len(self.devices) - per_device_rows} more devices")
        return "\n".join(lines)
