"""``repro.obs`` — runtime telemetry, tracing and the trend observatory.

The platform's execution layers (runner, netsim, mc, store) emit
process-local counters, gauges and timed spans through
:mod:`repro.obs.metrics`; the :class:`~repro.api.runner.Runner` collects
them per run into a strict-JSON telemetry document riding on every
:class:`~repro.api.result.Result` envelope.  :mod:`repro.obs.stats`
aggregates those documents across a store (``python -m repro stats``),
and :mod:`repro.obs.trends` persists per-PR benchmark medians and
paper-vs-measured deltas as small committed trend files rendered into
the figure gallery — the repo observing its own performance and
fidelity trajectory.

Everything here is observability-only by contract: telemetry never
enters result identity (:func:`repro.api.store.result_key`), report
bytes or figure bytes, exactly like ``runtime_s``.
"""

from repro.obs.metrics import (
    TELEMETRY_VERSION,
    Collector,
    active_collector,
    collect,
    count,
    format_span_tree,
    gauge,
    span,
    structure,
    validate_telemetry,
)

__all__ = [
    "TELEMETRY_VERSION",
    "Collector",
    "active_collector",
    "collect",
    "count",
    "format_span_tree",
    "gauge",
    "span",
    "structure",
    "validate_telemetry",
]
