"""Process-local metrics: counters, gauges and a span-based tracer.

Contract: instrumentation points anywhere in the codebase call the
module-level :func:`count` / :func:`gauge` / :func:`span` helpers.  When
no :class:`Collector` is active (the default) every helper is a cheap
no-op — one ``None`` check, no allocation — so instrumented hot paths
cost nothing in un-observed runs.  When a collector is active (the
:class:`~repro.api.runner.Runner` activates one around each driver call)
the helpers record into it, and :meth:`Collector.to_dict` serializes
everything to a strict-JSON *telemetry document*::

    {"telemetry_version": 1,
     "counters": {"netsim.events.dispatched": 1234, ...},
     "gauges":   {"netsim.medium.utilization": 0.41, ...},
     "spans":    [{"name": "run.mac_scaling", "attrs": {...},
                   "duration_s": 1.2, "children": [...]}]}

Span *structure* is deterministic by construction: span names are plain
strings fixed at the call site and attributes must be JSON scalars
derived from the run's parameters, so two runs of the same spec and seed
produce structurally identical trees (:func:`structure` strips the
wall-clock durations, which is what the determinism tests compare).
Durations are wall-clock (:func:`time.perf_counter`) and, like the
envelope's ``runtime_s``, never participate in result identity or in any
byte-deterministic document.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator

from contextlib import contextmanager

from repro.exceptions import ConfigurationError

__all__ = [
    "TELEMETRY_VERSION",
    "Collector",
    "Span",
    "active_collector",
    "collect",
    "count",
    "gauge",
    "span",
    "structure",
    "format_span_tree",
    "validate_telemetry",
]

#: Version stamp of the telemetry document layout.
TELEMETRY_VERSION = 1

#: Attribute value types a span may carry (JSON scalars; None for "absent").
_SCALAR_TYPES = (str, int, float, bool, type(None))

_ACTIVE: "Collector | None" = None


def _check_name(kind: str, name: str) -> None:
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"{kind} name must be a non-empty string, got {name!r}")


def _check_attrs(name: str, attrs: dict[str, Any]) -> dict[str, Any]:
    for key, value in attrs.items():
        if not isinstance(value, _SCALAR_TYPES):
            raise ConfigurationError(
                f"span {name!r} attribute {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
        if isinstance(value, float) and value != value:  # NaN breaks strict JSON
            raise ConfigurationError(f"span {name!r} attribute {key!r} is NaN (not strict-JSON)")
    return attrs


class Span:
    """One timed, named region of a run, possibly with child spans."""

    __slots__ = ("name", "attrs", "duration_s", "children")

    def __init__(self, name: str, attrs: dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.duration_s = 0.0
        self.children: list[Span] = []

    def to_dict(self) -> dict[str, Any]:
        """Strict-JSON form of this span and its subtree."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": float(self.duration_s),
            "children": [child.to_dict() for child in self.children],
        }


class Collector:
    """Accumulates one run's counters, gauges and span tree.

    A collector is process-local and not thread-safe by design: every
    worker process owns its module state, and the runner activates one
    collector per driver call.  Use :meth:`activate` (a context manager)
    to make it the target of the module-level helpers; activations nest,
    restoring the previous collector on exit.
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------ recording
    def count(self, name: str, n: int = 1) -> None:
        """Add *n* to the named monotonic counter."""
        _check_name("counter", name)
        self.counters[name] = self.counters.get(name, 0) + int(n)

    def gauge(self, name: str, value: float) -> None:
        """Record the named gauge (last write wins)."""
        _check_name("gauge", name)
        self.gauges[name] = float(value)

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Time a named region; nests under the currently open span."""
        _check_name("span", name)
        entry = Span(name, _check_attrs(name, attrs))
        if self._stack:
            self._stack[-1].children.append(entry)
        else:
            self.spans.append(entry)
        self._stack.append(entry)
        start = time.perf_counter()
        try:
            yield entry
        finally:
            entry.duration_s = time.perf_counter() - start
            self._stack.pop()

    @contextmanager
    def activate(self) -> Iterator["Collector"]:
        """Make this collector the target of the module-level helpers."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    # ---------------------------------------------------------- serializing
    def to_dict(self) -> dict[str, Any]:
        """The strict-JSON telemetry document (counters sorted by name)."""
        return {
            "telemetry_version": TELEMETRY_VERSION,
            "counters": {name: self.counters[name] for name in sorted(self.counters)},
            "gauges": {name: self.gauges[name] for name in sorted(self.gauges)},
            "spans": [entry.to_dict() for entry in self.spans],
        }


# ------------------------------------------------------- module-level helpers


def active_collector() -> Collector | None:
    """The currently active collector, or ``None`` when telemetry is off."""
    return _ACTIVE


@contextmanager
def collect() -> Iterator[Collector]:
    """Activate a fresh collector for the duration of the block."""
    collector = Collector()
    with collector.activate():
        yield collector


def count(name: str, n: int = 1) -> None:
    """Add *n* to a counter on the active collector (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.count(name, n)


def gauge(name: str, value: float) -> None:
    """Record a gauge on the active collector (no-op when disabled)."""
    if _ACTIVE is not None:
        _ACTIVE.gauge(name, value)


class _NullSpan:
    """Reentrant, allocation-free stand-in returned when telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any):
    """Open a timed span on the active collector (no-op when disabled)."""
    if _ACTIVE is None:
        return _NULL_SPAN
    return _ACTIVE.span(name, **attrs)


# ----------------------------------------------------------------- documents


def validate_telemetry(document: Any) -> None:
    """Validate a telemetry document's shape; raise on the first violation."""
    if not isinstance(document, dict):
        raise ConfigurationError(f"telemetry must be an object, got {type(document).__name__}")
    if document.get("telemetry_version") != TELEMETRY_VERSION:
        raise ConfigurationError(
            f"unsupported telemetry_version {document.get('telemetry_version')!r} "
            f"(expected {TELEMETRY_VERSION})"
        )
    for field, value_type in (("counters", int), ("gauges", (int, float))):
        table = document.get(field)
        if not isinstance(table, dict):
            raise ConfigurationError(f"telemetry field {field!r} must be an object")
        for name, value in table.items():
            if not isinstance(name, str) or isinstance(value, bool) or not isinstance(value, value_type):
                raise ConfigurationError(f"telemetry {field} entry {name!r} has a bad type")
    if not isinstance(document.get("spans"), list):
        raise ConfigurationError("telemetry field 'spans' must be a list")
    for entry in document["spans"]:
        _validate_span(entry)


def _validate_span(entry: Any) -> None:
    if not isinstance(entry, dict):
        raise ConfigurationError(f"telemetry span must be an object, got {type(entry).__name__}")
    if not isinstance(entry.get("name"), str) or not entry["name"]:
        raise ConfigurationError("telemetry span is missing a name")
    if not isinstance(entry.get("attrs"), dict):
        raise ConfigurationError(f"telemetry span {entry['name']!r} attrs must be an object")
    for key, value in entry["attrs"].items():
        if not isinstance(key, str) or not isinstance(value, _SCALAR_TYPES):
            raise ConfigurationError(f"telemetry span {entry['name']!r} attribute {key!r} has a bad type")
    duration = entry.get("duration_s")
    if isinstance(duration, bool) or not isinstance(duration, (int, float)):
        raise ConfigurationError(f"telemetry span {entry['name']!r} duration_s must be a number")
    if not isinstance(entry.get("children"), list):
        raise ConfigurationError(f"telemetry span {entry['name']!r} children must be a list")
    for child in entry["children"]:
        _validate_span(child)


def structure(document: dict[str, Any]) -> dict[str, Any]:
    """The document's deterministic skeleton: durations and gauges stripped.

    Two runs of the same spec and seed must produce equal structures —
    counters, span names, span attributes and tree shape — while their
    wall-clock durations (and timing-derived gauges) are free to differ.
    This is the object the telemetry-determinism tests compare.
    """

    def strip(entry: dict[str, Any]) -> dict[str, Any]:
        return {
            "name": entry["name"],
            "attrs": dict(entry["attrs"]),
            "children": [strip(child) for child in entry["children"]],
        }

    return {
        "counters": dict(document.get("counters", {})),
        "spans": [strip(entry) for entry in document.get("spans", [])],
    }


def format_span_tree(document: dict[str, Any]) -> list[str]:
    """Human-readable span-tree lines (``python -m repro trace`` output)."""
    validate_telemetry(document)
    lines: list[str] = []

    def render(entry: dict[str, Any], depth: int) -> None:
        attrs = " ".join(f"{key}={json.dumps(value)}" for key, value in entry["attrs"].items())
        suffix = f" {attrs}" if attrs else ""
        lines.append(f"{'  ' * depth}{entry['name']}{suffix}  [{entry['duration_s'] * 1e3:.2f} ms]")
        for child in entry["children"]:
            render(child, depth + 1)

    for entry in document["spans"]:
        render(entry, 0)
    return lines
