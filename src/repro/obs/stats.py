"""Telemetry analytics over a result store.

The runner attaches one :mod:`repro.obs.metrics` document per envelope;
this module folds a whole campaign's documents back into summary tables.
:func:`stats_frame` produces one :class:`~repro.api.analytics.Frame` row
per experiment — wall-time mean/p50/p95, span counts, event throughput
and the netsim fast-path hit rate — and :func:`counter_totals` sums every
counter across the store.  Both feed ``python -m repro stats``.

Like every analytics path, iteration order is deterministic (experiments
sorted by name, counters by name) so the same store always renders the
same tables.  Only the *values* are machine-dependent: wall times and
events/sec measure the host that ran the campaign.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.api.analytics import Frame
from repro.api.result import Result
from repro.api.store import ResultStore

__all__ = ["campaign_counter_totals", "counter_totals", "span_count", "stats_frame"]


def span_count(document: dict[str, Any]) -> int:
    """Total number of spans (children included) in a telemetry document."""

    def walk(entry: dict[str, Any]) -> int:
        return 1 + sum(walk(child) for child in entry.get("children", ()))

    return sum(walk(entry) for entry in document.get("spans", ()))


def _observed(results: list[Result]) -> list[Result]:
    return [result for result in results if result.telemetry is not None]


def _counter_sum(results: list[Result], name: str) -> int:
    return sum(result.telemetry["counters"].get(name, 0) for result in _observed(results))


def _ratio(numerator: float, denominator: float) -> float:
    """A JSON-safe rate: 0.0 (not NaN) when the denominator is empty."""
    return numerator / denominator if denominator > 0 else 0.0


def counter_totals(
    store: "ResultStore | list[Result]", *, experiment: str | None = None
) -> dict[str, int]:
    """Every telemetry counter summed across the store, sorted by name."""
    results = list(store.iter_results() if isinstance(store, ResultStore) else store)
    if experiment is not None:
        results = [result for result in results if result.experiment == experiment]
    totals: dict[str, int] = {}
    for result in _observed(results):
        for name, value in result.telemetry["counters"].items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def campaign_counter_totals(store: ResultStore) -> dict[str, int]:
    """Campaign-level counters summed across the store's telemetry sidecar.

    Per-run telemetry documents only see what happens *inside* a driver
    call; cache hits, resume misses and merge fan-in happen in the
    coordinating process before or between runs.  The CLI records those
    in the store's campaign-telemetry sidecar
    (:meth:`~repro.api.store.ResultStore.append_campaign_telemetry`);
    this sums every sidecar counter, sorted by name.
    """
    totals: dict[str, int] = {}
    for document in store.iter_campaign_telemetry():
        for name, value in document.get("counters", {}).items():
            totals[name] = totals.get(name, 0) + value
    return {name: totals[name] for name in sorted(totals)}


def stats_frame(
    store: "ResultStore | list[Result]", *, experiment: str | None = None
) -> Frame:
    """One summary row per experiment in the store.

    Columns: ``experiment``, ``runs`` (distinct stored invocations),
    ``observed`` (runs carrying telemetry), ``runtime_mean_s`` /
    ``runtime_p50_s`` / ``runtime_p95_s`` (over every run's recorded
    ``runtime_s``), ``spans`` (total spans collected), ``events_per_s``
    (netsim events dispatched per second of observed wall time) and
    ``fast_path_hit_rate`` (table lookups / medium resolutions; 0.0 when
    the experiment never touched the medium).
    """
    results = list(store.iter_results() if isinstance(store, ResultStore) else store)
    if experiment is not None:
        results = [result for result in results if result.experiment == experiment]

    by_experiment: dict[str, list[Result]] = {}
    for result in results:
        by_experiment.setdefault(result.experiment, []).append(result)

    names = sorted(by_experiment)
    runs: list[int] = []
    observed_counts: list[int] = []
    runtime_mean: list[float] = []
    runtime_p50: list[float] = []
    runtime_p95: list[float] = []
    spans: list[int] = []
    events_per_s: list[float] = []
    fast_path_rate: list[float] = []
    for name in names:
        members = by_experiment[name]
        observed = _observed(members)
        runtimes = np.asarray([member.runtime_s for member in members], dtype=float)
        runs.append(len(members))
        observed_counts.append(len(observed))
        runtime_mean.append(float(np.mean(runtimes)))
        runtime_p50.append(float(np.percentile(runtimes, 50)))
        runtime_p95.append(float(np.percentile(runtimes, 95)))
        spans.append(sum(span_count(member.telemetry) for member in observed))
        events = _counter_sum(members, "netsim.events.dispatched")
        observed_runtime = sum(member.runtime_s for member in observed)
        events_per_s.append(_ratio(events, observed_runtime))
        fast_path_rate.append(
            _ratio(
                _counter_sum(members, "netsim.medium.fast_path_hits"),
                _counter_sum(members, "netsim.medium.resolutions"),
            )
        )
    return Frame(
        {
            "experiment": names,
            "runs": runs,
            "observed": observed_counts,
            "runtime_mean_s": np.asarray(runtime_mean, dtype=float),
            "runtime_p50_s": np.asarray(runtime_p50, dtype=float),
            "runtime_p95_s": np.asarray(runtime_p95, dtype=float),
            "spans": spans,
            "events_per_s": np.asarray(events_per_s, dtype=float),
            "fast_path_hit_rate": np.asarray(fast_path_rate, dtype=float),
        }
    )
