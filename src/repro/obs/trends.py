"""The self-observing trend observatory: per-PR perf and parity history.

Two committed JSON documents under ``benchmarks/trends/`` accumulate one
entry per PR:

* ``runtime.json`` — every benchmark's median seconds from a
  ``benchmarks/baseline.json``-style pytest-benchmark run
  (:func:`runtime_entry`, appended by
  ``benchmarks/compare_benchmarks.py --append-trend``);
* ``parity.json`` — paper-vs-measured headline values for the
  experiments with a quantitative paper target (:data:`PAPER_TARGETS`),
  measured from a result store's payloads (:func:`parity_entry`).

Entries are appended alongside the baseline-refresh procedure (they are
machine-measured, so CI never writes them — it only *renders* them);
re-appending a PR replaces its entry, so the files stay idempotent.
:func:`trend_figures` turns the committed documents into declarative
:mod:`repro.plots` figures — ``trend_runtime`` (suite-median seconds per
PR) and ``trend_parity`` (measured/paper ratio per PR) — which the
gallery renders into ``figures/`` under the same byte-determinism drift
gate as every experiment figure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.api.registry import get_experiment
from repro.api.store import ResultStore, representative
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - the gallery imports this module at
    # module level (for TRENDS_DIR), so importing repro.plots here would be
    # circular; the figure builders import it lazily instead.
    from repro.plots.figure import Figure

__all__ = [
    "TREND_VERSION",
    "PaperTarget",
    "PAPER_TARGETS",
    "load_trend",
    "save_trend",
    "append_entry",
    "runtime_entry",
    "parity_entry",
    "runtime_figure",
    "parity_figure",
    "trend_figures",
]

#: Version stamp of the trend document layout.
TREND_VERSION = 1

#: Default directory the committed trend documents live in.
TRENDS_DIR = "benchmarks/trends"

_KINDS = ("runtime", "parity")


@dataclass(frozen=True)
class PaperTarget:
    """One quantitative claim of the paper the reproduction tracks.

    Attributes
    ----------
    experiment:
        Registry name whose ``metrics`` hook reports the measured value.
    metric:
        Key of that hook's output dict.
    paper_value:
        The paper's reported number.
    unit:
        Unit of both values (display only).
    """

    experiment: str
    metric: str
    paper_value: float
    unit: str


#: The paper's headline range numbers (Sections 6-7 of the paper): Fig. 10's
#: 90 ft Wi-Fi range at 20 dBm with 1 ft source-tag separation, Fig. 13's
#: 18 ft sub-1 % downlink BER range, Fig. 15's 24 in Bluetooth uplink range
#: at 20 dBm, and Fig. 17's 30 in usable card-to-card range.
PAPER_TARGETS = (
    PaperTarget(experiment="fig10", metric="range_ft_20dbm_1ft", paper_value=90.0, unit="ft"),
    PaperTarget(experiment="fig13", metric="range_below_1pct_feet", paper_value=18.0, unit="ft"),
    PaperTarget(experiment="fig15", metric="range_in_20dbm", paper_value=24.0, unit="in"),
    PaperTarget(experiment="fig17", metric="usable_range_inches", paper_value=30.0, unit="in"),
)


def _check_entry(kind: str, entry: Any) -> None:
    if not isinstance(entry, dict) or not isinstance(entry.get("pr"), int):
        raise ConfigurationError(f"{kind} trend entry must be an object with an integer 'pr'")
    table_key = "median_s" if kind == "runtime" else "targets"
    table = entry.get(table_key)
    if not isinstance(table, dict) or not table:
        raise ConfigurationError(
            f"{kind} trend entry for PR {entry['pr']} needs a non-empty {table_key!r} mapping"
        )
    for name, value in table.items():
        if kind == "runtime":
            ok = isinstance(value, (int, float)) and not isinstance(value, bool)
        else:
            ok = (
                isinstance(value, dict)
                and all(
                    isinstance(value.get(field), (int, float)) and not isinstance(value.get(field), bool)
                    for field in ("paper", "measured")
                )
            )
        if not isinstance(name, str) or not ok:
            raise ConfigurationError(f"{kind} trend entry for PR {entry['pr']}: bad value for {name!r}")


def validate_trend(document: Any) -> None:
    """Validate a trend document's shape; raise on the first violation."""
    if not isinstance(document, dict):
        raise ConfigurationError(f"trend document must be an object, got {type(document).__name__}")
    if document.get("trend_version") != TREND_VERSION:
        raise ConfigurationError(
            f"unsupported trend_version {document.get('trend_version')!r} (expected {TREND_VERSION})"
        )
    kind = document.get("kind")
    if kind not in _KINDS:
        raise ConfigurationError(f"unknown trend kind {kind!r}; known: {_KINDS}")
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise ConfigurationError("trend field 'entries' must be a list")
    prs = []
    for entry in entries:
        _check_entry(kind, entry)
        prs.append(entry["pr"])
    if prs != sorted(prs) or len(set(prs)) != len(prs):
        raise ConfigurationError("trend entries must be sorted by PR number, one entry per PR")


def load_trend(path: str | Path) -> dict[str, Any]:
    """Read and validate one committed trend document."""
    try:
        document = json.loads(Path(path).read_text())
    except FileNotFoundError as exc:
        raise ConfigurationError(f"trend document {str(path)!r} does not exist") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"trend document {str(path)!r} is not valid JSON: {exc}") from exc
    validate_trend(document)
    return document


def save_trend(path: str | Path, document: dict[str, Any]) -> None:
    """Validate and write a trend document (stable key order, one canonical form)."""
    validate_trend(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=1, sort_keys=True, allow_nan=False) + "\n")


def append_entry(
    path: str | Path, *, kind: str, entry: dict[str, Any]
) -> dict[str, Any]:
    """Append *entry* to the trend file at *path* (created if missing).

    Re-appending an existing PR replaces its entry, so refreshing a trend
    alongside a baseline refresh is idempotent.  Returns the document.
    """
    if Path(path).exists():
        document = load_trend(path)
        if document["kind"] != kind:
            raise ConfigurationError(
                f"trend document {str(path)!r} holds {document['kind']!r} entries, not {kind!r}"
            )
    else:
        document = {"trend_version": TREND_VERSION, "kind": kind, "entries": []}
    _check_entry(kind, entry)
    entries = [existing for existing in document["entries"] if existing["pr"] != entry["pr"]]
    entries.append(entry)
    document["entries"] = sorted(entries, key=lambda existing: existing["pr"])
    save_trend(path, document)
    return document


# ------------------------------------------------------------------ entries


def runtime_entry(benchmark_json: str | Path, *, pr: int) -> dict[str, Any]:
    """Build a runtime trend entry from a pytest-benchmark JSON file."""
    try:
        payload = json.loads(Path(benchmark_json).read_text())
    except (FileNotFoundError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"cannot read benchmark JSON {str(benchmark_json)!r}: {exc}") from exc
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise ConfigurationError(f"{str(benchmark_json)!r} holds no benchmarks")
    medians = {
        entry["fullname"]: float(entry["stats"]["median"])
        for entry in benchmarks
    }
    return {"pr": int(pr), "median_s": {name: medians[name] for name in sorted(medians)}}


def parity_entry(store: ResultStore, *, pr: int) -> dict[str, Any]:
    """Build a parity trend entry by measuring :data:`PAPER_TARGETS` from a store.

    Every target experiment must be present in the store (run the fast
    campaign first); the measured value comes from the deterministic
    representative payload, through the experiment's ``metrics`` hook.
    """
    targets: dict[str, dict[str, float]] = {}
    for target in PAPER_TARGETS:
        results = store.query(target.experiment)
        if not results:
            raise ConfigurationError(
                f"store holds no {target.experiment!r} results; run the fast campaign before "
                "appending a parity entry"
            )
        picked = representative(results)
        metrics = get_experiment(target.experiment).metrics(picked.payload)
        if target.metric not in metrics:
            raise ConfigurationError(
                f"metrics hook of {target.experiment!r} reported no {target.metric!r} "
                f"(got {sorted(metrics)}); was the experiment run with compatible parameters?"
            )
        targets[f"{target.experiment}.{target.metric}"] = {
            "paper": target.paper_value,
            "measured": float(metrics[target.metric]),
        }
    return {"pr": int(pr), "targets": targets}


# ------------------------------------------------------------------ figures


def runtime_figure(document: dict[str, Any]) -> Figure:
    """Suite-wide benchmark medians per PR, from a runtime trend document."""
    from repro.plots.figure import Figure, Series

    validate_trend(document)
    if document["kind"] != "runtime":
        raise ConfigurationError(f"expected a runtime trend, got {document['kind']!r}")
    entries = document["entries"]
    if not entries:
        raise ConfigurationError("runtime trend has no entries to plot")
    prs = np.asarray([entry["pr"] for entry in entries], dtype=float)
    per_entry = [np.asarray(list(entry["median_s"].values()), dtype=float) for entry in entries]
    return Figure(
        title="Observatory — benchmark medians per PR",
        xlabel="PR number",
        ylabel="median round time (s)",
        kind="line",
        yscale="log",
        series=(
            Series(label="suite median", x=prs, y=np.asarray([float(np.median(m)) for m in per_entry])),
            Series(label="suite p90", x=prs, y=np.asarray([float(np.percentile(m, 90)) for m in per_entry])),
        ),
        caption=(
            "Median benchmark round times per PR, measured on the baseline machine "
            "alongside each benchmarks/baseline.json refresh."
        ),
    )


def parity_figure(document: dict[str, Any]) -> Figure:
    """Measured/paper ratio per PR for every tracked paper target."""
    from repro.plots.figure import Figure, Series

    validate_trend(document)
    if document["kind"] != "parity":
        raise ConfigurationError(f"expected a parity trend, got {document['kind']!r}")
    entries = document["entries"]
    if not entries:
        raise ConfigurationError("parity trend has no entries to plot")
    names = sorted({name for entry in entries for name in entry["targets"]})
    series = []
    for name in names:
        points = [
            (entry["pr"], entry["targets"][name])
            for entry in entries
            if name in entry["targets"]
        ]
        series.append(
            Series(
                label=name,
                x=np.asarray([pr for pr, _ in points], dtype=float),
                y=np.asarray(
                    [value["measured"] / value["paper"] for _, value in points], dtype=float
                ),
            )
        )
    return Figure(
        title="Observatory — paper-vs-measured parity per PR",
        xlabel="PR number",
        ylabel="measured / paper",
        kind="line",
        series=tuple(series),
        caption=(
            "Headline range metrics relative to the paper's reported values "
            "(1.0 = exact parity), one point per PR's fast campaign."
        ),
    )


def trend_figures(trends_dir: str | Path = TRENDS_DIR) -> dict[str, Figure]:
    """The observatory figures for every trend document present on disk.

    Returns ``{figure name: Figure}`` — ``trend_runtime`` and/or
    ``trend_parity`` — in deterministic order; an absent or empty trends
    directory yields an empty dict (the gallery simply has no
    Observatory section then).
    """
    directory = Path(trends_dir)
    figures: dict[str, Figure] = {}
    for kind, build in (("parity", parity_figure), ("runtime", runtime_figure)):
        path = directory / f"{kind}.json"
        if path.exists():
            figures[f"trend_{kind}"] = build(load_trend(path))
    return {name: figures[name] for name in sorted(figures)}


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.trends append-parity`` — record one PR's parity entry.

    The runtime trend is appended by ``benchmarks/compare_benchmarks.py
    --append-trend``; this is its parity counterpart, run against the fast
    campaign's store alongside each baseline refresh.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trends",
        description="Append observatory trend entries (committed alongside baseline refreshes).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    parity = sub.add_parser("append-parity", help="measure PAPER_TARGETS from a store and append")
    parity.add_argument("--store", required=True, metavar="DIR", help="fast-campaign result store")
    parity.add_argument("--pr", type=int, required=True, help="PR number the entry is recorded under")
    parity.add_argument(
        "--trend",
        default=str(Path(TRENDS_DIR) / "parity.json"),
        metavar="TREND.json",
        help="parity trend document to append to",
    )
    args = parser.parse_args(argv)
    document = append_entry(
        args.trend, kind="parity", entry=parity_entry(ResultStore(args.store), pr=args.pr)
    )
    print(f"appended PR {args.pr} to {args.trend} ({len(document['entries'])} entr(y/ies))")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI docs
    raise SystemExit(_main())
