"""``repro.plots`` — the figure-rendering subsystem.

Converts stored result envelopes into the paper's figures without
re-running any driver.  Contract across the package boundary: plot hooks
produce the declarative :class:`~repro.plots.figure.Figure` model (plain
data, no backend objects); backends are pure functions from that model
to image bytes, deterministic for a given input — the built-in SVG
backend (:mod:`repro.plots.svg`) always, the optional matplotlib/Agg
backend (:mod:`repro.plots.mpl`) per installed version.  The gallery
layer (:mod:`repro.plots.gallery`) renders every registered experiment
from a :class:`~repro.api.store.ResultStore` into ``figures/`` plus the
``FIGURES.md`` index, and can verify the committed artefacts against a
fresh render (``python -m repro plot --check-manifest``).
"""

from repro.plots.figure import Figure, Series
from repro.plots.gallery import check_gallery, generate_gallery, write_gallery
from repro.plots.mpl import matplotlib_available, render_matplotlib
from repro.plots.render import FORMATS, build_figure, figure_filename, render_experiment, render_figure
from repro.plots.svg import render_svg

__all__ = [
    "Figure",
    "Series",
    "FORMATS",
    "build_figure",
    "figure_filename",
    "render_experiment",
    "render_figure",
    "render_svg",
    "render_matplotlib",
    "matplotlib_available",
    "generate_gallery",
    "write_gallery",
    "check_gallery",
]
