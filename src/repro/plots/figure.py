"""The declarative figure model plot hooks produce.

Contract: a driver's ``plot`` hook maps its payload dataclass to one
:class:`Figure` — plain data (numpy arrays, strings, no backend objects)
describing *what* to draw, never *how*.  Backends
(:mod:`repro.plots.svg`, :mod:`repro.plots.mpl`) turn a figure into
bytes; because the model carries no timestamps, handles or environment
state, the same figure always renders to the same bytes on a given
backend.  Three kinds cover the paper's figure shapes: ``line`` (Figs.
6–10, 13, 15–17 and the MAC-scaling sweep), ``cdf`` (Figs. 11 and 14,
rendered as empirical step curves) and ``bar`` (Fig. 12 and the tables).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Figure", "Series", "KINDS", "YSCALES"]

#: Figure kinds the backends know how to draw.
KINDS = ("line", "cdf", "bar")

#: Supported y-axis scales.
YSCALES = ("linear", "log")


def _as_float_array(name: str, values: Any) -> np.ndarray:
    try:
        array = np.asarray(values, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"series {name} must be numeric, got {type(values).__name__}") from exc
    if array.ndim != 1:
        raise ConfigurationError(f"series {name} must be 1-D, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class Series:
    """One plotted data series.

    Attributes
    ----------
    label:
        Legend entry (empty string hides the series from the legend).
    y:
        The values.  For ``bar`` figures, one value per category.
    x:
        The abscissae for ``line``/``cdf`` figures; ``None`` for bars.
    """

    label: str
    y: np.ndarray
    x: np.ndarray | None = None

    def __post_init__(self):
        object.__setattr__(self, "y", _as_float_array(f"{self.label!r} y", self.y))
        if self.x is not None:
            object.__setattr__(self, "x", _as_float_array(f"{self.label!r} x", self.x))
            if self.x.size != self.y.size:
                raise ConfigurationError(
                    f"series {self.label!r} has {self.x.size} x values but {self.y.size} y values"
                )
        if self.y.size == 0:
            raise ConfigurationError(f"series {self.label!r} is empty")


@dataclass(frozen=True)
class Figure:
    """One renderable figure: titled axes plus a tuple of series.

    Attributes
    ----------
    title / xlabel / ylabel:
        Axis decorations (plain text).
    kind:
        ``line``, ``cdf`` (step-rendered empirical CDF) or ``bar``.
    series:
        The data; ``line``/``cdf`` series carry ``x``, ``bar`` series
        carry one ``y`` value per entry of ``categories``.
    categories:
        Category labels for ``bar`` figures (x-axis groups).
    yscale:
        ``linear`` (default) or ``log`` (non-positive values are clipped
        to the axis floor at render time).
    caption:
        One-line description shown under the figure in the gallery.
    """

    title: str
    xlabel: str
    ylabel: str
    series: tuple[Series, ...]
    kind: str = "line"
    categories: tuple[str, ...] = field(default_factory=tuple)
    yscale: str = "linear"
    caption: str = ""

    def __post_init__(self):
        object.__setattr__(self, "series", tuple(self.series))
        object.__setattr__(self, "categories", tuple(str(c) for c in self.categories))
        if self.kind not in KINDS:
            raise ConfigurationError(f"unknown figure kind {self.kind!r}; known: {KINDS}")
        if self.yscale not in YSCALES:
            raise ConfigurationError(f"unknown yscale {self.yscale!r}; known: {YSCALES}")
        if not self.series:
            raise ConfigurationError(f"figure {self.title!r} has no series")
        if self.kind == "bar":
            if not self.categories:
                raise ConfigurationError(f"bar figure {self.title!r} needs categories")
            for series in self.series:
                if series.y.size != len(self.categories):
                    raise ConfigurationError(
                        f"bar series {series.label!r} has {series.y.size} values for "
                        f"{len(self.categories)} categories"
                    )
        else:
            for series in self.series:
                if series.x is None:
                    raise ConfigurationError(
                        f"{self.kind} series {series.label!r} in figure {self.title!r} needs x values"
                    )
