"""Optional matplotlib backend for :class:`~repro.plots.figure.Figure`.

Contract: matplotlib is **not** a dependency of this package — it is
imported lazily inside :func:`render_matplotlib` and its absence raises a
:class:`~repro.exceptions.ConfigurationError` telling the caller to use
the built-in SVG backend instead (``--format svg``).  When matplotlib is
present, rendering is headless (the ``Agg`` backend is forced, never a
GUI) and determinism-hardened: a fixed rcParams profile, a constant
``svg.hashsalt`` and suppressed date/creator metadata, so repeated
renders of one figure produce identical bytes for a given matplotlib
version.  PNG output is only available through this backend.
"""

from __future__ import annotations

import io

import numpy as np

from repro.exceptions import ConfigurationError
from repro.plots.figure import Figure

__all__ = ["matplotlib_available", "render_matplotlib"]

#: rcParams pinned for reproducible output (no user style sheets).
_RC_PARAMS = {
    "figure.figsize": (7.2, 4.4),
    "figure.dpi": 100,
    "savefig.dpi": 100,
    "font.family": "sans-serif",
    "font.size": 11,
    "axes.grid": True,
    "grid.color": "#e0e0e0",
    "svg.hashsalt": "repro-plots",
    "path.simplify": False,
}


def matplotlib_available() -> bool:
    """Whether the optional matplotlib backend can be used."""
    try:
        import matplotlib  # noqa: F401
    except ImportError:
        return False
    return True


def _require_matplotlib():
    try:
        import matplotlib
    except ImportError as exc:
        raise ConfigurationError(
            "matplotlib is not installed; install it for PNG output or use the "
            "built-in deterministic SVG backend (--format svg)"
        ) from exc
    matplotlib.use("Agg", force=True)
    import matplotlib.pyplot as plt

    return plt


def render_matplotlib(figure: Figure, *, format: str = "png") -> bytes:
    """Render *figure* to PNG or SVG bytes with headless matplotlib."""
    if format not in ("png", "svg"):
        raise ConfigurationError(f"unsupported matplotlib format {format!r}; use 'png' or 'svg'")
    plt = _require_matplotlib()
    import matplotlib

    with matplotlib.rc_context(_RC_PARAMS):
        fig, axes = plt.subplots()
        try:
            if figure.kind == "bar":
                groups = len(figure.series)
                width = 0.8 / groups
                positions = np.arange(len(figure.categories), dtype=float)
                for index, series in enumerate(figure.series):
                    offset = (index - (groups - 1) / 2.0) * width
                    axes.bar(positions + offset, series.y, width=width, label=series.label or None)
                axes.set_xticks(positions)
                axes.set_xticklabels(figure.categories)
            else:
                for series in figure.series:
                    if figure.kind == "cdf":
                        order = np.argsort(series.x, kind="stable")
                        axes.step(
                            series.x[order], series.y[order], where="post", label=series.label or None
                        )
                    else:
                        axes.plot(series.x, series.y, label=series.label or None)
            if figure.yscale == "log":
                axes.set_yscale("log")
            axes.set_title(figure.title)
            axes.set_xlabel(figure.xlabel)
            axes.set_ylabel(figure.ylabel)
            if any(series.label for series in figure.series) and len(figure.series) > 1:
                axes.legend(loc="best")
            buffer = io.BytesIO()
            # Date/creator metadata varies per run; null it out so bytes
            # depend only on the figure and the matplotlib version.
            metadata = {"Date": None} if format == "svg" else {"Software": None}
            fig.savefig(buffer, format=format, metadata=metadata)
            return buffer.getvalue()
        finally:
            plt.close(fig)
