"""Backend dispatch: registered experiment → figure → image bytes.

Contract: :func:`render_figure` maps a declarative figure plus a format
name to image bytes — ``svg`` uses the built-in pure-Python backend
(:mod:`repro.plots.svg`, always available, byte-deterministic), ``png``
requires the optional matplotlib backend (:mod:`repro.plots.mpl`) and
fails with a clear :class:`~repro.exceptions.ConfigurationError` when it
is missing.  :func:`render_experiment` is the registry-driven path the
CLI and the gallery use: it looks up an experiment's ``plot`` hook, runs
it on a stored payload and renders the result, so a new experiment gets
figures by declaring a hook — never by adding a script here.
"""

from __future__ import annotations

from typing import Any

from repro.api.registry import get_experiment
from repro.exceptions import ConfigurationError
from repro.plots.figure import Figure
from repro.plots.mpl import render_matplotlib
from repro.plots.svg import render_svg

__all__ = ["FORMATS", "build_figure", "figure_filename", "render_experiment", "render_figure"]

#: Image formats ``python -m repro plot --format`` accepts.
FORMATS = ("svg", "png")


def render_figure(figure: Figure, *, format: str = "svg") -> bytes:
    """Render one figure to image bytes in the requested format."""
    if not isinstance(figure, Figure):
        raise ConfigurationError(f"expected a repro.plots Figure, got {type(figure).__name__}")
    if format == "svg":
        return render_svg(figure)
    if format == "png":
        return render_matplotlib(figure, format="png")
    raise ConfigurationError(f"unknown figure format {format!r}; known: {FORMATS}")


def figure_filename(experiment: str, *, format: str = "svg") -> str:
    """Canonical image file name for one experiment's figure."""
    if format not in FORMATS:
        raise ConfigurationError(f"unknown figure format {format!r}; known: {FORMATS}")
    return f"{experiment}.{format}"


def build_figure(experiment: str, payload: Any) -> Figure:
    """Run an experiment's registered ``plot`` hook on a payload."""
    registered = get_experiment(experiment)
    if registered.plot is None:
        raise ConfigurationError(
            f"experiment {experiment!r} has no registered plot hook; "
            "pass plot= to register() in its driver module"
        )
    figure = registered.plot(payload)
    if not isinstance(figure, Figure):
        raise ConfigurationError(
            f"plot hook of experiment {experiment!r} returned {type(figure).__name__}, expected a Figure"
        )
    return figure


def render_experiment(experiment: str, payload: Any, *, format: str = "svg") -> bytes:
    """Render one experiment's figure from a stored payload."""
    return render_figure(build_figure(experiment, payload), format=format)
