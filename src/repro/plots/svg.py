"""Pure-Python deterministic SVG rendering of :class:`~repro.plots.figure.Figure`.

Contract: :func:`render_svg` is a pure function from the declarative
figure model to UTF-8 SVG bytes — no third-party plotting dependency, no
clocks, no randomness, no environment lookups — so rendering the same
figure twice always produces byte-identical output (what lets CI assert
the committed gallery never drifts).  Coordinates are formatted with a
fixed precision, ticks come from a deterministic nice-number algorithm,
series longer than :data:`MAX_POINTS_PER_SERIES` are decimated on a
fixed index grid, and non-finite samples are dropped (splitting the
polyline) rather than poisoning the path.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

import numpy as np

from repro.exceptions import ConfigurationError
from repro.plots.figure import Figure, Series

__all__ = ["render_svg", "PALETTE", "MAX_POINTS_PER_SERIES"]

#: Series colors, cycled in order.
PALETTE = (
    "#1f77b4",
    "#d62728",
    "#2ca02c",
    "#9467bd",
    "#ff7f0e",
    "#8c564b",
    "#17becf",
    "#e377c2",
    "#7f7f7f",
    "#bcbd22",
)

#: Longest polyline a series may render as; longer series are decimated
#: on a fixed ``linspace`` index grid (first and last points kept).
MAX_POINTS_PER_SERIES = 1024

_WIDTH, _HEIGHT = 720, 440
_LEFT, _RIGHT, _TOP, _BOTTOM = 76, 24, 46, 58
_PLOT_W = _WIDTH - _LEFT - _RIGHT
_PLOT_H = _HEIGHT - _TOP - _BOTTOM
_FONT = "Helvetica, Arial, sans-serif"
#: Width budget per legend character (deterministic layout arithmetic).
_CHAR_W = 6.3


def _fmt(value: float) -> str:
    """Fixed-precision pixel coordinate (deterministic across platforms)."""
    text = f"{value:.2f}"
    return "0.00" if text == "-0.00" else text


def _tick_label(value: float) -> str:
    rounded = round(value, 10)
    if rounded == int(rounded) and abs(rounded) < 1e15:
        rounded = int(rounded)
    return f"{rounded:g}"


def _nice_ticks(low: float, high: float, target: int = 6) -> list[float]:
    """Round tick positions covering ``[low, high]`` at a nice step."""
    span = high - low
    raw = span / max(target, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = 10.0 * magnitude
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        if raw <= multiple * magnitude * (1 + 1e-9):
            step = multiple * magnitude
            break
    first = math.ceil(low / step - 1e-9) * step
    ticks = []
    position = first
    while position <= high + step * 1e-6:
        ticks.append(round(position, 12))
        position += step
    return ticks


def _decimate(series: Series) -> tuple[np.ndarray, np.ndarray]:
    x = np.arange(series.y.size, dtype=float) if series.x is None else series.x
    y = series.y
    if y.size > MAX_POINTS_PER_SERIES:
        indices = np.unique(np.linspace(0, y.size - 1, MAX_POINTS_PER_SERIES).round().astype(int))
        x, y = x[indices], y[indices]
    return x, y


def _step_points(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Expand an empirical CDF into post-step coordinates."""
    step_x = np.repeat(x, 2)[1:]
    step_y = np.repeat(y, 2)[:-1]
    return step_x, step_y


class _Scale:
    """Affine map from data space to pixel space (log handled upstream)."""

    def __init__(self, low: float, high: float, pixel_low: float, pixel_high: float):
        if not (math.isfinite(low) and math.isfinite(high)):
            raise ConfigurationError("cannot scale non-finite axis limits")
        if high == low:
            pad = abs(low) * 0.5 or 1.0
            low, high = low - pad, high + pad
        self.low, self.high = low, high
        self._pixel_low, self._pixel_high = pixel_low, pixel_high

    def __call__(self, value: float) -> float:
        fraction = (value - self.low) / (self.high - self.low)
        return self._pixel_low + fraction * (self._pixel_high - self._pixel_low)


def _series_points(figure: Figure) -> list[tuple[Series, np.ndarray, np.ndarray]]:
    prepared = []
    for series in figure.series:
        x, y = _decimate(series)
        if figure.kind == "cdf":
            order = np.argsort(x, kind="stable")
            x, y = _step_points(x[order], y[order])
        prepared.append((series, x, y))
    return prepared


def _data_limits(
    figure: Figure, prepared: list[tuple[Series, np.ndarray, np.ndarray]]
) -> tuple[float, float, float, float, float]:
    xs, ys, positive = [], [], []
    for _, x, y in prepared:
        finite = np.isfinite(x) & np.isfinite(y)
        xs.append(x[finite])
        ys.append(y[finite])
        positive.append(y[finite & (y > 0)])
    all_x = np.concatenate(xs) if xs else np.array([])
    all_y = np.concatenate(ys) if ys else np.array([])
    if all_x.size == 0 or all_y.size == 0:
        raise ConfigurationError(f"figure {figure.title!r} has no finite data points")
    floor = 0.0
    if figure.yscale == "log":
        all_positive = np.concatenate(positive)
        if all_positive.size == 0:
            raise ConfigurationError(f"log-scale figure {figure.title!r} has no positive values")
        floor = float(all_positive.min())
        y_low = math.floor(math.log10(floor))
        y_high = math.ceil(math.log10(float(all_positive.max())))
        if y_high == y_low:
            y_high += 1
        return float(all_x.min()), float(all_x.max()), float(y_low), float(y_high), floor
    y_low, y_high = float(all_y.min()), float(all_y.max())
    if figure.kind == "bar":
        y_low = min(y_low, 0.0)
    pad = (y_high - y_low) * 0.05
    if pad == 0.0:
        pad = abs(y_high) * 0.1 or 1.0
    return float(all_x.min()), float(all_x.max()), y_low - pad, y_high + pad, floor


def _axes_elements(figure: Figure, x_scale: _Scale, y_scale: _Scale) -> list[str]:
    parts = []
    bottom, top = _TOP + _PLOT_H, _TOP
    right = _LEFT + _PLOT_W
    # Frame.
    parts.append(
        f'<rect x="{_LEFT}" y="{top}" width="{_PLOT_W}" height="{_PLOT_H}" '
        'fill="white" stroke="#444444" stroke-width="1"/>'
    )
    # Y ticks, labels and grid lines.
    if figure.yscale == "log":
        y_ticks = [float(d) for d in range(int(y_scale.low), int(y_scale.high) + 1)]
        y_labels = [f"{10.0 ** d:g}" for d in y_ticks]
    else:
        y_ticks = [t for t in _nice_ticks(y_scale.low, y_scale.high) if y_scale.low <= t <= y_scale.high]
        y_labels = [_tick_label(t) for t in y_ticks]
    for tick, label in zip(y_ticks, y_labels, strict=True):
        py = _fmt(y_scale(tick))
        parts.append(f'<line x1="{_LEFT}" y1="{py}" x2="{right}" y2="{py}" stroke="#e0e0e0" stroke-width="1"/>')
        parts.append(f'<line x1="{_LEFT - 4}" y1="{py}" x2="{_LEFT}" y2="{py}" stroke="#444444" stroke-width="1"/>')
        parts.append(
            f'<text x="{_LEFT - 8}" y="{py}" font-family="{_FONT}" font-size="11" '
            f'fill="#222222" text-anchor="end" dominant-baseline="middle">{escape(label)}</text>'
        )
    # X ticks: category centers for bars, nice numbers otherwise.
    if figure.kind == "bar":
        for index, category in enumerate(figure.categories):
            px = _fmt(x_scale(index + 0.5))
            parts.append(
                f'<line x1="{px}" y1="{bottom}" x2="{px}" y2="{bottom + 4}" stroke="#444444" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{px}" y="{bottom + 18}" font-family="{_FONT}" font-size="11" '
                f'fill="#222222" text-anchor="middle">{escape(category)}</text>'
            )
    else:
        for tick in _nice_ticks(x_scale.low, x_scale.high):
            if not (x_scale.low <= tick <= x_scale.high):
                continue
            px = _fmt(x_scale(tick))
            parts.append(f'<line x1="{px}" y1="{top}" x2="{px}" y2="{bottom}" stroke="#e0e0e0" stroke-width="1"/>')
            parts.append(
                f'<line x1="{px}" y1="{bottom}" x2="{px}" y2="{bottom + 4}" stroke="#444444" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{px}" y="{bottom + 18}" font-family="{_FONT}" font-size="11" '
                f'fill="#222222" text-anchor="middle">{escape(_tick_label(tick))}</text>'
            )
    # Decorations.
    parts.append(
        f'<text x="{_WIDTH // 2}" y="24" font-family="{_FONT}" font-size="14" font-weight="bold" '
        f'fill="#111111" text-anchor="middle">{escape(figure.title)}</text>'
    )
    parts.append(
        f'<text x="{_LEFT + _PLOT_W // 2}" y="{_HEIGHT - 14}" font-family="{_FONT}" font-size="12" '
        f'fill="#222222" text-anchor="middle">{escape(figure.xlabel)}</text>'
    )
    mid_y = _TOP + _PLOT_H // 2
    parts.append(
        f'<text x="18" y="{mid_y}" font-family="{_FONT}" font-size="12" fill="#222222" '
        f'text-anchor="middle" transform="rotate(-90 18 {mid_y})">{escape(figure.ylabel)}</text>'
    )
    return parts


def _polyline_elements(
    figure: Figure, prepared: list[tuple[Series, np.ndarray, np.ndarray]], x_scale: _Scale, y_scale: _Scale, floor: float
) -> list[str]:
    parts = []
    for index, (_, x, y) in enumerate(prepared):
        color = PALETTE[index % len(PALETTE)]
        if figure.yscale == "log":
            y = np.log10(np.clip(y, floor, None))
        segments: list[list[str]] = [[]]
        for px, py in zip(x, y, strict=True):
            if math.isfinite(px) and math.isfinite(py):
                segments[-1].append(f"{_fmt(x_scale(px))},{_fmt(y_scale(py))}")
            elif segments[-1]:
                segments.append([])
        for segment in segments:
            if len(segment) == 1:
                cx, cy = segment[0].split(",")
                parts.append(f'<circle cx="{cx}" cy="{cy}" r="2.5" fill="{color}"/>')
            elif segment:
                parts.append(
                    f'<polyline points="{" ".join(segment)}" fill="none" stroke="{color}" '
                    'stroke-width="1.8" stroke-linejoin="round"/>'
                )
    return parts


def _bar_elements(
    figure: Figure,
    prepared: list[tuple[Series, np.ndarray, np.ndarray]],
    x_scale: _Scale,
    y_scale: _Scale,
    floor: float,
) -> list[str]:
    parts = []
    groups = len(prepared)
    bar_width = 0.8 / groups
    log = figure.yscale == "log"
    # Log axes have no zero: bars rise from the bottom decade instead.
    base_py = y_scale(y_scale.low if log else max(y_scale.low, 0.0))
    for series_index, (_, _, y) in enumerate(prepared):
        color = PALETTE[series_index % len(PALETTE)]
        for category_index, value in enumerate(y):
            if not math.isfinite(value):
                continue
            if log:
                value = math.log10(max(value, floor))
            left = category_index + 0.1 + series_index * bar_width
            x0 = x_scale(left)
            x1 = x_scale(left + bar_width)
            y_top = y_scale(value)
            top = min(y_top, base_py)
            height = abs(base_py - y_top)
            parts.append(
                f'<rect x="{_fmt(x0)}" y="{_fmt(top)}" width="{_fmt(x1 - x0)}" '
                f'height="{_fmt(height)}" fill="{color}" stroke="#333333" stroke-width="0.5"/>'
            )
    return parts


def _legend_elements(figure: Figure) -> list[str]:
    labels = [series.label for series in figure.series if series.label]
    if not labels or (len(figure.series) == 1 and figure.kind != "bar"):
        return []
    width = max(len(label) for label in labels) * _CHAR_W + 34
    height = len(labels) * 16 + 8
    x0 = _LEFT + _PLOT_W - width - 8
    y0 = _TOP + 8
    parts = [
        f'<rect x="{_fmt(x0)}" y="{y0}" width="{_fmt(width)}" height="{height}" '
        'fill="#ffffff" fill-opacity="0.85" stroke="#999999" stroke-width="0.5"/>'
    ]
    row = 0
    for index, series in enumerate(figure.series):
        if not series.label:
            continue
        color = PALETTE[index % len(PALETTE)]
        cy = y0 + 14 + row * 16
        parts.append(
            f'<line x1="{_fmt(x0 + 6)}" y1="{cy - 3}" x2="{_fmt(x0 + 24)}" y2="{cy - 3}" '
            f'stroke="{color}" stroke-width="3"/>'
        )
        parts.append(
            f'<text x="{_fmt(x0 + 29)}" y="{cy}" font-family="{_FONT}" font-size="11" '
            f'fill="#222222">{escape(series.label)}</text>'
        )
        row += 1
    return parts


def render_svg(figure: Figure) -> bytes:
    """Render *figure* to standalone SVG bytes (pure, deterministic)."""
    prepared = _series_points(figure)
    if figure.kind == "bar":
        x_low, x_high = 0.0, float(len(figure.categories))
        _, _, y_low, y_high, floor = _data_limits(figure, prepared)
    else:
        x_low, x_high, y_low, y_high, floor = _data_limits(figure, prepared)
    x_scale = _Scale(x_low, x_high, _LEFT, _LEFT + _PLOT_W)
    y_scale = _Scale(y_low, y_high, _TOP + _PLOT_H, _TOP)

    parts = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" height="{_HEIGHT}" '
        f'viewBox="0 0 {_WIDTH} {_HEIGHT}">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
    ]
    parts.extend(_axes_elements(figure, x_scale, y_scale))
    if figure.kind == "bar":
        parts.extend(_bar_elements(figure, prepared, x_scale, y_scale, floor))
    else:
        parts.extend(_polyline_elements(figure, prepared, x_scale, y_scale, floor))
    parts.extend(_legend_elements(figure))
    parts.append("</svg>")
    return ("\n".join(parts) + "\n").encode("utf-8")
