"""Shared low-level utilities: bit manipulation, CRCs, LFSRs and DSP helpers.

These modules are deliberately free of any protocol knowledge; the BLE,
Wi-Fi and ZigBee packages build their standard-specific machinery on top of
them.
"""

from repro.utils.bits import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    hamming_distance,
    int_to_bits,
    pack_bits,
    unpack_bits,
    xor_bits,
)
from repro.utils.crc import CrcEngine, crc16_ccitt, crc24_ble, crc32_ieee
from repro.utils.lfsr import FibonacciLfsr, GaloisLfsr
from repro.utils.dsp import (
    awgn_noise,
    db_to_linear,
    dbm_to_watts,
    frequency_shift,
    linear_to_db,
    normalize_power,
    rms,
    signal_power,
    signal_power_dbm,
    watts_to_dbm,
)
from repro.utils.spectrum import (
    occupied_bandwidth,
    power_spectral_density,
    spectral_peak,
    spectrum_asymmetry_db,
)
from repro.utils.pulse_shaping import (
    gaussian_filter_taps,
    half_sine_pulse,
    raised_cosine_taps,
    rect_pulse,
)

__all__ = [
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "hamming_distance",
    "int_to_bits",
    "pack_bits",
    "unpack_bits",
    "xor_bits",
    "CrcEngine",
    "crc16_ccitt",
    "crc24_ble",
    "crc32_ieee",
    "FibonacciLfsr",
    "GaloisLfsr",
    "awgn_noise",
    "db_to_linear",
    "dbm_to_watts",
    "frequency_shift",
    "linear_to_db",
    "normalize_power",
    "rms",
    "signal_power",
    "signal_power_dbm",
    "watts_to_dbm",
    "occupied_bandwidth",
    "power_spectral_density",
    "spectral_peak",
    "spectrum_asymmetry_db",
    "gaussian_filter_taps",
    "half_sine_pulse",
    "raised_cosine_taps",
    "rect_pulse",
]
