"""Bit-level helpers shared by every PHY implementation.

All functions operate on numpy ``uint8`` arrays whose elements are 0 or 1.
Unless stated otherwise bit order is *LSB first* within each byte, which is
the transmission order used by Bluetooth LE, 802.11 and 802.15.4.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "bytes_to_bits",
    "bits_to_bytes",
    "int_to_bits",
    "bits_to_int",
    "pack_bits",
    "unpack_bits",
    "xor_bits",
    "hamming_distance",
    "as_bit_array",
]


def as_bit_array(bits: Iterable[int] | np.ndarray) -> np.ndarray:
    """Coerce *bits* into a ``uint8`` numpy array of 0/1 values.

    Raises
    ------
    ValueError
        If any element is not 0 or 1.
    """
    arr = np.asarray(list(bits) if not isinstance(bits, np.ndarray) else bits)
    arr = arr.astype(np.uint8, copy=False)
    if arr.size and not np.all((arr == 0) | (arr == 1)):
        raise ValueError("bit arrays may only contain 0 and 1")
    return arr.ravel()


def bytes_to_bits(data: bytes | bytearray | Sequence[int], *, msb_first: bool = False) -> np.ndarray:
    """Expand *data* into a bit array.

    Parameters
    ----------
    data:
        Bytes-like object to expand.
    msb_first:
        When ``True`` the most-significant bit of every byte comes first.
        The default (``False``) matches the LSB-first transmission order of
        BLE and 802.11.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    if raw.size == 0:
        return np.zeros(0, dtype=np.uint8)
    bits = np.unpackbits(raw.reshape(-1, 1), axis=1)
    if not msb_first:
        bits = bits[:, ::-1]
    return bits.reshape(-1).astype(np.uint8)


def bits_to_bytes(bits: Iterable[int] | np.ndarray, *, msb_first: bool = False) -> bytes:
    """Pack a bit array back into bytes.  Inverse of :func:`bytes_to_bits`.

    The bit count must be a multiple of eight.
    """
    arr = as_bit_array(bits)
    if arr.size % 8 != 0:
        raise ValueError(f"bit count must be a multiple of 8, got {arr.size}")
    grouped = arr.reshape(-1, 8)
    if not msb_first:
        grouped = grouped[:, ::-1]
    return np.packbits(grouped, axis=1).reshape(-1).tobytes()


def int_to_bits(value: int, width: int, *, msb_first: bool = False) -> np.ndarray:
    """Convert an integer to a fixed-width bit array.

    Parameters
    ----------
    value:
        Non-negative integer to convert.
    width:
        Number of bits in the result.  ``value`` must fit in *width* bits.
    msb_first:
        Output ordering; default is LSB first.
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    bits = np.array([(value >> i) & 1 for i in range(width)], dtype=np.uint8)
    if msb_first:
        bits = bits[::-1]
    return bits


def bits_to_int(bits: Iterable[int] | np.ndarray, *, msb_first: bool = False) -> int:
    """Convert a bit array to an integer.  Inverse of :func:`int_to_bits`."""
    arr = as_bit_array(bits)
    if msb_first:
        arr = arr[::-1]
    value = 0
    for i, bit in enumerate(arr):
        value |= int(bit) << i
    return value


def pack_bits(*groups: Iterable[int] | np.ndarray) -> np.ndarray:
    """Concatenate several bit groups into one bit array."""
    parts = [as_bit_array(g) for g in groups]
    if not parts:
        return np.zeros(0, dtype=np.uint8)
    return np.concatenate(parts)


def unpack_bits(bits: Iterable[int] | np.ndarray, *lengths: int) -> list[np.ndarray]:
    """Split a bit array into consecutive groups of the given lengths.

    The sum of *lengths* must not exceed the number of bits; any remaining
    bits are returned as a final group.
    """
    arr = as_bit_array(bits)
    total = sum(lengths)
    if total > arr.size:
        raise ValueError(f"cannot split {arr.size} bits into groups totalling {total}")
    groups: list[np.ndarray] = []
    offset = 0
    for length in lengths:
        groups.append(arr[offset : offset + length])
        offset += length
    if offset < arr.size:
        groups.append(arr[offset:])
    return groups


def xor_bits(a: Iterable[int] | np.ndarray, b: Iterable[int] | np.ndarray) -> np.ndarray:
    """Element-wise XOR of two equal-length bit arrays."""
    arr_a = as_bit_array(a)
    arr_b = as_bit_array(b)
    if arr_a.size != arr_b.size:
        raise ValueError(f"length mismatch: {arr_a.size} vs {arr_b.size}")
    return np.bitwise_xor(arr_a, arr_b)


def hamming_distance(a: Iterable[int] | np.ndarray, b: Iterable[int] | np.ndarray) -> int:
    """Number of positions at which two equal-length bit arrays differ."""
    return int(np.count_nonzero(xor_bits(a, b)))
