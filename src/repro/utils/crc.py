"""A generic bit-serial CRC engine plus the specific CRCs used by each PHY.

Three concrete CRCs are needed by the reproduction:

* ``crc24_ble`` — the 24-bit CRC protecting BLE advertising packets
  (polynomial ``0x00065B``, init value derived from the link-layer state;
  advertising channels use ``0x555555``).
* ``crc32_ieee`` — the FCS appended to 802.11 MPDUs.
* ``crc16_ccitt`` — the 802.15.4 frame check sequence.

The engine operates LSB-first on bit arrays, matching over-the-air order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.utils.bits import as_bit_array, int_to_bits

__all__ = ["CrcEngine", "crc24_ble", "crc32_ieee", "crc16_ccitt"]


@dataclass(frozen=True)
class CrcEngine:
    """Configurable bit-serial CRC calculator.

    Parameters
    ----------
    width:
        CRC width in bits.
    polynomial:
        Generator polynomial with the top bit implicit (standard notation).
    init:
        Initial register value.
    reflect:
        When ``True`` the register shifts right (LSB-first processing, as in
        CRC-32/IEEE); when ``False`` it shifts left (as in CRC-16/CCITT-FALSE
        and the BLE CRC-24 when expressed MSB-first).
    xor_out:
        Value XORed with the register to produce the final CRC.
    """

    width: int
    polynomial: int
    init: int
    reflect: bool = True
    xor_out: int = 0

    def compute(self, bits: Iterable[int] | np.ndarray) -> int:
        """Return the CRC of a bit sequence as an integer."""
        arr = as_bit_array(bits)
        mask = (1 << self.width) - 1
        reg = self.init & mask
        if self.reflect:
            # Right-shifting (reflected) implementation: bits enter at the LSB.
            poly = self._reflect_value(self.polynomial, self.width)
            for bit in arr:
                lsb = (reg ^ int(bit)) & 1
                reg >>= 1
                if lsb:
                    reg ^= poly
        else:
            top = 1 << (self.width - 1)
            for bit in arr:
                msb = 1 if (reg & top) else 0
                reg = (reg << 1) & mask
                if msb ^ int(bit):
                    reg ^= self.polynomial
        return (reg ^ self.xor_out) & mask

    def compute_bytes(self, data: bytes | bytearray, *, msb_first: bool = False) -> int:
        """Convenience wrapper: compute the CRC of a bytes object."""
        from repro.utils.bits import bytes_to_bits

        return self.compute(bytes_to_bits(data, msb_first=msb_first))

    def append(self, bits: Iterable[int] | np.ndarray, *, msb_first: bool = False) -> np.ndarray:
        """Return *bits* with the CRC appended as a bit array."""
        arr = as_bit_array(bits)
        crc = self.compute(arr)
        crc_bits = int_to_bits(crc, self.width, msb_first=msb_first)
        return np.concatenate([arr, crc_bits])

    def check(self, bits: Iterable[int] | np.ndarray, expected: int) -> bool:
        """Return ``True`` if the CRC of *bits* equals *expected*."""
        return self.compute(bits) == expected

    @staticmethod
    def _reflect_value(value: int, width: int) -> int:
        out = 0
        for i in range(width):
            if value & (1 << i):
                out |= 1 << (width - 1 - i)
        return out


#: BLE link-layer CRC-24.  Polynomial x^24 + x^10 + x^9 + x^6 + x^4 + x^3 + x + 1.
#: Advertising channel packets initialise the register to 0x555555.  The CRC
#: is computed LSB-first over PDU header + payload.
crc24_ble = CrcEngine(width=24, polynomial=0x00065B, init=0x555555, reflect=True)

#: IEEE CRC-32 used for the 802.11 frame check sequence.
crc32_ieee = CrcEngine(
    width=32, polynomial=0x04C11DB7, init=0xFFFFFFFF, reflect=True, xor_out=0xFFFFFFFF
)

#: CRC-16/CCITT (X.25 style, reflected, as used by IEEE 802.15.4 FCS).
crc16_ccitt = CrcEngine(width=16, polynomial=0x1021, init=0x0000, reflect=True)
