"""Small DSP helpers: power conversions, frequency shifting, AWGN.

All complex waveforms in the library are discrete-time complex-baseband
numpy arrays, with an associated sample rate carried separately (usually in
a dataclass such as :class:`repro.ble.gfsk.GfskWaveform`).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "scalar_or_array",
    "db_to_linear",
    "linear_to_db",
    "dbm_to_watts",
    "watts_to_dbm",
    "rms",
    "signal_power",
    "signal_power_dbm",
    "normalize_power",
    "frequency_shift",
    "awgn_noise",
    "add_awgn",
]


def scalar_or_array(value: np.ndarray, reference) -> float | np.ndarray:
    """Return ``float(value)`` when *reference* is scalar, *value* otherwise.

    The numeric models that broadcast over arrays (error models, path loss)
    use this so scalar callers keep getting plain floats while the batched
    Monte-Carlo engine gets arrays through unchanged.
    """
    if np.ndim(reference) == 0:
        return float(value)
    return value


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio from decibels to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=float) / 10.0) if isinstance(db, np.ndarray) else 10.0 ** (db / 10.0)


def linear_to_db(value: float | np.ndarray, *, floor: float = 1e-30) -> float | np.ndarray:
    """Convert a linear power ratio to decibels, clamping at *floor*."""
    arr = np.maximum(np.asarray(value, dtype=float), floor)
    out = 10.0 * np.log10(arr)
    return float(out) if np.isscalar(value) or arr.ndim == 0 else out


def dbm_to_watts(dbm: float) -> float:
    """Convert a power level in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watts_to_dbm(watts: float, *, floor: float = 1e-30) -> float:
    """Convert a power level in watts to dBm."""
    return 10.0 * np.log10(max(watts, floor)) + 30.0


def rms(signal: np.ndarray) -> float:
    """Root-mean-square amplitude of a real or complex signal."""
    if signal.size == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.abs(signal) ** 2)))


def signal_power(signal: np.ndarray) -> float:
    """Mean power (mean squared magnitude) of a signal."""
    if signal.size == 0:
        return 0.0
    return float(np.mean(np.abs(signal) ** 2))


def signal_power_dbm(signal: np.ndarray, *, reference_watts: float = 1.0) -> float:
    """Mean power of *signal* in dBm assuming unit amplitude == *reference_watts*."""
    return watts_to_dbm(signal_power(signal) * reference_watts)


def normalize_power(signal: np.ndarray, target_power: float = 1.0) -> np.ndarray:
    """Scale *signal* so its mean power equals *target_power*."""
    power = signal_power(signal)
    if power <= 0.0:
        return signal.copy()
    return signal * np.sqrt(target_power / power)


def frequency_shift(signal: np.ndarray, shift_hz: float, sample_rate: float) -> np.ndarray:
    """Multiply *signal* by a complex exponential, shifting it by *shift_hz*."""
    if sample_rate <= 0:
        raise ValueError("sample_rate must be positive")
    n = np.arange(signal.size)
    return signal * np.exp(2j * np.pi * shift_hz * n / sample_rate)


def awgn_noise(
    num_samples: int,
    noise_power: float,
    *,
    rng: np.random.Generator | None = None,
    complex_valued: bool = True,
) -> np.ndarray:
    """Generate additive white Gaussian noise of the requested mean power."""
    if num_samples < 0:
        raise ValueError("num_samples must be non-negative")
    generator = rng if rng is not None else np.random.default_rng()
    if complex_valued:
        scale = np.sqrt(noise_power / 2.0)
        return scale * (
            generator.standard_normal(num_samples) + 1j * generator.standard_normal(num_samples)
        )
    return np.sqrt(noise_power) * generator.standard_normal(num_samples)


def add_awgn(
    signal: np.ndarray,
    snr_db: float,
    *,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Return *signal* plus AWGN at the requested SNR (relative to signal power)."""
    power = signal_power(signal)
    noise_power = power / db_to_linear(snr_db) if power > 0 else db_to_linear(-snr_db)
    noise = awgn_noise(
        signal.size, noise_power, rng=rng, complex_valued=np.iscomplexobj(signal)
    )
    return signal + noise
