"""Linear feedback shift registers.

Both Bluetooth LE data whitening and the 802.11 scrambler are built on 7-bit
LFSRs with the polynomial ``x^7 + x^4 + 1`` (the paper points this out in
Sections 2.2 and 2.4 — the same shift-register circuit appears in Fig. 4 for
both).  The generic classes here are configured by those packages.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.utils.bits import as_bit_array

__all__ = ["FibonacciLfsr", "GaloisLfsr"]


class FibonacciLfsr:
    """Fibonacci-configuration LFSR.

    The register is a list of bits ``state[0] .. state[n-1]`` where
    ``state[0]`` is the output stage.  On each step the output bit is
    ``state[0]``; the feedback bit is the XOR of the tapped stages and is
    shifted in at the highest index.

    Parameters
    ----------
    taps:
        Stage indices (0-based) contributing to the feedback.  For the BLE /
        802.11 polynomial ``x^7 + x^4 + 1`` with a 7-bit register the taps
        are ``(0, 4)`` when the register shifts towards index 0.
    state:
        Initial register contents, ``state[0]`` first.
    """

    def __init__(self, taps: Sequence[int], state: Iterable[int]) -> None:
        self._state = list(int(b) & 1 for b in state)
        if not self._state:
            raise ValueError("LFSR state must be non-empty")
        self.taps = tuple(sorted(int(t) for t in taps))
        if any(t < 0 or t >= len(self._state) for t in self.taps):
            raise ValueError("tap index outside register")

    @property
    def state(self) -> tuple[int, ...]:
        """Current register contents (output stage first)."""
        return tuple(self._state)

    def __len__(self) -> int:
        return len(self._state)

    def step(self) -> int:
        """Advance the register one step and return the output bit."""
        out = self._state[0]
        feedback = 0
        for tap in self.taps:
            feedback ^= self._state[tap]
        self._state = self._state[1:] + [feedback]
        return out

    def sequence(self, length: int) -> np.ndarray:
        """Return the next *length* output bits as an array."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return np.array([self.step() for _ in range(length)], dtype=np.uint8)

    def whiten(self, bits: Iterable[int] | np.ndarray) -> np.ndarray:
        """XOR *bits* with the LFSR output (whitening / scrambling)."""
        arr = as_bit_array(bits)
        keystream = self.sequence(arr.size)
        return np.bitwise_xor(arr, keystream)


class GaloisLfsr:
    """Galois-configuration LFSR producing the same sequences more cheaply.

    Provided for completeness and for property tests asserting equivalence
    with :class:`FibonacciLfsr` for the shared ``x^7 + x^4 + 1`` polynomial.
    """

    def __init__(self, width: int, polynomial: int, state: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if state == 0:
            raise ValueError("all-zero LFSR state never produces output")
        self.width = width
        self.polynomial = polynomial & ((1 << width) - 1)
        self._state = state & ((1 << width) - 1)

    @property
    def state(self) -> int:
        return self._state

    def step(self) -> int:
        out = self._state & 1
        self._state >>= 1
        if out:
            self._state ^= self.polynomial
        return out

    def sequence(self, length: int) -> np.ndarray:
        if length < 0:
            raise ValueError("length must be non-negative")
        return np.array([self.step() for _ in range(length)], dtype=np.uint8)
