"""Pulse-shaping filters used by the GFSK, DSSS and O-QPSK modulators."""

from __future__ import annotations

import numpy as np

__all__ = [
    "gaussian_filter_taps",
    "raised_cosine_taps",
    "half_sine_pulse",
    "rect_pulse",
]


def gaussian_filter_taps(
    bt: float,
    samples_per_symbol: int,
    *,
    span_symbols: int = 3,
) -> np.ndarray:
    """Gaussian pulse-shaping filter used by Bluetooth GFSK (BT = 0.5).

    Parameters
    ----------
    bt:
        Bandwidth-time product of the filter (0.5 for BLE).
    samples_per_symbol:
        Oversampling factor.
    span_symbols:
        Filter span in symbol periods (total taps = span * sps + 1).

    Returns
    -------
    numpy.ndarray
        Unit-sum filter taps.
    """
    if bt <= 0:
        raise ValueError("bt must be positive")
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    if span_symbols < 1:
        raise ValueError("span_symbols must be >= 1")
    # Standard Gaussian filter: h(t) ∝ exp(-t² / (2σ²)) with σ = sqrt(ln2)/(2πB),
    # time normalised to the symbol period.
    sigma = np.sqrt(np.log(2.0)) / (2.0 * np.pi * bt)
    half = span_symbols * samples_per_symbol // 2
    t = np.arange(-half, half + 1) / samples_per_symbol
    taps = np.exp(-(t**2) / (2.0 * sigma**2))
    return taps / np.sum(taps)


def raised_cosine_taps(
    beta: float,
    samples_per_symbol: int,
    *,
    span_symbols: int = 6,
) -> np.ndarray:
    """Raised-cosine filter taps (used for optional Wi-Fi chip shaping)."""
    if not 0.0 <= beta <= 1.0:
        raise ValueError("beta must be in [0, 1]")
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    half = span_symbols * samples_per_symbol // 2
    t = np.arange(-half, half + 1) / samples_per_symbol
    taps = np.sinc(t)
    if beta > 0:
        denominator = 1.0 - (2.0 * beta * t) ** 2
        cos_term = np.cos(np.pi * beta * t)
        with np.errstate(divide="ignore", invalid="ignore"):
            shaped = np.where(
                np.abs(denominator) > 1e-12,
                taps * cos_term / denominator,
                np.pi / 4.0 * np.sinc(1.0 / (2.0 * beta)),
            )
        taps = shaped
    total = np.sum(taps)
    return taps / total if total != 0 else taps


def half_sine_pulse(samples_per_half_chip: int) -> np.ndarray:
    """Half-sine chip pulse used by IEEE 802.15.4 O-QPSK."""
    if samples_per_half_chip < 1:
        raise ValueError("samples_per_half_chip must be >= 1")
    # One chip period spans 2 * samples_per_half_chip samples; the pulse is
    # a half sine over that interval.
    n = np.arange(2 * samples_per_half_chip)
    return np.sin(np.pi * n / (2 * samples_per_half_chip))


def rect_pulse(samples_per_symbol: int) -> np.ndarray:
    """Rectangular pulse (no shaping)."""
    if samples_per_symbol < 1:
        raise ValueError("samples_per_symbol must be >= 1")
    return np.ones(samples_per_symbol)
