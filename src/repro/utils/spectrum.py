"""Spectrum estimation helpers used by the figure reproductions.

Fig. 6 and Fig. 9 of the paper are spectrum plots; these functions produce
the underlying (frequency, PSD) series and the summary statistics used in
the benchmark assertions (single-tone peak location, sideband asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import signal as scipy_signal

from repro.utils.dsp import linear_to_db

__all__ = [
    "PowerSpectrum",
    "power_spectral_density",
    "spectral_peak",
    "occupied_bandwidth",
    "spectrum_asymmetry_db",
    "band_power_db",
]


@dataclass(frozen=True)
class PowerSpectrum:
    """A two-sided power spectral density estimate.

    Attributes
    ----------
    frequencies_hz:
        Frequency bins (baseband offsets, may be negative), ascending.
    psd:
        Linear power density per bin.
    """

    frequencies_hz: np.ndarray
    psd: np.ndarray

    @property
    def psd_db(self) -> np.ndarray:
        """PSD in dB (relative units)."""
        return np.asarray(linear_to_db(self.psd))

    def band_power(self, low_hz: float, high_hz: float) -> float:
        """Total linear power in the band [low_hz, high_hz]."""
        mask = (self.frequencies_hz >= low_hz) & (self.frequencies_hz <= high_hz)
        if not np.any(mask):
            return 0.0
        return float(np.sum(self.psd[mask]))


def power_spectral_density(
    waveform: np.ndarray,
    sample_rate: float,
    *,
    nfft: int = 4096,
) -> PowerSpectrum:
    """Welch PSD estimate of a complex baseband waveform (two-sided)."""
    if waveform.size == 0:
        raise ValueError("waveform is empty")
    nperseg = min(nfft, waveform.size)
    freqs, psd = scipy_signal.welch(
        waveform,
        fs=sample_rate,
        nperseg=nperseg,
        return_onesided=False,
        detrend=False,
        scaling="density",
    )
    order = np.argsort(freqs)
    return PowerSpectrum(frequencies_hz=freqs[order], psd=psd[order])


def spectral_peak(spectrum: PowerSpectrum) -> tuple[float, float]:
    """Return ``(frequency_hz, psd_db)`` of the strongest bin."""
    idx = int(np.argmax(spectrum.psd))
    return float(spectrum.frequencies_hz[idx]), float(np.asarray(spectrum.psd_db)[idx])


def occupied_bandwidth(spectrum: PowerSpectrum, fraction: float = 0.99) -> float:
    """Bandwidth containing *fraction* of the total power, centred on the power centroid."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    total = float(np.sum(spectrum.psd))
    if total <= 0.0:
        return 0.0
    order = np.argsort(spectrum.psd)[::-1]
    cumulative = np.cumsum(spectrum.psd[order])
    needed = order[: int(np.searchsorted(cumulative, fraction * total)) + 1]
    freqs = spectrum.frequencies_hz[needed]
    return float(freqs.max() - freqs.min())


def band_power_db(spectrum: PowerSpectrum, low_hz: float, high_hz: float) -> float:
    """Total power in a band, in dB (relative units)."""
    return float(linear_to_db(spectrum.band_power(low_hz, high_hz)))


def spectrum_asymmetry_db(
    spectrum: PowerSpectrum,
    center_hz: float,
    offset_hz: float,
    half_width_hz: float,
) -> float:
    """Power difference (dB) between the upper and lower sidebands.

    Measures ``P(center + offset ± half_width) - P(center - offset ± half_width)``.
    A large positive value means the upper sideband dominates — exactly what
    single-sideband backscatter should produce (Fig. 6), whereas
    double-sideband backscatter yields a value near zero.
    """
    upper = spectrum.band_power(center_hz + offset_hz - half_width_hz, center_hz + offset_hz + half_width_hz)
    lower = spectrum.band_power(center_hz - offset_hz - half_width_hz, center_hz - offset_hz + half_width_hz)
    return float(linear_to_db(upper) - linear_to_db(lower))
