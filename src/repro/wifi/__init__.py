"""IEEE 802.11 physical layers used by the reproduction.

Two sub-packages:

* :mod:`repro.wifi.dsss` — the 802.11b DSSS/CCK PHY (1/2/5.5/11 Mbps).
  These are the packets the interscatter tag synthesizes by backscattering a
  Bluetooth single tone (paper §2.3).
* :mod:`repro.wifi.ofdm` — the 802.11g OFDM PHY (6–54 Mbps).  Used in the
  reverse direction: an unmodified OFDM transmitter is turned into an AM
  modulator by choosing payload bits so that whole OFDM symbols carry a
  constant constellation point (paper §2.4).

Shared pieces (the 802.11 scrambler and channel map) live at this level.
"""

from repro.wifi.channels import WIFI_CHANNELS_2G4, wifi_channel_frequency_mhz
from repro.wifi.scrambler import Ieee80211Scrambler

__all__ = [
    "WIFI_CHANNELS_2G4",
    "wifi_channel_frequency_mhz",
    "Ieee80211Scrambler",
]
