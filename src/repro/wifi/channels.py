"""2.4 GHz Wi-Fi channel map.

The paper's frequency plan (Fig. 3) involves the three non-overlapping
channels 1 (2412 MHz), 6 (2437 MHz) and 11 (2462 MHz), each 22 MHz wide for
802.11b.  Interscatter backscatters BLE advertising channel 38 (2426 MHz)
with a 35.75 MHz single-sideband shift to land near Wi-Fi channel 11.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = [
    "WIFI_CHANNELS_2G4",
    "NON_OVERLAPPING_CHANNELS",
    "WIFI_80211B_BANDWIDTH_MHZ",
    "wifi_channel_frequency_mhz",
]

#: Centre frequencies (MHz) of 2.4 GHz Wi-Fi channels 1-14.
WIFI_CHANNELS_2G4: dict[int, float] = {
    **{ch: 2412.0 + 5.0 * (ch - 1) for ch in range(1, 14)},
    14: 2484.0,
}

#: The three non-overlapping 802.11b channels in North America.
NON_OVERLAPPING_CHANNELS = (1, 6, 11)

#: 802.11b DSSS occupied bandwidth.
WIFI_80211B_BANDWIDTH_MHZ = 22.0


def wifi_channel_frequency_mhz(channel: int) -> float:
    """Centre frequency of a 2.4 GHz Wi-Fi channel."""
    if channel not in WIFI_CHANNELS_2G4:
        raise ConfigurationError(f"Wi-Fi channel must be 1-14, got {channel}")
    return WIFI_CHANNELS_2G4[channel]
