"""802.11b DSSS/CCK physical layer (1, 2, 5.5 and 11 Mbps).

The transmit chain follows IEEE 802.11-2012 clause 17: scrambling, Barker
spreading (1/2 Mbps) or CCK coding (5.5/11 Mbps), and DBPSK/DQPSK
modulation, preceded by the long PLCP preamble and header.  The receive
chain implements preamble detection, descrambling, despreading/decoding and
CRC verification, which is how the reproduction checks that backscatter-
generated packets are standards-compliant (paper §4.2).
"""

from repro.wifi.dsss.barker import BARKER_SEQUENCE, barker_spread, barker_despread
from repro.wifi.dsss.cck import cck_codeword, cck_decode_symbol
from repro.wifi.dsss.dpsk import DpskModulator, DpskDemodulator
from repro.wifi.dsss.plcp import PlcpHeader, build_plcp_preamble_and_header
from repro.wifi.dsss.frames import WifiDataFrame
from repro.wifi.dsss.transmitter import DsssTransmitter, DsssRate, DsssPacketWaveform
from repro.wifi.dsss.receiver import DsssReceiver, DsssDecodeResult

__all__ = [
    "BARKER_SEQUENCE",
    "barker_spread",
    "barker_despread",
    "cck_codeword",
    "cck_decode_symbol",
    "DpskModulator",
    "DpskDemodulator",
    "PlcpHeader",
    "build_plcp_preamble_and_header",
    "WifiDataFrame",
    "DsssTransmitter",
    "DsssRate",
    "DsssPacketWaveform",
    "DsssReceiver",
    "DsssDecodeResult",
]
