"""Barker spreading for 1 and 2 Mbps 802.11b.

Each scrambled data bit (1 Mbps DBPSK) or di-bit (2 Mbps DQPSK) selects one
PSK symbol, which is then spread by the 11-chip Barker sequence
``+1 -1 +1 +1 -1 +1 +1 +1 -1 -1 -1``.  The paper summarises this in §2.1:
"802.11b first XORs each data bit with a Barker sequence to create a
sequence of eleven coded bits for each incoming data bit".
"""

from __future__ import annotations

import numpy as np

__all__ = ["BARKER_SEQUENCE", "BARKER_LENGTH", "barker_spread", "barker_despread"]

#: The 11-chip Barker code used by 802.11b, in chip order.
BARKER_SEQUENCE = np.array([1, -1, 1, 1, -1, 1, 1, 1, -1, -1, -1], dtype=float)

#: Number of chips per symbol at 1 and 2 Mbps.
BARKER_LENGTH = 11


def barker_spread(symbols: np.ndarray) -> np.ndarray:
    """Spread complex PSK symbols with the Barker sequence.

    Each input symbol becomes 11 chips: ``symbol * barker[k]``.
    """
    symbols = np.asarray(symbols, dtype=complex).ravel()
    if symbols.size == 0:
        return np.zeros(0, dtype=complex)
    return (symbols[:, None] * BARKER_SEQUENCE[None, :]).reshape(-1)


def barker_despread(chips: np.ndarray) -> np.ndarray:
    """Correlate chips against the Barker sequence to recover symbols.

    The chip count must be a multiple of 11.  Returns one complex value per
    symbol (the normalised correlation), which retains the PSK phase.
    """
    chips = np.asarray(chips, dtype=complex).ravel()
    if chips.size % BARKER_LENGTH != 0:
        raise ValueError(
            f"chip count must be a multiple of {BARKER_LENGTH}, got {chips.size}"
        )
    grouped = chips.reshape(-1, BARKER_LENGTH)
    return grouped @ BARKER_SEQUENCE / BARKER_LENGTH
