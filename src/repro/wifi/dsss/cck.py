"""Complementary Code Keying (CCK) for 5.5 and 11 Mbps 802.11b.

At 11 Mbps each group of 8 data bits maps to one 8-chip complex codeword:
the first di-bit DQPSK-modulates the whole codeword (differential phase
``phi1``) and the remaining six bits pick ``phi2, phi3, phi4``:

    c = (e^{j(p1+p2+p3+p4)}, e^{j(p1+p3+p4)}, e^{j(p1+p2+p4)}, -e^{j(p1+p4)},
         e^{j(p1+p2+p3)},    e^{j(p1+p3)},    -e^{j(p1+p2)},   e^{j(p1)})

At 5.5 Mbps each group of 4 bits maps to an 8-chip codeword using a reduced
set (phi2 ∈ {π/2 + π·d2}, phi3 = 0, phi4 = π·d3).

The paper only needs the *transmit* side on the tag (to synthesize
standards-compliant 11/5.5 Mbps packets) but we also implement nearest-
codeword decoding so the simulated commodity receiver can check them.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, DecodeError
from repro.utils.bits import as_bit_array

__all__ = [
    "CCK_CHIPS_PER_SYMBOL",
    "cck_phases_11mbps",
    "cck_phases_5_5mbps",
    "cck_codeword",
    "cck_codeword_set",
    "cck_decode_symbol",
]

#: Chips per CCK symbol.
CCK_CHIPS_PER_SYMBOL = 8

#: DQPSK phase increments for the first di-bit (d0, d1), including the
#: 802.11b convention that odd-numbered symbols get an extra π rotation.
_DQPSK_EVEN = {(0, 0): 0.0, (0, 1): np.pi / 2.0, (1, 1): np.pi, (1, 0): 3.0 * np.pi / 2.0}
_DQPSK_ODD = {k: v + np.pi for k, v in _DQPSK_EVEN.items()}

#: QPSK mapping for the (d2,d3), (d4,d5), (d6,d7) di-bits at 11 Mbps.
_QPSK_PHASE = {(0, 0): 0.0, (0, 1): np.pi / 2.0, (1, 0): np.pi, (1, 1): 3.0 * np.pi / 2.0}


def _codeword_from_phases(phi1: float, phi2: float, phi3: float, phi4: float) -> np.ndarray:
    """Build the 8-chip CCK codeword from its four phases."""
    return np.array(
        [
            np.exp(1j * (phi1 + phi2 + phi3 + phi4)),
            np.exp(1j * (phi1 + phi3 + phi4)),
            np.exp(1j * (phi1 + phi2 + phi4)),
            -np.exp(1j * (phi1 + phi4)),
            np.exp(1j * (phi1 + phi2 + phi3)),
            np.exp(1j * (phi1 + phi3)),
            -np.exp(1j * (phi1 + phi2)),
            np.exp(1j * phi1),
        ],
        dtype=complex,
    )


def cck_phases_11mbps(bits: np.ndarray, previous_phase: float, symbol_index: int) -> tuple[float, float, float, float]:
    """Phases (phi1..phi4) for an 11 Mbps CCK symbol from 8 data bits."""
    arr = as_bit_array(bits)
    if arr.size != 8:
        raise ConfigurationError(f"11 Mbps CCK consumes 8 bits per symbol, got {arr.size}")
    dqpsk_table = _DQPSK_ODD if symbol_index % 2 else _DQPSK_EVEN
    phi1 = previous_phase + dqpsk_table[(int(arr[0]), int(arr[1]))]
    phi2 = _QPSK_PHASE[(int(arr[2]), int(arr[3]))]
    phi3 = _QPSK_PHASE[(int(arr[4]), int(arr[5]))]
    phi4 = _QPSK_PHASE[(int(arr[6]), int(arr[7]))]
    return phi1, phi2, phi3, phi4


def cck_phases_5_5mbps(bits: np.ndarray, previous_phase: float, symbol_index: int) -> tuple[float, float, float, float]:
    """Phases (phi1..phi4) for a 5.5 Mbps CCK symbol from 4 data bits."""
    arr = as_bit_array(bits)
    if arr.size != 4:
        raise ConfigurationError(f"5.5 Mbps CCK consumes 4 bits per symbol, got {arr.size}")
    dqpsk_table = _DQPSK_ODD if symbol_index % 2 else _DQPSK_EVEN
    phi1 = previous_phase + dqpsk_table[(int(arr[0]), int(arr[1]))]
    phi2 = int(arr[2]) * np.pi + np.pi / 2.0
    phi3 = 0.0
    phi4 = int(arr[3]) * np.pi
    return phi1, phi2, phi3, phi4


def cck_codeword(
    bits: np.ndarray,
    *,
    rate_mbps: float,
    previous_phase: float,
    symbol_index: int,
) -> tuple[np.ndarray, float]:
    """CCK codeword (8 chips) for one symbol.

    Returns
    -------
    (chips, phi1):
        The chips and the absolute phase ``phi1`` carried forward as the
        differential reference for the next symbol.
    """
    if rate_mbps == 11.0:
        phi1, phi2, phi3, phi4 = cck_phases_11mbps(bits, previous_phase, symbol_index)
    elif rate_mbps == 5.5:
        phi1, phi2, phi3, phi4 = cck_phases_5_5mbps(bits, previous_phase, symbol_index)
    else:
        raise ConfigurationError(f"CCK only supports 5.5 and 11 Mbps, got {rate_mbps}")
    return _codeword_from_phases(phi1, phi2, phi3, phi4), phi1


def cck_codeword_set(rate_mbps: float) -> dict[tuple[int, ...], np.ndarray]:
    """All codewords (relative to phi1 = 0) keyed by their information bits.

    For 11 Mbps the key is the last six bits (d2..d7); for 5.5 Mbps the last
    two bits (d2, d3).  The first di-bit only rotates the whole codeword and
    is decoded differentially.
    """
    table: dict[tuple[int, ...], np.ndarray] = {}
    if rate_mbps == 11.0:
        for value in range(64):
            bits = [(value >> (5 - i)) & 1 for i in range(6)]
            phi2 = _QPSK_PHASE[(bits[0], bits[1])]
            phi3 = _QPSK_PHASE[(bits[2], bits[3])]
            phi4 = _QPSK_PHASE[(bits[4], bits[5])]
            table[tuple(bits)] = _codeword_from_phases(0.0, phi2, phi3, phi4)
    elif rate_mbps == 5.5:
        for value in range(4):
            bits = [(value >> 1) & 1, value & 1]
            phi2 = bits[0] * np.pi + np.pi / 2.0
            phi3 = 0.0
            phi4 = bits[1] * np.pi
            table[tuple(bits)] = _codeword_from_phases(0.0, phi2, phi3, phi4)
    else:
        raise ConfigurationError(f"CCK only supports 5.5 and 11 Mbps, got {rate_mbps}")
    return table


def cck_decode_symbol(
    chips: np.ndarray,
    *,
    rate_mbps: float,
    previous_phase: float,
    symbol_index: int,
) -> tuple[np.ndarray, float]:
    """Maximum-likelihood decode of one CCK symbol.

    Correlates the received 8 chips against every codeword in the set, picks
    the best, and recovers the leading di-bit from the differential phase of
    the correlation peak.

    Returns
    -------
    (bits, phi1):
        Decoded data bits (8 for 11 Mbps, 4 for 5.5 Mbps) and the estimated
        absolute phase to carry into the next symbol.
    """
    chips = np.asarray(chips, dtype=complex).ravel()
    if chips.size != CCK_CHIPS_PER_SYMBOL:
        raise ValueError(f"expected {CCK_CHIPS_PER_SYMBOL} chips, got {chips.size}")
    table = cck_codeword_set(rate_mbps)
    best_key: tuple[int, ...] | None = None
    best_corr = 0.0 + 0.0j
    best_mag = -1.0
    for key, codeword in table.items():
        corr = np.vdot(codeword, chips)
        if np.abs(corr) > best_mag:
            best_mag = float(np.abs(corr))
            best_corr = corr
            best_key = key
    if best_key is None:
        raise DecodeError("CCK codeword table is empty; no correlation candidate")
    phi1_estimate = float(np.angle(best_corr))
    # Differential phase relative to the previous symbol's phi1 gives d0 d1.
    dqpsk_table = _DQPSK_ODD if symbol_index % 2 else _DQPSK_EVEN
    delta = (phi1_estimate - previous_phase) % (2.0 * np.pi)
    best_dibit = (0, 0)
    best_err = np.inf
    for dibit, phase in dqpsk_table.items():
        err = np.abs(np.angle(np.exp(1j * (delta - phase))))
        if err < best_err:
            best_err = err
            best_dibit = dibit
    bits = np.array(list(best_dibit) + list(best_key), dtype=np.uint8)
    return bits, phi1_estimate
