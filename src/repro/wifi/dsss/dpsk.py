"""Differential BPSK / QPSK used by 802.11b at 1 and 2 Mbps.

DBPSK encodes each bit as a 0 or π phase *change*; DQPSK encodes each di-bit
as a 0, π/2, π or 3π/2 phase change.  Because information lives in phase
differences, an unknown constant phase rotation of the whole constellation
is irrelevant — the property the paper leans on in §2.3.2 to map the tag's
four complex impedance states onto DQPSK symbols despite a π/4 offset.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["DpskModulator", "DpskDemodulator"]

#: DQPSK phase increments per di-bit (Gray-coded per IEEE 802.11-2012 17.4.6.5).
_DQPSK_PHASES = {(0, 0): 0.0, (0, 1): np.pi / 2.0, (1, 1): np.pi, (1, 0): 3.0 * np.pi / 2.0}

#: DBPSK phase increments per bit.
_DBPSK_PHASES = {0: 0.0, 1: np.pi}


class DpskModulator:
    """Differential PSK modulator.

    Parameters
    ----------
    bits_per_symbol:
        1 for DBPSK, 2 for DQPSK.
    initial_phase:
        Phase of the notional reference symbol preceding the first data
        symbol.
    """

    def __init__(self, bits_per_symbol: int, *, initial_phase: float = 0.0) -> None:
        if bits_per_symbol not in (1, 2):
            raise ConfigurationError("bits_per_symbol must be 1 (DBPSK) or 2 (DQPSK)")
        self.bits_per_symbol = bits_per_symbol
        self.initial_phase = initial_phase

    def phase_increments(self, bits: np.ndarray) -> np.ndarray:
        """Per-symbol phase increments for a bit sequence."""
        arr = as_bit_array(bits)
        if arr.size % self.bits_per_symbol != 0:
            raise ValueError(
                f"bit count {arr.size} not a multiple of {self.bits_per_symbol}"
            )
        if self.bits_per_symbol == 1:
            return np.array([_DBPSK_PHASES[int(b)] for b in arr])
        pairs = arr.reshape(-1, 2)
        return np.array([_DQPSK_PHASES[(int(a), int(b))] for a, b in pairs])

    def modulate(self, bits: np.ndarray) -> np.ndarray:
        """Map bits to a sequence of unit-magnitude complex symbols."""
        increments = self.phase_increments(bits)
        phases = self.initial_phase + np.cumsum(increments)
        return np.exp(1j * phases)


class DpskDemodulator:
    """Differential PSK demodulator (phase-difference slicer)."""

    def __init__(self, bits_per_symbol: int, *, initial_phase: float = 0.0) -> None:
        if bits_per_symbol not in (1, 2):
            raise ConfigurationError("bits_per_symbol must be 1 (DBPSK) or 2 (DQPSK)")
        self.bits_per_symbol = bits_per_symbol
        self.initial_phase = initial_phase

    def demodulate(self, symbols: np.ndarray) -> np.ndarray:
        """Recover bits from a complex symbol sequence."""
        symbols = np.asarray(symbols, dtype=complex).ravel()
        if symbols.size == 0:
            return np.zeros(0, dtype=np.uint8)
        reference = np.concatenate([[np.exp(1j * self.initial_phase)], symbols[:-1]])
        deltas = np.angle(symbols * np.conj(reference))
        bits: list[int] = []
        if self.bits_per_symbol == 1:
            for delta in deltas:
                bits.append(1 if np.abs(np.angle(np.exp(1j * (delta - np.pi)))) < np.pi / 2 else 0)
        else:
            for delta in deltas:
                best_pair = (0, 0)
                best_err = np.inf
                for pair, phase in _DQPSK_PHASES.items():
                    err = np.abs(np.angle(np.exp(1j * (delta - phase))))
                    if err < best_err:
                        best_err = err
                        best_pair = pair
                bits.extend(best_pair)
        return np.array(bits, dtype=np.uint8)
