"""Minimal 802.11 MAC frame construction (data frames, RTS, CTS).

The interscatter tag synthesizes whole MPDUs — a MAC header, a payload and
the CRC-32 frame check sequence — so that an unmodified Wi-Fi receiver will
accept them (paper §2.3).  The RTS/CTS and CTS-to-Self frames are needed for
the collision-avoidance optimisations of §2.3.3 and the coexistence model.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.exceptions import PacketFormatError
from repro.utils.bits import bytes_to_bits
from repro.utils.crc import crc32_ieee

__all__ = ["WifiDataFrame", "build_rts_frame", "build_cts_frame", "mpdu_with_fcs", "verify_fcs"]

#: Broadcast address used when the tag does not target a specific receiver.
BROADCAST_ADDRESS = b"\xff" * 6


@dataclass
class WifiDataFrame:
    """A minimal 802.11 data MPDU.

    Attributes
    ----------
    payload:
        Frame body (the application data the tag wants to deliver).
    destination / source / bssid:
        Six-byte MAC addresses.
    sequence_number:
        12-bit sequence number placed in the sequence-control field; the
        paper's PER experiment cycles 200 unique sequence numbers (§4.2).
    """

    payload: bytes
    destination: bytes = BROADCAST_ADDRESS
    source: bytes = b"\x02interS"[:6]
    bssid: bytes = b"\x02interS"[:6]
    sequence_number: int = 0

    def __post_init__(self) -> None:
        for name, addr in (
            ("destination", self.destination),
            ("source", self.source),
            ("bssid", self.bssid),
        ):
            if len(addr) != 6:
                raise PacketFormatError(f"{name} must be 6 bytes, got {len(addr)}")
        if not 0 <= self.sequence_number < 4096:
            raise PacketFormatError("sequence number must fit in 12 bits")

    def mac_header(self) -> bytes:
        """24-byte MAC header for a data frame (ToDS/FromDS = 0)."""
        frame_control = (0x08).to_bytes(1, "little") + b"\x00"  # type=data, subtype=data
        duration = (0).to_bytes(2, "little")
        seq_ctrl = ((self.sequence_number << 4) & 0xFFF0).to_bytes(2, "little")
        return (
            frame_control
            + duration
            + self.destination
            + self.source
            + self.bssid
            + seq_ctrl
        )

    def mpdu(self) -> bytes:
        """Full MPDU: header + body + FCS."""
        body = self.mac_header() + self.payload
        return mpdu_with_fcs(body)

    @property
    def mpdu_length_bytes(self) -> int:
        """Length of the MPDU including the 4-byte FCS."""
        return 24 + len(self.payload) + 4

    @classmethod
    def parse(cls, mpdu: bytes) -> "WifiDataFrame":
        """Parse an MPDU back into a frame, verifying the FCS."""
        if len(mpdu) < 28:
            raise PacketFormatError(f"MPDU too short: {len(mpdu)} bytes")
        if not verify_fcs(mpdu):
            raise PacketFormatError("FCS check failed")
        header = mpdu[:24]
        payload = mpdu[24:-4]
        seq_ctrl = int.from_bytes(header[22:24], "little")
        return cls(
            payload=payload,
            destination=header[4:10],
            source=header[10:16],
            bssid=header[16:22],
            sequence_number=(seq_ctrl >> 4) & 0xFFF,
        )


def mpdu_with_fcs(body: bytes) -> bytes:
    """Append the IEEE CRC-32 frame check sequence to a MAC body."""
    fcs = crc32_ieee.compute(bytes_to_bits(body))
    return body + fcs.to_bytes(4, "little")


def verify_fcs(mpdu: bytes) -> bool:
    """Check the trailing 4-byte FCS of an MPDU."""
    if len(mpdu) < 4:
        return False
    body, fcs_bytes = mpdu[:-4], mpdu[-4:]
    expected = crc32_ieee.compute(bytes_to_bits(body))
    return int.from_bytes(fcs_bytes, "little") == expected


def build_rts_frame(
    duration_us: int, receiver: bytes = BROADCAST_ADDRESS, transmitter: bytes = b"\x02interS"[:6]
) -> bytes:
    """Build an RTS control frame (20 bytes including FCS)."""
    if len(receiver) != 6 or len(transmitter) != 6:
        raise PacketFormatError("RTS addresses must be 6 bytes")
    frame_control = (0xB4).to_bytes(1, "little") + b"\x00"  # type=control, subtype=RTS
    duration = int(duration_us).to_bytes(2, "little")
    return mpdu_with_fcs(frame_control + duration + receiver + transmitter)


def build_cts_frame(duration_us: int, receiver: bytes = BROADCAST_ADDRESS) -> bytes:
    """Build a CTS (or CTS-to-Self) control frame (14 bytes including FCS)."""
    if len(receiver) != 6:
        raise PacketFormatError("CTS receiver address must be 6 bytes")
    frame_control = (0xC4).to_bytes(1, "little") + b"\x00"  # type=control, subtype=CTS
    duration = int(duration_us).to_bytes(2, "little")
    return mpdu_with_fcs(frame_control + duration + receiver)
