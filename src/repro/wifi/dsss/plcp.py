"""802.11b PLCP preamble and header.

Every DSSS packet starts with a long PLCP preamble (128 scrambled-ones SYNC
bits plus the 16-bit SFD ``0xF3A0``) and a 48-bit PLCP header (SIGNAL,
SERVICE, LENGTH, CRC-16), all transmitted at 1 Mbps DBPSK regardless of the
payload rate.  The paper notes (§4.2) that because both its 2 and 11 Mbps
packets share this 1 Mbps preamble/header, their packet error rates end up
similar for the short payloads that fit inside a BLE advertisement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DecodeError
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.crc import CrcEngine

__all__ = [
    "SYNC_BITS",
    "SFD_BITS",
    "PlcpHeader",
    "build_plcp_preamble_and_header",
    "parse_plcp_header",
    "PLCP_PREAMBLE_BITS",
    "PLCP_HEADER_BITS",
    "SHORT_SYNC_BITS",
    "SHORT_PLCP_PREAMBLE_BITS",
]

#: Long preamble SYNC field: 128 ones (before scrambling).
SYNC_BITS = 128

#: Short preamble SYNC field: 56 zeros (before scrambling).
SHORT_SYNC_BITS = 56

#: Start frame delimiter value (transmitted LSB first).
SFD_VALUE = 0xF3A0

#: Short-preamble SFD: the time-reversed bit pattern of the long SFD.
SHORT_SFD_VALUE = 0x05CF

#: Total bits in the long PLCP preamble.
PLCP_PREAMBLE_BITS = SYNC_BITS + 16

#: Total bits in the short PLCP preamble.
SHORT_PLCP_PREAMBLE_BITS = SHORT_SYNC_BITS + 16

#: Total bits in the PLCP header.
PLCP_HEADER_BITS = 48

#: SFD bit pattern, LSB first.
SFD_BITS = int_to_bits(SFD_VALUE, 16)

#: Short-preamble SFD bit pattern, LSB first.
SHORT_SFD_BITS = int_to_bits(SHORT_SFD_VALUE, 16)

#: CRC-16 (CCITT, preset to ones, ones complement) protecting the PLCP header.
_plcp_crc = CrcEngine(width=16, polynomial=0x1021, init=0xFFFF, reflect=True, xor_out=0xFFFF)

#: SIGNAL field encoding of the data rate, in units of 100 kbps.
_SIGNAL_FIELD = {1.0: 0x0A, 2.0: 0x14, 5.5: 0x37, 11.0: 0x6E}
_SIGNAL_TO_RATE = {v: k for k, v in _SIGNAL_FIELD.items()}


@dataclass(frozen=True)
class PlcpHeader:
    """Decoded PLCP header fields.

    Attributes
    ----------
    rate_mbps:
        Payload data rate (1, 2, 5.5 or 11 Mbps).
    length_us:
        Time required to transmit the PSDU, in microseconds.
    service:
        SERVICE field byte (bit 2 = locked clocks, bit 7 = length extension).
    crc_ok:
        Whether the header CRC-16 verified.
    """

    rate_mbps: float
    length_us: int
    service: int = 0
    crc_ok: bool = True

    def psdu_length_bytes(self) -> int:
        """PSDU length in bytes implied by the rate and LENGTH field.

        At 1 and 2 Mbps the length in µs converts exactly.  At 5.5 Mbps the
        byte count is the floor of ``length · rate / 8``; at 11 Mbps the
        SERVICE length-extension bit resolves the remaining ambiguity
        (IEEE 802.11-2012 17.2.3.5).
        """
        if self.rate_mbps in (1.0, 2.0):
            return int(round(self.length_us * self.rate_mbps / 8.0))
        if self.rate_mbps == 11.0:
            count = (self.length_us * 11) // 8
            if self.service & 0x80:
                count -= 1
            return count
        return int(np.floor(self.length_us * self.rate_mbps / 8.0))


def build_plcp_preamble_and_header(
    rate_mbps: float, psdu_length_bytes: int, *, short_preamble: bool = False
) -> np.ndarray:
    """Build the unscrambled preamble + header bits for a packet.

    The caller scrambles these bits together with the PSDU (the 802.11b
    scrambler is self-synchronising; in this reproduction the whole packet
    is scrambled frame-synchronously which commodity receivers tolerate
    because they descramble the same way).

    Parameters
    ----------
    short_preamble:
        Use the 56-bit short SYNC (and reversed SFD).  The interscatter tag
        uses the short preamble so the whole Wi-Fi packet fits inside a
        Bluetooth advertising payload (§2.3.3: 38/104/209 bytes at
        2/5.5/11 Mbps).  Short preamble is not defined for 1 Mbps payloads.
    """
    if rate_mbps not in _SIGNAL_FIELD:
        raise ConfigurationError(
            f"802.11b rate must be one of {sorted(_SIGNAL_FIELD)}, got {rate_mbps}"
        )
    if psdu_length_bytes <= 0 or psdu_length_bytes > 4095:
        raise ConfigurationError(f"PSDU length out of range: {psdu_length_bytes}")
    if short_preamble and rate_mbps == 1.0:
        raise ConfigurationError("the short PLCP preamble cannot precede a 1 Mbps payload")

    if short_preamble:
        sync = np.zeros(SHORT_SYNC_BITS, dtype=np.uint8)
        sfd = SHORT_SFD_BITS
    else:
        sync = np.ones(SYNC_BITS, dtype=np.uint8)
        sfd = SFD_BITS

    signal = _SIGNAL_FIELD[rate_mbps]
    service = 0x04  # locked clocks bit, as set by most hardware
    length_us = int(np.ceil(psdu_length_bytes * 8.0 / rate_mbps))
    if rate_mbps == 11.0:
        # Length extension bit (IEEE 802.11-2012 17.2.3.5): set when the byte
        # count recovered from LENGTH alone would overshoot the PSDU by one.
        if (length_us * 11) // 8 - psdu_length_bytes == 1:
            service |= 0x80

    header_fields = np.concatenate(
        [int_to_bits(signal, 8), int_to_bits(service, 8), int_to_bits(length_us, 16)]
    )
    crc = _plcp_crc.compute(header_fields)
    header = np.concatenate([header_fields, int_to_bits(crc, 16)])
    return np.concatenate([sync, sfd, header])


def parse_plcp_header(bits: np.ndarray) -> PlcpHeader:
    """Parse the 48 header bits that follow the SFD.

    Raises
    ------
    DecodeError
        If the SIGNAL field does not indicate a valid 802.11b rate.
    """
    bits = np.asarray(bits, dtype=np.uint8).ravel()
    if bits.size < PLCP_HEADER_BITS:
        raise DecodeError(f"PLCP header needs {PLCP_HEADER_BITS} bits, got {bits.size}")
    signal = bits_to_int(bits[0:8])
    service = bits_to_int(bits[8:16])
    length_us = bits_to_int(bits[16:32])
    crc_received = bits_to_int(bits[32:48])
    crc_ok = _plcp_crc.compute(bits[0:32]) == crc_received
    if signal not in _SIGNAL_TO_RATE:
        raise DecodeError(f"invalid SIGNAL field 0x{signal:02X}")
    return PlcpHeader(
        rate_mbps=_SIGNAL_TO_RATE[signal],
        length_us=length_us,
        service=service,
        crc_ok=crc_ok,
    )
