"""802.11b DSSS/CCK receiver.

Implements the commodity Wi-Fi receiver the paper points its backscattered
packets at (an Intel Link 5300 in §4.2): SFD synchronisation, PLCP header
decode, despreading/CCK decoding at the signalled rate, descrambling and
FCS verification, plus an RSSI estimate.

The receiver operates on the chip-rate complex baseband signal (11 Mchip/s),
which in the end-to-end simulation is produced by mixing the backscattered
RF waveform down to the Wi-Fi channel centre and matched-filtering to chip
rate (see :mod:`repro.core.uplink`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodeError, SynchronizationError
from repro.utils.bits import bits_to_bytes
from repro.utils.dsp import signal_power, watts_to_dbm
from repro.wifi.scrambler import Ieee80211Scrambler
from repro.wifi.dsss.barker import BARKER_LENGTH, barker_despread
from repro.wifi.dsss.cck import CCK_CHIPS_PER_SYMBOL, cck_decode_symbol
from repro.wifi.dsss.dpsk import DpskDemodulator
from repro.wifi.dsss.frames import verify_fcs
from repro.wifi.dsss.plcp import (
    PLCP_HEADER_BITS,
    PLCP_PREAMBLE_BITS,
    SHORT_PLCP_PREAMBLE_BITS,
    PlcpHeader,
    parse_plcp_header,
)
from repro.wifi.dsss.transmitter import DsssRate

__all__ = ["DsssDecodeResult", "DsssReceiver"]


@dataclass(frozen=True)
class DsssDecodeResult:
    """Outcome of decoding one 802.11b packet.

    Attributes
    ----------
    psdu:
        Decoded MPDU bytes (present even if the FCS failed, for diagnosis).
    header:
        Decoded PLCP header.
    crc_ok:
        True when the MPDU frame check sequence verified.
    rssi_dbm:
        Received signal strength estimate over the packet.
    rate:
        Data rate the payload was decoded at.
    """

    psdu: bytes
    header: PlcpHeader
    crc_ok: bool
    rssi_dbm: float
    rate: DsssRate

    @property
    def payload(self) -> bytes:
        """Frame body (MPDU minus the 24-byte MAC header and 4-byte FCS)."""
        if len(self.psdu) <= 28:
            return b""
        return self.psdu[24:-4]


class DsssReceiver:
    """Chip-level 802.11b receiver.

    Parameters
    ----------
    scrambler_seed:
        Seed matching the transmitter's frame-synchronous scrambler.
    short_preamble:
        Expect the 56-bit short SYNC with the PLCP header at 2 Mbps DQPSK
        (the format the interscatter tag transmits, §2.3.3).
    """

    def __init__(self, *, scrambler_seed: int = 0x1B, short_preamble: bool = False) -> None:
        self.scrambler_seed = scrambler_seed
        self.short_preamble = short_preamble

    # ------------------------------------------------------------------ API
    def decode_chips(self, chips: np.ndarray, *, rssi_dbm: float | None = None) -> DsssDecodeResult:
        """Decode a packet that starts at chip 0 of *chips*.

        Raises
        ------
        SynchronizationError
            If there are not even enough chips for the PLCP preamble/header.
        DecodeError
            If the PLCP header is invalid.
        """
        chips = np.asarray(chips, dtype=complex).ravel()
        preamble_bits = SHORT_PLCP_PREAMBLE_BITS if self.short_preamble else PLCP_PREAMBLE_BITS
        # Short-format headers carry 2 bits per symbol, long-format 1.
        header_symbols_count = PLCP_HEADER_BITS // (2 if self.short_preamble else 1)
        header_chip_count = (preamble_bits + header_symbols_count) * BARKER_LENGTH
        if chips.size < header_chip_count:
            raise SynchronizationError(
                f"waveform has {chips.size} chips, need {header_chip_count} for PLCP"
            )
        if rssi_dbm is None:
            rssi_dbm = watts_to_dbm(signal_power(chips))

        # 1. Despread the preamble + header and demodulate each at its rate.
        all_header_symbols = barker_despread(chips[:header_chip_count])
        preamble_symbols = all_header_symbols[:preamble_bits]
        preamble_demod = DpskDemodulator(bits_per_symbol=1)
        scrambled_preamble_bits = preamble_demod.demodulate(preamble_symbols)
        if self.short_preamble:
            header_demod = DpskDemodulator(
                bits_per_symbol=2, initial_phase=float(np.angle(preamble_symbols[-1]))
            )
        else:
            header_demod = DpskDemodulator(
                bits_per_symbol=1, initial_phase=float(np.angle(preamble_symbols[-1]))
            )
        scrambled_header_field_bits = header_demod.demodulate(
            all_header_symbols[preamble_bits:]
        )
        header_symbols = all_header_symbols  # reference phase source for the payload
        scrambled_header_bits = np.concatenate(
            [scrambled_preamble_bits, scrambled_header_field_bits]
        )

        # 2. Descramble preamble + header together (frame-synchronous model).
        scrambler = Ieee80211Scrambler(self.scrambler_seed)
        header_bits = scrambler.scramble(scrambled_header_bits)

        # 3. Check the SYNC field (ones for long format, zeros for short),
        #    then parse the header.
        sync_field = header_bits[: preamble_bits - 16]
        expected_level = 0.0 if self.short_preamble else 1.0
        if abs(float(np.mean(sync_field)) - expected_level) > 0.1:
            raise SynchronizationError("PLCP SYNC field did not descramble correctly")
        plcp = parse_plcp_header(header_bits[preamble_bits:])
        if not plcp.crc_ok:
            raise DecodeError("PLCP header CRC failed")
        rate = DsssRate.from_mbps(plcp.rate_mbps)
        psdu_length = plcp.psdu_length_bytes()

        # 4. Decode the payload at the signalled rate.
        payload_chips = chips[header_chip_count:]
        reference_phase = float(np.angle(header_symbols[-1]))
        scrambled_psdu_bits = self._decode_payload(
            payload_chips, rate, psdu_length, reference_phase
        )

        # 5. Descramble the PSDU (keystream continues after the header bits).
        psdu_bits = scrambler.scramble(scrambled_psdu_bits)
        psdu = bits_to_bytes(psdu_bits[: psdu_length * 8])
        return DsssDecodeResult(
            psdu=psdu,
            header=plcp,
            crc_ok=verify_fcs(psdu),
            rssi_dbm=float(rssi_dbm),
            rate=rate,
        )

    # ------------------------------------------------------------- internals
    def _decode_payload(
        self,
        payload_chips: np.ndarray,
        rate: DsssRate,
        psdu_length_bytes: int,
        reference_phase: float,
    ) -> np.ndarray:
        """Despread/decode the PSDU chips into scrambled bits."""
        total_bits = psdu_length_bytes * 8
        if rate in (DsssRate.RATE_1, DsssRate.RATE_2):
            bits_per_symbol = 1 if rate is DsssRate.RATE_1 else 2
            symbols_needed = total_bits // bits_per_symbol
            chips_needed = symbols_needed * BARKER_LENGTH
            if payload_chips.size < chips_needed:
                raise DecodeError(
                    f"payload truncated: need {chips_needed} chips, have {payload_chips.size}"
                )
            symbols = barker_despread(payload_chips[:chips_needed])
            demodulator = DpskDemodulator(
                bits_per_symbol=bits_per_symbol, initial_phase=reference_phase
            )
            return demodulator.demodulate(symbols)

        bits_per_symbol = 8 if rate is DsssRate.RATE_11 else 4
        symbols_needed = total_bits // bits_per_symbol
        chips_needed = symbols_needed * CCK_CHIPS_PER_SYMBOL
        if payload_chips.size < chips_needed:
            raise DecodeError(
                f"payload truncated: need {chips_needed} chips, have {payload_chips.size}"
            )
        bits = np.empty(total_bits, dtype=np.uint8)
        previous_phase = reference_phase
        for index in range(symbols_needed):
            chunk = payload_chips[
                index * CCK_CHIPS_PER_SYMBOL : (index + 1) * CCK_CHIPS_PER_SYMBOL
            ]
            symbol_bits, previous_phase = cck_decode_symbol(
                chunk,
                rate_mbps=rate.mbps,
                previous_phase=previous_phase,
                symbol_index=index,
            )
            bits[index * bits_per_symbol : (index + 1) * bits_per_symbol] = symbol_bits
        return bits
