"""802.11b DSSS/CCK baseband transmitter.

Produces the complex chip sequence (and optionally an oversampled waveform)
for a full 802.11b packet: PLCP preamble + header at 1 Mbps DBPSK/Barker,
then the PSDU at the selected rate.  This is exactly the baseband signal the
interscatter tag's digital logic generates and imposes on the backscattered
tone via the single-sideband modulator (paper §2.3.2, §3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import bytes_to_bits
from repro.wifi.scrambler import Ieee80211Scrambler
from repro.wifi.dsss.barker import barker_spread
from repro.wifi.dsss.cck import CCK_CHIPS_PER_SYMBOL, cck_codeword
from repro.wifi.dsss.dpsk import DpskModulator
from repro.wifi.dsss.frames import WifiDataFrame
from repro.wifi.dsss.plcp import (
    PLCP_HEADER_BITS,
    PLCP_PREAMBLE_BITS,
    SHORT_PLCP_PREAMBLE_BITS,
    build_plcp_preamble_and_header,
)

__all__ = ["DsssRate", "DsssPacketWaveform", "DsssTransmitter", "CHIP_RATE_HZ"]

#: 802.11b chip rate.
CHIP_RATE_HZ = 11_000_000.0


class DsssRate(float, enum.Enum):
    """Supported 802.11b data rates in Mbps."""

    RATE_1 = 1.0
    RATE_2 = 2.0
    RATE_5_5 = 5.5
    RATE_11 = 11.0

    @property
    def mbps(self) -> float:
        """Rate as a plain float in Mbps."""
        return float(self.value)

    @classmethod
    def from_mbps(cls, rate_mbps: float) -> "DsssRate":
        """Look up the enum member for a numeric rate."""
        for member in cls:
            if abs(member.value - rate_mbps) < 1e-9:
                return member
        raise ConfigurationError(f"unsupported 802.11b rate: {rate_mbps} Mbps")


@dataclass(frozen=True)
class DsssPacketWaveform:
    """The baseband output of the DSSS transmitter for one packet.

    Attributes
    ----------
    chips:
        Complex chips at 11 Mchip/s (unit magnitude).
    chip_rate_hz:
        Always 11 MHz for 802.11b.
    rate:
        Payload data rate.
    psdu:
        The MPDU bytes that were encoded.
    header_chips:
        Number of chips occupied by the PLCP preamble + header (always at
        1 Mbps / Barker-11).
    duration_s:
        Packet air time.
    """

    chips: np.ndarray
    chip_rate_hz: float
    rate: DsssRate
    psdu: bytes
    header_chips: int

    @property
    def duration_s(self) -> float:
        """Air time of the packet."""
        return self.chips.size / self.chip_rate_hz

    def __len__(self) -> int:
        return int(self.chips.size)


class DsssTransmitter:
    """802.11b baseband packet encoder.

    Parameters
    ----------
    rate:
        Payload data rate (1, 2, 5.5 or 11 Mbps).
    scrambler_seed:
        Seed of the frame-synchronous scrambler; the receiver in this
        library uses the same convention.
    short_preamble:
        Use the 56-bit short PLCP preamble with the header at 2 Mbps DQPSK
        (96 µs of overhead instead of 192 µs).  The interscatter tag uses
        the short preamble so its Wi-Fi packets fit inside one Bluetooth
        advertising payload (§2.3.3).
    """

    def __init__(
        self,
        rate: DsssRate | float = DsssRate.RATE_2,
        *,
        scrambler_seed: int = 0x1B,
        short_preamble: bool = False,
    ) -> None:
        self.rate = rate if isinstance(rate, DsssRate) else DsssRate.from_mbps(float(rate))
        if short_preamble and self.rate is DsssRate.RATE_1:
            raise ConfigurationError("short preamble cannot be combined with a 1 Mbps payload")
        self.scrambler_seed = scrambler_seed
        self.short_preamble = short_preamble

    # ------------------------------------------------------------------ API
    def encode_frame(self, frame: WifiDataFrame) -> DsssPacketWaveform:
        """Encode a data frame into baseband chips."""
        return self.encode_psdu(frame.mpdu())

    def encode_psdu(self, psdu: bytes) -> DsssPacketWaveform:
        """Encode raw MPDU bytes into baseband chips."""
        if not psdu:
            raise ConfigurationError("PSDU must not be empty")
        plcp_bits = build_plcp_preamble_and_header(
            self.rate.mbps, len(psdu), short_preamble=self.short_preamble
        )
        psdu_bits = bytes_to_bits(psdu)

        scrambler = Ieee80211Scrambler(self.scrambler_seed)
        scrambled = scrambler.scramble(np.concatenate([plcp_bits, psdu_bits]))
        preamble_bits = SHORT_PLCP_PREAMBLE_BITS if self.short_preamble else PLCP_PREAMBLE_BITS
        header_len = preamble_bits + PLCP_HEADER_BITS
        scrambled_psdu = scrambled[header_len:]

        if self.short_preamble:
            # Short format: SYNC + SFD at 1 Mbps DBPSK, header at 2 Mbps DQPSK.
            preamble_modulator = DpskModulator(bits_per_symbol=1)
            preamble_symbols = preamble_modulator.modulate(scrambled[:preamble_bits])
            header_modulator = DpskModulator(
                bits_per_symbol=2, initial_phase=float(np.angle(preamble_symbols[-1]))
            )
            header_symbols = header_modulator.modulate(scrambled[preamble_bits:header_len])
            header_chips = barker_spread(np.concatenate([preamble_symbols, header_symbols]))
        else:
            # Long format: preamble + header entirely at 1 Mbps DBPSK.
            header_modulator = DpskModulator(bits_per_symbol=1)
            header_symbols = header_modulator.modulate(scrambled[:header_len])
            header_chips = barker_spread(header_symbols)
        last_phase = float(np.angle(header_symbols[-1]))

        payload_chips = self._encode_payload(scrambled_psdu, last_phase)
        chips = np.concatenate([header_chips, payload_chips])
        return DsssPacketWaveform(
            chips=chips,
            chip_rate_hz=CHIP_RATE_HZ,
            rate=self.rate,
            psdu=psdu,
            header_chips=header_chips.size,
        )

    # ------------------------------------------------------------- internals
    def _encode_payload(self, scrambled_psdu: np.ndarray, reference_phase: float) -> np.ndarray:
        """Encode the scrambled PSDU bits at the configured rate."""
        rate = self.rate
        if rate in (DsssRate.RATE_1, DsssRate.RATE_2):
            bits_per_symbol = 1 if rate is DsssRate.RATE_1 else 2
            modulator = DpskModulator(bits_per_symbol=bits_per_symbol, initial_phase=reference_phase)
            symbols = modulator.modulate(scrambled_psdu)
            return barker_spread(symbols)

        bits_per_symbol = 8 if rate is DsssRate.RATE_11 else 4
        if scrambled_psdu.size % bits_per_symbol != 0:
            raise ConfigurationError(
                f"PSDU bit count {scrambled_psdu.size} not a multiple of {bits_per_symbol}"
            )
        chips = np.empty(
            (scrambled_psdu.size // bits_per_symbol) * CCK_CHIPS_PER_SYMBOL, dtype=complex
        )
        previous_phase = reference_phase
        for index in range(scrambled_psdu.size // bits_per_symbol):
            bits = scrambled_psdu[index * bits_per_symbol : (index + 1) * bits_per_symbol]
            codeword, previous_phase = cck_codeword(
                bits,
                rate_mbps=rate.mbps,
                previous_phase=previous_phase,
                symbol_index=index,
            )
            chips[index * CCK_CHIPS_PER_SYMBOL : (index + 1) * CCK_CHIPS_PER_SYMBOL] = codeword
        return chips

    # ----------------------------------------------------------- conveniences
    @property
    def plcp_overhead_s(self) -> float:
        """Air time of the PLCP preamble + header for this preamble format."""
        if self.short_preamble:
            # 72 µs preamble at 1 Mbps + 48 header bits at 2 Mbps = 96 µs.
            return SHORT_PLCP_PREAMBLE_BITS * 1e-6 + PLCP_HEADER_BITS / 2.0 * 1e-6
        return (PLCP_PREAMBLE_BITS + PLCP_HEADER_BITS) * 1e-6

    def air_time_s(self, psdu_length_bytes: int) -> float:
        """Air time of a packet with the given PSDU length at this rate."""
        payload_s = psdu_length_bytes * 8.0 / (self.rate.mbps * 1e6)
        return self.plcp_overhead_s + payload_s

    def max_psdu_bytes_for_duration(self, duration_s: float) -> int:
        """Largest PSDU that fits in *duration_s* of air time at this rate.

        Used for the packet-size arithmetic of §2.3.3: how many Wi-Fi bytes
        fit inside one Bluetooth advertising payload window.
        """
        remaining = duration_s - self.plcp_overhead_s
        if remaining <= 0:
            return 0
        return int(np.floor(remaining * self.rate.mbps * 1e6 / 8.0))
