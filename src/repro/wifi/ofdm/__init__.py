"""802.11g OFDM physical layer.

Used by the *downlink* of the interscatter system (paper §2.4): an
unmodified OFDM Wi-Fi transmitter is turned into an amplitude modulator by
choosing payload bits such that, after scrambling, convolutional encoding,
interleaving and QAM mapping, every data subcarrier of a chosen OFDM symbol
carries the same constellation point.  The IFFT of a constant spectrum is an
impulse, so that symbol has nearly all its energy in its first time sample —
an AM "low" for the rest of the symbol that a passive peak-detector receiver
can see.

The package contains a complete transmit chain, a matching receive chain
(with a Viterbi decoder) used for validation, the constant-symbol payload
construction, and models of how commodity chipsets pick scrambler seeds.
"""

from repro.wifi.ofdm.convolutional import ConvolutionalEncoder, ViterbiDecoder
from repro.wifi.ofdm.interleaver import interleave, deinterleave
from repro.wifi.ofdm.mapping import Modulation, map_bits, demap_symbols
from repro.wifi.ofdm.symbols import OfdmSymbolBuilder, OFDM_FFT_SIZE, OFDM_CP_LENGTH
from repro.wifi.ofdm.transmitter import OfdmTransmitter, OfdmRate, OfdmPacketWaveform
from repro.wifi.ofdm.receiver import OfdmReceiver
from repro.wifi.ofdm.constant_ofdm import (
    AmSymbolPlan,
    ConstantOfdmCrafter,
    symbol_peak_to_average,
)
from repro.wifi.ofdm.scrambler_seeds import (
    ScramblerSeedModel,
    AtherosIncrementingSeedModel,
    FixedSeedModel,
    RandomSeedModel,
)

__all__ = [
    "ConvolutionalEncoder",
    "ViterbiDecoder",
    "interleave",
    "deinterleave",
    "Modulation",
    "map_bits",
    "demap_symbols",
    "OfdmSymbolBuilder",
    "OFDM_FFT_SIZE",
    "OFDM_CP_LENGTH",
    "OfdmTransmitter",
    "OfdmRate",
    "OfdmPacketWaveform",
    "OfdmReceiver",
    "AmSymbolPlan",
    "ConstantOfdmCrafter",
    "symbol_peak_to_average",
    "ScramblerSeedModel",
    "AtherosIncrementingSeedModel",
    "FixedSeedModel",
    "RandomSeedModel",
]
