"""Constant-OFDM symbol crafting: turning an OFDM radio into an AM source (§2.4).

The downlink encodes one bit per *pair* of OFDM symbols:

* bit 1 → a **random** OFDM symbol followed by a **constant** OFDM symbol,
* bit 0 → two random OFDM symbols (Fig. 8),

giving 125 kbps (each 802.11g symbol is 4 µs).  A "constant" symbol is one
whose 48 data subcarriers all carry the same constellation point; its IFFT
concentrates energy in the first time sample and is near zero elsewhere, so
a passive envelope/peak detector sees a low-amplitude gap.  A "random"
symbol keeps the detector's envelope high.

Creating a constant symbol on a commodity transmitter requires choosing the
*data* bits so that after scrambling, convolutional encoding and
interleaving every coded bit in the symbol is identical.  The construction
(following the paper):

* **Scrambler** — with a known/predictable seed the keystream is known, so
  the data bits are simply the keystream (to make every scrambled bit 0) or
  its complement (to make every scrambled bit 1).
* **Convolutional encoder** — an all-zeros (all-ones) input with matching
  history encodes to all zeros (all ones).  The encoder has memory 6, so the
  last six data bits of the *previous* symbol must already be ones (zeros);
  the crafter forces this when planning the preceding random symbol.
* **Interleaver** — permutations leave a constant block unchanged.
* **Modulator** — identical coded bits map every subcarrier to the same
  constellation point.
* **Pilots** — cannot be controlled, but only 4 of 52 subcarriers, so the
  impulse shape survives (the peak-to-average assertion in the tests shows
  this).
* **Cyclic prefix** — a constant symbol's CP is almost all zeros, which
  could fake a gap at the symbol boundary; the crafter picks the preceding
  random symbol's last time sample to be high (§2.4, last paragraph) by
  retrying candidate random fills.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array
from repro.wifi.scrambler import Ieee80211Scrambler
from repro.wifi.ofdm.rates import OfdmRate
from repro.wifi.ofdm.transmitter import OfdmPacketWaveform, OfdmTransmitter

__all__ = ["AmSymbolPlan", "ConstantOfdmCrafter", "symbol_peak_to_average", "DOWNLINK_BIT_RATE_BPS"]

#: Downlink bit rate: one bit per two 4 µs OFDM symbols.
DOWNLINK_BIT_RATE_BPS = 125_000.0


def symbol_peak_to_average(symbol_samples: np.ndarray) -> float:
    """Peak-to-average power ratio of one time-domain OFDM symbol.

    Constant symbols have a very high PAPR (impulse-like); random symbols a
    low one.  Used both in tests and by the AM decision logic.
    """
    samples = np.asarray(symbol_samples, dtype=complex).ravel()
    power = np.abs(samples) ** 2
    mean = float(np.mean(power))
    if mean <= 0.0:
        return 0.0
    return float(np.max(power) / mean)


@dataclass(frozen=True)
class AmSymbolPlan:
    """The symbol-level plan for one downlink message.

    Attributes
    ----------
    message_bits:
        The bits conveyed to the backscatter device.
    symbol_kinds:
        One entry per OFDM symbol: ``"random"`` or ``"constant"``.
    data_bits:
        The unscrambled data-field bits handed to the OFDM transmitter.
    scrambler_seed:
        Seed assumed when computing the data bits.
    rate:
        OFDM rate the plan was built for.
    """

    message_bits: np.ndarray
    symbol_kinds: tuple[str, ...]
    data_bits: np.ndarray
    scrambler_seed: int
    rate: OfdmRate


class ConstantOfdmCrafter:
    """Builds 802.11g payloads whose OFDM symbols AM-encode a message.

    Parameters
    ----------
    rate:
        OFDM rate; the paper uses 36 Mbps (16-QAM rate 3/4).  16/64-QAM are
        recommended because the random symbols then have dense constellations
        and reliably high envelopes.
    constant_bit_value:
        Whether constant symbols are built from all-one (default) or
        all-zero scrambled bits.
    rng:
        Random generator for the random-symbol filler bits.
    """

    def __init__(
        self,
        rate: OfdmRate | float = OfdmRate.RATE_36,
        *,
        constant_bit_value: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.rate = rate if isinstance(rate, OfdmRate) else OfdmRate.from_mbps(float(rate))
        if constant_bit_value not in (0, 1):
            raise ConfigurationError("constant_bit_value must be 0 or 1")
        self.constant_bit_value = constant_bit_value
        self._rng = rng if rng is not None else np.random.default_rng(7)

    # ------------------------------------------------------------------ API
    def plan(self, message_bits: np.ndarray, *, scrambler_seed: int) -> AmSymbolPlan:
        """Compute the data bits that AM-encode *message_bits*.

        Every message bit expands to two OFDM symbols (random + constant for
        a 1, random + random for a 0).
        """
        bits = as_bit_array(message_bits)
        if bits.size == 0:
            raise ConfigurationError("message must contain at least one bit")
        params = self.rate.parameters
        dbps = params.data_bits_per_symbol

        symbol_kinds: list[str] = []
        for bit in bits:
            symbol_kinds.append("random")
            symbol_kinds.append("constant" if bit == 1 else "random")

        keystream = Ieee80211Scrambler(scrambler_seed).keystream(dbps * len(symbol_kinds))
        data_bits = np.empty(dbps * len(symbol_kinds), dtype=np.uint8)
        for index, kind in enumerate(symbol_kinds):
            start, stop = index * dbps, (index + 1) * dbps
            if kind == "constant":
                # Data = keystream XOR desired-scrambled-bit, so the scrambled
                # bits in this symbol are all `constant_bit_value`.
                data_bits[start:stop] = np.bitwise_xor(
                    keystream[start:stop], self.constant_bit_value
                )
            else:
                data_bits[start:stop] = self._rng.integers(0, 2, dbps)
            next_kind = symbol_kinds[index + 1] if index + 1 < len(symbol_kinds) else None
            if next_kind == "constant":
                # The convolutional encoder has memory 6: the history entering
                # the constant symbol must already consist of scrambled bits
                # equal to the constant value (paper §2.4), so force the last
                # six data bits of this symbol to keystream XOR constant_value.
                data_bits[stop - 6 : stop] = np.bitwise_xor(
                    keystream[stop - 6 : stop], self.constant_bit_value
                )
        return AmSymbolPlan(
            message_bits=bits,
            symbol_kinds=tuple(symbol_kinds),
            data_bits=data_bits,
            scrambler_seed=scrambler_seed,
            rate=self.rate,
        )

    def waveform(self, plan: AmSymbolPlan) -> OfdmPacketWaveform:
        """Encode a plan into a transmit waveform."""
        transmitter = OfdmTransmitter(self.rate)
        return transmitter.encode_data_bits(plan.data_bits, scrambler_seed=plan.scrambler_seed)

    def encode_message(
        self, message_bits: np.ndarray, *, scrambler_seed: int
    ) -> tuple[AmSymbolPlan, OfdmPacketWaveform]:
        """Plan and encode a downlink message in one call."""
        plan = self.plan(message_bits, scrambler_seed=scrambler_seed)
        return plan, self.waveform(plan)

    # ------------------------------------------------------------ diagnostics
    def symbol_papr_profile(self, plan: AmSymbolPlan) -> np.ndarray:
        """Peak-to-average power of every data symbol in the encoded waveform."""
        waveform = self.waveform(plan)
        return np.array(
            [
                symbol_peak_to_average(waveform.data_symbol(i))
                for i in range(waveform.num_data_symbols)
            ]
        )
