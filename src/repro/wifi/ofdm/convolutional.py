"""Rate-1/2 convolutional code (K = 7) used by 802.11a/g, plus puncturing.

Generator polynomials are the standard 133/171 (octal).  The paper quotes
the two output equations explicitly (§2.4):

    C1[k] = b[k] ^ b[k-2] ^ b[k-3] ^ b[k-5] ^ b[k-6]
    C2[k] = b[k] ^ b[k-1] ^ b[k-2] ^ b[k-3] ^ b[k-6]

The property the downlink construction relies on is that an all-zeros input
encodes to all zeros and an all-ones input (with all-ones history) encodes
to all ones, so whole OFDM symbols of identical scrambled bits survive the
encoder unchanged.

A hard-decision Viterbi decoder is included so the validation receiver can
decode ordinary 802.11g frames.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = [
    "CONSTRAINT_LENGTH",
    "ConvolutionalEncoder",
    "ViterbiDecoder",
    "puncture",
    "depuncture",
    "PUNCTURE_PATTERNS",
]

#: Constraint length of the 802.11 convolutional code.
CONSTRAINT_LENGTH = 7

#: Generator taps, expressed as state-bit masks.  b[k] is the current bit and
#: b[k-1]..b[k-6] the six history bits.
_G1_TAPS = (0, 2, 3, 5, 6)
_G2_TAPS = (0, 1, 2, 3, 6)

#: Puncturing patterns for the higher coding rates (IEEE 802.11-2012 18.3.5.6).
#: Each entry lists, per block of rate-1/2 output pairs, which bits are kept.
PUNCTURE_PATTERNS: dict[str, np.ndarray] = {
    "1/2": np.array([1, 1], dtype=np.uint8),
    "2/3": np.array([1, 1, 1, 0], dtype=np.uint8),
    "3/4": np.array([1, 1, 1, 0, 0, 1], dtype=np.uint8),
}


class ConvolutionalEncoder:
    """Rate-1/2, K=7 convolutional encoder with optional history preload.

    Parameters
    ----------
    initial_history:
        Six history bits ``[b[k-1], ..., b[k-6]]`` to preload.  802.11
        encoders start from all zeros at the beginning of a frame; the
        constant-OFDM construction needs to reason about the history carried
        over from the previous symbol (§2.4), which this parameter exposes.
    """

    def __init__(self, initial_history: np.ndarray | None = None) -> None:
        if initial_history is None:
            self._history = [0] * (CONSTRAINT_LENGTH - 1)
        else:
            history = list(as_bit_array(initial_history))
            if len(history) != CONSTRAINT_LENGTH - 1:
                raise ConfigurationError(
                    f"history must have {CONSTRAINT_LENGTH - 1} bits, got {len(history)}"
                )
            self._history = [int(b) for b in history]

    @property
    def history(self) -> tuple[int, ...]:
        """Current history bits ``[b[k-1], ..., b[k-6]]``."""
        return tuple(self._history)

    def encode(self, bits: np.ndarray) -> np.ndarray:
        """Encode *bits*, returning interleaved output pairs ``C1[0] C2[0] C1[1] ...``."""
        arr = as_bit_array(bits)
        out = np.empty(arr.size * 2, dtype=np.uint8)
        history = self._history
        for k, bit in enumerate(arr):
            window = [int(bit)] + history  # window[d] == b[k-d]
            c1 = 0
            for tap in _G1_TAPS:
                c1 ^= window[tap]
            c2 = 0
            for tap in _G2_TAPS:
                c2 ^= window[tap]
            out[2 * k] = c1
            out[2 * k + 1] = c2
            history = [int(bit)] + history[:-1]
        self._history = history
        return out


def puncture(coded_bits: np.ndarray, rate: str) -> np.ndarray:
    """Puncture rate-1/2 coded bits up to 2/3 or 3/4."""
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = PUNCTURE_PATTERNS[rate]
    coded = as_bit_array(coded_bits)
    if coded.size % pattern.size != 0:
        raise ValueError(
            f"coded bit count {coded.size} not a multiple of puncture block {pattern.size}"
        )
    mask = np.tile(pattern, coded.size // pattern.size).astype(bool)
    return coded[mask]


def depuncture(punctured_bits: np.ndarray, rate: str) -> tuple[np.ndarray, np.ndarray]:
    """Re-insert erasures for punctured positions.

    Returns
    -------
    (bits, known_mask):
        ``bits`` has zeros at punctured positions; ``known_mask`` marks which
        positions carry real information (used by the Viterbi decoder to
        ignore erasures).
    """
    if rate not in PUNCTURE_PATTERNS:
        raise ConfigurationError(f"unknown coding rate {rate!r}")
    pattern = PUNCTURE_PATTERNS[rate]
    punctured = as_bit_array(punctured_bits)
    kept_per_block = int(np.sum(pattern))
    if punctured.size % kept_per_block != 0:
        raise ValueError(
            f"punctured bit count {punctured.size} not a multiple of {kept_per_block}"
        )
    blocks = punctured.size // kept_per_block
    full = np.zeros(blocks * pattern.size, dtype=np.uint8)
    mask = np.tile(pattern, blocks).astype(bool)
    full[mask] = punctured
    return full, mask


class ViterbiDecoder:
    """Hard-decision Viterbi decoder for the 802.11 K=7 code."""

    def __init__(self) -> None:
        num_states = 1 << (CONSTRAINT_LENGTH - 1)
        self._num_states = num_states
        # Pre-compute per-state, per-input expected output pairs and next states.
        self._next_state = np.zeros((num_states, 2), dtype=np.int32)
        self._outputs = np.zeros((num_states, 2, 2), dtype=np.uint8)
        for state in range(num_states):
            history = [(state >> i) & 1 for i in range(CONSTRAINT_LENGTH - 1)]
            for bit in (0, 1):
                window = [bit] + history
                c1 = 0
                for tap in _G1_TAPS:
                    c1 ^= window[tap]
                c2 = 0
                for tap in _G2_TAPS:
                    c2 ^= window[tap]
                next_history = [bit] + history[:-1]
                next_state = 0
                for i, h in enumerate(next_history):
                    next_state |= h << i
                self._next_state[state, bit] = next_state
                self._outputs[state, bit, 0] = c1
                self._outputs[state, bit, 1] = c2

    def decode(
        self,
        coded_bits: np.ndarray,
        *,
        known_mask: np.ndarray | None = None,
        initial_state: int = 0,
    ) -> np.ndarray:
        """Decode hard bits (``C1 C2`` interleaved) back to data bits.

        Parameters
        ----------
        coded_bits:
            Received coded bits; length must be even.
        known_mask:
            Optional boolean mask (same length) marking which received bits
            are real (False = erasure from depuncturing).
        initial_state:
            Encoder start state (0 for 802.11 frames).
        """
        coded = as_bit_array(coded_bits)
        if coded.size % 2 != 0:
            raise ValueError("coded bit count must be even")
        if known_mask is None:
            known = np.ones(coded.size, dtype=bool)
        else:
            known = np.asarray(known_mask, dtype=bool).ravel()
            if known.size != coded.size:
                raise ValueError("known_mask length mismatch")
        num_steps = coded.size // 2
        num_states = self._num_states

        metrics = np.full(num_states, np.inf)
        metrics[initial_state] = 0.0
        backpointers = np.zeros((num_steps, num_states), dtype=np.int8)
        predecessors = np.zeros((num_steps, num_states), dtype=np.int32)

        for step in range(num_steps):
            received = coded[2 * step : 2 * step + 2]
            mask = known[2 * step : 2 * step + 2]
            new_metrics = np.full(num_states, np.inf)
            new_back = np.zeros(num_states, dtype=np.int8)
            new_pred = np.zeros(num_states, dtype=np.int32)
            for state in range(num_states):
                metric = metrics[state]
                if not np.isfinite(metric):
                    continue
                for bit in (0, 1):
                    expected = self._outputs[state, bit]
                    cost = 0.0
                    if mask[0] and expected[0] != received[0]:
                        cost += 1.0
                    if mask[1] and expected[1] != received[1]:
                        cost += 1.0
                    nxt = self._next_state[state, bit]
                    candidate = metric + cost
                    if candidate < new_metrics[nxt]:
                        new_metrics[nxt] = candidate
                        new_back[nxt] = bit
                        new_pred[nxt] = state
            metrics = new_metrics
            backpointers[step] = new_back
            predecessors[step] = new_pred

        # Trace back from the best final state.
        state = int(np.argmin(metrics))
        decoded = np.zeros(num_steps, dtype=np.uint8)
        for step in range(num_steps - 1, -1, -1):
            decoded[step] = backpointers[step, state]
            state = int(predecessors[step, state])
        return decoded
