"""802.11a/g block interleaver.

Coded bits within one OFDM symbol are interleaved in two permutations
(IEEE 802.11-2012 18.3.5.7): the first spreads adjacent coded bits across
non-adjacent subcarriers, the second rotates bit positions within a
subcarrier's constellation bits.

The property the paper exploits (§2.4): a block of identical bits is
invariant under any permutation, so a constant-symbol's all-ones or
all-zeros coded block passes through the interleaver unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["interleave", "deinterleave", "interleaver_permutation"]


def interleaver_permutation(coded_bits_per_symbol: int, bits_per_subcarrier: int) -> np.ndarray:
    """Return the index permutation ``j = perm[k]`` for one OFDM symbol.

    ``k`` is the index of a coded bit before interleaving, ``perm[k]`` its
    position after interleaving.
    """
    n_cbps = coded_bits_per_symbol
    n_bpsc = bits_per_subcarrier
    if n_cbps % 16 != 0:
        raise ConfigurationError("coded bits per symbol must be a multiple of 16")
    if n_bpsc < 1:
        raise ConfigurationError("bits per subcarrier must be >= 1")
    s = max(n_bpsc // 2, 1)
    k = np.arange(n_cbps)
    # First permutation.
    i = (n_cbps // 16) * (k % 16) + k // 16
    # Second permutation.
    j = s * (i // s) + (i + n_cbps - (16 * i // n_cbps)) % s
    return j


def interleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Interleave one OFDM symbol's worth of coded bits."""
    arr = as_bit_array(bits)
    perm = interleaver_permutation(arr.size, bits_per_subcarrier)
    out = np.zeros_like(arr)
    out[perm] = arr
    return out


def deinterleave(bits: np.ndarray, bits_per_subcarrier: int) -> np.ndarray:
    """Invert :func:`interleave`."""
    arr = as_bit_array(bits)
    perm = interleaver_permutation(arr.size, bits_per_subcarrier)
    return arr[perm]
