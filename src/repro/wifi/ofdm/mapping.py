"""Constellation mapping for 802.11a/g: BPSK, QPSK, 16-QAM and 64-QAM.

Gray-coded per IEEE 802.11-2012 18.3.5.8, with the standard normalisation
factors so every constellation has unit average energy.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["Modulation", "map_bits", "demap_symbols"]


class Modulation(enum.Enum):
    """Subcarrier modulations supported by 802.11a/g."""

    BPSK = "bpsk"
    QPSK = "qpsk"
    QAM16 = "16qam"
    QAM64 = "64qam"

    @property
    def bits_per_symbol(self) -> int:
        """Coded bits carried per subcarrier."""
        return {"bpsk": 1, "qpsk": 2, "16qam": 4, "64qam": 6}[self.value]

    @property
    def normalization(self) -> float:
        """Amplitude normalisation factor K_mod."""
        return {
            "bpsk": 1.0,
            "qpsk": 1.0 / np.sqrt(2.0),
            "16qam": 1.0 / np.sqrt(10.0),
            "64qam": 1.0 / np.sqrt(42.0),
        }[self.value]


#: Gray mapping of bit groups to one PAM axis level.
_PAM2 = {(0,): -1.0, (1,): 1.0}
_PAM4 = {(0, 0): -3.0, (0, 1): -1.0, (1, 1): 1.0, (1, 0): 3.0}
_PAM8 = {
    (0, 0, 0): -7.0,
    (0, 0, 1): -5.0,
    (0, 1, 1): -3.0,
    (0, 1, 0): -1.0,
    (1, 1, 0): 1.0,
    (1, 1, 1): 3.0,
    (1, 0, 1): 5.0,
    (1, 0, 0): 7.0,
}


def _axis_table(bits_per_axis: int) -> dict[tuple[int, ...], float]:
    return {1: _PAM2, 2: _PAM4, 3: _PAM8}[bits_per_axis]


def map_bits(bits: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Map coded bits to complex constellation points."""
    arr = as_bit_array(bits)
    bps = modulation.bits_per_symbol
    if arr.size % bps != 0:
        raise ConfigurationError(f"bit count {arr.size} not a multiple of {bps}")
    groups = arr.reshape(-1, bps)
    if modulation is Modulation.BPSK:
        return (2.0 * groups[:, 0].astype(float) - 1.0).astype(complex)
    half = bps // 2
    table = _axis_table(half)
    i_values = np.array([table[tuple(int(b) for b in g[:half])] for g in groups])
    q_values = np.array([table[tuple(int(b) for b in g[half:])] for g in groups])
    return modulation.normalization * (i_values + 1j * q_values)


def demap_symbols(symbols: np.ndarray, modulation: Modulation) -> np.ndarray:
    """Hard-decision demapping of complex points back to coded bits."""
    symbols = np.asarray(symbols, dtype=complex).ravel()
    bps = modulation.bits_per_symbol
    if modulation is Modulation.BPSK:
        return (symbols.real > 0).astype(np.uint8)
    half = bps // 2
    table = _axis_table(half)
    levels = np.array(sorted(table.values()))
    inverse = {v: k for k, v in table.items()}
    scaled = symbols / modulation.normalization
    out = np.empty(symbols.size * bps, dtype=np.uint8)
    for idx, point in enumerate(scaled):
        i_level = levels[np.argmin(np.abs(levels - point.real))]
        q_level = levels[np.argmin(np.abs(levels - point.imag))]
        bits = inverse[float(i_level)] + inverse[float(q_level)]
        out[idx * bps : (idx + 1) * bps] = bits
    return out
