"""802.11a/g rate-dependent parameters (modulation, coding rate, bits per symbol)."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.wifi.ofdm.mapping import Modulation

__all__ = ["OfdmRate", "OFDM_RATE_PARAMETERS", "OfdmRateParameters"]


@dataclass(frozen=True)
class OfdmRateParameters:
    """Per-rate parameters from IEEE 802.11-2012 Table 18-4.

    Attributes
    ----------
    rate_mbps:
        Nominal data rate.
    modulation:
        Subcarrier modulation.
    coding_rate:
        Convolutional coding rate as a string ("1/2", "2/3", "3/4").
    coded_bits_per_symbol:
        N_CBPS — coded bits per OFDM symbol.
    data_bits_per_symbol:
        N_DBPS — information bits per OFDM symbol.
    signal_rate_bits:
        The 4-bit RATE field value for the SIGNAL symbol.
    """

    rate_mbps: float
    modulation: Modulation
    coding_rate: str
    coded_bits_per_symbol: int
    data_bits_per_symbol: int
    signal_rate_bits: int


class OfdmRate(enum.Enum):
    """Supported 802.11g OFDM rates."""

    RATE_6 = 6.0
    RATE_9 = 9.0
    RATE_12 = 12.0
    RATE_18 = 18.0
    RATE_24 = 24.0
    RATE_36 = 36.0
    RATE_48 = 48.0
    RATE_54 = 54.0

    @property
    def mbps(self) -> float:
        """Rate in Mbps as a plain float."""
        return float(self.value)

    @property
    def parameters(self) -> OfdmRateParameters:
        """Look up the rate-dependent parameter set."""
        return OFDM_RATE_PARAMETERS[self]

    @classmethod
    def from_mbps(cls, rate_mbps: float) -> "OfdmRate":
        """Return the enum member for a numeric rate in Mbps."""
        for member in cls:
            if abs(member.value - rate_mbps) < 1e-9:
                return member
        raise ConfigurationError(f"unsupported OFDM rate: {rate_mbps} Mbps")


OFDM_RATE_PARAMETERS: dict[OfdmRate, OfdmRateParameters] = {
    OfdmRate.RATE_6: OfdmRateParameters(6.0, Modulation.BPSK, "1/2", 48, 24, 0b1101),
    OfdmRate.RATE_9: OfdmRateParameters(9.0, Modulation.BPSK, "3/4", 48, 36, 0b1111),
    OfdmRate.RATE_12: OfdmRateParameters(12.0, Modulation.QPSK, "1/2", 96, 48, 0b0101),
    OfdmRate.RATE_18: OfdmRateParameters(18.0, Modulation.QPSK, "3/4", 96, 72, 0b0111),
    OfdmRate.RATE_24: OfdmRateParameters(24.0, Modulation.QAM16, "1/2", 192, 96, 0b1001),
    OfdmRate.RATE_36: OfdmRateParameters(36.0, Modulation.QAM16, "3/4", 192, 144, 0b1011),
    OfdmRate.RATE_48: OfdmRateParameters(48.0, Modulation.QAM64, "2/3", 288, 192, 0b0001),
    OfdmRate.RATE_54: OfdmRateParameters(54.0, Modulation.QAM64, "3/4", 288, 216, 0b0011),
}
