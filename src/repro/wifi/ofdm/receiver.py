"""802.11g OFDM receiver used to validate the transmit chain and the downlink.

This receiver assumes sample-aligned input (the simulation controls timing),
so it skips packet detection / carrier recovery and goes straight to FFT,
demapping, deinterleaving, Viterbi decoding and descrambling.  It exposes
the recovered scrambler seed the same way the gr-ieee802-11 receiver does
for the paper's §4.4 seed-behaviour study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DecodeError
from repro.utils.bits import bits_to_bytes
from repro.wifi.scrambler import Ieee80211Scrambler
from repro.wifi.ofdm.convolutional import ViterbiDecoder, depuncture
from repro.wifi.ofdm.interleaver import deinterleave
from repro.wifi.ofdm.mapping import demap_symbols
from repro.wifi.ofdm.rates import OfdmRate
from repro.wifi.ofdm.symbols import OfdmSymbolBuilder
from repro.wifi.ofdm.transmitter import OfdmPacketWaveform, _SERVICE_BITS, _TAIL_BITS

__all__ = ["OfdmDecodeResult", "OfdmReceiver"]


@dataclass(frozen=True)
class OfdmDecodeResult:
    """Outcome of decoding one OFDM packet.

    Attributes
    ----------
    psdu:
        Decoded PSDU bytes.
    scrambler_seed:
        The 7-bit scrambler seed recovered from the SERVICE field.
    bit_errors_vs:
        Optional count of bit errors against a reference PSDU (None when no
        reference was provided).
    """

    psdu: bytes
    scrambler_seed: int
    bit_errors_vs: int | None = None


class OfdmReceiver:
    """Sample-aligned 802.11g data-field decoder."""

    def __init__(self, rate: OfdmRate | float = OfdmRate.RATE_36) -> None:
        self.rate = rate if isinstance(rate, OfdmRate) else OfdmRate.from_mbps(float(rate))
        self._builder = OfdmSymbolBuilder()
        self._viterbi = ViterbiDecoder()

    def decode(
        self,
        waveform: OfdmPacketWaveform | np.ndarray,
        *,
        num_data_symbols: int | None = None,
        data_start_sample: int | None = None,
        psdu_length_bytes: int | None = None,
        reference_psdu: bytes | None = None,
    ) -> OfdmDecodeResult:
        """Decode the data field of an OFDM packet.

        When a :class:`OfdmPacketWaveform` is passed, framing metadata is
        taken from it; raw sample arrays need the keyword metadata.
        """
        if isinstance(waveform, OfdmPacketWaveform):
            samples = waveform.samples
            num_data_symbols = waveform.num_data_symbols
            data_start_sample = waveform.data_start_sample
            if psdu_length_bytes is None and waveform.psdu:
                psdu_length_bytes = len(waveform.psdu)
        else:
            samples = np.asarray(waveform, dtype=complex).ravel()
            if num_data_symbols is None or data_start_sample is None:
                raise DecodeError("raw sample input requires framing metadata")

        params = self.rate.parameters
        coded_bits: list[np.ndarray] = []
        for index in range(num_data_symbols):
            start = data_start_sample + index * self._builder.samples_per_symbol
            stop = start + self._builder.samples_per_symbol
            if stop > samples.size:
                raise DecodeError("waveform truncated before the last data symbol")
            points = self._builder.split_symbol(samples[start:stop])
            demapped = demap_symbols(points, params.modulation)
            coded_bits.append(deinterleave(demapped, params.modulation.bits_per_symbol))
        coded = np.concatenate(coded_bits)

        full, known = depuncture(coded, params.coding_rate)
        scrambled = self._viterbi.decode(full, known_mask=known)

        # Recover the scrambler seed from the SERVICE field: its first seven
        # bits are transmitted as zeros, so the received scrambled bits there
        # *are* the first seven keystream bits, which map 1:1 to the seed.
        seed = self._seed_from_keystream(scrambled[:7])
        descrambler = Ieee80211Scrambler(seed)
        data_bits = descrambler.scramble(scrambled)

        if psdu_length_bytes is None:
            available = data_bits.size - _SERVICE_BITS - _TAIL_BITS
            psdu_length_bytes = available // 8
        psdu_bits = data_bits[_SERVICE_BITS : _SERVICE_BITS + psdu_length_bytes * 8]
        psdu = bits_to_bytes(psdu_bits)

        bit_errors = None
        if reference_psdu is not None:
            from repro.utils.bits import bytes_to_bits

            reference_bits = bytes_to_bits(reference_psdu)
            compare = min(reference_bits.size, psdu_bits.size)
            bit_errors = int(np.count_nonzero(reference_bits[:compare] != psdu_bits[:compare]))
            bit_errors += abs(reference_bits.size - psdu_bits.size)
        return OfdmDecodeResult(psdu=psdu, scrambler_seed=seed, bit_errors_vs=bit_errors)

    @staticmethod
    def _seed_from_keystream(first_seven_keystream_bits: np.ndarray) -> int:
        """Invert the scrambler: find the seed producing these first 7 output bits."""
        for seed in range(1, 0x80):
            candidate = Ieee80211Scrambler(seed).keystream(7)
            if np.array_equal(candidate, first_seven_keystream_bits):
                return seed
        raise DecodeError("could not recover scrambler seed from SERVICE field")
