"""Models of how commodity 802.11g chipsets choose scrambler seeds (§4.4).

The downlink construction must predict the transmitter's scrambler output,
which requires knowing the 7-bit seed of every frame.  The paper measured
(with the gr-ieee802-11 GNURadio receiver) that the Atheros AR5001G,
AR5007G and AR9580 simply increment the seed by one between frames, and
that ath5k cards can be pinned to a fixed seed through a driver register.
These behaviours, plus a standards-faithful random model, are captured here
so experiments can quantify how seed predictability affects the downlink.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "ScramblerSeedModel",
    "AtherosIncrementingSeedModel",
    "FixedSeedModel",
    "RandomSeedModel",
    "CHIPSET_SEED_MODELS",
]


class ScramblerSeedModel(abc.ABC):
    """Base class: produces the scrambler seed used for each successive frame."""

    @abc.abstractmethod
    def next_seed(self) -> int:
        """Seed (non-zero 7-bit value) for the next transmitted frame."""

    @abc.abstractmethod
    def predict(self, frames_ahead: int) -> int | None:
        """Predict the seed *frames_ahead* frames in the future.

        Returns ``None`` when the model is not predictable (the random
        model), which forces the downlink to fall back to per-frame seed
        recovery.
        """

    @property
    def predictable(self) -> bool:
        """Whether an observer can predict future seeds from past ones."""
        return self.predict(1) is not None


class AtherosIncrementingSeedModel(ScramblerSeedModel):
    """Seed increments by one per frame, wrapping within the 7-bit non-zero range.

    Matches the paper's observation for the AR5001G / AR5007G / AR9580.
    """

    def __init__(self, initial_seed: int = 1) -> None:
        if not 1 <= initial_seed <= 0x7F:
            raise ConfigurationError("seed must be a non-zero 7-bit value")
        self._current = initial_seed

    def next_seed(self) -> int:
        seed = self._current
        self._current = self._current % 0x7F + 1
        return seed

    def predict(self, frames_ahead: int) -> int | None:
        if frames_ahead < 0:
            raise ValueError("frames_ahead must be non-negative")
        return (self._current - 1 + frames_ahead) % 0x7F + 1


class FixedSeedModel(ScramblerSeedModel):
    """The seed never changes (ath5k with GEN_SCRAMBLER pinned in AR5K_PHY_CTL)."""

    def __init__(self, seed: int = 0x5D) -> None:
        if not 1 <= seed <= 0x7F:
            raise ConfigurationError("seed must be a non-zero 7-bit value")
        self.seed = seed

    def next_seed(self) -> int:
        return self.seed

    def predict(self, frames_ahead: int) -> int | None:
        return self.seed


class RandomSeedModel(ScramblerSeedModel):
    """Standards-faithful pseudo-random non-zero seed per frame (unpredictable)."""

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng()

    def next_seed(self) -> int:
        return int(self._rng.integers(1, 0x80))

    def predict(self, frames_ahead: int) -> int | None:
        return None


#: Chipset name → seed-model factory, reflecting Table-free findings of §4.4.
CHIPSET_SEED_MODELS = {
    "AR5001G": AtherosIncrementingSeedModel,
    "AR5007G": AtherosIncrementingSeedModel,
    "AR9580": AtherosIncrementingSeedModel,
    "ath5k_fixed": FixedSeedModel,
    "standards_random": RandomSeedModel,
}
