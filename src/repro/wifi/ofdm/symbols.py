"""OFDM symbol construction: subcarrier layout, pilots, IFFT and cyclic prefix.

802.11a/g uses a 64-point IFFT at 20 Msample/s.  48 subcarriers carry data,
4 carry pilots (at indices ±7 and ±21), the DC bin and the band edges are
nulled.  Each symbol is 80 samples (64 + 16 cyclic prefix) = 4 µs.

Fig. 7 of the paper contrasts a *random* OFDM symbol (energy spread across
the 64 time samples) with a *constant* OFDM symbol (all data subcarriers
carrying the same constellation point), whose IFFT is nearly an impulse —
the basis of the AM downlink.
"""

from __future__ import annotations


import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "OFDM_FFT_SIZE",
    "OFDM_CP_LENGTH",
    "OFDM_SYMBOL_SAMPLES",
    "OFDM_SAMPLE_RATE_HZ",
    "OFDM_SYMBOL_DURATION_S",
    "DATA_SUBCARRIER_INDICES",
    "PILOT_SUBCARRIER_INDICES",
    "PILOT_POLARITY_SEQUENCE",
    "OfdmSymbolBuilder",
]

#: FFT size of the 802.11a/g PHY.
OFDM_FFT_SIZE = 64

#: Cyclic prefix (guard interval) length in samples.
OFDM_CP_LENGTH = 16

#: Total samples per OFDM symbol.
OFDM_SYMBOL_SAMPLES = OFDM_FFT_SIZE + OFDM_CP_LENGTH

#: Baseband sample rate (20 MHz).
OFDM_SAMPLE_RATE_HZ = 20_000_000.0

#: Symbol duration: 4 µs.
OFDM_SYMBOL_DURATION_S = OFDM_SYMBOL_SAMPLES / OFDM_SAMPLE_RATE_HZ

#: Logical subcarrier indices (-26..-1, 1..26) carrying data, in the order the
#: interleaved bits fill them.
_ALL_USED = [k for k in range(-26, 27) if k != 0]
PILOT_SUBCARRIER_INDICES = (-21, -7, 7, 21)
DATA_SUBCARRIER_INDICES = tuple(k for k in _ALL_USED if k not in PILOT_SUBCARRIER_INDICES)

#: 127-element pilot polarity sequence (IEEE 802.11-2012 18.3.5.10).  The
#: SIGNAL symbol uses index 0; data symbol n uses index (n+1) mod 127.
PILOT_POLARITY_SEQUENCE = np.array(
    [
        1, 1, 1, 1, -1, -1, -1, 1, -1, -1, -1, -1, 1, 1, -1, 1,
        -1, -1, 1, 1, -1, 1, 1, -1, 1, 1, 1, 1, 1, 1, -1, 1,
        1, 1, -1, 1, 1, -1, -1, 1, 1, 1, -1, 1, -1, -1, -1, 1,
        -1, 1, -1, -1, 1, -1, -1, 1, 1, 1, 1, 1, -1, -1, 1, 1,
        -1, -1, 1, -1, 1, -1, 1, 1, -1, -1, -1, 1, 1, -1, -1, -1,
        -1, 1, -1, -1, 1, -1, 1, 1, 1, 1, -1, 1, -1, 1, -1, 1,
        -1, -1, -1, -1, -1, 1, -1, 1, 1, -1, 1, -1, 1, 1, 1, -1,
        -1, 1, -1, -1, -1, 1, 1, 1, -1, -1, -1, -1, -1, -1, -1,
    ],
    dtype=float,
)


def _fft_bin(logical_index: int) -> int:
    """Map a logical subcarrier index (-26..26) to an FFT bin (0..63)."""
    return logical_index % OFDM_FFT_SIZE


class OfdmSymbolBuilder:
    """Builds and dissects 802.11a/g OFDM symbols.

    Parameters
    ----------
    cyclic_prefix:
        Cyclic prefix length in samples (16 for standard 802.11a/g).
    """

    def __init__(self, cyclic_prefix: int = OFDM_CP_LENGTH) -> None:
        if cyclic_prefix < 0 or cyclic_prefix >= OFDM_FFT_SIZE:
            raise ConfigurationError("cyclic prefix must be in [0, 64)")
        self.cyclic_prefix = cyclic_prefix

    @property
    def samples_per_symbol(self) -> int:
        """Time-domain samples per symbol including the cyclic prefix."""
        return OFDM_FFT_SIZE + self.cyclic_prefix

    def build_symbol(self, data_points: np.ndarray, symbol_index: int) -> np.ndarray:
        """Assemble one time-domain OFDM symbol.

        Parameters
        ----------
        data_points:
            48 complex constellation points, one per data subcarrier, in
            logical subcarrier order.
        symbol_index:
            Zero-based index of this *data* symbol within the frame
            (determines pilot polarity).
        """
        data_points = np.asarray(data_points, dtype=complex).ravel()
        if data_points.size != len(DATA_SUBCARRIER_INDICES):
            raise ConfigurationError(
                f"expected {len(DATA_SUBCARRIER_INDICES)} data points, got {data_points.size}"
            )
        spectrum = np.zeros(OFDM_FFT_SIZE, dtype=complex)
        for point, logical in zip(data_points, DATA_SUBCARRIER_INDICES, strict=True):
            spectrum[_fft_bin(logical)] = point
        polarity = PILOT_POLARITY_SEQUENCE[(symbol_index + 1) % PILOT_POLARITY_SEQUENCE.size]
        pilot_values = np.array([1.0, 1.0, 1.0, -1.0]) * polarity
        for value, logical in zip(pilot_values, PILOT_SUBCARRIER_INDICES, strict=True):
            spectrum[_fft_bin(logical)] = value
        time_domain = np.fft.ifft(spectrum) * np.sqrt(OFDM_FFT_SIZE)
        if self.cyclic_prefix:
            time_domain = np.concatenate([time_domain[-self.cyclic_prefix :], time_domain])
        return time_domain

    def split_symbol(self, samples: np.ndarray) -> np.ndarray:
        """Recover the 48 data constellation points from one time-domain symbol."""
        samples = np.asarray(samples, dtype=complex).ravel()
        if samples.size != self.samples_per_symbol:
            raise ConfigurationError(
                f"expected {self.samples_per_symbol} samples, got {samples.size}"
            )
        useful = samples[self.cyclic_prefix :]
        spectrum = np.fft.fft(useful) / np.sqrt(OFDM_FFT_SIZE)
        return np.array([spectrum[_fft_bin(k)] for k in DATA_SUBCARRIER_INDICES])

    def pilot_points(self, samples: np.ndarray) -> np.ndarray:
        """Extract the four pilot subcarrier values from a time-domain symbol."""
        samples = np.asarray(samples, dtype=complex).ravel()
        useful = samples[self.cyclic_prefix :]
        spectrum = np.fft.fft(useful) / np.sqrt(OFDM_FFT_SIZE)
        return np.array([spectrum[_fft_bin(k)] for k in PILOT_SUBCARRIER_INDICES])
