"""802.11g OFDM baseband transmitter.

Implements the data-field encoding chain of IEEE 802.11-2012 clause 18:
SERVICE field + PSDU + tail + pad → scramble → convolutionally encode (with
puncturing) → per-symbol interleave → QAM map → pilots + IFFT + cyclic
prefix.  The legacy preamble (short/long training sequences) and SIGNAL
symbol are included so the waveform has realistic structure for the peak
detector, although the downlink construction only manipulates the data
symbols.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import bytes_to_bits, int_to_bits
from repro.wifi.scrambler import Ieee80211Scrambler
from repro.wifi.ofdm.convolutional import ConvolutionalEncoder, puncture
from repro.wifi.ofdm.interleaver import interleave
from repro.wifi.ofdm.mapping import Modulation, map_bits
from repro.wifi.ofdm.rates import OfdmRate
from repro.wifi.ofdm.symbols import (
    DATA_SUBCARRIER_INDICES,
    OFDM_FFT_SIZE,
    OFDM_SAMPLE_RATE_HZ,
    OFDM_SYMBOL_DURATION_S,
    OfdmSymbolBuilder,
)

__all__ = ["OfdmPacketWaveform", "OfdmTransmitter", "build_preamble"]

#: Number of data subcarriers per OFDM symbol.
_N_DATA = len(DATA_SUBCARRIER_INDICES)

#: SERVICE field length in bits (7 scrambler-init zeros + 9 reserved).
_SERVICE_BITS = 16

#: Tail bits appended to flush the convolutional encoder.
_TAIL_BITS = 6


def _long_training_sequence() -> np.ndarray:
    """Frequency-domain long training symbol values on subcarriers -26..26."""
    return np.array(
        [1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1, 1, 1, 1, 0,
         1, -1, -1, 1, 1, -1, 1, -1, 1, -1, -1, -1, -1, -1, 1, 1, -1, -1, 1, -1, 1, -1, 1, 1, 1, 1],
        dtype=float,
    )


def build_preamble() -> np.ndarray:
    """Build the 16 µs legacy preamble (10 short symbols + 2 long symbols)."""
    # Short training symbol: 12 populated subcarriers at ±4k indices.
    short_freq = np.zeros(OFDM_FFT_SIZE, dtype=complex)
    pattern = np.sqrt(13.0 / 6.0) * np.array(
        [0, 0, 1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, -1 - 1j, 0, 0, 0,
         -1 - 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 0, 0, 0, 0, -1 - 1j, 0, 0, 0, -1 - 1j, 0,
         0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0, 0, 1 + 1j, 0, 0],
        dtype=complex,
    )
    for offset, value in zip(range(-26, 27), pattern, strict=True):
        short_freq[offset % OFDM_FFT_SIZE] = value
    short_time = np.fft.ifft(short_freq) * np.sqrt(OFDM_FFT_SIZE)
    short_preamble = np.tile(short_time[:16], 10)

    long_freq = np.zeros(OFDM_FFT_SIZE, dtype=complex)
    for offset, value in zip(range(-26, 27), _long_training_sequence(), strict=True):
        long_freq[offset % OFDM_FFT_SIZE] = value
    long_time = np.fft.ifft(long_freq) * np.sqrt(OFDM_FFT_SIZE)
    long_preamble = np.concatenate([long_time[-32:], long_time, long_time])
    return np.concatenate([short_preamble, long_preamble])


@dataclass(frozen=True)
class OfdmPacketWaveform:
    """Baseband output of the OFDM transmitter for one packet.

    Attributes
    ----------
    samples:
        Complex baseband samples at 20 Msample/s.
    sample_rate_hz:
        Always 20 MHz.
    rate:
        Data rate used for the data symbols.
    scrambler_seed:
        Seed the data field was scrambled with.
    num_data_symbols:
        Number of data OFDM symbols.
    data_start_sample:
        Index of the first sample of the first data symbol (after preamble
        and SIGNAL symbol).
    psdu:
        The bytes that were encoded.
    """

    samples: np.ndarray
    sample_rate_hz: float
    rate: OfdmRate
    scrambler_seed: int
    num_data_symbols: int
    data_start_sample: int
    psdu: bytes

    @property
    def duration_s(self) -> float:
        """Waveform duration in seconds."""
        return self.samples.size / self.sample_rate_hz

    def data_symbol(self, index: int) -> np.ndarray:
        """Time-domain samples (80) of data symbol *index*."""
        if not 0 <= index < self.num_data_symbols:
            raise IndexError(f"symbol index {index} out of range")
        start = self.data_start_sample + index * 80
        return self.samples[start : start + 80]


class OfdmTransmitter:
    """802.11g OFDM packet encoder.

    Parameters
    ----------
    rate:
        OFDM data rate; the paper's downlink experiments use 36 Mbps
        (16-QAM, rate 3/4).
    """

    def __init__(self, rate: OfdmRate | float = OfdmRate.RATE_36) -> None:
        self.rate = rate if isinstance(rate, OfdmRate) else OfdmRate.from_mbps(float(rate))
        self._builder = OfdmSymbolBuilder()

    # ------------------------------------------------------------------ API
    def encode_psdu(self, psdu: bytes, *, scrambler_seed: int = 0x5D) -> OfdmPacketWaveform:
        """Encode *psdu* into a complete 802.11g waveform."""
        if not psdu:
            raise ConfigurationError("PSDU must not be empty")
        data_bits = self._assemble_data_bits(psdu)
        scrambled = self._scramble(data_bits, scrambler_seed)
        # Tail bits are transmitted unscrambled (set to zero after scrambling)
        # so the receiver's Viterbi trellis terminates in the zero state.
        tail_start = _SERVICE_BITS + len(psdu) * 8
        scrambled[tail_start : tail_start + _TAIL_BITS] = 0
        symbols = self._encode_symbols(scrambled)
        preamble = build_preamble()
        signal_symbol = self._signal_symbol(len(psdu))
        samples = np.concatenate([preamble, signal_symbol] + symbols)
        return OfdmPacketWaveform(
            samples=samples,
            sample_rate_hz=OFDM_SAMPLE_RATE_HZ,
            rate=self.rate,
            scrambler_seed=scrambler_seed,
            num_data_symbols=len(symbols),
            data_start_sample=preamble.size + signal_symbol.size,
            psdu=psdu,
        )

    def encode_data_bits(
        self, padded_data_bits: np.ndarray, *, scrambler_seed: int = 0x5D
    ) -> OfdmPacketWaveform:
        """Encode an already-assembled data-field bit stream.

        Used by the constant-OFDM crafter, which wants direct control over
        every data bit (including SERVICE and pad bits) rather than going
        through the bytes-of-a-PSDU path.  The bit count must be a multiple
        of the data bits per symbol.
        """
        params = self.rate.parameters
        if padded_data_bits.size % params.data_bits_per_symbol != 0:
            raise ConfigurationError(
                "data bit count must be a multiple of the data bits per symbol"
            )
        scrambled = self._scramble(padded_data_bits, scrambler_seed)
        symbols = self._encode_symbols(scrambled)
        preamble = build_preamble()
        signal_symbol = self._signal_symbol(max(1, padded_data_bits.size // 8))
        samples = np.concatenate([preamble, signal_symbol] + symbols)
        return OfdmPacketWaveform(
            samples=samples,
            sample_rate_hz=OFDM_SAMPLE_RATE_HZ,
            rate=self.rate,
            scrambler_seed=scrambler_seed,
            num_data_symbols=len(symbols),
            data_start_sample=preamble.size + signal_symbol.size,
            psdu=b"",
        )

    def num_symbols_for_psdu(self, psdu_length_bytes: int) -> int:
        """Number of data OFDM symbols needed for a PSDU of the given length."""
        params = self.rate.parameters
        total_bits = _SERVICE_BITS + 8 * psdu_length_bytes + _TAIL_BITS
        return int(np.ceil(total_bits / params.data_bits_per_symbol))

    def air_time_s(self, psdu_length_bytes: int) -> float:
        """Packet air time: 16 µs preamble + 4 µs SIGNAL + 4 µs per data symbol."""
        return 20e-6 + self.num_symbols_for_psdu(psdu_length_bytes) * OFDM_SYMBOL_DURATION_S

    # ------------------------------------------------------------- internals
    def _assemble_data_bits(self, psdu: bytes) -> np.ndarray:
        """SERVICE + PSDU + tail + pad bits (before scrambling)."""
        params = self.rate.parameters
        psdu_bits = bytes_to_bits(psdu)
        total_bits = _SERVICE_BITS + psdu_bits.size + _TAIL_BITS
        num_symbols = int(np.ceil(total_bits / params.data_bits_per_symbol))
        padded_length = num_symbols * params.data_bits_per_symbol
        data = np.zeros(padded_length, dtype=np.uint8)
        data[_SERVICE_BITS : _SERVICE_BITS + psdu_bits.size] = psdu_bits
        return data

    def _scramble(self, data_bits: np.ndarray, seed: int) -> np.ndarray:
        """Scramble the data field with the frame's 7-bit seed."""
        scrambler = Ieee80211Scrambler(seed)
        return scrambler.scramble(data_bits)

    def _encode_symbols(self, scrambled_bits: np.ndarray) -> list[np.ndarray]:
        """Convolutionally encode, interleave, map and IFFT every data symbol."""
        params = self.rate.parameters
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(scrambled_bits)
        coded = puncture(coded, params.coding_rate)
        if coded.size % params.coded_bits_per_symbol != 0:
            raise ConfigurationError(
                "coded bit count does not fill an integer number of OFDM symbols"
            )
        num_symbols = coded.size // params.coded_bits_per_symbol
        symbols: list[np.ndarray] = []
        for index in range(num_symbols):
            block = coded[
                index * params.coded_bits_per_symbol : (index + 1) * params.coded_bits_per_symbol
            ]
            interleaved = interleave(block, params.modulation.bits_per_symbol)
            points = map_bits(interleaved, params.modulation)
            symbols.append(self._builder.build_symbol(points, index))
        return symbols

    def _signal_symbol(self, psdu_length_bytes: int) -> np.ndarray:
        """Build the SIGNAL symbol (BPSK, rate 1/2, never scrambled)."""
        params = self.rate.parameters
        rate_bits = int_to_bits(params.signal_rate_bits, 4, msb_first=True)
        length_bits = int_to_bits(psdu_length_bytes & 0xFFF, 12)
        parity = int(np.sum(rate_bits) + np.sum(length_bits)) % 2
        signal_bits = np.concatenate(
            [rate_bits, [0], length_bits, [parity], np.zeros(6, dtype=np.uint8)]
        ).astype(np.uint8)
        encoder = ConvolutionalEncoder()
        coded = encoder.encode(signal_bits)
        interleaved = interleave(coded, 1)
        points = map_bits(interleaved, Modulation.BPSK)
        return self._builder.build_symbol(points, symbol_index=-1)
