"""The IEEE 802.11 frame-synchronous scrambler.

Both 802.11b and 802.11g scramble data with a 7-bit LFSR implementing the
polynomial ``x^7 + x^4 + 1`` — the very same polynomial as BLE whitening
(paper Fig. 4).  The scrambler is self-synchronising for 802.11b and
frame-synchronous (seeded per frame) for 802.11g; for the reproduction we
model the frame-synchronous additive form, which is what matters for both:

* the tag's 802.11b baseband generator scrambles the synthesized packet so
  a commodity receiver can descramble it, and
* the downlink AM construction (§2.4) must *predict* the scrambler output of
  a commodity OFDM transmitter, which requires knowing the seed — hence the
  chipset seed-behaviour models in :mod:`repro.wifi.ofdm.scrambler_seeds`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.bits import as_bit_array

__all__ = ["Ieee80211Scrambler", "scrambler_keystream"]


class Ieee80211Scrambler:
    """Additive (frame-synchronous) 802.11 scrambler.

    The register state is seven bits ``x1 .. x7`` (x7 oldest).  Each step
    outputs ``x7 XOR x4``, which is also fed back into ``x1``.  The output
    bit is XORed with the data bit.

    Parameters
    ----------
    seed:
        Seven-bit non-zero initial state.  802.11g requires a pseudo-random
        non-zero value; several Atheros chipsets simply increment it per
        frame (§4.4).
    """

    def __init__(self, seed: int = 0x7F) -> None:
        if not 1 <= seed <= 0x7F:
            raise ConfigurationError(f"scrambler seed must be a non-zero 7-bit value, got {seed}")
        self.seed = seed
        self.reset()

    def reset(self, seed: int | None = None) -> None:
        """Reset the shift register to *seed* (or the constructor seed)."""
        if seed is not None:
            if not 1 <= seed <= 0x7F:
                raise ConfigurationError(
                    f"scrambler seed must be a non-zero 7-bit value, got {seed}"
                )
            self.seed = seed
        # state[0] is x1 (newest), state[6] is x7 (oldest).  The seed is
        # loaded with its MSB into x7 as per IEEE 802.11-2012 figure 18-7.
        self._state = [(self.seed >> i) & 1 for i in range(7)]

    def next_bit(self) -> int:
        """Advance the register and return the next keystream bit."""
        feedback = self._state[6] ^ self._state[3]
        self._state = [feedback] + self._state[:6]
        return feedback

    def keystream(self, length: int) -> np.ndarray:
        """Return the next *length* keystream bits."""
        if length < 0:
            raise ValueError("length must be non-negative")
        return np.array([self.next_bit() for _ in range(length)], dtype=np.uint8)

    def scramble(self, bits: Iterable[int] | np.ndarray) -> np.ndarray:
        """Scramble (or descramble) a bit sequence."""
        arr = as_bit_array(bits)
        return np.bitwise_xor(arr, self.keystream(arr.size))


def scrambler_keystream(seed: int, length: int) -> np.ndarray:
    """Convenience: the first *length* scrambler output bits for *seed*."""
    scrambler = Ieee80211Scrambler(seed)
    return scrambler.keystream(length)
